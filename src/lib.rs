//! Workspace façade for the TAS reproduction.
//!
//! Re-exports every crate in the workspace so examples and integration
//! tests can use one dependency. See the README for the architecture map
//! and DESIGN.md for the experiment index.

pub use tas;
pub use tas_apps as apps;
pub use tas_baselines as baselines;
pub use tas_cpusim as cpusim;
pub use tas_netsim as netsim;
pub use tas_proto as proto;
pub use tas_shm as shm;
pub use tas_sim as sim;
pub use tas_tcp as tcp;
#[cfg(any(feature = "trace", feature = "profile"))]
pub use tas_telemetry as telemetry;
