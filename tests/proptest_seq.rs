//! Property tests for RFC 793 sequence-number arithmetic.
//!
//! Every ACK-acceptance, window, and out-of-order decision in both stacks
//! reduces to these five functions; a wraparound bug here corrupts
//! connections only once per 4 GB of stream, which no example-based test
//! reliably catches.

use proptest::prelude::*;
use tas_repro::proto::tcp::seq;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Moving forward by 1..2^31-1 is always "greater", regardless of
    /// where the wrap falls.
    #[test]
    fn forward_step_is_greater(a in any::<u32>(), d in 1u32..0x8000_0000) {
        let b = a.wrapping_add(d);
        prop_assert!(seq::lt(a, b));
        prop_assert!(seq::le(a, b));
        prop_assert!(seq::gt(b, a));
        prop_assert!(seq::ge(b, a));
        prop_assert!(!seq::lt(b, a));
    }

    /// For distances below the 2^31 ambiguity point, exactly one ordering
    /// holds (RFC 793 comparisons are undefined at exactly 2^31 apart —
    /// both stacks keep windows far smaller, as TCP must).
    #[test]
    fn ordering_is_antisymmetric(a in any::<u32>(), d in 1u32..0x8000_0000) {
        let b = a.wrapping_add(d);
        prop_assert_ne!(seq::lt(a, b), seq::lt(b, a));
        prop_assert!(!(seq::gt(a, b) && seq::gt(b, a)));
    }

    /// Equality is reflexive and excludes strict orderings.
    #[test]
    fn equality_cases(a in any::<u32>()) {
        prop_assert!(seq::le(a, a));
        prop_assert!(seq::ge(a, a));
        prop_assert!(!seq::lt(a, a));
        prop_assert!(!seq::gt(a, a));
    }

    /// `sub` inverts `wrapping_add` exactly, across the wrap.
    #[test]
    fn sub_inverts_add(a in any::<u32>(), d in any::<u32>()) {
        prop_assert_eq!(seq::sub(a.wrapping_add(d), a), d);
    }

    /// `in_window(x, lo, len)` holds exactly for the `len` sequence
    /// numbers starting at `lo`, wherever the window wraps.
    #[test]
    fn window_membership_is_exact(
        lo in any::<u32>(),
        len in 1u32..0x8000_0000,
        probe in any::<u32>(),
    ) {
        // A point chosen inside is always in; the two boundary points
        // behave half-open.
        let inside = lo.wrapping_add(probe % len);
        prop_assert!(seq::in_window(inside, lo, len));
        prop_assert!(seq::in_window(lo, lo, len));
        prop_assert!(!seq::in_window(lo.wrapping_add(len), lo, len));
        // An arbitrary probe agrees with the distance definition.
        let member = seq::sub(probe, lo) < len;
        prop_assert_eq!(seq::in_window(probe, lo, len), member);
    }

    /// Transitivity within a window: if three points sit inside one
    /// half-ring window, their pairwise ordering by offset matches `lt`.
    #[test]
    fn ordering_matches_offsets_within_window(
        lo in any::<u32>(),
        mut offs in proptest::collection::vec(0u32..0x4000_0000, 3),
    ) {
        offs.sort_unstable();
        offs.dedup();
        let pts: Vec<u32> = offs.iter().map(|&o| lo.wrapping_add(o)).collect();
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                prop_assert!(seq::lt(pts[i], pts[j]), "offsets {offs:?} at base {lo}");
            }
        }
    }
}
