//! Whole-system determinism: identical seeds must reproduce identical
//! runs bit-for-bit, and different seeds must actually differ — the
//! property every regenerated figure depends on.

use std::net::Ipv4Addr;
use tas_repro::apps::echo::{Lifetime, RpcClient};
use tas_repro::apps::kv::{KvClient, KvLoad, KvServer};
use tas_repro::netsim::app::App;
use tas_repro::netsim::topo::{build_star, host_ip, HostSpec};
use tas_repro::netsim::{NetMsg, NicConfig, PortConfig};
use tas_repro::sim::{AgentId, Sim, SimTime};
use tas_repro::tas::{TasConfig, TasHost};

/// Runs a mixed workload (echo + KV clients against one TAS server) and
/// returns a fingerprint of everything observable.
fn fingerprint(seed: u64) -> Vec<u64> {
    let mut sim: Sim<NetMsg> = Sim::new(seed);
    let server_ip: Ipv4Addr = host_ip(0);
    let mut factory = move |sim: &mut Sim<NetMsg>, spec: HostSpec| -> AgentId {
        let app: Box<dyn App> = match spec.index {
            0 => Box::new(KvServer::new(7)),
            1 => Box::new(KvClient::new(server_ip, 7, 16, 1_000, KvLoad::Closed, seed)),
            _ => {
                let mut c = RpcClient::new(server_ip, 9, 4, 1, 64, Lifetime::Persistent);
                c.max_requests = 100;
                Box::new(c)
            }
        };
        let mut cfg = TasConfig::rpc_bench(2, 2);
        if spec.index == 0 {
            cfg = TasConfig::rpc_bench(2, 2);
        }
        sim.add_agent(Box::new(TasHost::new(
            spec.ip,
            spec.mac,
            spec.nic,
            cfg,
            spec.uplink,
            app,
        )))
    };
    let topo = build_star(
        &mut sim,
        3,
        |_| PortConfig::tengig(),
        |_| NicConfig::client_10g(1),
        &mut factory,
    );
    // The echo clients target port 9 which nobody serves: their SYNs are
    // dropped at the server — exercising the give-up path deterministically.
    for &h in &topo.hosts {
        sim.inject_timer(SimTime::ZERO, h, 0, 0);
    }
    sim.run_until(SimTime::from_ms(60));
    let server = sim.agent::<TasHost>(topo.hosts[0]);
    let kv = sim.agent::<TasHost>(topo.hosts[1]).app_as::<KvClient>();
    vec![
        sim.events_processed(),
        server.fp_stats().pkts_rx,
        server.fp_stats().acks_tx,
        server.fp_stats().bytes_rx,
        server.sp_stats().established,
        server.account().total_cycles(),
        kv.done,
        kv.latency.quantile(0.5),
        kv.latency.quantile(0.99),
        kv.latency.count(),
    ]
}

#[test]
fn identical_seeds_reproduce_bit_for_bit() {
    let a = fingerprint(1234);
    let b = fingerprint(1234);
    assert_eq!(a, b, "same seed must reproduce the run exactly");
    assert!(a[6] > 100, "the workload actually ran: {a:?}");
}

#[test]
fn different_seeds_differ() {
    let a = fingerprint(1);
    let b = fingerprint(2);
    assert_ne!(a, b, "different seeds must perturb the run (ISNs, zipf)");
}

/// Runs an echo workload through fault injectors on both directions and
/// returns a fingerprint including the injectors' own decision counters.
fn faulty_fingerprint(sim_seed: u64, fault_seed: u64) -> Vec<u64> {
    use tas_repro::netsim::{FaultSpec, Switch};
    let mut sim: Sim<NetMsg> = Sim::new(sim_seed);
    let server_ip: Ipv4Addr = host_ip(0);
    let nic_fault = FaultSpec::lossy(0.02, 0.01, 0.02, fault_seed);
    let port_fault = FaultSpec::lossy(0.02, 0.01, 0.02, fault_seed ^ 0xABCD);
    let mut factory = move |sim: &mut Sim<NetMsg>, spec: HostSpec| -> AgentId {
        let app: Box<dyn App> = if spec.index == 0 {
            Box::new(tas_repro::apps::echo::EchoServer::new(
                7,
                64,
                tas_repro::apps::echo::ServerMode::Echo,
                300,
            ))
        } else {
            let mut c = RpcClient::new(server_ip, 7, 1, 1, 64, Lifetime::Persistent);
            c.max_requests = 100;
            Box::new(c)
        };
        let mut nic = spec.nic;
        if spec.index == 1 {
            nic.tx_fault = nic_fault;
        }
        sim.add_agent(Box::new(TasHost::new(
            spec.ip,
            spec.mac,
            nic,
            TasConfig::rpc_bench(1, 1),
            spec.uplink,
            app,
        )))
    };
    let topo = build_star(
        &mut sim,
        2,
        move |i| {
            if i == 1 {
                PortConfig {
                    fault: port_fault,
                    ..PortConfig::tengig()
                }
            } else {
                PortConfig::tengig()
            }
        },
        |_| NicConfig::client_10g(1),
        &mut factory,
    );
    for &h in &topo.hosts {
        sim.inject_timer(SimTime::ZERO, h, 0, 0);
    }
    sim.run_until(SimTime::from_secs(2));
    let client = sim.agent::<TasHost>(topo.hosts[1]);
    let nic_snap = client.nic().tx_fault_snapshot();
    let port_snap = sim.agent::<Switch>(topo.switch).port_fault_snapshot(1);
    let server = sim.agent::<TasHost>(topo.hosts[0]);
    use tas_repro::sim::Scope;
    vec![
        sim.events_processed(),
        server.fp_stats().pkts_rx,
        server.fp_stats().bytes_rx,
        server.account().total_cycles(),
        client.app_as::<RpcClient>().done,
        nic_snap.counter("fault.seen", Scope::Global),
        nic_snap.counter("fault.dropped", Scope::Global),
        nic_snap.counter("fault.duplicated", Scope::Global),
        nic_snap.counter("fault.reordered", Scope::Global),
        nic_snap.counter("fault.jittered", Scope::Global),
        port_snap.counter("fault.seen", Scope::Global),
        port_snap.counter("fault.dropped", Scope::Global),
        port_snap.counter("fault.duplicated", Scope::Global),
        port_snap.counter("fault.reordered", Scope::Global),
    ]
}

/// Runs the standard echo pair on either stack and returns every
/// machine-readable artifact the observability layer derives from the
/// run: the fixed-cadence queue-depth series, the TAS utilization
/// series, and a bench report rendered to JSON. Two same-seed runs must
/// agree byte for byte — this is what makes `BENCH_*.json` files
/// diffable and the CI regression gate meaningful.
fn run_artifacts(seed: u64, reference: bool) -> String {
    use tas_bench::report::{Metric, Report};
    use tas_repro::apps::echo::{EchoServer, ServerMode};
    use tas_repro::baselines::{profiles, StackHost, StackHostConfig};
    let mut sim: Sim<NetMsg> = Sim::new(seed);
    let server_ip: Ipv4Addr = host_ip(0);
    let mut factory = move |sim: &mut Sim<NetMsg>, spec: HostSpec| -> AgentId {
        let app: Box<dyn App> = if spec.index == 0 {
            Box::new(EchoServer::new(7, 64, ServerMode::Echo, 300))
        } else {
            let mut c = RpcClient::new(server_ip, 7, 2, 1, 64, Lifetime::Persistent);
            c.max_requests = 400;
            Box::new(c)
        };
        if reference {
            sim.add_agent(Box::new(StackHost::new(
                spec.ip,
                spec.mac,
                spec.nic,
                profiles::linux(),
                StackHostConfig::linux(2),
                spec.uplink,
                app,
            )))
        } else {
            sim.add_agent(Box::new(TasHost::new(
                spec.ip,
                spec.mac,
                spec.nic,
                TasConfig::rpc_bench(1, 1),
                spec.uplink,
                app,
            )))
        }
    };
    let topo = build_star(
        &mut sim,
        2,
        |_| PortConfig::tengig(),
        |_| NicConfig::client_10g(1),
        &mut factory,
    );
    for &h in &topo.hosts {
        sim.inject_timer(SimTime::ZERO, h, 0, 0);
    }
    sim.run_until(SimTime::from_ms(80));
    let (series, latency, done) = if reference {
        let s = sim.agent::<StackHost>(topo.hosts[0]);
        let c = sim.agent::<StackHost>(topo.hosts[1]).app_as::<RpcClient>();
        (
            s.queue_series().render_text(),
            c.latency.clone(),
            c.done,
        )
    } else {
        let s = sim.agent::<TasHost>(topo.hosts[0]);
        let c = sim.agent::<TasHost>(topo.hosts[1]).app_as::<RpcClient>();
        (
            format!(
                "{}{}",
                s.util_series().render_text(),
                s.queue_series().render_text()
            ),
            c.latency.clone(),
            c.done,
        )
    };
    assert!(done > 0, "the echo workload must actually run");
    let mut rep = Report::new("determinism-probe", "Echo RPC determinism probe", seed);
    rep.param("reference", u64::from(reference));
    rep.push(Metric::quantiles("rpc_latency", "ns", &latency));
    rep.push(Metric::value("requests", "count", done as f64));
    format!("{series}\n{}", rep.to_json())
}

#[test]
fn same_seed_series_and_bench_reports_are_byte_identical() {
    for reference in [false, true] {
        let a = run_artifacts(4321, reference);
        let b = run_artifacts(4321, reference);
        assert_eq!(
            a, b,
            "series + report must be a pure function of the seed (reference={reference})"
        );
        assert!(a.contains("tas-bench-report-v1"), "schema header present");
    }
    assert_ne!(
        run_artifacts(4321, false),
        run_artifacts(4322, false),
        "a different seed must actually change the artifacts"
    );
}

#[test]
fn fault_injection_is_deterministic_end_to_end() {
    // Same seeds: byte-identical drop/dup/reorder trace — every injector
    // counter and every downstream metric must agree exactly.
    let a = faulty_fingerprint(77, 900);
    let b = faulty_fingerprint(77, 900);
    assert_eq!(a, b, "same seeds must reproduce the faulty run exactly");
    assert!(
        a[6] + a[11] > 0,
        "faults must actually have fired: {a:?}"
    );
    assert_eq!(a[4], 100, "the workload must complete under faults: {a:?}");
    // Different fault seed, same sim seed: the fault schedule (and thus
    // the run) must actually change.
    let c = faulty_fingerprint(77, 901);
    assert_ne!(a, c, "a different fault seed must perturb the schedule");
}
