//! Differential testing: the TAS stack against the reference `tas-tcp`
//! connection engine (driving the Linux-model baseline host), both run
//! under identical seeded fault schedules.
//!
//! The two implementations share nothing above the wire format, so
//! agreement is evidence, not tautology. For each scenario the runs must
//! agree on the delivered-byte frontier (every application byte arrives,
//! exactly once, on both stacks), on the retransmission story (a clean
//! network produces exactly zero retransmits on both; a faulty schedule
//! that drops packets forces both stacks to retransmit without
//! perturbing the frontier), and on the final flow state (the persistent
//! connection is still established on both sides, nothing leaked).

use std::net::Ipv4Addr;
use tas_repro::apps::echo::{EchoServer, Lifetime, RpcClient, ServerMode};
use tas_repro::baselines::{profiles, StackHost, StackHostConfig};
use tas_repro::netsim::app::App;
use tas_repro::netsim::topo::{build_star, host_ip, HostSpec};
use tas_repro::netsim::{DropModel, FaultSpec, NetMsg, NicConfig, PortConfig};
use tas_repro::sim::{AgentId, Scope, Sim, SimTime};
use tas_repro::tas::{TasConfig, TasHost};

const REQS: u64 = 100;
const REQ_SIZE: usize = 64;

/// What one run observed, reduced to the quantities both stacks must
/// agree on.
#[derive(Debug)]
struct Outcome {
    /// RPCs the client completed.
    done: u64,
    /// Bytes the server application consumed (`app.bytes_delivered`).
    server_bytes: u64,
    /// Bytes the client application consumed.
    client_bytes: u64,
    /// Total retransmissions the sender-side stack performed.
    retransmits: u64,
    /// Packets the injectors actually dropped.
    faults_dropped: u64,
    /// Live flows/connections on the server at the end of the run.
    live: i64,
    /// Connections the server established.
    established: u64,
}

fn scenario_faults(which: &str, seed: u64) -> (FaultSpec, FaultSpec) {
    match which {
        "clean" => (FaultSpec::none(), FaultSpec::none()),
        "uniform" => (
            FaultSpec::lossy(0.02, 0.01, 0.02, seed),
            FaultSpec::lossy(0.02, 0.01, 0.02, seed ^ 0xABCD),
        ),
        "bursty" => {
            let ge = DropModel::GilbertElliott {
                p_enter_bad: 0.02,
                p_exit_bad: 0.3,
                good_loss: 0.0,
                bad_loss: 0.3,
            };
            let mut a = FaultSpec::none();
            a.seed = seed;
            a.drop = ge;
            let mut b = FaultSpec::none();
            b.seed = seed ^ 0xABCD;
            b.drop = ge;
            (a, b)
        }
        other => panic!("unknown scenario {other}"),
    }
}

fn apps(spec_index: u32, server_ip: Ipv4Addr) -> Box<dyn App> {
    if spec_index == 0 {
        Box::new(EchoServer::new(7, REQ_SIZE, ServerMode::Echo, 300))
    } else {
        let mut c = RpcClient::new(server_ip, 7, 1, 1, REQ_SIZE, Lifetime::Persistent);
        c.max_requests = REQS;
        Box::new(c)
    }
}

/// Runs the echo workload on a pair of TAS hosts.
fn run_tas(which: &str, seed: u64) -> Outcome {
    let (nic_fault, port_fault) = scenario_faults(which, seed);
    let mut sim: Sim<NetMsg> = Sim::new(seed);
    let server_ip = host_ip(0);
    let mut factory = move |sim: &mut Sim<NetMsg>, spec: HostSpec| -> AgentId {
        let app = apps(spec.index, server_ip);
        let mut nic = spec.nic;
        if spec.index == 1 {
            nic.tx_fault = nic_fault;
        }
        sim.add_agent(Box::new(TasHost::new(
            spec.ip,
            spec.mac,
            nic,
            TasConfig::rpc_bench(1, 1),
            spec.uplink,
            app,
        )))
    };
    let topo = build_star(
        &mut sim,
        2,
        move |i| {
            if i == 1 {
                PortConfig {
                    fault: port_fault,
                    ..PortConfig::tengig()
                }
            } else {
                PortConfig::tengig()
            }
        },
        |_| NicConfig::client_10g(1),
        &mut factory,
    );
    for &h in &topo.hosts {
        sim.inject_timer(SimTime::ZERO, h, 0, 0);
    }
    sim.run_until(SimTime::from_secs(3));
    let server = sim.agent::<TasHost>(topo.hosts[0]);
    let client = sim.agent::<TasHost>(topo.hosts[1]);
    let ssnap = server.telemetry_snapshot();
    let csnap = client.telemetry_snapshot();
    Outcome {
        done: client.app_as::<RpcClient>().done,
        server_bytes: ssnap.counter("app.bytes_delivered", Scope::Global),
        client_bytes: csnap.counter("app.bytes_delivered", Scope::Global),
        retransmits: csnap.counter("fp.fast_rexmits", Scope::Global)
            + csnap.counter("sp.timeout_rexmits", Scope::Global)
            + csnap.counter("sp.handshake_rexmits", Scope::Global)
            + ssnap.counter("fp.fast_rexmits", Scope::Global)
            + ssnap.counter("sp.timeout_rexmits", Scope::Global)
            + ssnap.counter("sp.handshake_rexmits", Scope::Global),
        faults_dropped: csnap.counter("fault.dropped", Scope::Global)
            + sim
                .agent::<tas_repro::netsim::Switch>(topo.switch)
                .port_fault_snapshot(1)
                .counter("fault.dropped", Scope::Global),
        live: ssnap.gauge("flows.live", Scope::Global),
        established: ssnap.counter("sp.established", Scope::Global),
    }
}

/// Runs the identical workload and fault schedule on the reference
/// stack: `tas-tcp` connection engine inside the Linux-model host.
fn run_reference(which: &str, seed: u64) -> Outcome {
    let (nic_fault, port_fault) = scenario_faults(which, seed);
    let mut sim: Sim<NetMsg> = Sim::new(seed);
    let server_ip = host_ip(0);
    let mut factory = move |sim: &mut Sim<NetMsg>, spec: HostSpec| -> AgentId {
        let app = apps(spec.index, server_ip);
        let mut nic = spec.nic;
        if spec.index == 1 {
            nic.tx_fault = nic_fault;
        }
        sim.add_agent(Box::new(StackHost::new(
            spec.ip,
            spec.mac,
            nic,
            profiles::linux(),
            StackHostConfig::linux(2),
            spec.uplink,
            app,
        )))
    };
    let topo = build_star(
        &mut sim,
        2,
        move |i| {
            if i == 1 {
                PortConfig {
                    fault: port_fault,
                    ..PortConfig::tengig()
                }
            } else {
                PortConfig::tengig()
            }
        },
        |_| NicConfig::client_10g(1),
        &mut factory,
    );
    for &h in &topo.hosts {
        sim.inject_timer(SimTime::ZERO, h, 0, 0);
    }
    sim.run_until(SimTime::from_secs(3));
    let server = sim.agent::<StackHost>(topo.hosts[0]);
    let client = sim.agent::<StackHost>(topo.hosts[1]);
    let ssnap = server.telemetry_snapshot();
    let csnap = client.telemetry_snapshot();
    Outcome {
        done: client.app_as::<RpcClient>().done,
        server_bytes: ssnap.counter("app.bytes_delivered", Scope::Global),
        client_bytes: csnap.counter("app.bytes_delivered", Scope::Global),
        retransmits: csnap.counter("tcp.retransmits", Scope::Global)
            + ssnap.counter("tcp.retransmits", Scope::Global),
        faults_dropped: csnap.counter("fault.dropped", Scope::Global)
            + sim
                .agent::<tas_repro::netsim::Switch>(topo.switch)
                .port_fault_snapshot(1)
                .counter("fault.dropped", Scope::Global),
        live: ssnap.gauge("conns.live", Scope::Global),
        established: ssnap.counter("host.established", Scope::Global),
    }
}

fn check_agreement(which: &str, tas: &Outcome, reference: &Outcome) {
    let expect = REQS * REQ_SIZE as u64;
    // Delivered-byte frontier: all bytes arrive on both stacks, exactly
    // once, in both directions.
    assert_eq!(tas.done, REQS, "[{which}] TAS client must finish: {tas:?}");
    assert_eq!(
        reference.done, REQS,
        "[{which}] reference client must finish: {reference:?}"
    );
    assert_eq!(
        (tas.server_bytes, tas.client_bytes),
        (expect, expect),
        "[{which}] TAS delivered-byte frontier: {tas:?}"
    );
    assert_eq!(
        (reference.server_bytes, reference.client_bytes),
        (expect, expect),
        "[{which}] reference delivered-byte frontier: {reference:?}"
    );
    // Final flow state: the persistent connection survives on both, and
    // exactly one connection was ever established.
    assert_eq!(
        (tas.live, tas.established),
        (reference.live, reference.established),
        "[{which}] final flow state must agree: {tas:?} vs {reference:?}"
    );
    // Retransmission story.
    if which == "clean" {
        assert_eq!(
            (tas.retransmits, tas.faults_dropped),
            (0, 0),
            "[{which}] clean network: TAS must not retransmit: {tas:?}"
        );
        assert_eq!(
            (reference.retransmits, reference.faults_dropped),
            (0, 0),
            "[{which}] clean network: reference must not retransmit: {reference:?}"
        );
    } else {
        // The injectors draw per packet, so the exact drop positions
        // differ between stacks; what must agree is the predicate: the
        // schedule fired on both runs, both stacks recovered by
        // retransmitting, and the frontier (asserted above) is intact.
        assert!(
            tas.faults_dropped > 0 && reference.faults_dropped > 0,
            "[{which}] schedule must actually drop: {tas:?} vs {reference:?}"
        );
        assert!(
            tas.retransmits > 0,
            "[{which}] TAS must have retransmitted: {tas:?}"
        );
        assert!(
            reference.retransmits > 0,
            "[{which}] reference must have retransmitted: {reference:?}"
        );
    }
}

#[test]
fn differential_clean_network() {
    let tas = run_tas("clean", 42);
    let reference = run_reference("clean", 42);
    check_agreement("clean", &tas, &reference);
}

#[test]
fn differential_uniform_loss() {
    let tas = run_tas("uniform", 77);
    let reference = run_reference("uniform", 77);
    check_agreement("uniform", &tas, &reference);
}

#[test]
fn differential_bursty_loss() {
    let tas = run_tas("bursty", 91);
    let reference = run_reference("bursty", 91);
    check_agreement("bursty", &tas, &reference);
}

#[test]
fn differential_outcomes_are_reproducible() {
    // The differential harness itself must be deterministic, or a
    // disagreement would not be actionable.
    for which in ["clean", "uniform"] {
        let a = run_tas(which, 7);
        let b = run_tas(which, 7);
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "[{which}] TAS outcome must reproduce"
        );
        let c = run_reference(which, 7);
        let d = run_reference(which, 7);
        assert_eq!(
            format!("{c:?}"),
            format!("{d:?}"),
            "[{which}] reference outcome must reproduce"
        );
    }
}
