//! Property tests for receive-side scaling.
//!
//! The Toeplitz hash is a linear code: `H(a ⊕ b) = H(a) ⊕ H(b)` for
//! equal-length inputs. This is the construction's defining property —
//! the MSDN known-answer vectors (unit tests) pin the key schedule, and
//! linearity pins the bit-mixing for *all* inputs at once.

use proptest::prelude::*;
use tas_repro::netsim::rss::{toeplitz_hash, RssTable, RSS_TABLE_SIZE, TOEPLITZ_KEY};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Toeplitz is linear over GF(2): hashing the XOR of two tuples
    /// equals the XOR of their hashes.
    #[test]
    fn toeplitz_is_linear(a in any::<[u8; 12]>(), b in any::<[u8; 12]>()) {
        let xored: Vec<u8> = a.iter().zip(b.iter()).map(|(x, y)| x ^ y).collect();
        prop_assert_eq!(
            toeplitz_hash(&TOEPLITZ_KEY, &xored),
            toeplitz_hash(&TOEPLITZ_KEY, &a) ^ toeplitz_hash(&TOEPLITZ_KEY, &b)
        );
    }

    /// The zero input hashes to zero (linearity's identity), and a single
    /// set bit selects exactly one 32-bit key window.
    #[test]
    fn toeplitz_single_bit_windows(bit in 0usize..96) {
        prop_assert_eq!(toeplitz_hash(&TOEPLITZ_KEY, &[0u8; 12]), 0);
        let mut input = [0u8; 12];
        input[bit / 8] = 1 << (7 - bit % 8);
        // The window for bit i is key bits [i, i+32).
        let mut want: u32 = 0;
        for k in 0..32 {
            let idx = bit + k;
            let key_bit = TOEPLITZ_KEY[idx / 8] >> (7 - idx % 8) & 1;
            want = (want << 1) | key_bit as u32;
        }
        prop_assert_eq!(toeplitz_hash(&TOEPLITZ_KEY, &input), want);
    }

    /// After any sequence of rebalances the table references exactly the
    /// first `active` queues, spread evenly (entry counts differ by at
    /// most one) — the eager steering invariant of §3.4.
    #[test]
    fn rebalance_is_even_and_exact(
        initial in 1usize..16,
        steps in proptest::collection::vec(1usize..16, 1..8),
    ) {
        let mut t = RssTable::new(initial);
        let mut active = initial;
        for a in steps {
            t.rebalance(a);
            active = a;
        }
        prop_assert_eq!(t.active_queues(), active.min(RSS_TABLE_SIZE));
        let mut counts = vec![0usize; active];
        for h in 0..RSS_TABLE_SIZE as u32 {
            let q = t.queue_for_hash(h);
            prop_assert!(q < active, "stale queue {q} after rebalance({active})");
            counts[q] += 1;
        }
        let (min, max) = (
            counts.iter().min().copied().unwrap_or(0),
            counts.iter().max().copied().unwrap_or(0),
        );
        prop_assert!(max - min <= 1, "uneven spread: {counts:?}");
    }
}
