//! Tier-1 gate: the workspace must be clean under the determinism lint
//! (`tas-lint`, rules R1–R6, configured by the repo's `lint.toml`).
//!
//! This is the same scan CI's `lint` job runs via the binary; keeping
//! it in the default test suite means a plain `cargo test` catches a
//! reintroduced HashMap iteration or fast-path unwrap before review.

use std::path::Path;

#[test]
fn workspace_is_lint_clean_at_deny() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = tas_lint::run(root).expect("lint scan runs");
    assert!(
        report.files_scanned > 50,
        "scan saw only {} files — exclusion globs are eating the tree",
        report.files_scanned
    );
    assert!(
        report.clean(),
        "deny-level lint findings:\n{}",
        tas_lint::render_text(&report)
    );
}

#[test]
fn workspace_report_is_deterministic_in_process() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let a = tas_lint::run(root).expect("first scan");
    let b = tas_lint::run(root).expect("second scan");
    assert_eq!(
        tas_lint::render_json(&a),
        tas_lint::render_json(&b),
        "same tree, same config — the report must be byte-identical"
    );
}
