//! Tier-1 gate: the workspace must be clean under the determinism lint
//! (`tas-lint`, rules R1–R8, configured by the repo's `lint.toml`).
//!
//! This is the same scan CI's `lint` job runs via the binary; keeping
//! it in the default test suite means a plain `cargo test` catches a
//! reintroduced HashMap iteration or fast-path unwrap before review.

use std::path::Path;

#[test]
fn workspace_is_lint_clean_at_deny() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = tas_lint::run(root).expect("lint scan runs");
    assert!(
        report.files_scanned > 50,
        "scan saw only {} files — exclusion globs are eating the tree",
        report.files_scanned
    );
    assert!(
        report.clean(),
        "deny-level lint findings:\n{}",
        tas_lint::render_text(&report)
    );
}

#[test]
fn workspace_report_is_deterministic_in_process() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let a = tas_lint::run(root).expect("first scan");
    let b = tas_lint::run(root).expect("second scan");
    assert_eq!(
        tas_lint::render_json(&a),
        tas_lint::render_json(&b),
        "same tree, same config — the report must be byte-identical"
    );
}

#[test]
fn every_crate_source_file_is_scoped_or_explicitly_unscoped() {
    // Catalog-coverage self-check: each `.rs` file under `crates/*/src`
    // must fall inside at least one rule's path scope, an `exclude`
    // prefix, or the explicit allowlist below — so a new crate cannot
    // silently dodge the rule catalog. (R6 is whole-workspace and would
    // make the check vacuous, so only rules with a non-empty scope
    // count.)
    const ALLOWED_UNSCOPED: &[&str] = &[
        // The linter itself names every banned identifier in its rule
        // tables; scoping any ident rule over it would be self-defeating.
        "crates/lint/src/",
        // IS the trace/profile implementation R5/R7 police the rest of
        // the workspace for.
        "crates/telemetry/src/",
    ];
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let toml = std::fs::read_to_string(root.join("lint.toml")).expect("lint.toml");
    let cfg = tas_lint::config::parse(&toml).expect("lint.toml parses");
    let scopes: Vec<&str> = cfg
        .rules
        .values()
        .flat_map(|r| r.paths.iter())
        .map(String::as_str)
        .collect();
    assert!(!scopes.is_empty(), "rules lost their path scopes");

    let mut unscoped = Vec::new();
    let mut stack = vec![root.join("crates")];
    while let Some(dir) = stack.pop() {
        let entries = std::fs::read_dir(&dir).expect("readable tree");
        for entry in entries {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                stack.push(path);
                continue;
            }
            let rel = path
                .strip_prefix(root)
                .expect("under root")
                .to_str()
                .expect("utf-8 path")
                .replace('\\', "/");
            // Only library sources: tests/fixtures/benches of each crate
            // are covered by include_test_code rules where it matters.
            let in_src = rel
                .split('/')
                .nth(2)
                .map(|seg| seg == "src")
                .unwrap_or(false);
            if !in_src || !rel.ends_with(".rs") {
                continue;
            }
            let covered = scopes.iter().any(|s| rel.starts_with(s))
                || cfg.exclude.iter().any(|e| rel.starts_with(e.as_str()))
                || ALLOWED_UNSCOPED.iter().any(|a| rel.starts_with(a));
            if !covered {
                unscoped.push(rel);
            }
        }
    }
    unscoped.sort();
    assert!(
        unscoped.is_empty(),
        "source files outside every rule scope — add them to lint.toml \
         or to ALLOWED_UNSCOPED with a reason:\n{}",
        unscoped.join("\n")
    );
}
