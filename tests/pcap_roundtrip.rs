//! Pcap round-trip: a traced end-to-end run is exported through the
//! `tas-proto` wire codec into a classic pcap, parsed back, and every
//! frame is re-decoded — `wire::parse` verifies both the IP and the TCP
//! pseudo-header checksum, so a successful round trip proves the capture
//! is byte-exact Wireshark-readable output of what crossed the wire.
#![cfg(feature = "trace")]

use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use tas_repro::apps::echo::{EchoServer, Lifetime, RpcClient, ServerMode};
use tas_repro::netsim::app::App;
use tas_repro::netsim::topo::{build_star, host_ip, HostSpec};
use tas_repro::netsim::{NetMsg, NicConfig, PortConfig};
use tas_repro::proto::{wire, Segment, TcpFlags};
use tas_repro::sim::{AgentId, Sim, SimTime};
use tas_repro::tas::{TasConfig, TasHost};
use tas_repro::telemetry::{self, pcap, TraceEvent, TraceRecord};

/// Runs a clean seeded echo workload with the recorder on and returns
/// the trace.
fn traced_run(seed: u64) -> Vec<TraceRecord> {
    telemetry::start(1 << 16);
    let mut sim: Sim<NetMsg> = Sim::new(seed);
    let server_ip = host_ip(0);
    let mut factory = move |sim: &mut Sim<NetMsg>, spec: HostSpec| -> AgentId {
        let app: Box<dyn App> = if spec.index == 0 {
            Box::new(EchoServer::new(7, 64, ServerMode::Echo, 300))
        } else {
            let mut c = RpcClient::new(server_ip, 7, 1, 1, 64, Lifetime::Persistent);
            c.max_requests = 50;
            Box::new(c)
        };
        sim.add_agent(Box::new(TasHost::new(
            spec.ip,
            spec.mac,
            spec.nic,
            TasConfig::rpc_bench(1, 1),
            spec.uplink,
            app,
        )))
    };
    let topo = build_star(
        &mut sim,
        2,
        |_| PortConfig::tengig(),
        |_| NicConfig::client_10g(1),
        &mut factory,
    );
    for &h in &topo.hosts {
        sim.inject_timer(SimTime::ZERO, h, 0, 0);
    }
    sim.run_until(SimTime::from_ms(100));
    assert_eq!(
        sim.agent::<TasHost>(topo.hosts[1]).app_as::<RpcClient>().done,
        50,
        "workload must complete"
    );
    let records = telemetry::take();
    telemetry::stop();
    records
}

/// The segments the trace says went on the wire, in capture order.
fn wire_segments(records: &[TraceRecord]) -> Vec<(SimTime, &Segment)> {
    records
        .iter()
        .filter(|r| r.site == "nic")
        .filter_map(|r| match &r.ev {
            TraceEvent::SegTx { seg } | TraceEvent::SegRx { seg } => Some((r.t, seg.as_ref())),
            _ => None,
        })
        .collect()
}

#[test]
fn pcap_export_round_trips_through_the_wire_codec() {
    let records = traced_run(4242);
    let originals = wire_segments(&records);
    assert!(
        originals.len() > 100,
        "a 50-RPC run crosses the wire a few hundred times, got {}",
        originals.len()
    );

    let bytes = pcap::from_records(&records, |s| s == "nic");
    let pkts = pcap::parse(&bytes).expect("capture parses");
    assert_eq!(pkts.len(), originals.len(), "one pcap record per segment");

    for (pkt, (t, orig)) in pkts.iter().zip(&originals) {
        // Timestamps survive at nanosecond pcap resolution.
        assert_eq!(pkt.t.as_nanos(), t.as_nanos());
        // wire::parse verifies the IP header checksum and the TCP
        // pseudo-header checksum before returning.
        let back = wire::parse(&pkt.frame).expect("frame decodes with valid checksums");
        // Everything observable survives: addressing, sequence space,
        // flags, ECN codepoint, payload bytes.
        assert_eq!(back.ip.src, orig.ip.src);
        assert_eq!(back.ip.dst, orig.ip.dst);
        assert_eq!(back.ip.ecn, orig.ip.ecn, "ECN codepoint must survive");
        assert_eq!(back.tcp.src_port, orig.tcp.src_port);
        assert_eq!(back.tcp.dst_port, orig.tcp.dst_port);
        assert_eq!(back.tcp.seq, orig.tcp.seq);
        assert_eq!(back.tcp.ack, orig.tcp.ack);
        assert_eq!(back.tcp.flags, orig.tcp.flags);
        assert_eq!(back.tcp.options.timestamp, orig.tcp.options.timestamp);
        assert_eq!(back.payload, orig.payload);
    }
}

#[test]
fn pcap_capture_is_ordered_and_coherent_per_flow() {
    let records = traced_run(777);
    let bytes = pcap::from_records(&records, |s| s == "nic");
    let pkts = pcap::parse(&bytes).expect("capture parses");

    // Capture order is simulated-time order.
    for w in pkts.windows(2) {
        assert!(w[0].t <= w[1].t, "capture timestamps must be monotone");
    }

    // On a clean network nothing is retransmitted, so within each
    // direction of each flow the sequence numbers never rewind.
    let mut last_seq: BTreeMap<(Ipv4Addr, u16, Ipv4Addr, u16), u32> = BTreeMap::new();
    let mut flows = 0usize;
    for pkt in &pkts {
        let seg = wire::parse(&pkt.frame).expect("frame decodes");
        let key = (seg.ip.src, seg.tcp.src_port, seg.ip.dst, seg.tcp.dst_port);
        match last_seq.get(&key) {
            None => {
                flows += 1;
                assert!(
                    seg.tcp.flags.contains(TcpFlags::SYN),
                    "a flow's first wire segment is its SYN: {key:?}"
                );
            }
            Some(&prev) => assert!(
                seg.tcp.seq.wrapping_sub(prev) < u32::MAX / 2,
                "seq rewound on clean network for {key:?}: {prev} -> {}",
                seg.tcp.seq
            ),
        }
        last_seq.insert(key, seg.tcp.seq);
    }
    assert_eq!(flows, 2, "one persistent connection, two directions");
}

#[test]
fn pcap_export_is_deterministic() {
    // Same seed, two runs: byte-identical captures. Different seed: the
    // capture actually changes (ISNs and timestamps differ).
    let a = pcap::from_records(&traced_run(9), |s| s == "nic");
    let b = pcap::from_records(&traced_run(9), |s| s == "nic");
    assert_eq!(a, b, "same seed must produce a byte-identical capture");
    let c = pcap::from_records(&traced_run(10), |s| s == "nic");
    assert_ne!(a, c, "a different seed must perturb the capture");
}
