//! Cross-stack interoperation matrix: every stack pair must complete the
//! echo workload with intact payloads — the strong form of the paper's
//! Table 4 claim ("TAS is fully compatible with existing TCP peers").

use std::net::Ipv4Addr;
use tas_repro::apps::echo::{EchoServer, Lifetime, RpcClient, ServerMode};
use tas_repro::baselines::{profiles, StackHost, StackHostConfig};
use tas_repro::netsim::app::App;
use tas_repro::netsim::topo::{build_star, host_ip, HostSpec};
use tas_repro::netsim::{NetMsg, NicConfig, PortConfig};
use tas_repro::sim::{AgentId, Sim, SimTime};
use tas_repro::tas::{TasConfig, TasHost};

#[derive(Clone, Copy, PartialEq, Debug)]
enum Kind {
    Tas,
    Linux,
    Ix,
    Mtcp,
    /// MPK dataplane (design-space baseline, DESIGN.md §15): exercised
    /// as a smoke cell against TAS, not in the full 16-pair sweep.
    Mpk,
}

const ALL: [Kind; 4] = [Kind::Tas, Kind::Linux, Kind::Ix, Kind::Mtcp];

fn make(sim: &mut Sim<NetMsg>, spec: HostSpec, kind: Kind, app: Box<dyn App>) -> AgentId {
    match kind {
        Kind::Tas => sim.add_agent(Box::new(TasHost::new(
            spec.ip,
            spec.mac,
            spec.nic,
            TasConfig::rpc_bench(2, 2),
            spec.uplink,
            app,
        ))),
        Kind::Linux => sim.add_agent(Box::new(StackHost::new(
            spec.ip,
            spec.mac,
            spec.nic,
            profiles::linux(),
            StackHostConfig::linux(2),
            spec.uplink,
            app,
        ))),
        Kind::Ix => sim.add_agent(Box::new(StackHost::new(
            spec.ip,
            spec.mac,
            spec.nic,
            profiles::ix(),
            StackHostConfig::ix(2),
            spec.uplink,
            app,
        ))),
        Kind::Mtcp => sim.add_agent(Box::new(StackHost::new(
            spec.ip,
            spec.mac,
            spec.nic,
            profiles::mtcp(),
            StackHostConfig::mtcp(3, 1),
            spec.uplink,
            app,
        ))),
        Kind::Mpk => sim.add_agent(Box::new(StackHost::new(
            spec.ip,
            spec.mac,
            spec.nic,
            profiles::mpk(),
            StackHostConfig::mpk(2),
            spec.uplink,
            app,
        ))),
    }
}

fn client_done(sim: &Sim<NetMsg>, id: AgentId, kind: Kind) -> u64 {
    match kind {
        Kind::Tas => sim.agent::<TasHost>(id).app_as::<RpcClient>().done,
        _ => sim.agent::<StackHost>(id).app_as::<RpcClient>().done,
    }
}

#[test]
fn all_sixteen_stack_pairs_interoperate() {
    for (si, server) in ALL.into_iter().enumerate() {
        for (ci, client) in ALL.into_iter().enumerate() {
            let seed = (si * 4 + ci) as u64 + 1;
            let mut sim: Sim<NetMsg> = Sim::new(seed);
            let server_ip: Ipv4Addr = host_ip(0);
            let mut factory = move |sim: &mut Sim<NetMsg>, spec: HostSpec| -> AgentId {
                if spec.index == 0 {
                    let app: Box<dyn App> =
                        Box::new(EchoServer::new(7, 128, ServerMode::Echo, 200));
                    make(sim, spec, server, app)
                } else {
                    let mut c = RpcClient::new(server_ip, 7, 2, 1, 128, Lifetime::Persistent);
                    c.max_requests = 60;
                    make(sim, spec, client, Box::new(c))
                }
            };
            let topo = build_star(
                &mut sim,
                2,
                |_| PortConfig::tengig(),
                |_| NicConfig::client_10g(1),
                &mut factory,
            );
            for &h in &topo.hosts {
                sim.inject_timer(SimTime::ZERO, h, 0, 0);
            }
            sim.run_until(SimTime::from_secs(1));
            assert_eq!(
                client_done(&sim, topo.hosts[1], client),
                60,
                "{server:?} server with {client:?} client failed"
            );
        }
    }
}

#[test]
fn interop_survives_loss() {
    // TAS server, Linux client, 1% loss on the client NIC: recovery paths
    // of both stacks must cooperate.
    let mut sim: Sim<NetMsg> = Sim::new(77);
    let server_ip: Ipv4Addr = host_ip(0);
    let mut factory = move |sim: &mut Sim<NetMsg>, spec: HostSpec| -> AgentId {
        if spec.index == 0 {
            let app: Box<dyn App> = Box::new(EchoServer::new(7, 64, ServerMode::Echo, 200));
            make(sim, spec, Kind::Tas, app)
        } else {
            let mut c = RpcClient::new(server_ip, 7, 4, 1, 64, Lifetime::Persistent);
            c.max_requests = 200;
            let mut nic = spec.nic.clone();
            // Seed 0 derives the stream from the device id — the exact
            // schedule the legacy `tx_loss` shim produced.
            nic.tx_fault = tas_repro::netsim::FaultSpec::uniform_loss(0.01, 0);
            let spec = HostSpec { nic, ..spec };
            make(sim, spec, Kind::Linux, Box::new(c))
        }
    };
    let topo = build_star(
        &mut sim,
        2,
        |_| PortConfig::tengig(),
        |_| NicConfig::client_10g(1),
        &mut factory,
    );
    for &h in &topo.hosts {
        sim.inject_timer(SimTime::ZERO, h, 0, 0);
    }
    sim.run_until(SimTime::from_secs(10));
    assert_eq!(
        client_done(&sim, topo.hosts[1], Kind::Linux),
        200,
        "lossy interop must still complete all RPCs"
    );
}

#[test]
fn mpk_and_tas_smoke_cell_interoperates_both_directions() {
    // The MPK-dataplane baseline (DESIGN.md §15) rides the same wire
    // format; a smoke cell in each direction keeps the design-space
    // models honest against the real stack without quintupling the
    // full matrix sweep.
    for (seed, server, client) in [(21u64, Kind::Mpk, Kind::Tas), (22, Kind::Tas, Kind::Mpk)] {
        let mut sim: Sim<NetMsg> = Sim::new(seed);
        let server_ip: Ipv4Addr = host_ip(0);
        let mut factory = move |sim: &mut Sim<NetMsg>, spec: HostSpec| -> AgentId {
            if spec.index == 0 {
                let app: Box<dyn App> = Box::new(EchoServer::new(7, 128, ServerMode::Echo, 200));
                make(sim, spec, server, app)
            } else {
                let mut c = RpcClient::new(server_ip, 7, 2, 1, 128, Lifetime::Persistent);
                c.max_requests = 60;
                make(sim, spec, client, Box::new(c))
            }
        };
        let topo = build_star(
            &mut sim,
            2,
            |_| PortConfig::tengig(),
            |_| NicConfig::client_10g(1),
            &mut factory,
        );
        for &h in &topo.hosts {
            sim.inject_timer(SimTime::ZERO, h, 0, 0);
        }
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(
            client_done(&sim, topo.hosts[1], client),
            60,
            "{server:?} server with {client:?} client failed"
        );
    }
}
