//! Robustness fuzzing: arbitrary (including malformed) segments fired at
//! live hosts and connections must never panic or corrupt state. A
//! network stack's first property is surviving hostile input.

use proptest::prelude::*;
use std::net::Ipv4Addr;
use tas_repro::apps::echo::{EchoServer, ServerMode};
use tas_repro::baselines::{profiles, StackHost, StackHostConfig};
use tas_repro::netsim::app::App;
use tas_repro::netsim::topo::{build_star, host_ip, HostSpec};
use tas_repro::netsim::{NetMsg, NicConfig, PortConfig};
use tas_repro::proto::{Ecn, MacAddr, Segment, TcpFlags, TcpHeader};
use tas_repro::sim::{AgentId, Sim, SimTime};
use tas_repro::tas::{TasConfig, TasHost};

fn arb_hostile_segment() -> impl Strategy<Value = Segment> {
    (
        any::<u16>(),                                   // src port
        prop_oneof![Just(7u16), Just(9), any::<u16>()], // dst port (often the listener)
        any::<u32>(),                                   // seq
        any::<u32>(),                                   // ack
        any::<u8>(),                                    // flags
        any::<u16>(),                                   // window
        proptest::option::of(any::<(u32, u32)>()),      // ts
        0u8..=3,                                        // ecn
        proptest::collection::vec(any::<u8>(), 0..200),
        any::<bool>(), // fragment bit
    )
        .prop_map(|(sp, dp, seq, ack, flags, win, ts, ecn, payload, frag)| {
            let mut h = TcpHeader::new(sp, dp, seq, ack, TcpFlags(flags));
            h.window = win;
            h.options.timestamp = ts;
            let mut seg = Segment::tcp(
                MacAddr::for_host(9),
                MacAddr::for_host(1),
                Ipv4Addr::new(10, 0, 0, 9),
                host_ip(0),
                h,
                payload,
                false,
            );
            seg.ip.ecn = Ecn::from_bits(ecn);
            seg.ip.more_fragments = frag;
            seg
        })
}

fn build_tas() -> (Sim<NetMsg>, AgentId) {
    let mut sim: Sim<NetMsg> = Sim::new(11);
    let mut factory = |sim: &mut Sim<NetMsg>, spec: HostSpec| -> AgentId {
        let app: Box<dyn App> = Box::new(EchoServer::new(7, 64, ServerMode::Echo, 100));
        sim.add_agent(Box::new(TasHost::new(
            spec.ip,
            spec.mac,
            spec.nic,
            TasConfig::rpc_bench(2, 2),
            spec.uplink,
            app,
        )))
    };
    let topo = build_star(
        &mut sim,
        1,
        |_| PortConfig::tengig(),
        |_| NicConfig::client_10g(1),
        &mut factory,
    );
    sim.inject_timer(SimTime::ZERO, topo.hosts[0], 0, 0);
    sim.run_until(SimTime::from_us(100));
    (sim, topo.hosts[0])
}

fn build_linux() -> (Sim<NetMsg>, AgentId) {
    let mut sim: Sim<NetMsg> = Sim::new(12);
    let mut factory = |sim: &mut Sim<NetMsg>, spec: HostSpec| -> AgentId {
        let app: Box<dyn App> = Box::new(EchoServer::new(7, 64, ServerMode::Echo, 100));
        sim.add_agent(Box::new(StackHost::new(
            spec.ip,
            spec.mac,
            spec.nic,
            profiles::linux(),
            StackHostConfig::linux(2),
            spec.uplink,
            app,
        )))
    };
    let topo = build_star(
        &mut sim,
        1,
        |_| PortConfig::tengig(),
        |_| NicConfig::client_10g(1),
        &mut factory,
    );
    sim.inject_timer(SimTime::ZERO, topo.hosts[0], 0, 0);
    sim.run_until(SimTime::from_us(100));
    (sim, topo.hosts[0])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// A TAS host fed arbitrary garbage (SYN floods, bogus ACKs, random
    /// flags, fragments) keeps running and never panics.
    #[test]
    fn tas_host_survives_garbage(segs in proptest::collection::vec(arb_hostile_segment(), 1..40)) {
        let (mut sim, host) = build_tas();
        let mut t = SimTime::from_us(200);
        for seg in segs {
            sim.inject_msg(t, 0, host, NetMsg::Packet(seg));
            t += SimTime::from_us(3);
        }
        // Let retries, control loops, and teardowns churn.
        sim.run_until(t + SimTime::from_ms(50));
        let h = sim.agent::<TasHost>(host);
        // Sanity: state is still consistent enough to accept a real SYN.
        prop_assert!(h.sp_stats().exceptions > 0);
    }

    /// Same for a Linux-model host.
    #[test]
    fn linux_host_survives_garbage(segs in proptest::collection::vec(arb_hostile_segment(), 1..40)) {
        let (mut sim, host) = build_linux();
        let mut t = SimTime::from_us(200);
        for seg in segs {
            sim.inject_msg(t, 0, host, NetMsg::Packet(seg));
            t += SimTime::from_us(3);
        }
        sim.run_until(t + SimTime::from_ms(50));
        let _ = sim.agent::<StackHost>(host).telemetry_snapshot();
    }

    /// A live TcpConn fed arbitrary segments never panics and keeps its
    /// sequence bookkeeping self-consistent.
    #[test]
    fn tcp_conn_survives_garbage(segs in proptest::collection::vec(arb_hostile_segment(), 1..60)) {
        use tas_repro::tcp::{EndpointInfo, TcpConfig, TcpConn};
        let a = EndpointInfo { ip: Ipv4Addr::new(10, 0, 0, 1), port: 80, mac: MacAddr::for_host(1) };
        let b = EndpointInfo { ip: Ipv4Addr::new(10, 0, 0, 9), port: 999, mac: MacAddr::for_host(9) };
        let mut conn = TcpConn::connect(SimTime::from_us(1), TcpConfig::default(), a, b, 42);
        conn.take_outgoing();
        let mut t = SimTime::from_us(10);
        for seg in segs {
            conn.on_segment(t, seg);
            conn.take_outgoing();
            conn.take_events();
            if let Some(d) = conn.next_timer() {
                if d <= t {
                    conn.on_timer(t);
                }
            }
            t += SimTime::from_us(7);
        }
        conn.send(b"still alive");
        conn.poll(t);
        // Bookkeeping invariant: in-flight never exceeds what was buffered.
        prop_assert!(conn.in_flight() as usize <= 256 * 1024);
    }
}

proptest! {
    // Full e2e sims per case: keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A live RPC workload pushed through a corruption-enabled fault
    /// injector — seeded drops, duplicates, reordering, and header AND
    /// payload bit-flips in both directions — must never panic the hosts,
    /// the reference TCP engine, or the invariant auditors.
    #[test]
    fn stacks_survive_corrupting_fault_injector(seed in any::<u64>(), corrupt_pm in 0u32..100) {
        use tas_repro::apps::echo::{Lifetime, RpcClient};
        use tas_repro::netsim::{DropModel, FaultSpec};
        let spec = FaultSpec {
            seed: seed | 1,
            drop: DropModel::Uniform(0.02),
            dup_prob: 0.01,
            reorder_prob: 0.02,
            reorder_window: 2,
            jitter: SimTime::from_ns(500),
            corrupt_prob: corrupt_pm as f64 / 1000.0,
            corrupt_payload: true,
        };
        let mut sim: Sim<NetMsg> = Sim::new(seed);
        let server_ip = host_ip(0);
        let mut factory = move |sim: &mut Sim<NetMsg>, spec_h: HostSpec| -> AgentId {
            let app: Box<dyn App> = if spec_h.index == 0 {
                Box::new(EchoServer::new(7, 64, ServerMode::Echo, 300))
            } else {
                let mut c = RpcClient::new(server_ip, 7, 1, 1, 64, Lifetime::Persistent);
                c.max_requests = 50;
                Box::new(c)
            };
            let mut nic = spec_h.nic;
            if spec_h.index == 1 {
                nic.tx_fault = spec;
            }
            sim.add_agent(Box::new(StackHost::new(
                spec_h.ip,
                spec_h.mac,
                nic,
                profiles::linux(),
                StackHostConfig::linux(2),
                spec_h.uplink,
                app,
            )))
        };
        let topo = build_star(
            &mut sim,
            2,
            |i| if i == 0 {
                PortConfig { fault: spec, ..PortConfig::tengig() }
            } else {
                PortConfig::tengig()
            },
            |_| NicConfig::client_10g(1),
            &mut factory,
        );
        for &h in &topo.hosts {
            sim.inject_timer(SimTime::ZERO, h, 0, 0);
        }
        sim.run_until(SimTime::from_ms(100));
        // Survival is the property; also confirm the injector was live and
        // the hosts are still coherent enough to report state.
        let nic_snap = sim.agent::<StackHost>(topo.hosts[1]).nic().tx_fault_snapshot();
        prop_assert!(
            nic_snap.counter("fault.seen", tas_repro::sim::Scope::Global) > 0,
            "injector must have seen traffic"
        );
        let _ = sim.agent::<StackHost>(topo.hosts[0]).telemetry_snapshot();
        let _ = sim.agent::<StackHost>(topo.hosts[1]).telemetry_snapshot();
    }
}
