//! Property-based tests for the telemetry layer: counters only ever go
//! up, snapshots are deterministic functions of the run (same seed ⇒
//! byte-identical render), registry output is independent of increment
//! interleaving, and — when the `trace` feature is on — enabling the
//! flight recorder never perturbs the simulation it observes.

use proptest::prelude::*;
use tas_repro::apps::echo::{EchoServer, Lifetime, RpcClient, ServerMode};
use tas_repro::baselines::{profiles, StackHost, StackHostConfig};
use tas_repro::netsim::app::App;
use tas_repro::netsim::topo::{build_star, host_ip, HostSpec};
use tas_repro::netsim::{FaultSpec, NetMsg, NicConfig, PortConfig};
use tas_repro::sim::{AgentId, Registry, Scope, Sim, SimTime};
use tas_repro::tas::{TasConfig, TasHost};

const REQ_SIZE: usize = 64;

/// Builds the standard two-host echo topology on TAS hosts, optionally
/// with a lossy client NIC, and returns (sim, server, client).
fn build_tas_pair(seed: u64, faulty: bool) -> (Sim<NetMsg>, AgentId, AgentId) {
    let mut sim: Sim<NetMsg> = Sim::new(seed);
    let server_ip = host_ip(0);
    let nic_fault = if faulty {
        FaultSpec::lossy(0.02, 0.01, 0.02, seed ^ 0x5EED)
    } else {
        FaultSpec::none()
    };
    let mut factory = move |sim: &mut Sim<NetMsg>, spec: HostSpec| -> AgentId {
        let app: Box<dyn App> = if spec.index == 0 {
            Box::new(EchoServer::new(7, REQ_SIZE, ServerMode::Echo, 300))
        } else {
            let mut c = RpcClient::new(server_ip, 7, 1, 1, REQ_SIZE, Lifetime::Persistent);
            c.max_requests = 200;
            Box::new(c)
        };
        let mut nic = spec.nic;
        if spec.index == 1 {
            nic.tx_fault = nic_fault;
        }
        sim.add_agent(Box::new(TasHost::new(
            spec.ip,
            spec.mac,
            nic,
            TasConfig::rpc_bench(1, 1),
            spec.uplink,
            app,
        )))
    };
    let topo = build_star(
        &mut sim,
        2,
        |_| PortConfig::tengig(),
        |_| NicConfig::client_10g(1),
        &mut factory,
    );
    for &h in &topo.hosts {
        sim.inject_timer(SimTime::ZERO, h, 0, 0);
    }
    (sim, topo.hosts[0], topo.hosts[1])
}

/// Same workload on the reference Linux-model stack.
fn build_reference_pair(seed: u64) -> (Sim<NetMsg>, AgentId, AgentId) {
    let mut sim: Sim<NetMsg> = Sim::new(seed);
    let server_ip = host_ip(0);
    let mut factory = move |sim: &mut Sim<NetMsg>, spec: HostSpec| -> AgentId {
        let app: Box<dyn App> = if spec.index == 0 {
            Box::new(EchoServer::new(7, REQ_SIZE, ServerMode::Echo, 300))
        } else {
            let mut c = RpcClient::new(server_ip, 7, 1, 1, REQ_SIZE, Lifetime::Persistent);
            c.max_requests = 200;
            Box::new(c)
        };
        sim.add_agent(Box::new(StackHost::new(
            spec.ip,
            spec.mac,
            spec.nic,
            profiles::linux(),
            StackHostConfig::linux(2),
            spec.uplink,
            app,
        )))
    };
    let topo = build_star(
        &mut sim,
        2,
        |_| PortConfig::tengig(),
        |_| NicConfig::client_10g(1),
        &mut factory,
    );
    for &h in &topo.hosts {
        sim.inject_timer(SimTime::ZERO, h, 0, 0);
    }
    (sim, topo.hosts[0], topo.hosts[1])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every counter in every scope is monotone over simulated time, on
    /// both hosts, clean or lossy — pausing the sim mid-run and
    /// snapshotting twice must never show a counter go backwards.
    #[test]
    fn counters_are_monotone_over_time(seed in 1u64..10_000, faulty in any::<bool>()) {
        let (mut sim, server, client) = build_tas_pair(seed, faulty);
        let mut prev_s = sim.agent::<TasHost>(server).telemetry_snapshot();
        let mut prev_c = sim.agent::<TasHost>(client).telemetry_snapshot();
        for ms in [5u64, 20, 60, 150] {
            sim.run_until(SimTime::from_ms(ms));
            let cur_s = sim.agent::<TasHost>(server).telemetry_snapshot();
            let cur_c = sim.agent::<TasHost>(client).telemetry_snapshot();
            prop_assert!(
                cur_s.counters_monotone_since(&prev_s),
                "server counter went backwards between {ms}ms snapshots"
            );
            prop_assert!(
                cur_c.counters_monotone_since(&prev_c),
                "client counter went backwards between {ms}ms snapshots"
            );
            prev_s = cur_s;
            prev_c = cur_c;
        }
    }

    /// The rendered snapshot is a pure function of the seed: two runs of
    /// the same seeded workload produce byte-identical `render_text`
    /// output, on the TAS stack and on the reference stack.
    #[test]
    fn same_seed_snapshots_are_byte_identical(seed in 1u64..10_000) {
        let run_tas = |seed: u64| {
            let (mut sim, server, client) = build_tas_pair(seed, true);
            sim.run_until(SimTime::from_ms(150));
            let s = sim.agent::<TasHost>(server).telemetry_snapshot();
            let c = sim.agent::<TasHost>(client).telemetry_snapshot();
            format!("{}\n{}", s.render_text(), c.render_text())
        };
        let run_reference = |seed: u64| {
            let (mut sim, server, client) = build_reference_pair(seed);
            sim.run_until(SimTime::from_ms(150));
            let s = sim.agent::<StackHost>(server).telemetry_snapshot();
            let c = sim.agent::<StackHost>(client).telemetry_snapshot();
            format!("{}\n{}", s.render_text(), c.render_text())
        };
        prop_assert_eq!(run_tas(seed), run_tas(seed));
        prop_assert_eq!(run_reference(seed), run_reference(seed));
    }

    /// Registry snapshots are independent of increment interleaving:
    /// applying the same multiset of (counter, delta) updates in any
    /// order yields the same rendered snapshot.
    #[test]
    fn registry_order_independent(
        mut updates in proptest::collection::vec(
            (0usize..4, 0u32..3, 1u64..1_000), 1..40),
        rotate in 0usize..40,
    ) {
        const NAMES: [&str; 4] = ["a.pkts", "b.bytes", "c.drops", "d.acks"];
        let apply = |ups: &[(usize, u32, u64)]| {
            let mut reg = Registry::new();
            for &(name, core, delta) in ups {
                let id = reg.counter(NAMES[name], Scope::Core(core));
                reg.add(id, delta);
            }
            reg.snapshot().render_text()
        };
        let baseline = apply(&updates);
        let r = rotate % updates.len();
        updates.rotate_left(r);
        prop_assert_eq!(apply(&updates), baseline);
    }
}

/// Enabling the flight recorder must be invisible to the simulation:
/// the traced and untraced runs of the same seed agree on every
/// observable (event count, all counters), and the trace itself is
/// reproducible.
#[cfg(feature = "trace")]
mod trace_transparency {
    use super::*;
    use tas_repro::telemetry;

    fn fingerprint(seed: u64, traced: bool) -> (u64, String, usize) {
        if traced {
            telemetry::start(65_536);
        }
        let (mut sim, server, client) = build_tas_pair(seed, true);
        sim.run_until(SimTime::from_ms(150));
        let snap = format!(
            "{}\n{}",
            sim.agent::<TasHost>(server).telemetry_snapshot().render_text(),
            sim.agent::<TasHost>(client).telemetry_snapshot().render_text()
        );
        let events = sim.events_processed();
        let trace_len = if traced {
            let n = telemetry::take().len();
            telemetry::stop();
            n
        } else {
            0
        };
        (events, snap, trace_len)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        /// Truncation honesty under adversarial ring sizes: however small
        /// the trace ring, every assembled span is either complete — with
        /// causally ordered stamps whose deltas partition the end-to-end
        /// time exactly — or it reports no latency at all, and is flagged
        /// `truncated` exactly when the ring evicted records. A wrapped
        /// ring must never masquerade as a short latency.
        #[test]
        fn spans_are_exact_or_flagged_under_tiny_rings(
            seed in 1u64..10_000,
            cap_pow in 6u32..13,
        ) {
            telemetry::start(1usize << cap_pow);
            let (mut sim, _server, _client) = build_tas_pair(seed, false);
            sim.run_until(SimTime::from_ms(60));
            let recs = telemetry::take();
            let evicted = telemetry::evicted();
            telemetry::stop();
            let spans = telemetry::spans::assemble(&recs, evicted);
            prop_assert!(!spans.is_empty(), "the run must produce spans");
            for sp in &spans {
                if sp.complete {
                    let e2e = sp.e2e_ns().expect("complete span has a latency");
                    let sum: u64 = sp.deltas().iter().map(|d| d.delta_ns).sum();
                    prop_assert_eq!(sum, e2e, "deltas must partition e2e exactly");
                    prop_assert!(
                        sp.stages.windows(2).all(|w| w[0].1 <= w[1].1),
                        "stamps must be causally ordered: {:?}", sp.stages
                    );
                } else {
                    prop_assert_eq!(sp.e2e_ns(), None,
                        "incomplete span must not report a latency");
                    prop_assert_eq!(sp.truncated, evicted > 0,
                        "truncated flag must mirror ring eviction");
                }
            }
        }

        #[test]
        fn tracing_never_perturbs_the_simulation(seed in 1u64..10_000) {
            let (ev_off, snap_off, _) = fingerprint(seed, false);
            let (ev_on, snap_on, trace_len) = fingerprint(seed, true);
            prop_assert_eq!(ev_off, ev_on, "tracing changed the event count");
            prop_assert_eq!(snap_off, snap_on, "tracing changed a counter");
            prop_assert!(trace_len > 0, "the recorder saw the run");
            // And the trace itself reproduces.
            let (_, _, again) = fingerprint(seed, true);
            prop_assert_eq!(trace_len, again);
        }
    }
}
