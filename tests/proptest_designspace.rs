//! Determinism and monotonicity properties of the design-space models.
//!
//! The head-to-head report (`BENCH_designspace.json`) is byte-compared
//! across processes in CI, so the MPK and PnO runs must be bit-identical
//! for a given seed — including across *process* boundaries (ASLR,
//! environment, allocator state must not leak in). And the models must
//! respond sanely to their defining parameters: raising the WRPKRU
//! crossing cost or the PCIe one-way latency can never make the
//! client-observed latency distribution faster.

use proptest::prelude::*;
use tas_bench::report::{Metric, Report};
use tas_bench::scenarios::designspace;
use tas_sim::{Histogram, SimTime};

/// Runs the MPK sweep point and returns the latency histogram.
fn mpk_hist(crossing_cycles: u64, seed: u64) -> Histogram {
    let (p, cfg) = designspace::mpk_host(crossing_cycles);
    designspace::run_custom(p, cfg, seed)
}

/// Runs the PnO sweep point and returns the latency histogram.
fn pno_hist(latency_ns: u64, seed: u64) -> Histogram {
    let (p, cfg) = designspace::pno_host(SimTime::from_ns(latency_ns));
    designspace::run_custom(p, cfg, seed)
}

/// The report fragment the cross-process property byte-compares: both
/// design-space models at their default operating points, serialized
/// exactly as the gated report serializes distributions.
fn fragment() -> String {
    let mut r = Report::new("designspace-frag", "cross-process determinism probe", 0);
    r.push(Metric::quantiles(
        "mpk",
        "ns",
        &mpk_hist(80, designspace::SEED),
    ));
    r.push(Metric::quantiles(
        "pno",
        "ns",
        &pno_hist(900, designspace::SEED),
    ));
    r.to_json()
}

const CHILD_ENV: &str = "DESIGNSPACE_FRAGMENT_OUT";

/// Same seed, two *processes*: the serialized report fragments must be
/// byte-identical. The test re-executes its own binary (filtered down to
/// this one test) in child mode; the child writes the fragment and
/// exits before spawning anything itself.
#[test]
fn same_seed_is_byte_identical_across_processes() {
    if let Ok(out) = std::env::var(CHILD_ENV) {
        std::fs::write(out, fragment()).expect("child writes fragment");
        return;
    }
    let exe = std::env::current_exe().expect("current test binary");
    let dir = std::env::temp_dir();
    let mut bodies = Vec::new();
    for run in 0..2 {
        let out = dir.join(format!(
            "designspace_frag_{}_{run}.json",
            std::process::id()
        ));
        let status = std::process::Command::new(&exe)
            .arg("same_seed_is_byte_identical_across_processes")
            .arg("--exact")
            .env(CHILD_ENV, &out)
            .status()
            .expect("spawn child process");
        assert!(status.success(), "child run {run} failed");
        bodies.push(std::fs::read(&out).expect("read child fragment"));
        let _ = std::fs::remove_file(&out);
    }
    assert!(
        bodies[0] == bodies[1],
        "design-space report fragment differs across processes"
    );
}

/// Raising the WRPKRU crossing cost never makes the MPK dataplane
/// faster at p50 or p99.
#[test]
fn mpk_latency_monotone_in_crossing_cost() {
    let mut prev: Option<Histogram> = None;
    for c in designspace::MPK_SWEEP {
        let h = mpk_hist(c, designspace::SEED);
        if let Some(p) = &prev {
            assert!(h.p50() >= p.p50(), "p50 dropped at crossing cost {c}");
            assert!(h.p99() >= p.p99(), "p99 dropped at crossing cost {c}");
        }
        prev = Some(h);
    }
}

/// Raising the PCIe one-way latency never makes the off-path stack
/// faster at p50 or p99.
#[test]
fn pno_latency_monotone_in_pcie_latency() {
    let mut prev: Option<Histogram> = None;
    for l in designspace::PNO_SWEEP {
        let h = pno_hist(l, designspace::SEED);
        if let Some(p) = &prev {
            assert!(h.p50() >= p.p50(), "p50 dropped at PCIe latency {l} ns");
            assert!(h.p99() >= p.p99(), "p99 dropped at PCIe latency {l} ns");
        }
        prev = Some(h);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// In-process determinism over arbitrary seeds: running either model
    /// twice with the same seed reproduces the full latency distribution
    /// bit-for-bit (the property the cross-process check narrows to one
    /// pinned seed).
    #[test]
    fn same_seed_same_distribution(seed in 1u64..u64::from(u32::MAX)) {
        let a = mpk_hist(80, seed);
        let b = mpk_hist(80, seed);
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let a = pno_hist(900, seed);
        let b = pno_hist(900, seed);
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
