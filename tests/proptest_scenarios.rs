//! Determinism properties of the multi-tenant scenario suite: the same
//! `ScenarioSpec` (same seed) run twice must produce bit-identical
//! per-tenant outcomes and a byte-identical report fragment, on both the
//! TAS stack and the reference stack. Violations here mean a scenario
//! run leaked nondeterminism (hash-order iteration, wall-clock input,
//! unseeded randomness) and the pinned `BENCH_scenarios.json` baseline
//! would flap in CI.
//!
//! The runs execute in a debug-assertions build, so the TAS invariant
//! auditors are armed: any auditor violation panics the run, making
//! "identical auditor outcomes on both stacks" part of the property —
//! both stacks must come out clean for every generated composition.

use proptest::prelude::*;
use tas_bench::report::{Metric, Report};
use tas_bench::scenario::{runner, Role, ScenarioSpec, Tenant, TrafficShape};
use tas_bench::Kind;
use tas_bench::scenario::Outcome;
use tas_sim::SimTime;

/// Aggressor shapes exercised by the property, all sized tiny: windows
/// are milliseconds, so each case stays cheap even under the auditors.
fn aggressor_shape() -> impl Strategy<Value = TrafficShape> {
    prop_oneof![
        (1u32..3, 1u32..4).prop_map(|(conns, msgs)| TrafficShape::KvChurn {
            conns,
            msgs_per_conn: msgs,
        }),
        (1u32..4).prop_map(|conns| TrafficShape::KvClosed { conns }),
        (1u32..3, 4u32..32).prop_map(|(conns, burst)| TrafficShape::SlowRead { conns, burst }),
        (1u32..3, 8u32..64).prop_map(|(conns, chunk)| TrafficShape::AckDivision { conns, chunk }),
        (1u32..3).prop_map(|conns| TrafficShape::WindowStuff {
            conns,
            pattern: vec![64, 512, 1448],
        }),
    ]
}

fn tiny_spec() -> impl Strategy<Value = ScenarioSpec> {
    (
        1u64..u64::from(u32::MAX),
        5_000u64..20_000,
        1u32..4,
        aggressor_shape(),
    )
        .prop_map(|(seed, per_sec, conns, shape)| {
            let mut spec = ScenarioSpec::new("prop", "generated composition", seed)
                .tenant(Tenant::new(
                    "victim",
                    Role::Victim,
                    TrafficShape::KvOpen { per_sec, conns },
                    1,
                ))
                .tenant(Tenant::new("aggressor", Role::Aggressor, shape, 1));
            spec.warmup = SimTime::from_ms(2);
            spec.measure = SimTime::from_ms(4);
            spec.server_cores = (1, 1);
            spec
        })
}

/// Renders an outcome as a report fragment the way `run_suite` does, so
/// byte-identity covers the serialization path too.
fn fragment(spec: &ScenarioSpec, kind: Kind, o: &Outcome) -> String {
    let mut r = Report::new("prop", "scenario determinism property", spec.seed);
    for (tid, m) in &o.tenants {
        let p = format!("t{tid}_{}", kind.label().replace(' ', "_"));
        r.push(Metric::value(&format!("{p}_ops"), "count", m.ops as f64));
        r.push(Metric::value(&format!("{p}_p99"), "ns", m.p99_ns as f64));
        r.push(Metric::value(
            &format!("{p}_sent"),
            "count",
            m.requests_sent as f64,
        ));
    }
    r.push(Metric::value("drops", "count", o.server_drops as f64));
    r.push(Metric::value(
        "established",
        "count",
        o.server_established as f64,
    ));
    r.to_json()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Same spec, same seed, run twice on each stack: identical
    /// outcomes, byte-identical report fragments, and the victim made
    /// progress (the composition is not vacuous).
    #[test]
    fn same_seed_scenarios_are_byte_deterministic(spec in tiny_spec()) {
        for kind in [Kind::TasSockets, Kind::Linux] {
            let a = runner::run(&spec, kind);
            let b = runner::run(&spec, kind);
            prop_assert_eq!(&a, &b, "outcome mismatch on {:?}", kind);
            prop_assert_eq!(
                fragment(&spec, kind, &a),
                fragment(&spec, kind, &b),
                "report fragment mismatch on {:?}",
                kind
            );
            let victim = &a.tenants[&1];
            prop_assert!(
                victim.requests_sent > 0,
                "victim idle on {:?}: {:?}",
                kind,
                victim
            );
        }
    }
}
