//! Golden-trace regression tests: the JSONL flight-recorder output of
//! two hand-driven `tas-tcp` connections is pinned byte-for-byte.
//!
//! Every timestamp here is hand-advanced and every ISN is fixed, so the
//! traces are fully deterministic; any change to segment construction,
//! state-machine transitions, retransmission logic, or the JSONL
//! renderer shows up as a line-level diff against `tests/golden/`.
//!
//! To refresh after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --features trace --test golden_trace
//! ```
#![cfg(feature = "trace")]

use std::net::Ipv4Addr;
use std::path::PathBuf;
use tas_repro::proto::MacAddr;
use tas_repro::sim::SimTime;
use tas_repro::tcp::{EndpointInfo, TcpConfig, TcpConn};
use tas_repro::telemetry;

const STEP: SimTime = SimTime::from_us(50);

fn cfg() -> TcpConfig {
    TcpConfig {
        mss: 512,
        ..TcpConfig::default()
    }
}

fn client_ep() -> EndpointInfo {
    EndpointInfo {
        ip: Ipv4Addr::new(10, 0, 0, 1),
        port: 5000,
        mac: MacAddr::for_host(1),
    }
}

fn server_ep() -> EndpointInfo {
    EndpointInfo {
        ip: Ipv4Addr::new(10, 0, 0, 2),
        port: 80,
        mac: MacAddr::for_host(2),
    }
}

/// Delivers staged output back and forth until both ends quiesce.
fn exchange(t: &mut SimTime, a: &mut TcpConn, b: &mut TcpConn) {
    for _ in 0..32 {
        a.poll(*t);
        b.poll(*t);
        let out_a = a.take_outgoing();
        let out_b = b.take_outgoing();
        if out_a.is_empty() && out_b.is_empty() {
            return;
        }
        *t += STEP;
        for s in out_a {
            b.on_segment(*t, s);
        }
        for s in out_b {
            a.on_segment(*t, s);
        }
    }
    panic!("exchange did not quiesce");
}

/// Three-way handshake with fixed ISNs; returns (client, server).
fn handshake(t: &mut SimTime) -> (TcpConn, TcpConn) {
    let mut client = TcpConn::connect(*t, cfg(), client_ep(), server_ep(), 1_000);
    client.poll(*t);
    let syn = client.take_outgoing().remove(0);
    *t += STEP;
    let mut server = TcpConn::accept(*t, cfg(), server_ep(), client_ep(), &syn, 9_000);
    exchange(t, &mut client, &mut server);
    (client, server)
}

/// Canonical life of a connection: handshake, a 4-segment request/
/// response exchange (two 512-byte segments each way), FIN teardown
/// from the client side, TIME_WAIT expiry.
fn run_canonical() -> Vec<telemetry::TraceRecord> {
    telemetry::start(4_096);
    let mut t = SimTime::from_us(100);
    let (mut client, mut server) = handshake(&mut t);
    // Request: 1024 bytes = two 512-byte segments.
    assert_eq!(client.send(&[0x11; 1024]), 1024);
    exchange(&mut t, &mut client, &mut server);
    assert_eq!(server.recv(4_096).len(), 1024);
    // Response: two segments back.
    assert_eq!(server.send(&[0x22; 1024]), 1024);
    exchange(&mut t, &mut client, &mut server);
    assert_eq!(client.recv(4_096).len(), 1024);
    // Teardown, client first.
    client.close();
    exchange(&mut t, &mut client, &mut server);
    server.close();
    exchange(&mut t, &mut client, &mut server);
    // Expire TIME_WAIT so both ends report Closed.
    t += SimTime::from_secs(120);
    client.on_timer(t);
    server.on_timer(t);
    assert!(client.is_closed() && server.is_closed());
    let records = telemetry::take();
    telemetry::stop();
    records
}

/// Fast retransmit: the first of five in-flight segments is dropped.
/// The four that arrive out of order each elicit an ACK; the first one
/// is a window update (the SYN-ACK window was unscaled, so the first
/// full scaled advertisement grows `snd_wnd`), the next three are
/// duplicate ACKs, the sender retransmits the hole, and the exchange
/// completes.
fn run_fast_retransmit() -> Vec<telemetry::TraceRecord> {
    telemetry::start(4_096);
    let mut t = SimTime::from_us(100);
    let (mut client, mut server) = handshake(&mut t);
    assert_eq!(client.send(&[0x33; 2560]), 2560);
    client.poll(t);
    let mut segs = client.take_outgoing();
    assert_eq!(segs.len(), 5, "2560 bytes at mss 512 = 5 segments");
    let dropped = segs.remove(0);
    t += STEP;
    for s in segs {
        server.on_segment(t, s);
    }
    drop(dropped); // Never delivered: the wire ate it.
    // The dupacks flow back and trigger the fast retransmit.
    exchange(&mut t, &mut client, &mut server);
    assert_eq!(server.recv(4_096).len(), 2560, "hole must be repaired");
    assert!(
        client.stats.fast_retransmits >= 1,
        "dup-ACK recovery must have fired: {:?}",
        client.stats
    );
    let records = telemetry::take();
    telemetry::stop();
    records
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {name} ({e}); run with UPDATE_GOLDEN=1 to create it")
    });
    if want == got {
        return;
    }
    for (i, (w, g)) in want.lines().zip(got.lines()).enumerate() {
        assert_eq!(
            g,
            w,
            "golden {name} differs at line {} (golden on the right); \
             run with UPDATE_GOLDEN=1 to accept intentional changes",
            i + 1
        );
    }
    panic!(
        "golden {name} length differs: golden has {} lines, got {} \
         (run with UPDATE_GOLDEN=1 to accept intentional changes)",
        want.lines().count(),
        got.lines().count()
    );
}

#[test]
fn canonical_exchange_trace_is_pinned() {
    let records = run_canonical();
    assert!(!records.is_empty());
    check_golden("canonical_exchange.jsonl", &telemetry::render_jsonl(&records));
}

#[test]
fn fast_retransmit_trace_is_pinned() {
    let records = run_fast_retransmit();
    assert!(records
        .iter()
        .any(|r| matches!(&r.ev, telemetry::TraceEvent::Retransmit { kind, .. } if *kind == "fast")),
        "trace must contain the fast retransmit");
    check_golden(
        "fast_retransmit.jsonl",
        &telemetry::render_jsonl(&records),
    );
}

#[test]
fn golden_traces_reproduce_within_a_process() {
    // The same driver twice in a row must produce byte-identical JSONL —
    // the tracer must not leak state between runs.
    let a = telemetry::render_jsonl(&run_canonical());
    let b = telemetry::render_jsonl(&run_canonical());
    assert_eq!(a, b);
}
