//! Model-based property test of the TAS fast path receive side: feeding
//! an arbitrary interleaving of in-order, out-of-order, duplicate, and
//! loss-shaped segments must deliver exactly the original stream prefix,
//! ack monotonically, and never get ahead of the data actually received.

use proptest::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::net::Ipv4Addr;
use tas_repro::cpusim::CycleAccount;
use tas_repro::proto::{FlowKey, MacAddr, Segment, TcpFlags, TcpHeader};
use tas_repro::shm::ByteRing;
use tas_repro::sim::SimTime;
use tas_repro::tas::fastpath::FastPath;
use tas_repro::tas::flow::{
    FlowState, FpCongCtrl, FpConnMgmt, FpFlowCtrl, FpRecvRel, FpSendRel, RateBucket,
};
use tas_repro::tas::{TasCosts, FLOW_STATE_BYTES};

/// Counts heap allocations made by the current thread. The counter is
/// thread-local so the parallel test harness (and proptest cases on other
/// threads) cannot perturb a measurement window. `Cell<u64>` with const
/// init has no destructor, so reading it from inside the allocator cannot
/// recurse into TLS registration.
struct CountingAlloc;

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn thread_allocs() -> u64 {
    THREAD_ALLOCS.with(|c| c.get())
}

fn install(fp: &mut FastPath, rx_cap: usize) -> u32 {
    fp.install_flow(FlowState {
        conn: FpConnMgmt::new(
            1,
            0,
            FlowKey::new(
                Ipv4Addr::new(10, 0, 0, 1),
                80,
                Ipv4Addr::new(10, 0, 0, 2),
                7777,
            ),
            MacAddr::for_host(2),
            0,
        ),
        snd: FpSendRel::new(ByteRing::new(1024), 100),
        rcv: FpRecvRel::new(ByteRing::new(rx_cap), 1_000),
        fc: FpFlowCtrl::new(65_535, 0),
        cc: FpCongCtrl::new(RateBucket::unlimited()),
    })
}

fn data_seg(offset: u64, payload: &[u8]) -> Segment {
    let seq = 1_001u32.wrapping_add(offset as u32);
    let mut h = TcpHeader::new(7777, 80, seq, 101, TcpFlags::ACK | TcpFlags::PSH);
    h.window = 60_000;
    h.options.timestamp = Some((1, 0));
    Segment::tcp(
        MacAddr::for_host(2),
        MacAddr::for_host(1),
        Ipv4Addr::new(10, 0, 0, 2),
        Ipv4Addr::new(10, 0, 0, 1),
        h,
        payload,
        true,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Deliver an arbitrarily sliced stream in an arbitrary order with
    /// duplicates; whatever the fast path commits must be a correct
    /// prefix-closed portion of the stream, acks must be monotone, and a
    /// final in-order sweep must deliver everything.
    #[test]
    fn fastpath_rx_is_prefix_correct(
        stream in proptest::collection::vec(any::<u8>(), 32..400),
        cuts in proptest::collection::vec(any::<prop::sample::Index>(), 1..8),
        order_seed in any::<u64>(),
    ) {
        let mut fp = FastPath::new(
            Ipv4Addr::new(10, 0, 0, 1),
            MacAddr::for_host(1),
            1448,
            TasCosts::default(),
        );
        let fid = install(&mut fp, stream.len() + 64);
        let mut acct = CycleAccount::new();

        // Slice and shuffle.
        let mut points: Vec<usize> = cuts.iter().map(|c| c.index(stream.len())).collect();
        points.push(0);
        points.push(stream.len());
        points.sort_unstable();
        points.dedup();
        let mut segs: Vec<(u64, Vec<u8>)> = points
            .windows(2)
            .map(|w| (w[0] as u64, stream[w[0]..w[1]].to_vec()))
            .filter(|(_, d)| !d.is_empty())
            .collect();
        let dup = segs[0].clone();
        segs.push(dup); // One duplicate.
        let mut rng = tas_repro::sim::Rng::new(order_seed);
        rng.shuffle(&mut segs);

        let mut last_ack = 0u32;
        let mut t = 0u64;
        for (off, data) in &segs {
            t += 1;
            fp.rx_segment(SimTime::from_us(t), data_seg(*off, data), &mut acct);
            // Acks are cumulative and monotone.
            for pkt in fp.out.packets.drain(..) {
                let ack_off = pkt.tcp.ack.wrapping_sub(1_001);
                prop_assert!(ack_off >= last_ack, "ack regressed");
                last_ack = ack_off;
                // Never acks data that was not sent.
                prop_assert!(ack_off as usize <= stream.len());
            }
        }
        // Whatever was committed must be a prefix of the stream.
        {
            let flow = fp.flows.get_mut(fid).expect("installed");
            let n = flow.rcv.rx.len();
            let got = flow.rcv.rx.copy_out(0, n).expect("committed prefix");
            prop_assert_eq!(&got[..], &stream[..n], "committed data is a prefix");
        }
        // Final sweep: resend the whole stream in order (go-back-N after a
        // retransmission); everything must be delivered exactly.
        for (off, data) in points
            .windows(2)
            .map(|w| (w[0] as u64, &stream[w[0]..w[1]]))
        {
            if data.is_empty() {
                continue;
            }
            t += 1;
            fp.rx_segment(SimTime::from_us(t), data_seg(off, data), &mut acct);
            fp.out.packets.clear();
        }
        let flow = fp.flows.get_mut(fid).expect("installed");
        prop_assert_eq!(flow.rcv.rx.pop(usize::MAX - 1), stream);
        prop_assert_eq!(flow.rcv.ooo_len, 0, "interval fully merged");
    }

    /// The architectural state constant matches the paper regardless of
    /// how it is computed at runtime.
    #[test]
    fn flow_state_constant(_x in 0u8..1) {
        prop_assert_eq!(FLOW_STATE_BYTES, 102);
    }
}

/// Steady-state packet forwarding is allocation-free: after a warmup that
/// sizes the output queues and primes the payload pool, each further round
/// trip — build an in-order data segment from the pool, run it through the
/// fast path (rx commit + ack generation), consume the committed bytes —
/// must not touch the heap at all. Guards the fast-path regression where
/// every received payload was copied through a fresh `Vec` before landing
/// in the ring.
#[test]
fn steady_state_rx_does_not_allocate() {
    const CHUNK: usize = 512;
    const WARMUP: u64 = 64;
    const MEASURED: u64 = 256;

    let mut fp = FastPath::new(
        Ipv4Addr::new(10, 0, 0, 1),
        MacAddr::for_host(1),
        1448,
        TasCosts::default(),
    );
    let fid = install(&mut fp, 1 << 16);
    let mut acct = CycleAccount::new();
    let chunk = [0xA5u8; CHUNK];

    let mut off = 0u64;
    let mut t = 0u64;
    let mut deliver = |fp: &mut FastPath, seg: Segment, t: u64| {
        fp.rx_segment(SimTime::from_us(t), seg, &mut acct);
        // Drain with clear(): take()/mem::take would swap in fresh empty
        // vecs and force a reallocation on the next push.
        fp.out.packets.clear();
        fp.out.notices.clear();
        fp.out.exceptions.clear();
        fp.out.tx_timers.clear();
        // The app keeps up: consume the committed bytes so the ring and
        // the advertised window stay in steady state.
        let flow = fp.flows.get_mut(fid).expect("installed");
        let n = flow.rcv.rx.len() as u64;
        flow.rcv.rx.consume(n).expect("consume committed prefix");
    };

    for _ in 0..WARMUP {
        t += 1;
        deliver(&mut fp, data_seg(off, &chunk), t);
        off += CHUNK as u64;
    }

    // Measured window: segments are built inside it — headers are plain
    // data and the payload comes from the warm pool, so construction must
    // be as allocation-free as the forwarding itself.
    let before = thread_allocs();
    for _ in 0..MEASURED {
        t += 1;
        deliver(&mut fp, data_seg(off, &chunk), t);
        off += CHUNK as u64;
    }
    let after = thread_allocs();
    assert_eq!(
        after - before,
        0,
        "steady-state rx allocated {} times over {} packets",
        after - before,
        MEASURED
    );
}
