//! Property tests for the shared-memory substrate: the payload ring and
//! the reassemblers behave like their obvious reference models under
//! arbitrary operation sequences.

use proptest::prelude::*;
use tas_repro::shm::ByteRing;
use tas_repro::tcp::Reassembler;

#[derive(Debug, Clone)]
enum RingOp {
    Append(Vec<u8>),
    Pop(usize),
}

fn arb_ring_ops() -> impl Strategy<Value = Vec<RingOp>> {
    proptest::collection::vec(
        prop_oneof![
            proptest::collection::vec(any::<u8>(), 0..80).prop_map(RingOp::Append),
            (0usize..100).prop_map(RingOp::Pop),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The ring delivers exactly the appended byte stream, in order,
    /// across arbitrary append/pop interleavings and wrap-arounds.
    #[test]
    fn byte_ring_is_a_fifo_stream(ops in arb_ring_ops(), cap in 1usize..128) {
        let mut ring = ByteRing::new(cap);
        let mut model: std::collections::VecDeque<u8> = Default::default();
        for op in ops {
            match op {
                RingOp::Append(data) => {
                    let accepted = ring.append_partial(&data);
                    prop_assert!(accepted <= data.len());
                    model.extend(data[..accepted].iter());
                    prop_assert_eq!(ring.len(), model.len());
                }
                RingOp::Pop(n) => {
                    let got = ring.pop(n);
                    let want: Vec<u8> = (0..got.len().min(model.len()))
                        .map(|_| model.pop_front().expect("model has bytes"))
                        .collect();
                    prop_assert_eq!(&got, &want);
                    prop_assert_eq!(got.len(), n.min(ring.len() + got.len()));
                }
            }
            prop_assert!(ring.len() <= cap);
            prop_assert_eq!(ring.free(), cap - ring.len());
        }
    }

    /// Out-of-order staging: writing segments at arbitrary offsets within
    /// the window and committing yields the right bytes.
    #[test]
    fn byte_ring_out_of_order_staging(
        cap in 64usize..256,
        head in proptest::collection::vec(any::<u8>(), 1..16),
        tail in proptest::collection::vec(any::<u8>(), 1..32),
    ) {
        // Stage `tail` beyond a hole the size of `head`, then commit the
        // head followed by the staged region.
        let hole = head.len();
        prop_assume!(hole + tail.len() <= cap);
        let mut ring = ByteRing::new(cap);
        ring.write_at(hole as u64, &tail).expect("fits");
        prop_assert_eq!(ring.len(), 0);
        ring.append(&head).expect("fits");
        ring.advance_end(tail.len() as u64).expect("fits");
        let all = ring.pop(cap);
        prop_assert_eq!(&all[..hole], &head[..]);
        prop_assert_eq!(&all[hole..], &tail[..]);
    }

    /// The reassembler reconstructs the original stream from arbitrarily
    /// sliced, duplicated, and shuffled segments.
    #[test]
    fn reassembler_reconstructs_stream(
        stream in proptest::collection::vec(any::<u8>(), 1..500),
        cuts in proptest::collection::vec(any::<prop::sample::Index>(), 0..10),
        order in any::<u64>(),
        dupes in 0usize..3,
    ) {
        // Slice the stream at sorted cut points.
        let mut points: Vec<usize> = cuts.iter().map(|c| c.index(stream.len())).collect();
        points.push(0);
        points.push(stream.len());
        points.sort_unstable();
        points.dedup();
        let mut segments: Vec<(u64, Vec<u8>)> = points
            .windows(2)
            .map(|w| (w[0] as u64, stream[w[0]..w[1]].to_vec()))
            .filter(|(_, d)| !d.is_empty())
            .collect();
        // Duplicate some segments and shuffle deterministically.
        for d in 0..dupes.min(segments.len()) {
            segments.push(segments[d].clone());
        }
        let mut rng = tas_repro::sim::Rng::new(order);
        rng.shuffle(&mut segments);

        let mut r = Reassembler::new(stream.len() + 64);
        let mut out: Vec<u8> = Vec::new();
        for (off, mut data) in segments {
            // Like a TCP receiver: trim data already delivered (below
            // rcv_nxt) before handing the rest to the reassembler.
            let mut off = off;
            let delivered = out.len() as u64;
            if off < delivered {
                let skip = (delivered - off) as usize;
                if skip >= data.len() {
                    continue;
                }
                data.drain(..skip);
                off = delivered;
            }
            r.insert(off, data);
            if let Some(run) = r.pop_ready(out.len() as u64) {
                out.extend_from_slice(&run);
            }
        }
        if let Some(run) = r.pop_ready(out.len() as u64) {
            out.extend_from_slice(&run);
        }
        prop_assert_eq!(out, stream);
        prop_assert_eq!(r.held(), 0, "nothing left buffered");
    }

    /// Duplicates delivered *without* the receiver-side trim above: the
    /// reassembler's own delivered-frontier tracking must absorb them.
    /// Generalizes the recorded `proptest_shm.proptest-regressions` seed.
    #[test]
    fn reassembler_absorbs_raw_duplicates(
        stream in proptest::collection::vec(any::<u8>(), 1..300),
        cuts in proptest::collection::vec(any::<prop::sample::Index>(), 0..8),
        order in any::<u64>(),
    ) {
        let mut points: Vec<usize> = cuts.iter().map(|c| c.index(stream.len())).collect();
        points.push(0);
        points.push(stream.len());
        points.sort_unstable();
        points.dedup();
        let mut segments: Vec<(u64, Vec<u8>)> = points
            .windows(2)
            .map(|w| (w[0] as u64, stream[w[0]..w[1]].to_vec()))
            .filter(|(_, d)| !d.is_empty())
            .collect();
        // Every segment twice, shuffled — no trimming by the caller.
        let dupes: Vec<(u64, Vec<u8>)> = segments.clone();
        segments.extend(dupes);
        let mut rng = tas_repro::sim::Rng::new(order);
        rng.shuffle(&mut segments);

        let mut r = Reassembler::new(stream.len() + 64);
        let mut out: Vec<u8> = Vec::new();
        for (off, data) in segments {
            r.insert(off, data);
            if let Some(run) = r.pop_ready(out.len() as u64) {
                out.extend_from_slice(&run);
            }
        }
        prop_assert_eq!(out, stream);
        prop_assert_eq!(r.held(), 0, "duplicates left residue below the frontier");
    }

    /// The log-linear histogram's quantiles stay within its error bound.
    ///
    /// (Named regression replays of the recorded
    /// `proptest_shm.proptest-regressions` seed live below this block.)
    #[test]
    fn histogram_quantile_error_bounded(values in proptest::collection::vec(1u64..1_000_000, 10..500)) {
        let mut h = tas_repro::sim::Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            let rank = (((q * sorted.len() as f64).ceil() as usize).max(1) - 1).min(sorted.len() - 1);
            let exact = sorted[rank] as f64;
            let got = h.quantile(q) as f64;
            prop_assert!(
                (got - exact).abs() <= exact * 0.04 + 1.0,
                "q{q}: got {got}, exact {exact}"
            );
        }
    }
}

/// Replays the shrunk case recorded in `proptest_shm.proptest-regressions`
/// (`cc 14b78ff7… # shrinks to stream = [0], cuts = [], order = 0,
/// dupes = 1`) against `reassembler_reconstructs_stream`: a one-byte
/// stream whose single segment arrives twice.
#[test]
fn regression_duplicate_of_delivered_segment_seed() {
    let stream = vec![0u8];
    let mut r = Reassembler::new(stream.len() + 64);
    let mut out: Vec<u8> = Vec::new();
    for (off, mut data) in [(0u64, stream.clone()), (0u64, stream.clone())] {
        let mut off = off;
        let delivered = out.len() as u64;
        if off < delivered {
            let skip = (delivered - off) as usize;
            if skip >= data.len() {
                continue;
            }
            data.drain(..skip);
            off = delivered;
        }
        r.insert(off, data);
        if let Some(run) = r.pop_ready(out.len() as u64) {
            out.extend_from_slice(&run);
        }
    }
    assert_eq!(out, stream);
    assert_eq!(r.held(), 0, "duplicate left residue");
}

/// The underlying bug class, hit directly: without any caller-side
/// trimming, a duplicate of an already-delivered segment must leave
/// `held() == 0` — the reassembler's delivered frontier absorbs it.
#[test]
fn regression_duplicate_below_frontier_is_absorbed() {
    let mut r = Reassembler::new(100);
    assert_eq!(r.insert(0, b"hello".to_vec()), 5);
    assert_eq!(r.pop_ready(0).unwrap(), b"hello");
    assert_eq!(r.delivered_frontier(), 5);
    // Exact duplicate, a stale retransmission, and a partial overlap
    // spanning the frontier.
    assert_eq!(r.insert(0, b"hello".to_vec()), 0);
    assert_eq!(r.held(), 0, "exact duplicate stranded bytes");
    assert_eq!(r.insert(2, b"llo".to_vec()), 0);
    assert_eq!(r.held(), 0, "stale retransmission stranded bytes");
    assert_eq!(r.insert(3, b"loWORLD".to_vec()), 5);
    assert_eq!(r.held(), 5, "fresh tail past the frontier kept");
    assert_eq!(r.pop_ready(5).unwrap(), b"WORLD");
    assert_eq!(r.held(), 0);
    assert_eq!(r.delivered_frontier(), 10);
}
