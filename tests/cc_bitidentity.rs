//! Bit-identity anchors for the congestion-control unification.
//!
//! These trajectories were captured from the pre-unification
//! implementations (`tas_tcp::cc`'s window NewReno/DCTCP and `tas::cc`'s
//! rate DCTCP/TIMELY) driven by fixed LCG-seeded feedback scripts. The
//! unified `tas-cc` implementations behind the `CongCtrl` trait must
//! reproduce every value bit-for-bit — cwnd/ssthresh exactly, rates
//! exactly, and the f64 EWMA state compared at the bit level — proving
//! the refactor moved code without changing a single arithmetic step.

use std::net::Ipv4Addr;
use tas_repro::proto::{FlowKey, MacAddr};
use tas_repro::shm::ByteRing;
use tas_repro::sim::SimTime;
use tas_repro::tas::cc::{dctcp_rate_iteration, timely_iteration, DctcpRateParams, TimelyParams};
use tas_repro::tas::flow::{
    FlowState, FpCongCtrl, FpConnMgmt, FpFlowCtrl, FpRecvRel, FpSendRel, RateBucket,
};
use tas_repro::tcp::cc::{make_cc, AckInfo, CcKind};

/// The capture harness's deterministic script generator.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn flow() -> FlowState {
    let mut cc = FpCongCtrl::new(RateBucket::unlimited());
    cc.cwnd = 14480;
    FlowState {
        conn: FpConnMgmt::new(
            0,
            0,
            FlowKey::new(Ipv4Addr::UNSPECIFIED, 1, Ipv4Addr::UNSPECIFIED, 2),
            MacAddr::for_host(1),
            0,
        ),
        snd: FpSendRel::new(ByteRing::new(65536), 0),
        rcv: FpRecvRel::new(ByteRing::new(65536), 0),
        fc: FpFlowCtrl::new(65536, 7),
        cc,
    }
}

/// Drives a window-mode CC through the fixed script and returns the
/// (cwnd, ssthresh) trajectory.
fn window_trajectory(kind: CcKind) -> Vec<(u32, u32)> {
    let mut cc = make_cc(kind, 1448);
    let mut lcg = Lcg(0x5eed_0001);
    let mut traj = Vec::new();
    let mut now_us: u64 = 0;
    for step in 0..64 {
        now_us += 100 + lcg.next() % 400;
        let r = lcg.next() % 100;
        if r < 70 {
            let acked = (1 + lcg.next() % 3) as u32 * 1448;
            let ece = lcg.next().is_multiple_of(10);
            let srtt = if lcg.next().is_multiple_of(4) {
                None
            } else {
                Some(SimTime::from_us(50 + lcg.next() % 300))
            };
            cc.on_ack(AckInfo {
                acked,
                ece,
                now: SimTime::from_us(now_us),
                srtt,
            });
        } else if r < 85 {
            cc.on_fast_retransmit();
        } else if step % 17 == 13 {
            cc.on_timeout();
        } else {
            cc.on_ack(AckInfo {
                acked: 1448,
                ece: true,
                now: SimTime::from_us(now_us),
                srtt: Some(SimTime::from_us(120)),
            });
        }
        traj.push((cc.cwnd(), cc.ssthresh()));
    }
    traj
}

#[test]
fn newreno_window_trajectory_is_bit_identical() {
    let golden: &[(u32, u32)] = &[
        (15928, 4294967295),
        (17376, 4294967295),
        (8688, 8688),
        (8688, 8688),
        (4344, 4344),
        (5792, 4344),
        (2896, 2896),
        (2896, 2896),
        (4344, 2896),
        (2896, 2896),
        (2896, 2896),
        (4344, 2896),
        (5792, 2896),
        (1448, 2896),
        (2896, 2896),
        (4344, 2896),
        (5792, 2896),
        (2896, 2896),
        (4344, 2896),
        (2896, 2896),
        (4344, 2896),
        (5792, 2896),
        (7240, 2896),
        (7240, 2896),
        (7240, 2896),
        (3620, 3620),
        (2896, 2896),
        (4344, 2896),
        (2896, 2896),
        (4344, 2896),
        (5792, 2896),
        (2896, 2896),
        (4344, 2896),
        (5792, 2896),
        (7240, 2896),
        (7240, 2896),
        (8688, 2896),
        (8688, 2896),
        (4344, 4344),
        (5792, 4344),
        (2896, 2896),
        (2896, 2896),
        (2896, 2896),
        (2896, 2896),
        (2896, 2896),
        (2896, 2896),
        (4344, 2896),
        (4344, 2896),
        (5792, 2896),
        (5792, 2896),
        (7240, 2896),
        (3620, 3620),
        (2896, 2896),
        (2896, 2896),
        (4344, 2896),
        (2896, 2896),
        (2896, 2896),
        (2896, 2896),
        (4344, 2896),
        (5792, 2896),
        (5792, 2896),
        (7240, 2896),
        (7240, 2896),
        (8688, 2896),
    ];
    assert_eq!(window_trajectory(CcKind::NewReno), golden);
}

#[test]
fn dctcp_window_trajectory_is_bit_identical() {
    let golden: &[(u32, u32)] = &[
        (15928, 4294967295),
        (17376, 4294967295),
        (8688, 8688),
        (8688, 8688),
        (4871, 4871),
        (6319, 4871),
        (3159, 3159),
        (2896, 2896),
        (4344, 2896),
        (2896, 2896),
        (2896, 2896),
        (4344, 2896),
        (5792, 2896),
        (1448, 2896),
        (2896, 2896),
        (4344, 2896),
        (5792, 2896),
        (2896, 2896),
        (4344, 2896),
        (2896, 2896),
        (4344, 2896),
        (5792, 2896),
        (5792, 2896),
        (7240, 2896),
        (7240, 2896),
        (5786, 5786),
        (2896, 2896),
        (4344, 2896),
        (3450, 3450),
        (4898, 3450),
        (6346, 3450),
        (3173, 3173),
        (4621, 3173),
        (6069, 3173),
        (6069, 3173),
        (7517, 3173),
        (7517, 3173),
        (8965, 3173),
        (7766, 7766),
        (7766, 7766),
        (6626, 6626),
        (5507, 5507),
        (4463, 4463),
        (2896, 2896),
        (4344, 2896),
        (2896, 2896),
        (2896, 2896),
        (4344, 2896),
        (4344, 2896),
        (5792, 2896),
        (5792, 2896),
        (2896, 2896),
        (2896, 2896),
        (4344, 2896),
        (5792, 2896),
        (2896, 2896),
        (2896, 2896),
        (2896, 2896),
        (4344, 2896),
        (5792, 2896),
        (5792, 2896),
        (7240, 2896),
        (7240, 2896),
        (8688, 2896),
    ];
    assert_eq!(window_trajectory(CcKind::Dctcp), golden);
}

#[test]
fn dctcp_rate_trajectory_is_bit_identical() {
    let golden: &[u64] = &[
        5085000, 2741676, 1370838, 11370838, 6704077, 16704077, 10503809, 20503809, 30503809,
        40503809, 50503809, 25251904, 18444434, 28444434, 21405432, 31405432, 41405432, 51405432,
        61405432, 49113269, 24556634, 19702117, 29702117, 39702117, 33182281, 43182281, 53182281,
        63182281, 31591140, 41591140, 51591140, 25795570, 35795570, 45795570, 40530777, 50530777,
        44793171, 39247873, 49247873, 59247873, 69247873, 61102962, 71102962, 81102962, 40551481,
        50551481, 60551481, 70551481,
    ];
    let p = DctcpRateParams::default();
    let mut f = flow();
    let mut lcg = Lcg(0x5eed_0002);
    let mut rate: u64 = 10_000_000;
    let mut out = Vec::new();
    for _ in 0..48 {
        f.cc.cnt_ackb = lcg.next() % 200_000;
        f.cc.cnt_ecnb = if lcg.next().is_multiple_of(3) {
            lcg.next() % (f.cc.cnt_ackb + 1)
        } else {
            0
        };
        f.cc.cnt_frexmits = if lcg.next().is_multiple_of(8) { 1 } else { 0 };
        rate = dctcp_rate_iteration(&mut f, rate, 0.0005, &p);
        out.push(rate);
    }
    assert_eq!(out, golden);
    // The f64 EWMA state must come out bit-exact, not merely close.
    assert_eq!(f.cc.state.alpha.to_bits(), 0x3fc471714228e5e6);
    assert_eq!(f.cc.state.rate_ewma.to_bits(), 0x41d4e966fc73e9ce);
    assert!(!f.cc.state.slow_start);
}

#[test]
fn timely_rate_trajectory_is_bit_identical() {
    let golden: &[u64] = &[
        20000000, 3999999, 3693308, 2882817, 12882817, 12801021, 22801021, 19660218, 16162350,
        26162350, 22501347, 32501347, 27673785, 24521916, 22869156, 32869156, 6573831, 5583487,
        5170045, 15170045, 3034008, 2506024, 2417857, 2357879, 12357879, 22357879, 20821030,
        30821030, 40821030, 8164205, 6324912, 16324912, 14276727, 24276727, 4855345, 4779182,
        14779182, 24779182, 19661582, 29661582, 39661582, 7932316, 1586463, 11586463, 2317292,
        12317292, 22317292, 32317292,
    ];
    let p = TimelyParams::default();
    let mut f = flow();
    let mut lcg = Lcg(0x5eed_0003);
    let mut rate: u64 = 10_000_000;
    let mut out = Vec::new();
    for _ in 0..48 {
        f.cc.cnt_ackb = lcg.next() % 200_000;
        f.conn.rtt_est_us = (20 + lcg.next() % 700) as u32;
        rate = timely_iteration(&mut f, rate, &p);
        out.push(rate);
    }
    assert_eq!(out, golden);
    assert_eq!(f.cc.state.prev_rtt_us, 230);
    assert!(!f.cc.state.slow_start);
}
