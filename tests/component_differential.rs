//! Per-component differential tests over the decomposed connection
//! state (DESIGN.md §16). Each test isolates one component of the
//! reference `tas-tcp` engine and pins its externally observable
//! behavior under seeded fault schedules:
//!
//!   * `RecvRel`  — the reassembler frontier: every byte arrives exactly
//!     once, in order, against a closed-form oracle stream, under
//!     seeded loss and duplication.
//!   * `SendRel`  — the retransmit schedule: a clean pipe produces zero
//!     retransmissions; a seeded lossy pipe forces retransmits without
//!     perturbing the frontier; and the whole schedule (counts and
//!     segment totals) is bit-reproducible for a fixed seed.
//!   * `CongCtrl` — the cwnd trajectory per CC implementation: for each
//!     of NewReno/DCTCP/TIMELY the sampled trajectory is bit-identical
//!     across re-runs of the same seed, and ECN-marked runs separate
//!     the algorithms observably.
//!
//! The decomposition refactor must keep all of these fixed — the tests
//! double as its behavior-preservation witnesses at component
//! granularity, complementing the outcome-level checks in
//! `tests/differential.rs`.

use std::cell::Cell;
use std::net::Ipv4Addr;
use std::rc::Rc;
use tas_repro::proto::{Ecn, MacAddr, Segment, TcpFlags};
use tas_repro::sim::SimTime;
use tas_repro::tcp::{CcKind, TcpConfig, TcpConn, TcpState};

/// Drop/mutate filter: (segment, to_b, delivery index) -> drop?
type DropFilter = Box<dyn FnMut(&mut Segment, bool, u64) -> bool>;

fn ep(n: u32, port: u16) -> tas_repro::tcp::conn::EndpointInfo {
    tas_repro::tcp::conn::EndpointInfo {
        ip: Ipv4Addr::new(10, 0, 0, n as u8),
        port,
        mac: MacAddr::for_host(n),
    }
}

/// Splitmix-style generator: the fault schedule is a pure function of
/// the seed and the per-segment delivery index, so two runs with the
/// same seed see byte-identical fault schedules.
fn schedule_bits(seed: u64, idx: u64) -> u64 {
    let mut z = seed ^ idx.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A two-endpoint wire with one-way delay and a programmable fault
/// filter (same shape as the `tas-tcp` end-to-end harness).
struct Wire {
    a: TcpConn,
    b: TcpConn,
    now: SimTime,
    delay: SimTime,
    flight: Vec<(SimTime, bool, Segment)>,
    filter: DropFilter,
    seg_counter: u64,
}

impl Wire {
    fn connect_pair(cfg_a: TcpConfig, cfg_b: TcpConfig) -> Wire {
        let ea = ep(1, 4000);
        let eb = ep(2, 80);
        let now = SimTime::from_us(10);
        let delay = SimTime::from_us(25);
        let mut a = TcpConn::connect(now, cfg_a, ea, eb, 1_000_000);
        let syns = a.take_outgoing();
        assert_eq!(syns.len(), 1);
        assert!(syns[0].tcp.flags.contains(TcpFlags::SYN));
        let b = TcpConn::accept(now + delay, cfg_b, eb, ea, &syns[0], 2_000_000);
        Wire {
            a,
            b,
            now: now + delay,
            delay,
            flight: Vec::new(),
            filter: Box::new(|_, _, _| false),
            seg_counter: 0,
        }
    }

    fn collect(&mut self) {
        let delay = self.delay;
        for (is_a, conn) in [(true, &mut self.a), (false, &mut self.b)] {
            if conn.has_outgoing() {
                for seg in conn.take_outgoing() {
                    self.flight.push((self.now + delay, is_a, seg));
                }
            }
        }
    }

    /// Runs until both sides are quiescent or `deadline` passes.
    fn pump_until(&mut self, deadline: SimTime) {
        loop {
            self.collect();
            let next_flight = self.flight.iter().map(|f| f.0).min();
            let next_timer = [self.a.next_timer(), self.b.next_timer()]
                .into_iter()
                .flatten()
                .min();
            let next = match (next_flight, next_timer) {
                (Some(f), Some(t)) => f.min(t),
                (Some(f), None) => f,
                (None, Some(t)) => t,
                (None, None) => break,
            };
            if next > deadline {
                break;
            }
            self.now = self.now.max(next);
            let mut due: Vec<(SimTime, bool, Segment)> = Vec::new();
            let mut i = 0;
            while i < self.flight.len() {
                if self.flight[i].0 <= self.now {
                    due.push(self.flight.remove(i));
                } else {
                    i += 1;
                }
            }
            due.sort_by_key(|d| d.0);
            for (_, to_b, mut seg) in due {
                let idx = self.seg_counter;
                self.seg_counter += 1;
                if (self.filter)(&mut seg, to_b, idx) {
                    continue;
                }
                if to_b {
                    self.b.on_segment(self.now, seg);
                } else {
                    self.a.on_segment(self.now, seg);
                }
            }
            if let Some(t) = self.a.next_timer() {
                if t <= self.now {
                    self.a.on_timer(self.now);
                    self.a.poll(self.now);
                }
            }
            if let Some(t) = self.b.next_timer() {
                if t <= self.now {
                    self.b.on_timer(self.now);
                    self.b.poll(self.now);
                }
            }
            let _ = self.a.take_events();
            let _ = self.b.take_events();
        }
    }

    fn pump(&mut self) {
        let deadline = self.now + SimTime::from_ms(50);
        self.pump_until(deadline);
    }
}

fn established_pair(cfg: TcpConfig) -> Wire {
    let mut w = Wire::connect_pair(cfg.clone(), cfg);
    w.pump_until(w.now + SimTime::from_secs(1));
    assert_eq!(w.a.state(), TcpState::Established);
    assert_eq!(w.b.state(), TcpState::Established);
    w
}

/// The oracle byte stream: a closed-form function of position and seed,
/// so the receiver-side check needs no copy of the sent buffer.
fn oracle_byte(seed: u64, i: usize) -> u8 {
    (schedule_bits(seed, i as u64 / 64) >> ((i % 64) / 8 * 8)) as u8
}

fn oracle_stream(seed: u64, len: usize) -> Vec<u8> {
    (0..len).map(|i| oracle_byte(seed, i)).collect()
}

/// Drives `len` oracle bytes a→b under the wire's current filter and
/// returns what `b`'s reassembler delivered. Panics if the transfer
/// stalls (frontier stopped advancing for a full simulated minute).
fn transfer(w: &mut Wire, seed: u64, len: usize) -> Vec<u8> {
    let data = oracle_stream(seed, len);
    let mut sent = 0;
    let mut received = Vec::new();
    let deadline = w.now + SimTime::from_secs(60);
    while received.len() < len {
        if sent < len {
            sent += w.a.send(&data[sent..]);
            w.a.poll(w.now);
        }
        w.pump();
        received.extend(w.b.recv(usize::MAX));
        w.b.poll(w.now);
        assert!(w.now < deadline, "transfer stalled at {}/{len}", received.len());
    }
    received
}

// ---------------------------------------------------------------------------
// RecvRel: the reassembler frontier.
// ---------------------------------------------------------------------------

#[test]
fn recvrel_frontier_is_exactly_once_under_seeded_loss() {
    // Seeded loss + reordering through retransmission: the frontier must
    // deliver the oracle stream exactly once, in order, for every seed.
    for seed in [0x5eed_0001u64, 0x5eed_0002, 0x5eed_0003] {
        let mut w = established_pair(TcpConfig::default());
        w.filter = Box::new(move |seg, to_b, idx| {
            // Drop ~3% of a→b data segments; never the handshake or ACKs.
            to_b && !seg.payload.is_empty() && schedule_bits(seed, idx) % 1000 < 30
        });
        let len = 120_000;
        let got = transfer(&mut w, seed, len);
        assert_eq!(got.len(), len, "seed {seed:#x}: frontier short");
        assert_eq!(got, oracle_stream(seed, len), "seed {seed:#x}: bytes mangled");
        assert_eq!(
            w.b.stats.bytes_received, len as u64,
            "seed {seed:#x}: duplicate delivery past the frontier"
        );
    }
}

#[test]
fn recvrel_frontier_survives_overlapping_retransmits() {
    // A periodic drop schedule makes retransmissions overlap data the
    // receiver already buffered out of order (a retransmitted segment is
    // cut at a different boundary than the originals). The frontier must
    // absorb the overlap without double delivery — and without stranding
    // reassembler chunks below `rcv_off`, the corner this schedule
    // originally exposed in the reference engine.
    let seed = 0xd0d0_u64;
    let mut w = established_pair(TcpConfig::default());
    let dropped: Rc<Cell<u64>> = Rc::new(Cell::new(0));
    let d = Rc::clone(&dropped);
    w.filter = Box::new(move |seg, to_b, idx| {
        if to_b && !seg.payload.is_empty() && idx % 40 == 7 {
            d.set(d.get() + 1);
            return true;
        }
        false
    });
    let len = 80_000;
    let got = transfer(&mut w, seed, len);
    assert_eq!(got, oracle_stream(seed, len));
    assert!(dropped.get() > 0, "schedule must exercise the retransmit path");
    assert_eq!(w.b.stats.bytes_received, len as u64);
}

// ---------------------------------------------------------------------------
// SendRel: the retransmit schedule.
// ---------------------------------------------------------------------------

#[test]
fn sendrel_clean_pipe_retransmits_nothing() {
    let mut w = established_pair(TcpConfig::default());
    let len = 100_000;
    let got = transfer(&mut w, 0xc1ea0_u64, len);
    assert_eq!(got.len(), len);
    assert_eq!(w.a.stats.retransmits, 0, "clean pipe: zero retransmits");
    assert_eq!(w.a.stats.fast_retransmits, 0);
    assert_eq!(w.a.stats.timeouts, 0);
}

/// One lossy run reduced to its retransmit schedule.
#[derive(Debug, PartialEq, Eq)]
struct SendSchedule {
    segs_out: u64,
    retransmits: u64,
    fast_retransmits: u64,
    timeouts: u64,
    dropped: u64,
}

fn lossy_run(seed: u64, len: usize) -> SendSchedule {
    let mut w = established_pair(TcpConfig::default());
    let dropped: Rc<Cell<u64>> = Rc::new(Cell::new(0));
    let d = Rc::clone(&dropped);
    w.filter = Box::new(move |seg, to_b, idx| {
        if to_b && !seg.payload.is_empty() && schedule_bits(seed ^ 0xbad, idx) % 1000 < 25 {
            d.set(d.get() + 1);
            return true;
        }
        false
    });
    let got = transfer(&mut w, seed, len);
    assert_eq!(got, oracle_stream(seed, len), "loss must not corrupt the frontier");
    SendSchedule {
        segs_out: w.a.stats.segs_out,
        retransmits: w.a.stats.retransmits,
        fast_retransmits: w.a.stats.fast_retransmits,
        timeouts: w.a.stats.timeouts,
        dropped: dropped.get(),
    }
}

#[test]
fn sendrel_retransmit_schedule_covers_losses_and_is_reproducible() {
    let len = 120_000;
    let first = lossy_run(0x1055_u64, len);
    assert!(first.dropped > 0, "the seeded schedule must actually drop");
    assert!(
        first.retransmits >= 1,
        "dropped data forces retransmission: {first:?}"
    );
    assert!(
        first.retransmits + 4 >= first.dropped / 8,
        "retransmits must track the drop count: {first:?}"
    );
    // Differential re-run: the schedule is a pure function of the seed.
    let second = lossy_run(0x1055_u64, len);
    assert_eq!(first, second, "retransmit schedule must be seed-deterministic");
    // A different seed produces a different schedule (the fault
    // injection is live, not vacuous).
    let other = lossy_run(0x2055_u64, len);
    assert_ne!(
        (first.retransmits, first.dropped),
        (other.retransmits, other.dropped),
        "distinct seeds should yield distinct schedules: {first:?} vs {other:?}"
    );
}

// ---------------------------------------------------------------------------
// CongCtrl: cwnd trajectory per CC implementation.
// ---------------------------------------------------------------------------

/// Runs an ECN-marked transfer and samples the sender cwnd after every
/// pump slice: the congestion-control component's observable trajectory.
fn cwnd_trajectory(kind: CcKind, seed: u64, len: usize) -> Vec<(u64, u32)> {
    let cfg = TcpConfig {
        cc: kind,
        ecn: true,
        ..TcpConfig::default()
    };
    let mut w = established_pair(cfg);
    w.filter = Box::new(move |seg, to_b, idx| {
        // CE-mark ~8% of a→b data segments (switch-style marking).
        if to_b
            && !seg.payload.is_empty()
            && seg.ip.ecn == Ecn::Ect0
            && schedule_bits(seed ^ 0xce, idx) % 1000 < 80
        {
            seg.ip.ecn = Ecn::Ce;
        }
        false
    });
    let data = oracle_stream(seed, len);
    let mut sent = 0;
    let mut received = 0usize;
    let mut traj: Vec<(u64, u32)> = Vec::new();
    let deadline = w.now + SimTime::from_secs(60);
    while received < len {
        if sent < len {
            sent += w.a.send(&data[sent..]);
            w.a.poll(w.now);
        }
        // Fine-grained slices (~1 RTT) so the trajectory resolves
        // individual congestion responses, not just the endpoints.
        let slice_end = w.now + SimTime::from_us(50);
        w.pump_until(slice_end);
        if w.now < slice_end {
            w.now = slice_end;
        }
        received += w.b.recv(usize::MAX).len();
        w.b.poll(w.now);
        // Record changes only: the trajectory is the sequence of
        // (time, cwnd) transitions.
        if traj.last().map(|&(_, c)| c) != Some(w.a.cwnd()) {
            traj.push((w.now.as_micros(), w.a.cwnd()));
        }
        assert!(w.now < deadline, "transfer stalled at {received}/{len}");
    }
    traj
}

#[test]
fn congctrl_trajectories_are_seed_deterministic_per_impl() {
    let len = 400_000;
    for kind in [CcKind::NewReno, CcKind::Dctcp, CcKind::Timely] {
        let a = cwnd_trajectory(kind, 0xcc_0001, len);
        let b = cwnd_trajectory(kind, 0xcc_0001, len);
        assert_eq!(a, b, "{kind:?}: cwnd trajectory must be bit-reproducible");
        assert!(a.len() > 4, "{kind:?}: trajectory too short to be meaningful: {a:?}");
    }
}

#[test]
fn congctrl_ecn_response_separates_newreno_and_dctcp() {
    // Under the same seeded CE-marking schedule, NewReno (halve per
    // ECE round trip) and DCTCP (alpha-proportional backoff) must
    // produce observably different cwnd trajectories.
    let len = 400_000;
    let reno = cwnd_trajectory(CcKind::NewReno, 0xcc_0002, len);
    let dctcp = cwnd_trajectory(CcKind::Dctcp, 0xcc_0002, len);
    assert_ne!(
        reno, dctcp,
        "NewReno and DCTCP must react differently to CE marks"
    );
    // Both react to marks at all: neither trajectory is monotone
    // non-decreasing (a pure slow-start ramp would be).
    for (name, traj) in [("NewReno", &reno), ("DCTCP", &dctcp)] {
        assert!(
            traj.windows(2).any(|w| w[1].1 < w[0].1),
            "{name}: CE marks must shrink cwnd at least once: {traj:?}"
        );
    }
}
