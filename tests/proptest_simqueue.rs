//! Property tests for the hierarchical timing-wheel event queue: under
//! arbitrary push / cancel / pop interleavings — same-timestamp ties,
//! delays spanning every wheel level and the overflow heap, stale and
//! duplicate cancellations — the wheel must dispatch exactly the sequence
//! of the retained reference implementation, the global binary heap
//! ([`HeapQueue`]), and agree with it on every observable (peek, length,
//! cancel outcome) at every step.

use proptest::prelude::*;
use tas_repro::sim::{EventQueue, HeapQueue, SimTime};

#[derive(Debug, Clone)]
enum QOp {
    /// Push at `now + delay` (delays drawn from mixed horizons so entries
    /// land in every wheel level and the overflow heap).
    Push(u64),
    /// Push at exactly the previous push's timestamp: a dispatch-order tie
    /// that must break by insertion order in both engines.
    PushTie,
    /// Cancel the i-th handle issued so far (mod count): sometimes live,
    /// sometimes already dispatched or already cancelled — both engines
    /// must agree on the outcome either way.
    Cancel(usize),
    /// Pop up to n events, advancing the clock.
    Pop(u8),
}

fn arb_ops() -> impl Strategy<Value = Vec<QOp>> {
    proptest::collection::vec(
        prop_oneof![
            // Mixed horizons: ~ns within level 0 up to seconds-scale
            // delays that park in the overflow heap.
            (0u8..4, any::<u64>()).prop_map(|(h, raw)| {
                let caps = [1_000u64, 1_000_000, 2_000_000_000, 10_000_000_000_000];
                QOp::Push(raw % caps[h as usize])
            }),
            Just(QOp::PushTie),
            any::<usize>().prop_map(QOp::Cancel),
            (1u8..8).prop_map(QOp::Pop),
        ],
        1..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The wheel and the heap reference dispatch identical (time, payload)
    /// sequences and agree on peek/len/cancel at every step.
    #[test]
    fn wheel_matches_heap_reference(ops in arb_ops()) {
        let mut wheel: EventQueue<u64> = EventQueue::new();
        let mut heap: HeapQueue<u64> = HeapQueue::new();
        let mut handles = Vec::new();
        let mut now = 0u64;
        let mut last_at = 0u64;
        for (i, op) in ops.into_iter().enumerate() {
            match op {
                QOp::Push(delay) => {
                    last_at = now + delay;
                    let at = SimTime::from_ps(last_at);
                    handles.push((wheel.push(at, i as u64), heap.push(at, i as u64)));
                }
                QOp::PushTie => {
                    let at = SimTime::from_ps(last_at.max(now));
                    handles.push((wheel.push(at, i as u64), heap.push(at, i as u64)));
                }
                QOp::Cancel(j) => {
                    if !handles.is_empty() {
                        let (w, h) = handles[j % handles.len()];
                        prop_assert_eq!(wheel.cancel(w), heap.cancel(h));
                    }
                }
                QOp::Pop(n) => {
                    for _ in 0..n {
                        let (w, h) = (wheel.pop(), heap.pop());
                        prop_assert_eq!(w, h);
                        match w {
                            Some((t, _)) => now = now.max(t.as_ps()),
                            None => break,
                        }
                    }
                }
            }
            prop_assert_eq!(wheel.live_len(), heap.live_len());
            prop_assert_eq!(wheel.is_empty(), heap.is_empty());
            prop_assert_eq!(wheel.peek_time(), heap.peek_time());
        }
        // Drain to exhaustion: every remaining live event must come out of
        // both engines in the same order with the same key and payload.
        loop {
            let (w, h) = (wheel.pop(), heap.pop());
            prop_assert_eq!(w, h);
            if w.is_none() {
                break;
            }
        }
        prop_assert!(wheel.is_empty() && heap.is_empty());
    }
}
