//! Property tests: the wire codec is a faithful inverse of the structured
//! segment representation, and corruption never passes validation.

use proptest::prelude::*;
use std::net::Ipv4Addr;
use tas_repro::proto::{wire, Ecn, MacAddr, ParseError, Segment, TcpFlags, TcpHeader};

fn arb_flags() -> impl Strategy<Value = TcpFlags> {
    // Any combination of real flag bits.
    (0u8..=0xff).prop_map(TcpFlags)
}

fn arb_segment() -> impl Strategy<Value = Segment> {
    (
        (any::<u32>(), any::<u32>(), any::<u16>(), any::<u16>()), // addressing
        (any::<u32>(), any::<u32>(), arb_flags(), any::<u16>()),  // seq/ack/flags/window
        (
            proptest::option::of(any::<u16>()),        // mss
            proptest::option::of(0u8..15),             // wscale
            proptest::option::of(any::<(u32, u32)>()), // timestamp
            proptest::option::of(any::<(u32, u32)>()), // sack block
            any::<bool>(),                             // sack permitted
        ),
        0u8..=3,                                        // ecn bits
        proptest::collection::vec(any::<u8>(), 0..600), // payload
    )
        .prop_map(
            |(
                (sip, dip, sp, dp),
                (seq, ack, flags, window),
                (mss, ws, ts, sack, sp2),
                ecn,
                payload,
            )| {
                let mut tcp = TcpHeader::new(sp, dp, seq, ack, flags);
                tcp.window = window;
                tcp.options.mss = mss;
                tcp.options.wscale = ws;
                tcp.options.timestamp = ts;
                tcp.options.sack_block = sack;
                tcp.options.sack_permitted = sp2;
                let mut seg = Segment::tcp(
                    MacAddr::for_host(1),
                    MacAddr::for_host(2),
                    Ipv4Addr::from(sip),
                    Ipv4Addr::from(dip),
                    tcp,
                    payload,
                    false,
                );
                seg.ip.ecn = Ecn::from_bits(ecn);
                seg
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// serialize ∘ parse is the identity on structured segments.
    #[test]
    fn wire_round_trip(seg in arb_segment()) {
        let bytes = wire::serialize(&seg);
        prop_assert_eq!(bytes.len(), seg.wire_len());
        let back = wire::parse(&bytes).expect("own serialization must parse");
        prop_assert_eq!(back, seg);
    }

    /// Flipping any single byte is always detected (checksum or framing),
    /// or parses to a *different* packet only when the flip is outside
    /// both checksummed regions — which for Ethernet/IPv4/TCP means never.
    #[test]
    fn single_byte_corruption_detected(seg in arb_segment(), idx in any::<prop::sample::Index>(), bit in 0u8..8) {
        let bytes = wire::serialize(&seg);
        let mut corrupted = bytes.clone();
        let i = idx.index(corrupted.len());
        corrupted[i] ^= 1 << bit;
        match wire::parse(&corrupted) {
            Err(_) => {} // Detected: good.
            Ok(parsed) => {
                // Only the Ethernet header is not covered by a checksum;
                // any accepted parse must differ only in Ethernet fields.
                prop_assert!(i < 14, "undetected corruption at byte {i}");
                prop_assert_eq!(parsed.ip, seg.ip);
                prop_assert_eq!(parsed.tcp, seg.tcp);
                prop_assert_eq!(parsed.payload, seg.payload);
            }
        }
    }

    /// Truncation at any point never panics and never yields a full parse
    /// of the original length.
    #[test]
    fn truncation_never_panics(seg in arb_segment(), cut in any::<prop::sample::Index>()) {
        let bytes = wire::serialize(&seg);
        let n = cut.index(bytes.len());
        match wire::parse(&bytes[..n]) {
            Err(ParseError::Truncated) | Err(ParseError::BadChecksum) | Err(ParseError::Unsupported) | Err(ParseError::BadOptions) => {}
            Ok(p) => {
                // A shorter valid parse can only happen if the IP total
                // length already fit in the truncated slice; then payload
                // must be a prefix.
                prop_assert!(p.payload.len() <= seg.payload.len());
            }
        }
    }

    /// Sequence-space arithmetic is consistent: in_window agrees with the
    /// ordering primitives.
    #[test]
    fn seq_window_consistent(lo in any::<u32>(), len in 1u32..1_000_000, delta in 0u32..2_000_000) {
        use tas_repro::proto::tcp::seq;
        let x = lo.wrapping_add(delta);
        prop_assert_eq!(seq::in_window(x, lo, len), delta < len);
        if delta > 0 && delta < u32::MAX / 2 {
            prop_assert!(seq::gt(x, lo) || delta == 0);
        }
    }
}
