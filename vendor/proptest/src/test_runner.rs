//! Test configuration and the deterministic case RNG.

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic generator driving all strategies: xoshiro256++ seeded
/// via SplitMix64 (the same construction as `tas_sim::Rng`, duplicated
/// here so the shim stays dependency-free).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)` (Lemire rejection).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

/// The RNG for case `case` of the test named `test`: a stable function
/// of both, so every run of the suite generates identical inputs.
pub fn case_rng(test: &str, case: u32) -> TestRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    TestRng::new(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_rng_is_stable_and_distinct() {
        let a: Vec<u64> = (0..8).map(|_| case_rng("t", 0).next_u64()).collect();
        assert!(a.windows(2).all(|w| w[0] == w[1]));
        assert_ne!(case_rng("t", 0).next_u64(), case_rng("t", 1).next_u64());
        assert_ne!(case_rng("t", 0).next_u64(), case_rng("u", 0).next_u64());
    }

    #[test]
    fn below_bounds() {
        let mut r = TestRng::new(1);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
