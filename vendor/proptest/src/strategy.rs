//! The [`Strategy`] trait and the primitive strategy types.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree: a strategy simply draws
/// a fresh value from the RNG (no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value with `self`, then generates from the strategy
    /// `f` returns for it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the strategy type (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between same-valued strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; `arms` must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy ([`any`]).
pub trait ArbitraryValue {
    /// Draws an unconstrained value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// `any::<T>()`: the full-range strategy for `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! arbitrary_ints {
    ($($t:ty),+) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for u128 {
    fn arbitrary_value(rng: &mut TestRng) -> u128 {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl<T: ArbitraryValue, const N: usize> ArbitraryValue for [T; N] {
    fn arbitrary_value(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary_value(rng))
    }
}

macro_rules! arbitrary_tuples {
    ($($name:ident),+) => {
        impl<$($name: ArbitraryValue),+> ArbitraryValue for ($($name,)+) {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                ($($name::arbitrary_value(rng),)+)
            }
        }
    };
}
arbitrary_tuples!(A);
arbitrary_tuples!(A, B);
arbitrary_tuples!(A, B, C);
arbitrary_tuples!(A, B, C, D);
arbitrary_tuples!(A, B, C, D, E);
arbitrary_tuples!(A, B, C, D, E, F);

// Integer ranges double as strategies, exactly as in real proptest.
macro_rules! range_strategies {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )+};
}
range_strategies!(u8, u16, u32, u64, usize);

macro_rules! strategy_tuples {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
strategy_tuples!(A: 0);
strategy_tuples!(A: 0, B: 1);
strategy_tuples!(A: 0, B: 1, C: 2);
strategy_tuples!(A: 0, B: 1, C: 2, D: 3);
strategy_tuples!(A: 0, B: 1, C: 2, D: 3, E: 4);
strategy_tuples!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
strategy_tuples!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
strategy_tuples!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
strategy_tuples!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8);
strategy_tuples!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = case_rng("strategy::ranges", 0);
        for _ in 0..1000 {
            let v = (5u32..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let w = (3u8..=9).generate(&mut rng);
            assert!((3..=9).contains(&w));
        }
    }

    #[test]
    fn full_inclusive_range_does_not_overflow() {
        let mut rng = case_rng("strategy::full", 0);
        for _ in 0..100 {
            let _ = (0u64..=u64::MAX).generate(&mut rng);
            let _ = (0u8..=0xff).generate(&mut rng);
        }
    }

    #[test]
    fn map_and_union_compose() {
        let mut rng = case_rng("strategy::compose", 0);
        let s = crate::prop_oneof![
            (0u32..10).prop_map(|v| v * 2),
            Just(1u32),
        ];
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v == 1 || (v % 2 == 0 && v < 20));
        }
    }

    #[test]
    fn generation_is_deterministic_per_case() {
        let s = crate::collection::vec(0u64..1_000_000, 1..50);
        let a = s.generate(&mut case_rng("strategy::det", 7));
        let b = s.generate(&mut case_rng("strategy::det", 7));
        let c = s.generate(&mut case_rng("strategy::det", 8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
