//! Sampling helpers (`prop::sample::Index`).

use crate::strategy::ArbitraryValue;
use crate::test_runner::TestRng;

/// A position into a collection whose length is only known at use time:
/// `index(len)` maps the drawn raw value uniformly into `0..len`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Index(usize);

impl Index {
    /// The in-bounds index this value selects for a collection of
    /// `len` elements.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        self.0 % len
    }
}

impl ArbitraryValue for Index {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        Index(rng.next_u64() as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{any, Strategy};
    use crate::test_runner::case_rng;

    #[test]
    fn index_is_always_in_bounds() {
        let mut rng = case_rng("sample::index", 0);
        for len in [1usize, 2, 7, 1000] {
            for _ in 0..50 {
                let idx = any::<Index>().generate(&mut rng);
                assert!(idx.index(len) < len);
            }
        }
    }
}
