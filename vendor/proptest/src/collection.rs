//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A size specification for collection strategies: a fixed length or a
/// half-open range of lengths.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length
/// falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + if span > 1 { rng.below(span) as usize } else { 0 };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn vec_respects_size_range() {
        let mut rng = case_rng("collection::size", 0);
        let s = vec(0u8..10, 3..9);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((3..9).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 10));
        }
        let fixed = vec(0u8..10, 4);
        assert_eq!(fixed.generate(&mut rng).len(), 4);
    }
}
