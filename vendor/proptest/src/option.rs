//! Option strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `None` about a quarter of the time, `Some(inner)` otherwise
/// (matching real proptest's default weighting).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn of_produces_both_variants() {
        let mut rng = case_rng("option::of", 0);
        let s = of(0u32..100);
        let vals: Vec<Option<u32>> = (0..200).map(|_| s.generate(&mut rng)).collect();
        assert!(vals.iter().any(|v| v.is_none()));
        assert!(vals.iter().any(|v| v.is_some()));
    }
}
