//! Offline shim of the [proptest](https://docs.rs/proptest) API.
//!
//! The build environment has no network access and no vendored crate
//! registry, so this workspace carries a small, self-contained
//! re-implementation of exactly the proptest surface the test suite
//! uses: the [`Strategy`] trait with `prop_map`, integer-range / tuple /
//! collection / option / union strategies, [`any`] over the common
//! `Arbitrary` types, `sample::Index`, and the `proptest!` /
//! `prop_assert*` / `prop_oneof!` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case prints the generated inputs and
//!   re-panics; it is not minimized.
//! * **Deterministic generation.** Case `i` of a test derives its RNG
//!   seed from the test's module path and `i`, so runs are bit-for-bit
//!   reproducible without a persistence file.
//! * **Regression files are not consumed.** The checked-in
//!   `*.proptest-regressions` seeds are instead replayed by named unit
//!   tests next to the properties they shrank from (the recorded shrunk
//!   values are part of those files).

pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// item expands to a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $cfg:expr;) => {};
    (config = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let __test = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::case_rng(__test, __case);
                let mut __inputs = String::new();
                $(
                    let __value = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    __inputs.push_str(stringify!($arg));
                    __inputs.push_str(" = ");
                    __inputs.push_str(&format!("{:?}, ", &__value));
                    let $arg = __value;
                )+
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || $body),
                );
                if let Err(__panic) = __outcome {
                    eprintln!(
                        "proptest shim: {} failed at case {}/{} with inputs: {}",
                        __test, __case, __cfg.cases, __inputs
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", ..)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// `prop_assert_eq!(a, b)` with an optional message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

/// `prop_assert_ne!(a, b)` with an optional message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

/// `prop_assume!(cond)`: silently skips the current case when false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// `prop_oneof![a, b, c]`: picks one of the strategies uniformly per
/// generated value. All arms must share a `Value` type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}
