//! Offline shim of the [criterion](https://docs.rs/criterion) API used
//! by `tas-bench`'s microbenchmarks.
//!
//! Runs each benchmark closure for the configured measurement time and
//! reports mean wall-clock nanoseconds per iteration — no statistical
//! machinery, plots, or baselines. Enough to keep `cargo bench` and
//! `cargo clippy --all-targets` working without network access.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Accepted for API compatibility; the shim ignores sample counts.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Times `f` and prints mean ns/iter.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
            budget: self.warm_up,
        };
        f(&mut b); // Warm-up pass, discarded.
        b.iters = 0;
        b.elapsed = Duration::ZERO;
        b.budget = self.measurement;
        f(&mut b);
        let per_iter = if b.iters > 0 {
            b.elapsed.as_nanos() as f64 / b.iters as f64
        } else {
            f64::NAN
        };
        println!("{name:40} {per_iter:12.1} ns/iter ({} iters)", b.iters);
        self
    }
}

/// Passed to benchmark closures; `iter` runs the routine repeatedly
/// until the time budget is spent.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    budget: Duration,
}

impl Bencher {
    /// Repeatedly invokes `routine`, accumulating timing.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        loop {
            let t = Instant::now();
            std::hint::black_box(routine());
            self.elapsed += t.elapsed();
            self.iters += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
    }
}

/// Re-export matching criterion's convenience.
pub use std::hint::black_box;

/// Declares a benchmark group as a function running each target.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
