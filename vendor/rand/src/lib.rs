//! Offline shim of the [rand](https://docs.rs/rand) crate.
//!
//! The workspace's simulation code deliberately uses its own
//! deterministic generator (`tas_sim::Rng`); this crate exists only so
//! the dependency graph resolves without network access. It provides a
//! minimal `Rng` trait and a seedable [`SmallRng`] for any ad-hoc use.

/// Minimal subset of rand's `Rng` interface.
pub trait Rng {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Uniform value in `[0, bound)`.
    fn gen_range_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift; bias is negligible for the shim's uses.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// SplitMix64: tiny, seedable, and good enough for non-cryptographic use.
#[derive(Clone, Debug)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SmallRng { state: seed }
    }
}

impl Rng for SmallRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_bounded() {
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        assert_eq!(a.next_u64(), b.next_u64());
        for _ in 0..100 {
            assert!(a.gen_range_u64(13) < 13);
        }
    }
}
