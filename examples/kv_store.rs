//! Key-value store walkthrough: the same memcached-like server binary
//! running over TAS and over the Linux-model stack, with throughput and
//! latency side by side (the paper's §5.3 workload in miniature).
//!
//! Run with: `cargo run --release --example kv_store`

use tas_repro::apps::kv::{KvClient, KvLoad, KvServer};
use tas_repro::baselines::{profiles, StackHost, StackHostConfig};
use tas_repro::netsim::app::App;
use tas_repro::netsim::topo::{build_star, host_ip, HostSpec};
use tas_repro::netsim::{NetMsg, NicConfig, PortConfig};
use tas_repro::sim::{AgentId, Sim, SimTime};
use tas_repro::tas::{TasConfig, TasHost};

#[derive(Clone, Copy, PartialEq)]
enum Stack {
    Tas,
    Linux,
}

fn run(stack: Stack) -> (f64, f64, f64) {
    let mut sim: Sim<NetMsg> = Sim::new(7);
    let server_ip = host_ip(0);
    let mut factory = move |sim: &mut Sim<NetMsg>, spec: HostSpec| -> AgentId {
        if spec.index == 0 {
            // The server: 100k keys, zipf(0.9), 90% GETs — once clients
            // populate it.
            let app: Box<dyn App> = Box::new(KvServer::new(11211));
            match stack {
                Stack::Tas => {
                    let cfg = TasConfig::rpc_bench(2, 2);
                    sim.add_agent(Box::new(TasHost::new(
                        spec.ip,
                        spec.mac,
                        spec.nic,
                        cfg,
                        spec.uplink,
                        app,
                    )))
                }
                Stack::Linux => sim.add_agent(Box::new(StackHost::new(
                    spec.ip,
                    spec.mac,
                    spec.nic,
                    profiles::linux(),
                    StackHostConfig::linux(4),
                    spec.uplink,
                    app,
                ))),
            }
        } else {
            // Clients always run on TAS (they are not under test).
            let app: Box<dyn App> = Box::new(KvClient::new(
                server_ip,
                11211,
                64,
                100_000,
                KvLoad::Closed,
                spec.index as u64,
            ));
            let cfg = TasConfig::rpc_bench(2, 2);
            sim.add_agent(Box::new(TasHost::new(
                spec.ip,
                spec.mac,
                spec.nic,
                cfg,
                spec.uplink,
                app,
            )))
        }
    };
    let topo = build_star(
        &mut sim,
        3,
        |i| {
            if i == 0 {
                PortConfig::fortygig()
            } else {
                PortConfig::tengig()
            }
        },
        |i| {
            if i == 0 {
                NicConfig::server_40g(1)
            } else {
                NicConfig::client_10g(1)
            }
        },
        &mut factory,
    );
    for &h in &topo.hosts {
        sim.inject_timer(SimTime::ZERO, h, 0, 0);
    }
    let warmup = SimTime::from_ms(20);
    let window = SimTime::from_ms(30);
    sim.run_until(warmup);
    let done0: u64 = topo.hosts[1..]
        .iter()
        .map(|&h| sim.agent::<TasHost>(h).app_as::<KvClient>().done)
        .sum();
    for &h in &topo.hosts[1..] {
        sim.agent_mut::<TasHost>(h)
            .app_as_mut::<KvClient>()
            .measure_from = warmup;
    }
    sim.run_until(warmup + window);
    let mut hist = tas_repro::sim::Histogram::new();
    let mut done1 = 0;
    for &h in &topo.hosts[1..] {
        let c = sim.agent::<TasHost>(h).app_as::<KvClient>();
        done1 += c.done;
        hist.merge(&c.latency);
    }
    let mops = (done1 - done0) as f64 / window.as_secs_f64() / 1e6;
    (
        mops,
        hist.quantile(0.5) as f64 / 1000.0,
        hist.quantile(0.99) as f64 / 1000.0,
    )
}

fn main() {
    println!("key-value store, 128 closed-loop connections, 2 client machines");
    println!(
        "{:<8} {:>10} {:>12} {:>12}",
        "stack", "mOps/s", "p50 [us]", "p99 [us]"
    );
    let (tm, tp50, tp99) = run(Stack::Tas);
    println!("{:<8} {tm:>10.2} {tp50:>12.1} {tp99:>12.1}", "TAS");
    let (lm, lp50, lp99) = run(Stack::Linux);
    println!("{:<8} {lm:>10.2} {lp50:>12.1} {lp99:>12.1}", "Linux");
    println!();
    println!(
        "TAS/Linux throughput: {:.1}x (paper §5.3: up to 7x with sockets)",
        tm / lm
    );
    assert!(tm > lm, "TAS should outperform the Linux model");
}
