//! Wire-format walkthrough: build a TCP segment, serialize it to bytes
//! with real checksums, corrupt it, and watch validation catch it.
//!
//! Run with: `cargo run --release --example wire_format`

use std::net::Ipv4Addr;
use tas_repro::proto::{wire, MacAddr, Segment, TcpFlags, TcpHeader};

fn main() {
    // A SYN with the options TAS's slow path negotiates.
    let mut tcp = TcpHeader::new(40_000, 80, 0x1000_0000, 0, TcpFlags::SYN);
    tcp.flags |= TcpFlags::ECE | TcpFlags::CWR; // ECN negotiation.
    tcp.options.mss = Some(1448);
    tcp.options.wscale = Some(7);
    tcp.options.timestamp = Some((123_456, 0));
    tcp.window = 16_384;
    let seg = Segment::tcp(
        MacAddr::for_host(1),
        MacAddr::for_host(2),
        Ipv4Addr::new(10, 0, 0, 1),
        Ipv4Addr::new(10, 0, 0, 2),
        tcp,
        Vec::new(),
        false,
    );

    let bytes = wire::serialize(&seg);
    println!("segment: {} wire bytes", bytes.len());
    println!("  eth {:02x?}", &bytes[..14]);
    println!("  ip  {:02x?}", &bytes[14..34]);
    println!("  tcp {:02x?}", &bytes[34..]);

    // Round trip: everything (flags, options, checksums) survives.
    let parsed = wire::parse(&bytes).expect("valid packet parses");
    assert_eq!(parsed, seg);
    println!("round-trip parse: OK (headers, options and checksums verified)");

    // A single flipped payload/header bit fails the checksum.
    let mut corrupted = bytes.clone();
    corrupted[40] ^= 0x01; // Inside the TCP header.
    match wire::parse(&corrupted) {
        Err(e) => println!("corrupted segment rejected: {e}"),
        Ok(_) => unreachable!("corruption must not parse"),
    }

    // The simulator passes structured segments for speed; this codec is
    // the proof they are wire-equivalent (see tests/proptest_wire.rs).
    println!("flow key: {}", seg.flow_key());
}
