//! Workload proportionality walkthrough: TAS as an *OS service*.
//!
//! The paper's central operational claim (§3.4) is that TAS behaves like
//! an operating-system component, not a dedicated appliance: fast-path
//! cores are added when aggregate idle time drops below 0.2 cores,
//! removed above 1.25, and a core with no packets for 10 ms blocks
//! instead of spinning. This example steps key-value load up and back
//! down and prints the fast-path core staircase that results.
//!
//! Run with: `cargo run --release --example proportionality`

use tas_repro::apps::kv::{self, KvServer};
use tas_repro::apps::loadgen::{timers as lg_timers, LoadGenConfig, LoadGenHost};
use tas_repro::netsim::app::App;
use tas_repro::netsim::topo::{build_star, host_ip, HostSpec};
use tas_repro::netsim::{NetMsg, NicConfig, PortConfig};
use tas_repro::sim::{AgentId, Sim, SimTime};
use tas_repro::tas::host::timers as tas_timers;
use tas_repro::tas::{ApiKind, CcAlgo, TasConfig, TasHost};

fn main() {
    let mut sim: Sim<NetMsg> = Sim::new(7);
    let server_ip = host_ip(0);
    let clients = 4usize;
    let step = SimTime::from_ms(300);
    let total = step * (2 * clients as u64 + 1);

    let mut factory = move |sim: &mut Sim<NetMsg>, spec: HostSpec| -> AgentId {
        if spec.index == 0 {
            // A reduced server clock lets a handful of load generators
            // exercise several cores; the controller and its thresholds
            // are exactly the paper's.
            let cfg = TasConfig {
                freq_hz: 50_000_000,
                max_fp_cores: 8,
                initial_fp_cores: 1,
                app_cores: 8,
                api: ApiKind::Sockets,
                cc: CcAlgo::None,
                rx_buf: 4096,
                tx_buf: 4096,
                proportional: true,
                max_core_backlog: SimTime::from_ms(50),
                ..TasConfig::default()
            };
            let app: Box<dyn App> = Box::new(KvServer::new(7));
            sim.add_agent(Box::new(TasHost::new(
                spec.ip,
                spec.mac,
                spec.nic,
                cfg,
                spec.uplink,
                app,
            )))
        } else {
            let mut template = vec![0u8; kv::REQ_HDR + kv::VAL_SIZE];
            template[0] = kv::OP_GET;
            template[1..5].copy_from_slice(&1u32.to_be_bytes());
            let cfg = LoadGenConfig {
                server: server_ip,
                port: 7,
                conns: 80,
                think: SimTime::from_ms(1),
                req_size: template.len(),
                resp_size: kv::RESP_HDR + kv::VAL_SIZE,
                req_template: Some(template),
                stop_at: SimTime::ZERO,
                ..LoadGenConfig::default()
            };
            sim.add_agent(Box::new(LoadGenHost::new(
                spec.ip,
                spec.mac,
                spec.nic,
                spec.uplink,
                cfg,
            )))
        }
    };
    let topo = build_star(
        &mut sim,
        1 + clients,
        |i| {
            if i == 0 {
                PortConfig::fortygig()
            } else {
                PortConfig::tengig()
            }
        },
        |i| {
            if i == 0 {
                NicConfig::server_40g(1)
            } else {
                NicConfig::client_10g(1)
            }
        },
        &mut factory,
    );
    sim.inject_timer(SimTime::ZERO, topo.hosts[0], tas_timers::INIT, 0);
    // Clients arrive one per step and depart in reverse order.
    for (i, &h) in topo.hosts[1..].iter().enumerate() {
        sim.inject_timer(step * i as u64, h, lg_timers::INIT, 0);
        sim.agent_mut::<LoadGenHost>(h)
            .set_stop_at(total - step * (i as u64 + 1));
    }

    println!("stepped KV load against one TAS server (paper Fig. 14):");
    println!("{:<9} {:>7} {:>12}", "t [ms]", "cores", "kOps/s");
    let sample = SimTime::from_ms(100);
    let mut t = SimTime::ZERO;
    let mut prev_done = 0u64;
    let mut peak_cores = 0usize;
    while t < total {
        t += sample;
        sim.run_until(t);
        let done: u64 = topo.hosts[1..]
            .iter()
            .map(|&c| sim.agent::<LoadGenHost>(c).done)
            .sum();
        let cores = sim.agent::<TasHost>(topo.hosts[0]).active_fp_cores();
        peak_cores = peak_cores.max(cores);
        let kops = (done - prev_done) as f64 / sample.as_secs_f64() / 1e3;
        println!("{:<9} {cores:>7} {kops:>12.1}", t.as_millis());
        prev_done = done;
    }

    let server = sim.agent::<TasHost>(topo.hosts[0]);
    let final_cores = server.active_fp_cores();
    let scale_events = server
        .registry()
        .counter_value("host.scale_events", tas_repro::sim::Scope::Global);
    println!();
    println!(
        "peak {peak_cores} fast-path cores, back to {final_cores} after the load left \
         ({scale_events} controller actions)"
    );
    assert!(peak_cores >= 3, "load should have forced a multi-core ramp");
    assert_eq!(final_cores, 1, "idle service must shrink back to one core");
    println!("a dedicated-appliance stack would have pinned {peak_cores} cores forever;");
    println!("TAS returned them to the OS the moment the load went away (§3.4).");
}
