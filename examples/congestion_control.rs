//! Congestion-control walkthrough: rate-based DCTCP under incast.
//!
//! Four TAS hosts blast bulk data at one receiver through an ECN-marking
//! switch. The slow path's control loop reads per-flow ECN feedback from
//! the fast path every 2 RTTs and adjusts per-flow rate buckets; the fast
//! path enforces them. Watch the switch queue hover near the marking
//! threshold while every connection gets a fair share (§3.2, §5.5).
//!
//! Run with: `cargo run --release --example congestion_control`

use tas_repro::apps::bulk::{BulkReceiver, BulkSender};
use tas_repro::netsim::app::App;
use tas_repro::netsim::switch::TIMER_SAMPLE_QUEUE;
use tas_repro::netsim::topo::{build_star, host_ip, HostSpec};
use tas_repro::netsim::{NetMsg, NicConfig, PortConfig, Switch};
use tas_repro::sim::{AgentId, Sim, SimTime};
use tas_repro::tas::{CcAlgo, TasConfig, TasHost};

fn main() {
    let mut sim: Sim<NetMsg> = Sim::new(99);
    let recv_ip = host_ip(0);
    let senders = 4usize;
    let conns_per_sender = 8u32;
    let mut factory = move |sim: &mut Sim<NetMsg>, spec: HostSpec| -> AgentId {
        let mut cfg = TasConfig::rpc_bench(2, 2);
        cfg.cc = CcAlgo::DctcpRate; // The paper's default policy.
        cfg.initial_rate_bps = 200_000_000;
        cfg.control_interval = SimTime::from_us(200); // ~2 RTTs.
        cfg.rx_buf = 128 * 1024;
        cfg.tx_buf = 128 * 1024;
        cfg.max_core_backlog = SimTime::from_ms(50);
        let app: Box<dyn App> = if spec.index == 0 {
            Box::new(BulkReceiver::new(9).sampling(SimTime::from_ms(20), SimTime::from_ms(40)))
        } else {
            Box::new(BulkSender::new(recv_ip, 9, conns_per_sender))
        };
        sim.add_agent(Box::new(TasHost::new(
            spec.ip,
            spec.mac,
            spec.nic,
            cfg,
            spec.uplink,
            app,
        )))
    };
    let topo = build_star(
        &mut sim,
        1 + senders,
        |_| PortConfig::tengig(), // ECN marking threshold: 65 packets.
        |_| NicConfig::client_10g(1),
        &mut factory,
    );
    for &h in &topo.hosts {
        sim.inject_timer(SimTime::ZERO, h, 0, 0);
    }
    sim.agent_mut::<Switch>(topo.switch)
        .monitor_port(0, SimTime::from_us(50));
    sim.inject_timer(SimTime::from_ms(40), topo.switch, TIMER_SAMPLE_QUEUE, 0);

    sim.run_until(SimTime::from_ms(240));

    let recv = sim.agent::<TasHost>(topo.hosts[0]);
    let app = recv.app_as::<BulkReceiver>();
    let sw = sim.agent::<Switch>(topo.switch);
    let total_conns = senders as u32 * conns_per_sender;
    println!("incast: {senders} senders x {conns_per_sender} conns -> one 10G receiver");
    println!(
        "goodput        : {:.2} Gbps",
        app.total as f64 * 8.0 / 0.24 / 1e9
    );
    println!(
        "switch queue   : {:.1} packets average (ECN threshold 65)",
        sw.mean_queue_depth()
    );
    println!("CE marks       : {}", sw.total_marked());
    println!("drop-tail drops: {}", sw.total_drops());
    // Fairness: per-connection bytes per 20ms interval.
    let mut samples = app.interval_samples.clone();
    samples.sort_unstable();
    if !samples.is_empty() {
        let med = samples[samples.len() / 2];
        let p99 = samples[(samples.len() * 99 / 100).min(samples.len() - 1)];
        let fair = 9.4e9 / 8.0 * 0.02 / total_conns as f64;
        println!(
            "per-conn bytes/20ms: median {med} (fair share {fair:.0}), p99/median {:.2}",
            p99 as f64 / med.max(1) as f64
        );
    }
    println!();
    println!("the slow path computed rates; the fast path enforced them per-flow —");
    println!("untrusted applications never touch congestion control (paper §3.1).");
}
