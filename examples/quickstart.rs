//! Quickstart: an RPC echo server on TAS, driven by a TAS client, over a
//! simulated 10G switch.
//!
//! Run with: `cargo run --release --example quickstart`

use std::net::Ipv4Addr;
use tas_repro::apps::echo::{EchoServer, Lifetime, RpcClient, ServerMode};
use tas_repro::netsim::app::App;
use tas_repro::netsim::topo::{build_star, host_ip, HostSpec};
use tas_repro::netsim::{NetMsg, NicConfig, PortConfig};
use tas_repro::sim::{AgentId, Sim, SimTime};
use tas_repro::tas::{TasConfig, TasHost};

fn main() {
    // A deterministic simulation: same seed, same run, every time.
    let mut sim: Sim<NetMsg> = Sim::new(42);
    let server_ip: Ipv4Addr = host_ip(0);

    // Host 0: echo server on TAS (2 fast-path cores, 1 app core).
    // Host 1: client opening 4 connections, 1000 RPCs of 64 bytes.
    let mut factory = |sim: &mut Sim<NetMsg>, spec: HostSpec| -> AgentId {
        let app: Box<dyn App> = if spec.index == 0 {
            Box::new(EchoServer::new(7, 64, ServerMode::Echo, 300))
        } else {
            let mut client = RpcClient::new(server_ip, 7, 4, 1, 64, Lifetime::Persistent);
            client.max_requests = 1000;
            Box::new(client)
        };
        let cores = if spec.index == 0 { (2, 1) } else { (1, 1) };
        let cfg = TasConfig::rpc_bench(cores.0, cores.1);
        sim.add_agent(Box::new(TasHost::new(
            spec.ip,
            spec.mac,
            spec.nic,
            cfg,
            spec.uplink,
            app,
        )))
    };
    let topo = build_star(
        &mut sim,
        2,
        |_| PortConfig::tengig(),
        |_| NicConfig::client_10g(1),
        &mut factory,
    );
    // Kick both hosts off (INIT timers start apps and control loops).
    for &h in &topo.hosts {
        sim.inject_timer(SimTime::ZERO, h, 0, 0);
    }

    sim.run_until(SimTime::from_ms(100));

    let client = sim.agent::<TasHost>(topo.hosts[1]).app_as::<RpcClient>();
    let server = sim.agent::<TasHost>(topo.hosts[0]);
    println!("RPCs completed : {}", client.done);
    println!(
        "median latency : {:.1} us",
        client.latency.quantile(0.5) as f64 / 1000.0
    );
    println!(
        "99th latency   : {:.1} us",
        client.latency.quantile(0.99) as f64 / 1000.0
    );
    println!("server fast-path packets: {}", server.fp_stats().pkts_rx);
    println!(
        "server slow-path: {} connections established, {} exceptions handled",
        server.sp_stats().established,
        server.sp_stats().exceptions
    );
    assert_eq!(client.done, 1000, "all RPCs should complete");
    println!(
        "OK — see DESIGN.md for the architecture and crates/bench for the paper's experiments."
    );
}
