//! Stack-agnostic application interface.
//!
//! The paper runs the *same* applications (RPC echo, key-value store,
//! FlexStorm) over Linux, IX, mTCP, and TAS. To reproduce that, apps are
//! written against this small event-driven sockets interface and host
//! agents (one per stack) drive them: the POSIX-style epoll loop, IX's
//! libevent-like API, and TAS's libTAS all reduce to this shape — the
//! per-stack API *costs* are charged by the host, not by the app.

use tas_sim::SimTime;

/// An application-level socket handle (stack-assigned).
pub type SockId = u32;

/// Events delivered to an application.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AppEvent {
    /// An outbound connection completed.
    Connected {
        /// The socket.
        sock: SockId,
    },
    /// An inbound connection was accepted on a listening port.
    Accepted {
        /// The new connection's socket.
        sock: SockId,
        /// The listening port it arrived on.
        port: u16,
    },
    /// Data is available to read.
    Readable {
        /// The socket.
        sock: SockId,
    },
    /// Send-buffer space opened up after an earlier short write.
    Writable {
        /// The socket.
        sock: SockId,
    },
    /// The peer closed (or the connection reset/finished closing).
    Closed {
        /// The socket.
        sock: SockId,
    },
    /// A timer set via [`StackApi::set_app_timer`] fired.
    Timer {
        /// Caller-chosen identifier.
        token: u64,
    },
    /// Harness-injected control message (e.g. "start issuing load").
    Ctl {
        /// Discriminator (receiver-defined).
        kind: u32,
        /// Payload word.
        a: u64,
        /// Payload word.
        b: u64,
    },
}

/// The socket operations a host exposes to its application.
///
/// Every call may charge stack-specific CPU cost to the calling app
/// thread's core; apps charge their *own* compute via
/// [`StackApi::charge_app_cycles`].
pub trait StackApi {
    /// Current simulated time.
    fn now(&self) -> SimTime;

    /// Starts listening on a TCP port.
    fn listen(&mut self, port: u16);

    /// Opens a connection; completion is reported via
    /// [`AppEvent::Connected`]. Returns the socket id.
    fn connect(&mut self, ip: std::net::Ipv4Addr, port: u16) -> SockId;

    /// Sends bytes; returns how many were accepted into the send buffer.
    fn send(&mut self, sock: SockId, data: &[u8]) -> usize;

    /// Receives up to `max` bytes.
    fn recv(&mut self, sock: SockId, max: usize) -> Vec<u8>;

    /// Bytes currently readable on a socket.
    fn readable(&self, sock: SockId) -> usize;

    /// Closes a socket (graceful).
    fn close(&mut self, sock: SockId);

    /// Charges application compute to the current app core (e.g. the
    /// key-value store's hash lookup).
    fn charge_app_cycles(&mut self, cycles: u64);

    /// Sets a one-shot application timer delivering
    /// [`AppEvent::Timer`] after `delay`.
    fn set_app_timer(&mut self, delay: SimTime, token: u64);

    /// Posts `token` to another application thread's context — an
    /// inter-thread queue hop, delivered as [`AppEvent::Timer`] on that
    /// context's core (FlexStorm's demux → worker → mux handoffs).
    fn post(&mut self, context: u16, token: u64);
}

/// An event-driven application running on a host.
///
/// Implementations must be `'static` (hosts box them) and downcastable so
/// experiment harnesses can read their measurements after a run; the
/// [`tas_sim::impl_as_any!`] macro writes the two upcast methods.
pub trait App: 'static {
    /// Called once when the host starts.
    fn on_start(&mut self, api: &mut dyn StackApi);

    /// Called for every event.
    fn on_event(&mut self, ev: AppEvent, api: &mut dyn StackApi);

    /// Upcast for harness-side downcasting.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable upcast for harness-side downcasting.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// A no-op application (for hosts that only forward traffic).
pub struct NullApp;

impl App for NullApp {
    fn on_start(&mut self, _api: &mut dyn StackApi) {}
    fn on_event(&mut self, _ev: AppEvent, _api: &mut dyn StackApi) {}
    tas_sim::impl_as_any!();
}
