//! Topology builders: star, dumbbell, and k-ary FatTree.
//!
//! Builders create and wire [`Switch`] agents, compute routes, and call a
//! host-factory closure for every host slot — hosts themselves are agents
//! defined by the stack crates (`tas`, `tas-baselines`), so the builders
//! stay stack-agnostic.

use crate::nic::NicConfig;
use crate::switch::{PortConfig, Switch};
use crate::NetMsg;
use std::net::Ipv4Addr;
use tas_proto::{Ipv4Header, MacAddr};
use tas_sim::{AgentId, Sim, SimTime};

/// Everything a host factory needs to construct one host agent.
#[derive(Clone, Debug)]
pub struct HostSpec {
    /// Host index within the topology (0-based).
    pub index: u32,
    /// The host's IP address.
    pub ip: Ipv4Addr,
    /// The host's MAC address.
    pub mac: MacAddr,
    /// Agent id of the first-hop device.
    pub uplink: AgentId,
    /// NIC configuration for the host's uplink.
    pub nic: NicConfig,
    /// Tenant identity for multi-tenant scenarios (0 = untagged/default).
    /// [`build_star_tenants`] assigns it; factories propagate it to the
    /// host they build (e.g. `TasHost::set_tenant`).
    pub tenant: u32,
}

/// A host factory: builds a host agent for a [`HostSpec`].
pub type HostFactory<'a> = dyn FnMut(&mut Sim<NetMsg>, HostSpec) -> AgentId + 'a;

/// Deterministic IP for topology host `index`.
pub fn host_ip(index: u32) -> Ipv4Addr {
    Ipv4Header::host_addr(index + 1)
}

/// Deterministic MAC for topology host `index`.
pub fn host_mac(index: u32) -> MacAddr {
    MacAddr::for_host(index + 1)
}

/// A single-switch (star) topology: every host hangs off one switch.
#[derive(Debug)]
pub struct StarTopo {
    /// The switch agent.
    pub switch: AgentId,
    /// Host agents in index order.
    pub hosts: Vec<AgentId>,
    /// Host IPs in index order.
    pub ips: Vec<Ipv4Addr>,
}

/// Builds a star of `n` hosts. `port_cfg_for(i)` gives the switch port
/// configuration toward host `i` (the paper's testbed has 10G client ports
/// and a 40G server port on one switch), `nic_for(i)` the host NIC.
pub fn build_star(
    sim: &mut Sim<NetMsg>,
    n: usize,
    port_cfg_for: impl FnMut(u32) -> PortConfig,
    nic_for: impl FnMut(u32) -> NicConfig,
    make_host: &mut HostFactory<'_>,
) -> StarTopo {
    build_star_tenants(sim, n, |_| 0, port_cfg_for, nic_for, make_host)
}

/// [`build_star`] with per-host tenant tags: `tenant_for(i)` labels host
/// `i` so the factory can propagate the tenant identity into the host it
/// builds (the multi-tenant scenario suite's attribution path).
pub fn build_star_tenants(
    sim: &mut Sim<NetMsg>,
    n: usize,
    mut tenant_for: impl FnMut(u32) -> u32,
    mut port_cfg_for: impl FnMut(u32) -> PortConfig,
    mut nic_for: impl FnMut(u32) -> NicConfig,
    make_host: &mut HostFactory<'_>,
) -> StarTopo {
    let switch = sim.add_agent(Box::new(Switch::new("star")));
    let mut hosts = Vec::with_capacity(n);
    let mut ips = Vec::with_capacity(n);
    for i in 0..n as u32 {
        let ip = host_ip(i);
        let spec = HostSpec {
            index: i,
            ip,
            mac: host_mac(i),
            uplink: switch,
            nic: nic_for(i),
            tenant: tenant_for(i),
        };
        let host = make_host(sim, spec);
        let sw = sim.agent_mut::<Switch>(switch);
        let port = sw.add_port(host, port_cfg_for(i));
        sw.set_route(ip, vec![port]);
        hosts.push(host);
        ips.push(ip);
    }
    StarTopo { switch, hosts, ips }
}

/// A dumbbell: two switches joined by one bottleneck link, hosts split
/// between the left and right sides.
#[derive(Debug)]
pub struct DumbbellTopo {
    /// Left-side switch.
    pub left: AgentId,
    /// Right-side switch.
    pub right: AgentId,
    /// Left-side host agents.
    pub left_hosts: Vec<AgentId>,
    /// Right-side host agents.
    pub right_hosts: Vec<AgentId>,
    /// All host IPs, left side first.
    pub ips: Vec<Ipv4Addr>,
    /// Port index of the bottleneck on the left switch (for monitoring).
    pub bottleneck_port: usize,
}

/// Builds a dumbbell with `n_left` and `n_right` hosts and a bottleneck of
/// `bottleneck` configuration between the switches (left → right direction
/// carries the monitored queue).
pub fn build_dumbbell(
    sim: &mut Sim<NetMsg>,
    n_left: usize,
    n_right: usize,
    host_port: PortConfig,
    host_nic: NicConfig,
    bottleneck: PortConfig,
    make_host: &mut HostFactory<'_>,
) -> DumbbellTopo {
    let left = sim.add_agent(Box::new(Switch::new("left")));
    let right = sim.add_agent(Box::new(Switch::new("right")));
    let mut ips = Vec::new();
    let mut left_hosts = Vec::new();
    let mut right_hosts = Vec::new();
    for i in 0..(n_left + n_right) as u32 {
        let ip = host_ip(i);
        let side = if (i as usize) < n_left { left } else { right };
        let spec = HostSpec {
            index: i,
            ip,
            mac: host_mac(i),
            uplink: side,
            nic: host_nic.clone(),
            tenant: 0,
        };
        let host = make_host(sim, spec);
        let sw = sim.agent_mut::<Switch>(side);
        let port = sw.add_port(host, host_port);
        sw.set_route(ip, vec![port]);
        if (i as usize) < n_left {
            left_hosts.push(host);
        } else {
            right_hosts.push(host);
        }
        ips.push(ip);
    }
    // Inter-switch links; unmatched destinations go across.
    let l2r = sim.agent_mut::<Switch>(left).add_port(right, bottleneck);
    sim.agent_mut::<Switch>(left).set_default_route(vec![l2r]);
    let r2l = sim.agent_mut::<Switch>(right).add_port(left, bottleneck);
    sim.agent_mut::<Switch>(right).set_default_route(vec![r2l]);
    DumbbellTopo {
        left,
        right,
        left_hosts,
        right_hosts,
        ips,
        bottleneck_port: l2r,
    }
}

/// Link-rate configuration of a FatTree (allows modelling the paper's 1:4
/// oversubscription by reducing `agg_core_rate`).
#[derive(Clone, Copy, Debug)]
pub struct FatTreeConfig {
    /// Tree arity `k` (hosts = k³/4). Must be even and ≥ 2.
    pub k: usize,
    /// Host ↔ edge link rate (bps).
    pub host_rate: u64,
    /// Edge ↔ aggregation link rate (bps).
    pub edge_agg_rate: u64,
    /// Aggregation ↔ core link rate (bps); reduce for oversubscription.
    pub agg_core_rate: u64,
    /// Per-hop propagation delay.
    pub prop_delay: SimTime,
    /// Queue capacity per port in packets.
    pub queue_cap_pkts: usize,
    /// ECN threshold in packets.
    pub ecn_threshold_pkts: Option<usize>,
}

impl FatTreeConfig {
    /// The scaled-down stand-in for the paper's 2560-host cluster: k = 8
    /// (128 hosts, 80 switches), 10G host links, 1:4 oversubscribed core.
    pub fn paper_scaled() -> FatTreeConfig {
        FatTreeConfig {
            k: 8,
            host_rate: 10_000_000_000,
            edge_agg_rate: 10_000_000_000,
            agg_core_rate: 10_000_000_000 / 4,
            prop_delay: SimTime::from_us(2),
            queue_cap_pkts: 256,
            ecn_threshold_pkts: Some(65),
        }
    }
}

/// A k-ary FatTree.
#[derive(Debug)]
pub struct FatTreeTopo {
    /// Host agents, grouped by pod then edge switch.
    pub hosts: Vec<AgentId>,
    /// Host IPs in the same order.
    pub ips: Vec<Ipv4Addr>,
    /// Edge switches (k/2 per pod).
    pub edges: Vec<AgentId>,
    /// Aggregation switches (k/2 per pod).
    pub aggs: Vec<AgentId>,
    /// Core switches ((k/2)² total).
    pub cores: Vec<AgentId>,
}

/// Builds a k-ary FatTree with standard two-level ECMP routing:
/// edge → all aggs (up-default), agg → all cores (up-default), and exact
/// down-routes for every host IP.
pub fn build_fattree(
    sim: &mut Sim<NetMsg>,
    cfg: FatTreeConfig,
    make_host: &mut HostFactory<'_>,
) -> FatTreeTopo {
    assert!(
        cfg.k >= 2 && cfg.k.is_multiple_of(2),
        "k must be even and >= 2"
    );
    let k = cfg.k;
    let half = k / 2;
    let n_hosts = k * k * k / 4;
    let port = |rate: u64| PortConfig {
        rate_bps: rate,
        prop_delay: cfg.prop_delay,
        queue_cap_pkts: cfg.queue_cap_pkts,
        ecn_threshold_pkts: cfg.ecn_threshold_pkts,
        ..PortConfig::tengig()
    };

    // Create switch agents first so hosts can reference their edge uplink.
    let mut edges = Vec::with_capacity(k * half);
    let mut aggs = Vec::with_capacity(k * half);
    for pod in 0..k {
        for i in 0..half {
            edges.push(sim.add_agent(Box::new(Switch::new(format!("edge{pod}.{i}")))));
        }
        for i in 0..half {
            aggs.push(sim.add_agent(Box::new(Switch::new(format!("agg{pod}.{i}")))));
        }
    }
    let cores: Vec<AgentId> = (0..half * half)
        .map(|i| sim.add_agent(Box::new(Switch::new(format!("core{i}")))))
        .collect();

    // Hosts + edge down-ports.
    let mut hosts = Vec::with_capacity(n_hosts);
    let mut ips = Vec::with_capacity(n_hosts);
    for idx in 0..n_hosts as u32 {
        let pod = idx as usize / (half * half);
        let edge_in_pod = (idx as usize / half) % half;
        let edge = edges[pod * half + edge_in_pod];
        let ip = host_ip(idx);
        let spec = HostSpec {
            index: idx,
            ip,
            mac: host_mac(idx),
            uplink: edge,
            nic: NicConfig {
                rate_bps: cfg.host_rate,
                prop_delay: cfg.prop_delay,
                rx_queues: 1,
                ..NicConfig::client_10g(1)
            },
            tenant: 0,
        };
        let host = make_host(sim, spec);
        let sw = sim.agent_mut::<Switch>(edge);
        let p = sw.add_port(host, port(cfg.host_rate));
        sw.set_route(ip, vec![p]);
        hosts.push(host);
        ips.push(ip);
    }

    // Edge ↔ agg wiring within each pod (full bipartite).
    for pod in 0..k {
        for e in 0..half {
            let edge = edges[pod * half + e];
            let mut up = Vec::new();
            for a in 0..half {
                let agg = aggs[pod * half + a];
                let pe = sim
                    .agent_mut::<Switch>(edge)
                    .add_port(agg, port(cfg.edge_agg_rate));
                up.push(pe);
                let pa = sim
                    .agent_mut::<Switch>(agg)
                    .add_port(edge, port(cfg.edge_agg_rate));
                // Agg's down-routes: all hosts under this edge.
                for h in 0..half {
                    let idx = pod * half * half + e * half + h;
                    sim.agent_mut::<Switch>(agg).set_route(ips[idx], vec![pa]);
                }
            }
            sim.agent_mut::<Switch>(edge).set_default_route(up);
        }
    }

    // Agg ↔ core wiring: agg `a` of each pod connects to cores
    // a*half..(a+1)*half.
    for pod in 0..k {
        for a in 0..half {
            let agg = aggs[pod * half + a];
            let mut up = Vec::new();
            for c in 0..half {
                let core = cores[a * half + c];
                let pa = sim
                    .agent_mut::<Switch>(agg)
                    .add_port(core, port(cfg.agg_core_rate));
                up.push(pa);
                let pc = sim
                    .agent_mut::<Switch>(core)
                    .add_port(agg, port(cfg.agg_core_rate));
                // Core's down-routes: every host in this pod via this agg.
                for ip in &ips[pod * half * half..(pod + 1) * half * half] {
                    sim.agent_mut::<Switch>(core).set_route(*ip, vec![pc]);
                }
            }
            sim.agent_mut::<Switch>(agg).set_default_route(up);
        }
    }

    FatTreeTopo {
        hosts,
        ips,
        edges,
        aggs,
        cores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tas_sim::{impl_as_any, Agent, Ctx, Event, SimTime};

    /// Minimal host: replies to any packet by bouncing it back to the
    /// sender through its NIC, and records arrivals.
    struct EchoHost {
        nic: crate::HostNic,
        ip: Ipv4Addr,
        got: Vec<tas_proto::Segment>,
    }
    impl Agent<NetMsg> for EchoHost {
        fn on_event(&mut self, ev: Event<NetMsg>, ctx: &mut Ctx<'_, NetMsg>) {
            if let Event::Msg {
                msg: NetMsg::Packet(seg),
                ..
            } = ev
            {
                if seg.ip.dst == self.ip && seg.payload == b"ping" {
                    let mut reply = seg.clone();
                    std::mem::swap(&mut reply.ip.src, &mut reply.ip.dst);
                    std::mem::swap(&mut reply.tcp.src_port, &mut reply.tcp.dst_port);
                    std::mem::swap(&mut reply.eth.src, &mut reply.eth.dst);
                    reply.payload = b"pong".into();
                    self.nic.tx(ctx.now(), reply, ctx);
                }
                self.got.push(seg);
            }
        }
        impl_as_any!();
    }

    fn echo_factory() -> impl FnMut(&mut Sim<NetMsg>, HostSpec) -> AgentId {
        |sim: &mut Sim<NetMsg>, spec: HostSpec| {
            let nic = crate::HostNic::new(spec.mac, spec.nic.clone(), spec.uplink);
            sim.add_agent(Box::new(EchoHost {
                nic,
                ip: spec.ip,
                got: Vec::new(),
            }))
        }
    }

    fn ping(from_ip: Ipv4Addr, to_ip: Ipv4Addr, sport: u16) -> tas_proto::Segment {
        tas_proto::Segment::tcp(
            MacAddr::for_host(0),
            MacAddr::for_host(0),
            from_ip,
            to_ip,
            tas_proto::TcpHeader::new(sport, 7, 0, 0, tas_proto::TcpFlags::ACK),
            b"ping".to_vec(),
            true,
        )
    }

    #[test]
    fn star_round_trip() {
        let mut sim: Sim<NetMsg> = Sim::new(1);
        let mut f = echo_factory();
        let topo = build_star(
            &mut sim,
            4,
            |_| PortConfig::tengig(),
            |_| NicConfig::client_10g(1),
            &mut f,
        );
        // Host 0 pings host 3 "from the wire": inject at host 0's NIC agent
        // by sending from host 0 through the switch.
        let seg = ping(topo.ips[0], topo.ips[3], 999);
        sim.inject_msg(
            SimTime::ZERO,
            topo.hosts[0],
            topo.switch,
            NetMsg::Packet(seg),
        );
        sim.run_until(SimTime::from_ms(2));
        // Host 3 got the ping, host 0 got the pong.
        assert_eq!(sim.agent::<EchoHost>(topo.hosts[3]).got.len(), 1);
        let h0 = sim.agent::<EchoHost>(topo.hosts[0]);
        assert_eq!(h0.got.len(), 1);
        assert_eq!(h0.got[0].payload, b"pong");
    }

    #[test]
    fn dumbbell_crosses_bottleneck() {
        let mut sim: Sim<NetMsg> = Sim::new(2);
        let mut f = echo_factory();
        let topo = build_dumbbell(
            &mut sim,
            2,
            2,
            PortConfig::tengig(),
            NicConfig::client_10g(1),
            PortConfig::tengig(),
            &mut f,
        );
        let seg = ping(topo.ips[0], topo.ips[3], 5);
        sim.inject_msg(
            SimTime::ZERO,
            topo.left_hosts[0],
            topo.left,
            NetMsg::Packet(seg),
        );
        sim.run_until(SimTime::from_ms(2));
        assert_eq!(sim.agent::<EchoHost>(topo.right_hosts[1]).got.len(), 1);
        assert_eq!(sim.agent::<EchoHost>(topo.left_hosts[0]).got.len(), 1);
    }

    #[test]
    fn fattree_k4_all_pairs_reachable() {
        let mut sim: Sim<NetMsg> = Sim::new(3);
        let mut f = echo_factory();
        let cfg = FatTreeConfig {
            k: 4,
            ..FatTreeConfig::paper_scaled()
        };
        let topo = build_fattree(&mut sim, cfg, &mut f);
        assert_eq!(topo.hosts.len(), 16);
        assert_eq!(topo.edges.len(), 8);
        assert_eq!(topo.aggs.len(), 8);
        assert_eq!(topo.cores.len(), 4);
        // Every host pings host (i + 5) % 16 — mix of intra-pod and
        // inter-pod paths.
        for i in 0..16u32 {
            let j = (i + 5) % 16;
            let seg = ping(topo.ips[i as usize], topo.ips[j as usize], 1000 + i as u16);
            let edge = topo.edges[i as usize / 2 / 2 * 2 + (i as usize / 2) % 2];
            sim.inject_msg(
                SimTime::ZERO,
                topo.hosts[i as usize],
                edge,
                NetMsg::Packet(seg),
            );
        }
        sim.run_until(SimTime::from_ms(5));
        for i in 0..16usize {
            let h = sim.agent::<EchoHost>(topo.hosts[i]);
            let pings = h.got.iter().filter(|s| s.payload == b"ping").count();
            let pongs = h.got.iter().filter(|s| s.payload == b"pong").count();
            assert_eq!(pings, 1, "host {i} should receive exactly one ping");
            assert_eq!(pongs, 1, "host {i} should receive exactly one pong");
        }
        // No switch dropped for lack of a route.
        for sw in topo.edges.iter().chain(&topo.aggs).chain(&topo.cores) {
            assert_eq!(sim.agent::<Switch>(*sw).unroutable, 0);
        }
    }

    #[test]
    fn fattree_k8_scaled_sizes_match_design() {
        let mut sim: Sim<NetMsg> = Sim::new(4);
        let mut f = echo_factory();
        let topo = build_fattree(&mut sim, FatTreeConfig::paper_scaled(), &mut f);
        assert_eq!(topo.hosts.len(), 128);
        assert_eq!(topo.edges.len() + topo.aggs.len() + topo.cores.len(), 80);
    }
}
