//! Output-queued switch with drop-tail queues and DCTCP ECN marking.

use crate::fault::{FaultInjector, FaultSpec};
use crate::rss::hash_tuple;
use crate::NetMsg;
use std::collections::{BTreeMap, VecDeque};
use std::net::Ipv4Addr;
use tas_proto::{Ecn, Segment};
use tas_sim::time::transmission_time;
use tas_sim::{impl_as_any, Agent, AgentId, Ctx, Event, MeanVar, SimTime, TimeSeries};

/// Static configuration of one switch output port.
#[derive(Clone, Copy, Debug)]
pub struct PortConfig {
    /// Link rate in bits/second.
    pub rate_bps: u64,
    /// One-way propagation delay to the attached device.
    pub prop_delay: SimTime,
    /// Drop-tail queue capacity in packets.
    pub queue_cap_pkts: usize,
    /// ECN marking threshold in packets (the paper's testbed switch marks
    /// at 65); `None` disables marking.
    pub ecn_threshold_pkts: Option<usize>,
    /// Fault schedule for this port's outgoing (switch → device) link.
    /// Induced-loss experiments use `FaultSpec::uniform_loss(p, seed)`.
    pub fault: FaultSpec,
}

impl PortConfig {
    /// A 10 Gbps port with the paper's ECN threshold and a deep queue.
    pub fn tengig() -> PortConfig {
        PortConfig {
            rate_bps: 10_000_000_000,
            prop_delay: SimTime::from_us(1),
            queue_cap_pkts: 512,
            ecn_threshold_pkts: Some(65),
            fault: FaultSpec::none(),
        }
    }

    /// A 40 Gbps port with the paper's ECN threshold and a deep queue.
    pub fn fortygig() -> PortConfig {
        PortConfig {
            rate_bps: 40_000_000_000,
            ..PortConfig::tengig()
        }
    }
}

#[derive(Debug)]
struct Port {
    cfg: PortConfig,
    peer: AgentId,
    busy_until: SimTime,
    /// Departure times of packets currently queued or in serialization;
    /// cleaned lazily. Length = instantaneous queue depth.
    departures: VecDeque<SimTime>,
    /// Wire-fault injector for the outgoing link (inert unless configured).
    fault: FaultInjector,
    /// Packets dropped at a full queue.
    pub drops: u64,
    /// Packets dropped by loss injection.
    pub loss_drops: u64,
    /// Packets CE-marked.
    pub marked: u64,
    /// Packets forwarded.
    pub forwarded: u64,
    /// Wire bytes forwarded.
    pub bytes: u64,
}

impl Port {
    fn cleanup(&mut self, now: SimTime) {
        while matches!(self.departures.front(), Some(&d) if d <= now) {
            self.departures.pop_front();
        }
    }

    fn depth(&mut self, now: SimTime) -> usize {
        self.cleanup(now);
        self.departures.len()
    }
}

/// Timer kind used for queue-length sampling.
pub const TIMER_SAMPLE_QUEUE: u32 = 0;

/// An output-queued switch.
///
/// Routes by destination IP through a route table mapping to one or more
/// equal-cost output ports; multi-path selection hashes the 4-tuple, so a
/// connection always takes one path (the in-order-delivery property TAS's
/// fast path relies on, §3.1).
pub struct Switch {
    label: String,
    ports: Vec<Port>,
    /// Route table: point lookups on forwarding; BTreeMap so any future
    /// iteration (debug dumps, route listings) is deterministic.
    routes: BTreeMap<Ipv4Addr, Vec<usize>>,
    default_route: Vec<usize>,
    /// Packets with no route (dropped, counted).
    pub unroutable: u64,
    monitor_port: Option<usize>,
    monitor_interval: SimTime,
    qlen_stats: MeanVar,
    /// Full queue-depth time series on the monitored port (same samples
    /// that feed [`Switch::mean_queue_depth`], kept for plotting).
    qlen_series: TimeSeries,
}

impl Switch {
    /// Creates an empty switch (ports and routes added during wiring).
    pub fn new(label: impl Into<String>) -> Self {
        Switch {
            label: label.into(),
            ports: Vec::new(),
            routes: BTreeMap::new(),
            default_route: Vec::new(),
            unroutable: 0,
            monitor_port: None,
            monitor_interval: SimTime::from_us(10),
            qlen_stats: MeanVar::new(),
            qlen_series: TimeSeries::new(),
        }
    }

    /// The switch's label (for experiment output).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Adds an output port towards `peer`; returns the port index. The
    /// injector's default stream is derived from the peer and port index
    /// so no two ports share a fault schedule.
    pub fn add_port(&mut self, peer: AgentId, cfg: PortConfig) -> usize {
        let spec = cfg.fault;
        let dev = (peer as u64) << 16 | self.ports.len() as u64;
        self.ports.push(Port {
            cfg,
            peer,
            busy_until: SimTime::ZERO,
            departures: VecDeque::new(),
            fault: FaultInjector::new(spec, dev),
            drops: 0,
            loss_drops: 0,
            marked: 0,
            forwarded: 0,
            bytes: 0,
        });
        self.ports.len() - 1
    }

    /// Deterministic ordered dump of a port injector's metrics.
    pub fn port_fault_snapshot(&self, port: usize) -> tas_sim::Snapshot {
        self.ports[port].fault.snapshot()
    }

    /// Number of ports.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// Routes `dst` via the given equal-cost ports.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is empty or references an unknown port.
    pub fn set_route(&mut self, dst: Ipv4Addr, ports: Vec<usize>) {
        assert!(!ports.is_empty(), "route needs at least one port");
        assert!(
            ports.iter().all(|&p| p < self.ports.len()),
            "route references unknown port"
        );
        self.routes.insert(dst, ports);
    }

    /// Sets the equal-cost ports used when no per-destination route matches
    /// (the "up" direction in multi-rooted trees).
    pub fn set_default_route(&mut self, ports: Vec<usize>) {
        assert!(
            ports.iter().all(|&p| p < self.ports.len()),
            "route references unknown port"
        );
        self.default_route = ports;
    }

    /// Begins periodic queue-depth sampling on `port` (for Fig. 11b). The
    /// harness must also inject a [`TIMER_SAMPLE_QUEUE`] timer to start the
    /// sampling loop.
    pub fn monitor_port(&mut self, port: usize, interval: SimTime) {
        self.monitor_port = Some(port);
        self.monitor_interval = interval;
    }

    /// Mean sampled queue depth on the monitored port, in packets.
    pub fn mean_queue_depth(&self) -> f64 {
        self.qlen_stats.mean()
    }

    /// The monitored port's sampled queue-depth time series (fixed
    /// cadence set by [`Switch::monitor_port`]).
    pub fn queue_depth_series(&self) -> &TimeSeries {
        &self.qlen_series
    }

    /// Total drop-tail drops across ports.
    pub fn total_drops(&self) -> u64 {
        self.ports.iter().map(|p| p.drops).sum()
    }

    /// Total CE marks across ports.
    pub fn total_marked(&self) -> u64 {
        self.ports.iter().map(|p| p.marked).sum()
    }

    /// Forwarded packet count on a port.
    pub fn port_forwarded(&self, port: usize) -> u64 {
        self.ports[port].forwarded
    }

    /// Forwarded wire bytes on a port.
    pub fn port_bytes(&self, port: usize) -> u64 {
        self.ports[port].bytes
    }

    fn forward(&mut self, now: SimTime, mut seg: Segment, ctx: &mut Ctx<'_, NetMsg>) {
        let ports = match self.routes.get(&seg.ip.dst) {
            Some(p) => p,
            None if !self.default_route.is_empty() => &self.default_route,
            None => {
                self.unroutable += 1;
                return;
            }
        };
        let choice = if ports.len() == 1 {
            ports[0]
        } else {
            // ECMP: connection-stable path choice by flow hash.
            let h = hash_tuple(seg.ip.src, seg.ip.dst, seg.tcp.src_port, seg.tcp.dst_port);
            ports[h as usize % ports.len()]
        };
        let port = &mut self.ports[choice];
        let depth = port.depth(now);
        if depth >= port.cfg.queue_cap_pkts {
            port.drops += 1;
            return;
        }
        if let Some(k) = port.cfg.ecn_threshold_pkts {
            // DCTCP-style: mark on instantaneous depth at enqueue.
            if depth >= k && seg.ip.ecn.is_capable() {
                seg.ip.ecn = Ecn::Ce;
                port.marked += 1;
                #[cfg(feature = "trace")]
                {
                    let (flow, seq) = (seg.flow_key(), seg.tcp.seq);
                    tas_telemetry::emit(|| tas_telemetry::TraceRecord {
                        t: now,
                        site: "switch",
                        ev: tas_telemetry::TraceEvent::EcnMark { flow, seq },
                    });
                }
            }
        }
        let start = now.max(port.busy_until);
        let depart = start + transmission_time(seg.wire_len() as u64, port.cfg.rate_bps);
        port.busy_until = depart;
        port.departures.push_back(depart);
        port.forwarded += 1;
        port.bytes += seg.wire_len() as u64;
        let arrival = depart + port.cfg.prop_delay;
        #[cfg(feature = "trace")]
        if !seg.payload.is_empty() {
            let (flow, seq, len) = (
                seg.flow_key().reversed(),
                seg.tcp.seq,
                seg.payload.len() as u32,
            );
            let wait_ns = start.saturating_sub(now).as_nanos();
            tas_telemetry::emit(|| tas_telemetry::TraceRecord {
                t: depart,
                site: "switch",
                ev: tas_telemetry::TraceEvent::Stage {
                    stage: tas_telemetry::Stage::SwitchFwd,
                    flow,
                    seq,
                    len,
                    wait_ns,
                },
            });
        }
        if port.fault.is_active() {
            // Wire faults strike after serialization, like the NIC's: a
            // dropped packet still occupied the queue and the wire.
            let before = port.fault.dropped();
            let mut out = Vec::new();
            port.fault.apply(arrival, seg, &mut out);
            port.loss_drops += port.fault.dropped() - before;
            for (t, s) in out {
                ctx.send_at(port.peer, t, NetMsg::Packet(s));
            }
        } else {
            ctx.send_at(port.peer, arrival, NetMsg::Packet(seg));
        }
    }
}

impl Agent<NetMsg> for Switch {
    fn on_event(&mut self, ev: Event<NetMsg>, ctx: &mut Ctx<'_, NetMsg>) {
        match ev {
            Event::Msg {
                msg: NetMsg::Packet(seg),
                ..
            } => self.forward(ctx.now(), seg, ctx),
            Event::Timer {
                kind: TIMER_SAMPLE_QUEUE,
                ..
            } => {
                if let Some(p) = self.monitor_port {
                    let now = ctx.now();
                    let d = self.ports[p].depth(now);
                    self.qlen_stats.add(d as f64);
                    self.qlen_series.push(now, d as f64);
                    ctx.timer(self.monitor_interval, TIMER_SAMPLE_QUEUE, 0);
                }
            }
            _ => {}
        }
    }

    impl_as_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use tas_proto::{MacAddr, TcpFlags, TcpHeader};
    use tas_sim::Sim;

    fn seg(dst: Ipv4Addr, sport: u16, payload: usize, ecn: bool) -> Segment {
        Segment::tcp(
            MacAddr::for_host(1),
            MacAddr::for_host(2),
            Ipv4Addr::new(10, 0, 0, 1),
            dst,
            TcpHeader::new(sport, 80, 0, 0, TcpFlags::ACK),
            vec![0; payload],
            ecn,
        )
    }

    struct Sink {
        pkts: Vec<(SimTime, Segment)>,
    }
    impl Agent<NetMsg> for Sink {
        fn on_event(&mut self, ev: Event<NetMsg>, ctx: &mut Ctx<'_, NetMsg>) {
            if let Event::Msg {
                msg: NetMsg::Packet(s),
                ..
            } = ev
            {
                self.pkts.push((ctx.now(), s));
            }
        }
        impl_as_any!();
    }

    fn setup(port_cfg: PortConfig) -> (Sim<NetMsg>, AgentId, AgentId) {
        let mut sim: Sim<NetMsg> = Sim::new(1);
        let sink = sim.add_agent(Box::new(Sink { pkts: Vec::new() }));
        let mut sw = Switch::new("tor");
        let p = sw.add_port(sink, port_cfg);
        sw.set_route(Ipv4Addr::new(10, 0, 0, 2), vec![p]);
        let sw_id = sim.add_agent(Box::new(sw));
        (sim, sw_id, sink)
    }

    #[test]
    fn forwards_by_route_and_charges_serialization() {
        let (mut sim, sw, sink) = setup(PortConfig::tengig());
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        sim.inject_msg(
            SimTime::ZERO,
            99,
            sw,
            NetMsg::Packet(seg(dst, 5, 1000, true)),
        );
        sim.run_until(SimTime::from_ms(1));
        let pkts = &sim.agent::<Sink>(sink).pkts;
        assert_eq!(pkts.len(), 1);
        // 1054 wire bytes at 10G = 843.2ns, + 1us prop.
        let want = SimTime::from_ps(843_200) + SimTime::from_us(1);
        assert_eq!(pkts[0].0, want);
    }

    #[test]
    fn unroutable_counted_and_dropped() {
        let (mut sim, sw, sink) = setup(PortConfig::tengig());
        sim.inject_msg(
            SimTime::ZERO,
            99,
            sw,
            NetMsg::Packet(seg(Ipv4Addr::new(9, 9, 9, 9), 5, 10, true)),
        );
        sim.run_until(SimTime::from_ms(1));
        assert!(sim.agent::<Sink>(sink).pkts.is_empty());
        assert_eq!(sim.agent::<Switch>(sw).unroutable, 1);
    }

    #[test]
    fn drop_tail_when_queue_full() {
        let mut cfg = PortConfig::tengig();
        cfg.queue_cap_pkts = 4;
        cfg.ecn_threshold_pkts = None;
        let (mut sim, sw, sink) = setup(cfg);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        // Burst of 10 back-to-back packets; only 4 fit.
        for _ in 0..10 {
            sim.inject_msg(
                SimTime::ZERO,
                99,
                sw,
                NetMsg::Packet(seg(dst, 5, 1400, true)),
            );
        }
        sim.run_until(SimTime::from_ms(10));
        assert_eq!(sim.agent::<Sink>(sink).pkts.len(), 4);
        assert_eq!(sim.agent::<Switch>(sw).total_drops(), 6);
    }

    #[test]
    fn ecn_marks_above_threshold_only_capable_packets() {
        let mut cfg = PortConfig::tengig();
        cfg.ecn_threshold_pkts = Some(2);
        cfg.queue_cap_pkts = 100;
        let (mut sim, sw, sink) = setup(cfg);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        for i in 0..6 {
            // Alternate ECN-capable and not.
            sim.inject_msg(
                SimTime::ZERO,
                99,
                sw,
                NetMsg::Packet(seg(dst, 5, 1400, i % 2 == 0)),
            );
        }
        sim.run_until(SimTime::from_ms(10));
        let pkts = &sim.agent::<Sink>(sink).pkts;
        assert_eq!(pkts.len(), 6);
        // First two enqueue below depth 2: unmarked. Beyond: capable ones marked.
        let marked: Vec<bool> = pkts.iter().map(|(_, s)| s.is_ce_marked()).collect();
        assert!(!marked[0] && !marked[1]);
        // Packets 2 and 4 were capable (i=2,4) -> marked; 3,5 (odd) not.
        assert!(marked[2] && marked[4]);
        assert!(!marked[3] && !marked[5]);
        assert_eq!(sim.agent::<Switch>(sw).total_marked(), 2);
    }

    #[test]
    fn ecmp_is_flow_stable_and_spreads() {
        let mut sim: Sim<NetMsg> = Sim::new(1);
        let sink_a = sim.add_agent(Box::new(Sink { pkts: Vec::new() }));
        let sink_b = sim.add_agent(Box::new(Sink { pkts: Vec::new() }));
        let mut sw = Switch::new("agg");
        let pa = sw.add_port(sink_a, PortConfig::tengig());
        let pb = sw.add_port(sink_b, PortConfig::tengig());
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        sw.set_route(dst, vec![pa, pb]);
        let sw_id = sim.add_agent(Box::new(sw));
        // 2 packets each for 100 flows.
        for sport in 0..100u16 {
            for _ in 0..2 {
                sim.inject_msg(
                    SimTime::ZERO,
                    99,
                    sw_id,
                    NetMsg::Packet(seg(dst, sport, 10, true)),
                );
            }
        }
        sim.run_until(SimTime::from_ms(10));
        let a = sim.agent::<Sink>(sink_a).pkts.len();
        let b = sim.agent::<Sink>(sink_b).pkts.len();
        assert_eq!(a + b, 200);
        assert!(a > 40 && b > 40, "both paths used: {a}/{b}");
        // Flow-stability: each flow's two packets landed on the same sink.
        for (label, sink) in [("a", sink_a), ("b", sink_b)] {
            let mut counts = std::collections::HashMap::new();
            for (_, s) in &sim.agent::<Sink>(sink).pkts {
                *counts.entry(s.tcp.src_port).or_insert(0) += 1;
            }
            for (port, n) in counts {
                assert_eq!(n, 2, "flow {port} split across paths (sink {label})");
            }
        }
    }

    #[test]
    fn queue_sampling_records_depth() {
        let mut cfg = PortConfig::tengig();
        cfg.queue_cap_pkts = 1000;
        let (mut sim, sw, _sink) = setup(cfg);
        sim.agent_mut::<Switch>(sw)
            .monitor_port(0, SimTime::from_us(1));
        sim.inject_timer(SimTime::ZERO, sw, TIMER_SAMPLE_QUEUE, 0);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        for _ in 0..100 {
            sim.inject_msg(
                SimTime::ZERO,
                99,
                sw,
                NetMsg::Packet(seg(dst, 5, 1400, true)),
            );
        }
        sim.run_until(SimTime::from_us(50));
        let mean = sim.agent::<Switch>(sw).mean_queue_depth();
        assert!(mean > 1.0, "sampled backlog should be visible, got {mean}");
    }
}
