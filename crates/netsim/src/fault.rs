//! Deterministic fault injection for links and NICs.
//!
//! A [`FaultInjector`] sits at the delivery point of a device — a NIC's
//! uplink ([`crate::HostNic::tx`]) or a switch output port — and perturbs
//! the packet stream: seeded drops (independent uniform or Gilbert–Elliott
//! bursty), duplication, reordering within a bounded window, delay jitter,
//! and payload/flag corruption. Each injector owns its own
//! [`tas_sim::Rng`] stream, so a fault schedule is a pure function of the
//! [`FaultSpec`] (including its seed) and the packet sequence — byte-for-
//! byte reproducible regardless of how other agents consume the global
//! simulator RNG. Directionality comes from placement: the NIC-side
//! injector perturbs host→network traffic, the switch-port injector
//! perturbs network→host traffic, and the two carry independent specs.
//!
//! The legacy `tx_loss`/`loss` probability knobs on
//! [`crate::NicConfig`]/[`crate::PortConfig`] are retained as thin compat
//! shims: a non-zero value is folded into the injector as a uniform drop
//! model at construction.

use tas_proto::{Segment, TcpFlags};
use tas_sim::{CounterId, Registry, Rng, Scope, SimTime};

/// Packet-drop model.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum DropModel {
    /// No induced drops.
    #[default]
    None,
    /// Independent per-packet loss with the given probability (Fig. 7's
    /// induced-loss sweep).
    Uniform(f64),
    /// Two-state Gilbert–Elliott bursty loss: the channel flips between a
    /// good and a bad state with the given per-packet transition
    /// probabilities, and drops with a state-dependent probability. Models
    /// the correlated loss bursts real links exhibit, which stress
    /// go-back-N vs. out-of-order recovery very differently from
    /// independent loss.
    GilbertElliott {
        /// P(good → bad) evaluated per packet while in the good state.
        p_enter_bad: f64,
        /// P(bad → good) evaluated per packet while in the bad state.
        p_exit_bad: f64,
        /// Loss probability per packet in the good state (usually 0).
        good_loss: f64,
        /// Loss probability per packet in the bad state.
        bad_loss: f64,
    },
}

impl DropModel {
    /// True when the model can ever drop a packet.
    pub fn is_active(&self) -> bool {
        match *self {
            DropModel::None => false,
            DropModel::Uniform(p) => p > 0.0,
            DropModel::GilbertElliott {
                good_loss,
                bad_loss,
                ..
            } => good_loss > 0.0 || bad_loss > 0.0,
        }
    }
}

/// Static per-direction fault configuration.
///
/// The default is fully inert: every probability zero, no jitter. A spec
/// with `seed == 0` derives its stream from the owning device identity
/// (NIC MAC / switch port index), so distinct devices never share a fault
/// schedule unless explicitly seeded alike.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultSpec {
    /// Seed for the injector's private RNG stream; 0 = derive from the
    /// owning device.
    pub seed: u64,
    /// Drop model.
    pub drop: DropModel,
    /// Probability a delivered packet is duplicated (the copy arrives one
    /// nanosecond after the original).
    pub dup_prob: f64,
    /// Probability a delivered packet is held back and released only
    /// after `reorder_window` subsequent deliveries overtake it.
    pub reorder_prob: f64,
    /// How many subsequent packets overtake a held packet (minimum 1).
    pub reorder_window: u32,
    /// Maximum extra delivery delay; each packet gets a uniform draw in
    /// `[0, jitter]`. Zero disables jitter.
    pub jitter: SimTime,
    /// Probability a packet is corrupted in flight (see
    /// `corrupt_payload`).
    pub corrupt_prob: f64,
    /// When corrupting: also flip payload bytes. When false, corruption
    /// is confined to TCP header bits (flags/window) — suitable for e2e
    /// runs whose applications verify payload integrity, while still
    /// exercising the stacks' hostile-input handling.
    pub corrupt_payload: bool,
}

impl FaultSpec {
    /// An inert spec (no faults).
    pub fn none() -> FaultSpec {
        FaultSpec::default()
    }

    /// Independent uniform loss, the `tx_loss` compat shape.
    pub fn uniform_loss(p: f64, seed: u64) -> FaultSpec {
        FaultSpec {
            seed,
            drop: DropModel::Uniform(p),
            ..FaultSpec::default()
        }
    }

    /// A drop+duplicate+reorder schedule, the standard e2e stress shape.
    pub fn lossy(drop_p: f64, dup_p: f64, reorder_p: f64, seed: u64) -> FaultSpec {
        FaultSpec {
            seed,
            drop: DropModel::Uniform(drop_p),
            dup_prob: dup_p,
            reorder_prob: reorder_p,
            reorder_window: 2,
            ..FaultSpec::default()
        }
    }

    /// True when any fault can fire (an inert spec lets the owner skip
    /// the injector entirely, keeping the lossless hot path unchanged).
    pub fn is_active(&self) -> bool {
        self.drop.is_active()
            || self.dup_prob > 0.0
            || self.reorder_prob > 0.0
            || self.jitter > SimTime::ZERO
            || self.corrupt_prob > 0.0
    }
}

/// A deterministic per-direction fault injector.
///
/// [`FaultInjector::apply`] maps one offered packet (with its nominal
/// arrival time at the far end) to zero or more `(arrival, segment)`
/// deliveries. Per-packet decisions draw from the injector's private RNG
/// in a fixed order — drop, corruption, jitter, duplication, reorder —
/// so the schedule replays exactly for a given spec and packet sequence.
#[derive(Debug)]
pub struct FaultInjector {
    spec: FaultSpec,
    rng: Rng,
    /// Gilbert–Elliott channel state.
    in_bad: bool,
    /// A packet held for reordering: (segment, deliveries still to pass).
    held: Option<(Segment, u32)>,
    /// Owning device identity (NIC MAC bits / switch port), reported in
    /// trace events.
    device_id: u64,
    /// Registry-backed counters (source of truth).
    reg: Registry,
    c_seen: CounterId,
    c_delivered: CounterId,
    c_dropped: CounterId,
    c_duplicated: CounterId,
    c_reordered: CounterId,
    c_jittered: CounterId,
    c_corrupted: CounterId,
}

impl FaultInjector {
    /// Creates an injector for `spec`, deriving the RNG stream from
    /// `device_id` when the spec leaves `seed` at 0.
    pub fn new(spec: FaultSpec, device_id: u64) -> Self {
        let seed = if spec.seed != 0 {
            spec.seed
        } else {
            // Golden-ratio mix keeps device 0 off the trivial zero seed.
            device_id ^ 0x9E37_79B9_7F4A_7C15
        };
        let mut reg = Registry::new();
        let c_seen = reg.counter("fault.seen", Scope::Global);
        let c_delivered = reg.counter("fault.delivered", Scope::Global);
        let c_dropped = reg.counter("fault.dropped", Scope::Global);
        let c_duplicated = reg.counter("fault.duplicated", Scope::Global);
        let c_reordered = reg.counter("fault.reordered", Scope::Global);
        let c_jittered = reg.counter("fault.jittered", Scope::Global);
        let c_corrupted = reg.counter("fault.corrupted", Scope::Global);
        FaultInjector {
            spec,
            rng: Rng::new(seed),
            in_bad: false,
            held: None,
            device_id,
            reg,
            c_seen,
            c_delivered,
            c_dropped,
            c_duplicated,
            c_reordered,
            c_jittered,
            c_corrupted,
        }
    }

    /// The injector's spec.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Packets dropped so far (hot-path read for owner accounting).
    pub fn dropped(&self) -> u64 {
        self.reg.get(self.c_dropped)
    }

    /// Deterministic ordered dump of the injector's metrics.
    pub fn snapshot(&self) -> tas_sim::Snapshot {
        self.reg.snapshot()
    }

    #[cfg(feature = "trace")]
    fn trace_verdict(&self, verdict: &'static str, when: SimTime, seg: &Segment) {
        let (flow, seq, dev) = (seg.flow_key(), seg.tcp.seq, self.device_id);
        tas_telemetry::emit(|| tas_telemetry::TraceRecord {
            t: when,
            site: "fault",
            ev: tas_telemetry::TraceEvent::Fault {
                verdict,
                flow,
                seq,
                dev,
            },
        });
    }

    #[cfg(not(feature = "trace"))]
    #[inline(always)]
    fn trace_verdict(&self, _verdict: &'static str, _when: SimTime, _seg: &Segment) {}

    /// True when the injector can perturb traffic at all.
    pub fn is_active(&self) -> bool {
        self.spec.is_active()
    }

    /// The owning device identity this injector reports in trace events.
    pub fn device_id(&self) -> u64 {
        self.device_id
    }

    fn should_drop(&mut self) -> bool {
        match self.spec.drop {
            DropModel::None => false,
            DropModel::Uniform(p) => self.rng.chance(p),
            DropModel::GilbertElliott {
                p_enter_bad,
                p_exit_bad,
                good_loss,
                bad_loss,
            } => {
                // Transition first, then sample the new state's loss.
                if self.in_bad {
                    if self.rng.chance(p_exit_bad) {
                        self.in_bad = false;
                    }
                } else if self.rng.chance(p_enter_bad) {
                    self.in_bad = true;
                }
                let p = if self.in_bad { bad_loss } else { good_loss };
                self.rng.chance(p)
            }
        }
    }

    fn corrupt(&mut self, seg: &mut Segment) {
        // Payload flips only when the harness opted in; header corruption
        // twiddles bits a robust stack must tolerate (the slow path sees
        // URG as an exception, window scrambles stress flow control).
        if self.spec.corrupt_payload && !seg.payload.is_empty() {
            let i = self.rng.below(seg.payload.len() as u64) as usize;
            let bit = self.rng.below(8) as u8;
            // Copy-on-write: corruption must not reach other agents'
            // shared views of this buffer.
            seg.payload.make_mut()[i] ^= 1 << bit;
            return;
        }
        match self.rng.below(3) {
            0 => seg.tcp.flags.0 ^= TcpFlags::URG.0,
            1 => seg.tcp.flags.0 ^= TcpFlags::PSH.0,
            _ => seg.tcp.window ^= (self.rng.next_u64() as u16) | 1,
        }
    }

    /// Processes one packet with nominal far-end arrival time `arrival`,
    /// appending the resulting deliveries to `out`. A held (reordered)
    /// packet is released just after the delivery that completes its
    /// window, preserving its eventual arrival.
    pub fn apply(&mut self, arrival: SimTime, mut seg: Segment, out: &mut Vec<(SimTime, Segment)>) {
        self.reg.inc(self.c_seen);
        if self.should_drop() {
            self.reg.inc(self.c_dropped);
            self.trace_verdict("drop", arrival, &seg);
            // Dropped packets do not advance the reorder window: held
            // packets reorder relative to traffic actually on the wire.
            return;
        }
        if self.spec.corrupt_prob > 0.0 && self.rng.chance(self.spec.corrupt_prob) {
            self.corrupt(&mut seg);
            self.reg.inc(self.c_corrupted);
            self.trace_verdict("corrupt", arrival, &seg);
        }
        let mut when = arrival;
        if self.spec.jitter > SimTime::ZERO {
            let extra = SimTime::from_ps(self.rng.below(self.spec.jitter.as_ps() + 1));
            if extra > SimTime::ZERO {
                self.reg.inc(self.c_jittered);
                self.trace_verdict("jitter", arrival + extra, &seg);
            }
            when += extra;
        }
        let duplicate = self.spec.dup_prob > 0.0 && self.rng.chance(self.spec.dup_prob);
        // Hold for reordering only when no packet is already held: a
        // single-slot model, bounded and deterministic.
        if self.held.is_none() && self.spec.reorder_prob > 0.0 && self.rng.chance(self.spec.reorder_prob)
        {
            let window = self.spec.reorder_window.max(1);
            if duplicate {
                // The copy travels normally; the original waits.
                self.reg.inc(self.c_duplicated);
                self.reg.inc(self.c_delivered);
                self.trace_verdict("dup", when + SimTime::from_ns(1), &seg);
                out.push((when + SimTime::from_ns(1), seg.clone()));
                self.release_after(1, when, out);
            }
            self.held = Some((seg, window));
            return;
        }
        self.reg.inc(self.c_delivered);
        if duplicate {
            self.reg.inc(self.c_duplicated);
            self.reg.inc(self.c_delivered);
            self.trace_verdict("dup", when + SimTime::from_ns(1), &seg);
            out.push((when + SimTime::from_ns(1), seg.clone()));
        }
        let passed = if duplicate { 2 } else { 1 };
        out.push((when, seg));
        self.release_after(passed, when, out);
    }

    /// Counts `passed` deliveries against the held packet's window and
    /// releases it just after `last_arrival` once the window is spent.
    fn release_after(&mut self, passed: u32, last_arrival: SimTime, out: &mut Vec<(SimTime, Segment)>) {
        if let Some((_, remaining)) = self.held.as_mut() {
            *remaining = remaining.saturating_sub(passed);
            if *remaining == 0 {
                let (seg, _) = self.held.take().expect("checked above");
                self.reg.inc(self.c_reordered);
                self.reg.inc(self.c_delivered);
                self.trace_verdict("reorder", last_arrival + SimTime::from_ns(1), &seg);
                out.push((last_arrival + SimTime::from_ns(1), seg));
            }
        }
    }

    /// Releases a still-held packet at `now` (end-of-run flush; without
    /// this, a reordered packet at the tail of a quiet flow relies on the
    /// peer's retransmission instead).
    pub fn flush(&mut self, now: SimTime, out: &mut Vec<(SimTime, Segment)>) {
        if let Some((seg, _)) = self.held.take() {
            self.reg.inc(self.c_reordered);
            self.reg.inc(self.c_delivered);
            self.trace_verdict("reorder", now, &seg);
            out.push((now, seg));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use tas_proto::{MacAddr, TcpHeader};
    use tas_sim::{Scope, Snapshot};

    /// Counter read from an injector snapshot (the registry-backed view).
    fn c(s: &Snapshot, name: &'static str) -> u64 {
        s.counter(name, Scope::Global)
    }

    fn seg(n: u32) -> Segment {
        Segment::tcp(
            MacAddr::for_host(1),
            MacAddr::for_host(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            TcpHeader::new(1000, 80, n, 0, TcpFlags::ACK),
            vec![n as u8; 32],
            true,
        )
    }

    /// Runs `n` packets through an injector, returning the delivery trace
    /// as (arrival, original sequence number) pairs.
    fn trace(spec: FaultSpec, n: u32) -> (Vec<(SimTime, u32)>, Snapshot) {
        let mut inj = FaultInjector::new(spec, 7);
        let mut out = Vec::new();
        for i in 0..n {
            inj.apply(SimTime::from_us(i as u64), seg(i), &mut out);
        }
        inj.flush(SimTime::from_us(n as u64), &mut out);
        (
            out.into_iter().map(|(t, s)| (t, s.tcp.seq)).collect(),
            inj.snapshot(),
        )
    }

    #[test]
    fn inert_spec_passes_through_unchanged() {
        let (tr, s) = trace(FaultSpec::none(), 50);
        assert_eq!(tr.len(), 50);
        for (i, (t, sn)) in tr.iter().enumerate() {
            assert_eq!(*t, SimTime::from_us(i as u64));
            assert_eq!(*sn, i as u32);
        }
        let fired = c(&s, "fault.dropped")
            + c(&s, "fault.duplicated")
            + c(&s, "fault.reordered")
            + c(&s, "fault.jittered")
            + c(&s, "fault.corrupted");
        assert_eq!(fired, 0, "inert spec must not fire: {s:?}");
        assert_eq!(c(&s, "fault.delivered"), 50);
    }

    #[test]
    fn uniform_drop_rate_is_proportional() {
        let spec = FaultSpec::uniform_loss(0.1, 42);
        let (tr, s) = trace(spec, 10_000);
        let (seen, dropped, delivered) = (
            c(&s, "fault.seen"),
            c(&s, "fault.dropped"),
            c(&s, "fault.delivered"),
        );
        assert_eq!(seen, 10_000);
        assert_eq!(dropped + delivered, 10_000);
        assert_eq!(tr.len() as u64, delivered);
        assert!((800..1200).contains(&dropped), "~10% of 10k, got {dropped}");
    }

    #[test]
    fn gilbert_elliott_losses_are_bursty() {
        // Same long-run loss rate (~10%) as a uniform model, but arranged
        // in bursts: mean run length of consecutive drops must exceed the
        // uniform model's (which is ~1/(1-p) ≈ 1.1).
        let ge = FaultSpec {
            seed: 9,
            drop: DropModel::GilbertElliott {
                p_enter_bad: 0.02,
                p_exit_bad: 0.2,
                good_loss: 0.0,
                bad_loss: 0.9,
            },
            ..FaultSpec::default()
        };
        let runs = |spec: FaultSpec| -> (f64, u64) {
            let mut inj = FaultInjector::new(spec, 7);
            let mut out = Vec::new();
            let (mut runs, mut cur) = (Vec::new(), 0u64);
            for i in 0..20_000 {
                let before = inj.dropped();
                inj.apply(SimTime::from_us(i), seg(i as u32), &mut out);
                if inj.dropped() > before {
                    cur += 1;
                } else if cur > 0 {
                    runs.push(cur);
                    cur = 0;
                }
            }
            let total: u64 = runs.iter().sum::<u64>() + cur;
            let mean = total as f64 / runs.len().max(1) as f64;
            (mean, total)
        };
        let (ge_mean, ge_total) = runs(ge);
        let (uni_mean, _) = runs(FaultSpec::uniform_loss(0.1, 9));
        assert!(ge_total > 500, "bursty model must actually drop: {ge_total}");
        assert!(
            ge_mean > uni_mean * 1.5,
            "GE run length {ge_mean:.2} should exceed uniform {uni_mean:.2}"
        );
    }

    #[test]
    fn duplicates_deliver_both_copies() {
        let spec = FaultSpec {
            seed: 3,
            dup_prob: 0.5,
            ..FaultSpec::default()
        };
        let (tr, s) = trace(spec, 1000);
        let duplicated = c(&s, "fault.duplicated");
        assert!(duplicated > 300, "got {duplicated}");
        assert_eq!(tr.len() as u64, 1000 + duplicated);
        // Copies carry the same sequence number 1ns apart.
        let mut by_seq = std::collections::HashMap::new();
        for (_, sn) in &tr {
            *by_seq.entry(*sn).or_insert(0u32) += 1;
        }
        assert_eq!(by_seq.values().filter(|&&n| n == 2).count() as u64, duplicated);
    }

    #[test]
    fn reordering_releases_within_window() {
        let spec = FaultSpec {
            seed: 5,
            reorder_prob: 0.2,
            reorder_window: 2,
            ..FaultSpec::default()
        };
        let (tr, s) = trace(spec, 1000);
        let reordered = c(&s, "fault.reordered");
        assert!(reordered > 50, "got {reordered}");
        assert_eq!(tr.len(), 1000);
        // Arrival times must be non-decreasing per the trace order of
        // emission... but reordered packets land late: verify that some
        // packet's arrival order differs from its sequence order, and
        // displacement is bounded by the window.
        let mut sorted = tr.clone();
        sorted.sort_by_key(|&(t, _)| t);
        let seqs: Vec<u32> = sorted.iter().map(|&(_, sn)| sn).collect();
        let mut displaced = 0;
        for (i, &sn) in seqs.iter().enumerate() {
            let d = (i as i64 - sn as i64).abs();
            assert!(d <= 3, "displacement {d} exceeds window at {i}");
            if d > 0 {
                displaced += 1;
            }
        }
        assert!(displaced > 0, "no packet actually reordered");
    }

    #[test]
    fn jitter_bounded_and_counted() {
        let spec = FaultSpec {
            seed: 6,
            jitter: SimTime::from_ns(500),
            ..FaultSpec::default()
        };
        let (tr, s) = trace(spec, 500);
        assert_eq!(tr.len(), 500);
        assert!(c(&s, "fault.jittered") > 400);
        for (i, (t, _)) in tr.iter().enumerate() {
            let base = SimTime::from_us(i as u64);
            assert!(*t >= base && *t <= base + SimTime::from_ns(500));
        }
    }

    #[test]
    fn corruption_mutates_header_not_payload_by_default() {
        let spec = FaultSpec {
            seed: 8,
            corrupt_prob: 1.0,
            ..FaultSpec::default()
        };
        let mut inj = FaultInjector::new(spec, 7);
        let mut out = Vec::new();
        for i in 0..100 {
            inj.apply(SimTime::from_us(i), seg(i as u32), &mut out);
        }
        assert_eq!(c(&inj.snapshot(), "fault.corrupted"), 100);
        let mut changed = 0;
        for (i, (_, s)) in out.iter().enumerate() {
            assert_eq!(s.payload, vec![i as u8; 32], "payload must be intact");
            let orig = seg(i as u32);
            if s.tcp.flags != orig.tcp.flags || s.tcp.window != orig.tcp.window {
                changed += 1;
            }
        }
        assert_eq!(changed, 100, "every corrupted packet differs in header");
    }

    #[test]
    fn payload_corruption_flips_exactly_one_bit() {
        let spec = FaultSpec {
            seed: 8,
            corrupt_prob: 1.0,
            corrupt_payload: true,
            ..FaultSpec::default()
        };
        let mut inj = FaultInjector::new(spec, 7);
        let mut out = Vec::new();
        inj.apply(SimTime::ZERO, seg(1), &mut out);
        let diff: u32 = out[0]
            .1
            .payload
            .iter()
            .zip(vec![1u8; 32])
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1);
    }

    #[test]
    fn same_seed_same_trace_different_seed_differs() {
        let spec = FaultSpec::lossy(0.05, 0.03, 0.03, 1234);
        let (a, ca) = trace(spec, 2000);
        let (b, cb) = trace(spec, 2000);
        assert_eq!(a, b, "identical spec must replay byte-for-byte");
        assert_eq!(ca, cb);
        let other = FaultSpec {
            seed: 1235,
            ..spec
        };
        let (c, _) = trace(other, 2000);
        assert_ne!(a, c, "different seed must produce a different schedule");
    }

    #[test]
    fn flush_releases_held_packet() {
        let spec = FaultSpec {
            seed: 2,
            reorder_prob: 1.0,
            reorder_window: 100,
            ..FaultSpec::default()
        };
        let mut inj = FaultInjector::new(spec, 7);
        let mut out = Vec::new();
        inj.apply(SimTime::from_us(1), seg(1), &mut out);
        assert!(out.is_empty(), "packet held");
        inj.flush(SimTime::from_us(9), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, SimTime::from_us(9));
        assert_eq!(c(&inj.snapshot(), "fault.reordered"), 1);
    }

    #[test]
    fn zero_seed_derives_distinct_streams_per_device() {
        let spec = FaultSpec {
            seed: 0,
            drop: DropModel::Uniform(0.5),
            ..FaultSpec::default()
        };
        let run = |dev: u64| {
            let mut inj = FaultInjector::new(spec, dev);
            let mut out = Vec::new();
            for i in 0..64 {
                inj.apply(SimTime::from_us(i), seg(i as u32), &mut out);
            }
            inj.dropped()
        };
        // Two devices with the same inert seed should not march in
        // lockstep (64 Bernoulli draws colliding exactly is ~2^-64).
        let (a, b) = (run(1), run(2));
        let differs = a != b || {
            // Equal totals can still differ in schedule; compare traces.
            let t1: Vec<_> = {
                let mut inj = FaultInjector::new(spec, 1);
                let mut out = Vec::new();
                for i in 0..64 {
                    inj.apply(SimTime::from_us(i), seg(i as u32), &mut out);
                }
                out.iter().map(|(_, s)| s.tcp.seq).collect()
            };
            let t2: Vec<_> = {
                let mut inj = FaultInjector::new(spec, 2);
                let mut out = Vec::new();
                for i in 0..64 {
                    inj.apply(SimTime::from_us(i), seg(i as u32), &mut out);
                }
                out.iter().map(|(_, s)| s.tcp.seq).collect()
            };
            t1 != t2
        };
        assert!(differs, "device-derived streams must differ");
    }
}
