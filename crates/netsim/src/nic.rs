//! Host NIC model: multi-queue receive with RSS, serialized transmit.

use crate::fault::{FaultInjector, FaultSpec};
use crate::rss::{hash_tuple, RssTable};
use crate::NetMsg;
use std::collections::VecDeque;
use tas_proto::{MacAddr, Segment};
use tas_sim::time::transmission_time;
use tas_sim::{AgentId, Ctx, SimTime};

/// Static configuration of a host NIC and its uplink.
#[derive(Clone, Debug)]
pub struct NicConfig {
    /// Link rate in bits/second (paper server: 40 Gbps; clients: 10 Gbps).
    pub rate_bps: u64,
    /// One-way propagation delay to the first-hop device.
    pub prop_delay: SimTime,
    /// Number of receive queues (= maximum fast-path cores).
    pub rx_queues: usize,
    /// Fault schedule for the transmit (host → network) direction.
    /// Fig. 7's induced loss is `FaultSpec::uniform_loss(p, seed)`.
    pub tx_fault: FaultSpec,
}

impl NicConfig {
    /// A 40 Gbps server NIC with `rx_queues` queues and 1 µs of wire delay.
    pub fn server_40g(rx_queues: usize) -> Self {
        NicConfig {
            rate_bps: 40_000_000_000,
            prop_delay: SimTime::from_us(1),
            rx_queues,
            tx_fault: FaultSpec::none(),
        }
    }

    /// A 10 Gbps client NIC.
    pub fn client_10g(rx_queues: usize) -> Self {
        NicConfig {
            rate_bps: 10_000_000_000,
            prop_delay: SimTime::from_us(1),
            rx_queues,
            tx_fault: FaultSpec::none(),
        }
    }
}

/// A multi-queue NIC owned by a host agent.
///
/// Receive: [`HostNic::rx_enqueue`] hashes the 4-tuple, consults the RSS
/// redirection table, and appends to the selected queue; the host's stack
/// drains queues from its (fast-path) cores. Transmit: [`HostNic::tx`]
/// serializes packets onto the uplink — departure times respect the link
/// rate, so host-side output queueing emerges when the stack produces
/// faster than the wire drains.
#[derive(Debug)]
pub struct HostNic {
    /// This NIC's MAC address.
    pub mac: MacAddr,
    cfg: NicConfig,
    uplink: AgentId,
    rss: RssTable,
    rx_queues: Vec<VecDeque<Segment>>,
    tx_busy_until: SimTime,
    /// Transmit-direction fault injector (inert unless configured).
    fault: FaultInjector,
    /// Scratch buffer for injector output (avoids per-packet allocation).
    fault_out: Vec<(SimTime, Segment)>,
    /// Packets dropped by loss injection.
    pub tx_dropped: u64,
    /// Packets transmitted.
    pub tx_count: u64,
    /// Bytes transmitted (wire bytes).
    pub tx_bytes: u64,
    /// Packets received into queues.
    pub rx_count: u64,
}

impl HostNic {
    /// Creates a NIC attached to the agent `uplink` (its first-hop switch
    /// or peer host).
    pub fn new(mac: MacAddr, cfg: NicConfig, uplink: AgentId) -> Self {
        let rss = RssTable::new(cfg.rx_queues);
        let rx_queues = (0..cfg.rx_queues).map(|_| VecDeque::new()).collect();
        // Derive the default injector stream from the MAC so distinct
        // NICs never share a fault schedule.
        let mut dev = 0u64;
        for b in mac.0 {
            dev = dev << 8 | b as u64;
        }
        let fault = FaultInjector::new(cfg.tx_fault, dev);
        HostNic {
            mac,
            cfg,
            uplink,
            rss,
            rx_queues,
            tx_busy_until: SimTime::ZERO,
            fault,
            fault_out: Vec::new(),
            tx_dropped: 0,
            tx_count: 0,
            tx_bytes: 0,
            rx_count: 0,
        }
    }

    /// The NIC configuration.
    pub fn config(&self) -> &NicConfig {
        &self.cfg
    }

    /// Number of receive queues.
    pub fn rx_queue_count(&self) -> usize {
        self.rx_queues.len()
    }

    /// Read access to the RSS redirection table.
    pub fn rss(&self) -> &RssTable {
        &self.rss
    }

    /// Mutable access to the redirection table (TAS's proportionality
    /// controller rewrites it on core add/remove).
    pub fn rss_mut(&mut self) -> &mut RssTable {
        &mut self.rss
    }

    /// Enqueues an arriving packet, returning the receive queue chosen by
    /// RSS.
    pub fn rx_enqueue(&mut self, seg: Segment) -> usize {
        let q = self.rss.queue_for_hash(hash_tuple(
            seg.ip.src,
            seg.ip.dst,
            seg.tcp.src_port,
            seg.tcp.dst_port,
        ));
        self.rx_count += 1;
        self.rx_queues[q].push_back(seg);
        q
    }

    /// Dequeues the next packet from receive queue `q`.
    pub fn rx_dequeue(&mut self, q: usize) -> Option<Segment> {
        self.rx_queues[q].pop_front()
    }

    /// Occupancy of receive queue `q`.
    pub fn rx_depth(&self, q: usize) -> usize {
        self.rx_queues[q].len()
    }

    /// Total packets waiting across all receive queues.
    pub fn rx_pending(&self) -> usize {
        self.rx_queues.iter().map(|q| q.len()).sum()
    }

    /// Transmits a packet onto the uplink no earlier than `ready` (when the
    /// producing core finished building it). Returns the departure time.
    ///
    /// Fault injection perturbs the packet *after* charging wire time:
    /// a dropped packet models corruption on the wire, and a duplicate or
    /// reordered copy costs no extra serialization.
    pub fn tx(&mut self, ready: SimTime, seg: Segment, ctx: &mut Ctx<'_, NetMsg>) -> SimTime {
        let start = ready.max(self.tx_busy_until);
        let depart = start + transmission_time(seg.wire_len() as u64, self.cfg.rate_bps);
        self.tx_busy_until = depart;
        self.tx_count += 1;
        self.tx_bytes += seg.wire_len() as u64;
        let arrival = depart + self.cfg.prop_delay;
        // Span stamp at serialization completion: even a packet the wire
        // then corrupts did occupy the TX queue and the link.
        #[cfg(feature = "trace")]
        if !seg.payload.is_empty() {
            let (flow, seq, len) = (
                seg.flow_key().reversed(),
                seg.tcp.seq,
                seg.payload.len() as u32,
            );
            let wait_ns = start.saturating_sub(ready).as_nanos();
            tas_telemetry::emit(|| tas_telemetry::TraceRecord {
                t: depart,
                site: "nic",
                ev: tas_telemetry::TraceEvent::Stage {
                    stage: tas_telemetry::Stage::NicTx,
                    flow,
                    seq,
                    len,
                    wait_ns,
                },
            });
        }
        if self.fault.is_active() {
            let before = self.fault.dropped();
            self.fault.apply(arrival, seg, &mut self.fault_out);
            self.tx_dropped += self.fault.dropped() - before;
            for (t, s) in self.fault_out.drain(..) {
                Self::trace_tx(t, &s);
                ctx.send_at(self.uplink, t, NetMsg::Packet(s));
            }
        } else {
            Self::trace_tx(arrival, &seg);
            ctx.send_at(self.uplink, arrival, NetMsg::Packet(seg));
        }
        depart
    }

    /// Records a wire transmission in the flight recorder. Site `"nic"`
    /// is the canonical on-the-wire capture point: post-fault, so the
    /// trace (and a pcap built from it) shows what actually went out.
    #[cfg(feature = "trace")]
    fn trace_tx(when: SimTime, seg: &Segment) {
        tas_telemetry::emit(|| tas_telemetry::TraceRecord {
            t: when,
            site: "nic",
            ev: tas_telemetry::TraceEvent::SegTx {
                seg: Box::new(seg.clone()),
            },
        });
    }

    #[cfg(not(feature = "trace"))]
    #[inline(always)]
    fn trace_tx(_when: SimTime, _seg: &Segment) {}

    /// Deterministic ordered dump of the transmit injector's metrics.
    pub fn tx_fault_snapshot(&self) -> tas_sim::Snapshot {
        self.fault.snapshot()
    }

    /// Releases a packet the injector still holds for reordering (e2e
    /// harness teardown).
    pub fn flush_faults(&mut self, now: SimTime, ctx: &mut Ctx<'_, NetMsg>) {
        self.fault.flush(now, &mut self.fault_out);
        for (t, s) in self.fault_out.drain(..) {
            Self::trace_tx(t, &s);
            ctx.send_at(self.uplink, t, NetMsg::Packet(s));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use tas_proto::{TcpFlags, TcpHeader};
    use tas_sim::{impl_as_any, Agent, Event, Sim};

    fn seg(sport: u16) -> Segment {
        Segment::tcp(
            MacAddr::for_host(1),
            MacAddr::for_host(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            TcpHeader::new(sport, 80, 0, 0, TcpFlags::ACK),
            vec![0; 64],
            true,
        )
    }

    #[test]
    fn rss_steers_flows_stably() {
        let mut nic = HostNic::new(MacAddr::for_host(2), NicConfig::server_40g(4), 0);
        let q1 = nic.rx_enqueue(seg(1000));
        let q2 = nic.rx_enqueue(seg(1000));
        assert_eq!(q1, q2, "same flow must hit the same queue");
        // Many flows spread across queues.
        let mut used = std::collections::BTreeSet::new();
        for p in 0..64 {
            used.insert(nic.rx_enqueue(seg(2000 + p)));
        }
        assert!(used.len() >= 3, "flows should spread: {used:?}");
        assert_eq!(nic.rx_pending(), 66);
    }

    #[test]
    fn rx_queues_are_fifo() {
        let mut nic = HostNic::new(MacAddr::for_host(2), NicConfig::server_40g(1), 0);
        let mut a = seg(1);
        a.tcp.seq = 111;
        let mut b = seg(1);
        b.tcp.seq = 222;
        nic.rx_enqueue(a);
        nic.rx_enqueue(b);
        assert_eq!(nic.rx_dequeue(0).unwrap().tcp.seq, 111);
        assert_eq!(nic.rx_dequeue(0).unwrap().tcp.seq, 222);
        assert!(nic.rx_dequeue(0).is_none());
    }

    /// A sink agent recording packet arrival times.
    struct Sink {
        arrivals: Vec<SimTime>,
    }
    impl Agent<NetMsg> for Sink {
        fn on_event(&mut self, ev: Event<NetMsg>, ctx: &mut tas_sim::Ctx<'_, NetMsg>) {
            if let Event::Msg {
                msg: NetMsg::Packet(_),
                ..
            } = ev
            {
                self.arrivals.push(ctx.now());
            }
        }
        impl_as_any!();
    }

    /// A driver agent that transmits two packets back-to-back at t=0.
    struct Driver {
        nic: HostNic,
    }
    impl Agent<NetMsg> for Driver {
        fn on_event(&mut self, ev: Event<NetMsg>, ctx: &mut tas_sim::Ctx<'_, NetMsg>) {
            if let Event::Timer { .. } = ev {
                self.nic.tx(ctx.now(), seg(7), ctx);
                self.nic.tx(ctx.now(), seg(7), ctx);
            }
        }
        impl_as_any!();
    }

    #[test]
    fn tx_serializes_on_link_rate() {
        let mut sim: Sim<NetMsg> = Sim::new(1);
        let sink = sim.add_agent(Box::new(Sink {
            arrivals: Vec::new(),
        }));
        // 10 Gbps, 1us propagation; wire len = 14+20+20+64 = 118B -> 94.4ns.
        let cfg = NicConfig {
            rate_bps: 10_000_000_000,
            prop_delay: SimTime::from_us(1),
            rx_queues: 1,
            tx_fault: FaultSpec::none(),
        };
        let nic = HostNic::new(MacAddr::for_host(1), cfg, sink);
        let driver = sim.add_agent(Box::new(Driver { nic }));
        sim.inject_timer(SimTime::ZERO, driver, 0, 0);
        sim.run_until(SimTime::from_ms(1));
        let arr = &sim.agent::<Sink>(sink).arrivals;
        assert_eq!(arr.len(), 2);
        let wire = SimTime::from_ps(94_400);
        assert_eq!(arr[0], SimTime::from_us(1) + wire);
        assert_eq!(
            arr[1],
            SimTime::from_us(1) + wire * 2,
            "second packet queues behind first"
        );
    }

    #[test]
    fn loss_injection_drops_proportionally() {
        struct Blaster {
            nic: HostNic,
        }
        impl Agent<NetMsg> for Blaster {
            fn on_event(&mut self, ev: Event<NetMsg>, ctx: &mut tas_sim::Ctx<'_, NetMsg>) {
                if let Event::Timer { .. } = ev {
                    for _ in 0..10_000 {
                        self.nic.tx(ctx.now(), seg(9), ctx);
                    }
                }
            }
            impl_as_any!();
        }
        let mut sim: Sim<NetMsg> = Sim::new(2);
        let sink = sim.add_agent(Box::new(Sink {
            arrivals: Vec::new(),
        }));
        let cfg = NicConfig {
            rate_bps: 40_000_000_000,
            prop_delay: SimTime::from_us(1),
            rx_queues: 1,
            // seed 0 derives the stream from the device identity, the
            // same schedule the removed `tx_loss` fold produced.
            tx_fault: FaultSpec::uniform_loss(0.05, 0),
        };
        let nic = HostNic::new(MacAddr::for_host(1), cfg, sink);
        let blaster = sim.add_agent(Box::new(Blaster { nic }));
        sim.inject_timer(SimTime::ZERO, blaster, 0, 0);
        sim.run_until(SimTime::from_secs(1));
        let delivered = sim.agent::<Sink>(sink).arrivals.len();
        let dropped = sim.agent::<Blaster>(blaster).nic.tx_dropped;
        assert_eq!(delivered as u64 + dropped, 10_000);
        assert!((400..600).contains(&dropped), "~5% of 10k, got {dropped}");
    }
}
