//! Receive-side scaling: Toeplitz hashing and the redirection table.
//!
//! TAS steers packets to fast-path cores with the NIC's RSS redirection
//! table and updates that table eagerly when adding/removing cores (§3.4).
//! The hash is the standard Toeplitz construction over the IPv4 4-tuple
//! with the well-known Microsoft verification key, so hash values match
//! real NICs bit-for-bit.

use std::net::Ipv4Addr;

/// The Microsoft RSS verification key used by most NIC drivers by default.
pub const TOEPLITZ_KEY: [u8; 40] = [
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
    0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
    0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
];

/// Toeplitz hash over arbitrary input bytes with the given key.
pub fn toeplitz_hash(key: &[u8; 40], input: &[u8]) -> u32 {
    let mut result: u32 = 0;
    // The hash window is the first 32 bits of the key, shifting left one
    // bit per input bit.
    let mut window = u32::from_be_bytes([key[0], key[1], key[2], key[3]]);
    let mut next_bit_idx = 32; // Next key bit to shift into the window.
    for &byte in input {
        for bit in (0..8).rev() {
            if byte >> bit & 1 == 1 {
                result ^= window;
            }
            let next = if next_bit_idx < 320 {
                key[next_bit_idx / 8] >> (7 - next_bit_idx % 8) & 1
            } else {
                0
            };
            window = (window << 1) | next as u32;
            next_bit_idx += 1;
        }
    }
    result
}

/// Hashes an IPv4/TCP 4-tuple as NICs do for RSS (src ip, dst ip, src
/// port, dst port, all big-endian).
pub fn hash_tuple(src: Ipv4Addr, dst: Ipv4Addr, sport: u16, dport: u16) -> u32 {
    let mut input = [0u8; 12];
    input[0..4].copy_from_slice(&src.octets());
    input[4..8].copy_from_slice(&dst.octets());
    input[8..10].copy_from_slice(&sport.to_be_bytes());
    input[10..12].copy_from_slice(&dport.to_be_bytes());
    toeplitz_hash(&TOEPLITZ_KEY, &input)
}

/// The NIC's RSS redirection table: hash → receive queue.
///
/// 128 entries as on the paper's Intel NICs. TAS rewrites entries to steer
/// flows toward or away from fast-path cores during scale-up/down.
///
/// # Examples
///
/// ```
/// use tas_netsim::RssTable;
/// let mut t = RssTable::new(4);
/// assert!(t.queue_for_hash(0x1234) < 4);
/// t.rebalance(2); // Steer everything onto queues 0..2.
/// assert!(t.queue_for_hash(0x1234) < 2);
/// ```
#[derive(Clone, Debug)]
pub struct RssTable {
    entries: Vec<u16>,
}

/// Number of redirection-table entries (Intel 82599/XL710 default).
pub const RSS_TABLE_SIZE: usize = 128;

impl RssTable {
    /// Creates a table spreading entries round-robin over `queues`.
    ///
    /// # Panics
    ///
    /// Panics if `queues` is zero.
    pub fn new(queues: usize) -> Self {
        assert!(queues > 0, "need at least one queue");
        let entries = (0..RSS_TABLE_SIZE).map(|i| (i % queues) as u16).collect();
        RssTable { entries }
    }

    /// Queue index for a hash value.
    pub fn queue_for_hash(&self, hash: u32) -> usize {
        self.entries[hash as usize % RSS_TABLE_SIZE] as usize
    }

    /// Rewrites the whole table to spread over the first `active` queues —
    /// the eager steering update of §3.4.
    ///
    /// # Panics
    ///
    /// Panics if `active` is zero.
    pub fn rebalance(&mut self, active: usize) {
        assert!(active > 0, "need at least one active queue");
        for (i, e) in self.entries.iter_mut().enumerate() {
            *e = (i % active) as u16;
        }
    }

    /// Sets one entry directly.
    pub fn set_entry(&mut self, index: usize, queue: u16) {
        self.entries[index % RSS_TABLE_SIZE] = queue;
    }

    /// Number of distinct queues currently referenced.
    pub fn active_queues(&self) -> usize {
        let mut seen = std::collections::BTreeSet::new();
        for &e in &self.entries {
            seen.insert(e);
        }
        seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer vectors from the Microsoft RSS specification.
    #[test]
    fn toeplitz_known_answers_ipv4() {
        // (src, dst, sport, dport) -> expected hash, from the MSDN
        // verification suite ("IPv4 with TCP" rows).
        let cases = [
            (
                Ipv4Addr::new(66, 9, 149, 187),
                Ipv4Addr::new(161, 142, 100, 80),
                2794,
                1766,
                0x51cc_c178u32,
            ),
            (
                Ipv4Addr::new(199, 92, 111, 2),
                Ipv4Addr::new(65, 69, 140, 83),
                14230,
                4739,
                0xc626_b0eau32,
            ),
            (
                Ipv4Addr::new(24, 19, 198, 95),
                Ipv4Addr::new(12, 22, 207, 184),
                12898,
                38024,
                0x5c2b_394au32,
            ),
        ];
        for (src, dst, sport, dport, want) in cases {
            // The spec orders the tuple (src, dst, sport, dport).
            let got = hash_tuple(src, dst, sport, dport);
            assert_eq!(got, want, "tuple {src}:{sport} -> {dst}:{dport}");
        }
    }

    #[test]
    fn table_spreads_round_robin() {
        let t = RssTable::new(4);
        let mut counts = [0u32; 4];
        for h in 0..1024u32 {
            counts[t.queue_for_hash(h)] += 1;
        }
        for c in counts {
            assert_eq!(c, 256);
        }
        assert_eq!(t.active_queues(), 4);
    }

    #[test]
    fn rebalance_restricts_queues() {
        let mut t = RssTable::new(8);
        t.rebalance(3);
        assert_eq!(t.active_queues(), 3);
        for h in 0..1000u32 {
            assert!(t.queue_for_hash(h) < 3);
        }
    }

    #[test]
    fn same_flow_same_queue() {
        let t = RssTable::new(6);
        let h = hash_tuple(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            80,
            5000,
        );
        assert_eq!(t.queue_for_hash(h), t.queue_for_hash(h));
    }
}
