//! Network substrate for the TAS reproduction.
//!
//! Rebuilds the paper's evaluation environments in the discrete-event
//! engine: the testbed's Ethernet fabric (hosts with multi-queue NICs
//! behind an ECN-marking switch) and the ns-3 setups (single bottleneck
//! link, 3-level FatTree).
//!
//! * [`NetMsg`] — the message type all network agents exchange.
//! * [`HostNic`] — a multi-queue NIC with Toeplitz RSS, a 128-entry
//!   redirection table (updated by TAS's proportionality controller), TX
//!   serialization, and optional loss injection.
//! * [`Switch`] — an output-queued switch with per-port drop-tail queues,
//!   DCTCP-style ECN threshold marking, ECMP routing by flow hash
//!   (connection-stable multi-path, as the paper assumes of datacenter
//!   fabrics), and queue-length sampling for Figure 11b.
//! * [`topo`] — topology builders (star, dumbbell, FatTree) with
//!   shortest-path/ECMP route computation.
//! * [`fault`] — deterministic per-direction fault injection (seeded
//!   uniform/bursty drops, duplication, reordering, jitter, corruption)
//!   that NIC uplinks and switch ports apply at their delivery points.

pub mod app;
pub mod fault;
pub mod nic;
pub mod rss;
pub mod switch;
pub mod topo;

pub use fault::{DropModel, FaultInjector, FaultSpec};
pub use nic::{HostNic, NicConfig};
pub use rss::{toeplitz_hash, RssTable, TOEPLITZ_KEY};
pub use switch::{PortConfig, Switch};

use tas_proto::Segment;

/// Messages exchanged between network agents.
#[derive(Debug)]
pub enum NetMsg {
    /// A packet delivered to a device.
    Packet(Segment),
    /// Harness- or host-defined control signalling (e.g. "client: start
    /// issuing requests", "host: add a connection"). `kind` scopes the
    /// meaning to the receiving agent.
    Ctl {
        /// Receiver-defined discriminator.
        kind: u32,
        /// First payload word.
        a: u64,
        /// Second payload word.
        b: u64,
    },
}

impl NetMsg {
    /// Convenience constructor for control messages.
    pub fn ctl(kind: u32, a: u64, b: u64) -> NetMsg {
        NetMsg::Ctl { kind, a, b }
    }
}
