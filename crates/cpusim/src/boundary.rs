//! Domain-crossing primitives as first-class cycle costs.
//!
//! TAS's evaluation (and the design space around it) is largely a story
//! about *where protection boundaries sit and what each crossing costs*:
//! Linux pays a context switch per socket call, an MPK-protected
//! dataplane pays two WRPKRU writes, and an off-path SmartNIC stack pays
//! a DMA/PCIe round-trip for every app↔NIC interaction. This module
//! models those primitives so baseline stacks can charge them as
//! explicit, sweepable costs rather than folding them into opaque
//! per-call constants.
//!
//! Everything here is pure arithmetic on explicit inputs — no ambient
//! time, no randomness, no panics — so the models stay deterministic and
//! safe on the per-packet path.

use tas_sim::SimTime;

/// The kind of protection/offload boundary a [`Crossing`] models.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CrossingKind {
    /// Syscall-class kernel entry/exit: mode switch, register save and
    /// restore, speculation barriers, and the cache/TLB pollution the
    /// paper's Table 1 attributes to the sockets layer.
    ContextSwitch,
    /// A WRPKRU protection-key update pair (enter + leave the protected
    /// domain) plus the register scrubbing a safe trampoline performs.
    Wrpkru,
    /// An MMIO doorbell ring toward a PCIe device (posted write; the
    /// DMA transfer itself is modeled by [`PcieModel`]).
    Doorbell,
}

impl CrossingKind {
    /// Stable lower-case label used in telemetry frames and reports.
    pub fn label(&self) -> &'static str {
        match self {
            CrossingKind::ContextSwitch => "ctxsw",
            CrossingKind::Wrpkru => "wrpkru",
            CrossingKind::Doorbell => "doorbell",
        }
    }
}

/// A domain crossing charged in cycles on the core that initiates it.
///
/// # Examples
///
/// ```
/// use tas_cpusim::{Crossing, CrossingKind};
/// let mpk = Crossing::wrpkru();
/// let sys = Crossing::context_switch();
/// assert!(mpk.cycles * 10 < sys.cycles, "WRPKRU is an order cheaper");
/// assert_eq!(mpk.kind, CrossingKind::Wrpkru);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Crossing {
    /// Which boundary primitive this is.
    pub kind: CrossingKind,
    /// Cost of one crossing (enter + leave), in initiating-core cycles.
    pub cycles: u64,
}

impl Crossing {
    /// A crossing with an explicit cycle cost (sweep harnesses use this).
    pub const fn new(kind: CrossingKind, cycles: u64) -> Self {
        Crossing { kind, cycles }
    }

    /// Syscall-class context switch: mode transition + register state +
    /// mitigation barriers. Calibrated to the kernel-entry share of the
    /// paper's Linux sockets cost (order 10^3 cycles).
    pub const fn context_switch() -> Self {
        Crossing::new(CrossingKind::ContextSwitch, 1400)
    }

    /// MPK lightweight activation: two WRPKRU instructions (~25 cycles
    /// each on Skylake-class parts) plus trampoline register scrubbing.
    pub const fn wrpkru() -> Self {
        Crossing::new(CrossingKind::Wrpkru, 80)
    }

    /// Posted MMIO doorbell write (uncached store crossing the PCIe
    /// root complex; order 10^2 cycles on the initiating core).
    pub const fn doorbell() -> Self {
        Crossing::new(CrossingKind::Doorbell, 300)
    }
}

/// A PCIe/DMA boundary between host cores and an off-path SmartNIC.
///
/// Three costs compose per interaction:
/// * a one-way DMA **latency** for the descriptor/payload to land on the
///   other side (pure delay, no core is held busy),
/// * payload **serialization** at the modeled link bandwidth, and
/// * an MMIO **doorbell** on the initiating core, amortized over
///   `doorbell_batch` queued messages (descriptor-ring batching).
///
/// # Examples
///
/// ```
/// use tas_cpusim::PcieModel;
/// use tas_sim::SimTime;
/// let pcie = PcieModel::gen3_x8();
/// assert_eq!(pcie.one_way(0), pcie.latency);
/// assert!(pcie.one_way(4096) > pcie.latency, "payload adds wire time");
/// assert!(pcie.doorbell_amortized() <= pcie.doorbell.cycles);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PcieModel {
    /// One-way descriptor latency across the fabric (host↔NIC).
    pub latency: SimTime,
    /// Link payload bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// Messages a single doorbell ring covers (ring-buffer batching).
    pub doorbell_batch: u32,
    /// The doorbell crossing paid by the initiating core.
    pub doorbell: Crossing,
}

impl PcieModel {
    /// A PCIe Gen3 x8 link as found on PnO-class SmartNICs: ~900 ns
    /// one-way DMA latency, ~62 Gbps effective payload bandwidth,
    /// doorbells amortized over 8-deep descriptor bursts.
    pub const fn gen3_x8() -> Self {
        PcieModel {
            latency: SimTime::from_ns(900),
            bandwidth_bps: 62_000_000_000,
            doorbell_batch: 8,
            doorbell: Crossing::doorbell(),
        }
    }

    /// Same link with an explicit one-way latency (sweep harnesses).
    pub const fn with_latency(mut self, latency: SimTime) -> Self {
        self.latency = latency;
        self
    }

    /// Time for `bytes` of payload to serialize onto the link.
    pub fn wire_time(&self, bytes: u64) -> SimTime {
        let bps = self.bandwidth_bps.max(1);
        // ps = bits * 1e12 / bps, in u128 to avoid overflow.
        SimTime::from_ps(((bytes as u128 * 8 * 1_000_000_000_000) / bps as u128) as u64)
    }

    /// One-way transfer delay for a descriptor carrying `bytes` of
    /// payload: DMA latency plus serialization.
    pub fn one_way(&self, bytes: u64) -> SimTime {
        self.latency + self.wire_time(bytes)
    }

    /// Full round trip (request descriptor over, response descriptor
    /// back) for symmetric `bytes` payloads.
    pub fn round_trip(&self, bytes: u64) -> SimTime {
        self.one_way(bytes) + self.one_way(bytes)
    }

    /// Initiating-core cycles per message for the doorbell ring,
    /// amortized over the descriptor batch (rounded up so a batch of 1
    /// pays the full crossing).
    pub fn doorbell_amortized(&self) -> u64 {
        let batch = self.doorbell_batch.max(1) as u64;
        self.doorbell.cycles.div_ceil(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossing_cost_ordering() {
        // The design-space premise: WRPKRU << doorbell < context switch.
        assert!(Crossing::wrpkru().cycles < Crossing::doorbell().cycles);
        assert!(Crossing::doorbell().cycles < Crossing::context_switch().cycles);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(CrossingKind::ContextSwitch.label(), "ctxsw");
        assert_eq!(CrossingKind::Wrpkru.label(), "wrpkru");
        assert_eq!(CrossingKind::Doorbell.label(), "doorbell");
    }

    #[test]
    fn wire_time_scales_with_bytes() {
        let p = PcieModel::gen3_x8();
        assert_eq!(p.wire_time(0), SimTime::ZERO);
        // 62 Gbps: 7750 bytes = 62000 bits = exactly 1 us.
        assert_eq!(p.wire_time(7750), SimTime::from_us(1));
        let small = p.wire_time(64);
        let big = p.wire_time(1448);
        assert!(big > small);
    }

    #[test]
    fn one_way_is_latency_plus_wire() {
        let p = PcieModel::gen3_x8().with_latency(SimTime::from_ns(500));
        assert_eq!(p.one_way(0), SimTime::from_ns(500));
        assert_eq!(p.one_way(7750), SimTime::from_ns(500) + SimTime::from_us(1));
        assert_eq!(p.round_trip(0), SimTime::from_us(1));
    }

    #[test]
    fn doorbell_amortization_rounds_up() {
        let mut p = PcieModel::gen3_x8();
        p.doorbell = Crossing::new(CrossingKind::Doorbell, 300);
        p.doorbell_batch = 8;
        assert_eq!(p.doorbell_amortized(), 38); // ceil(300/8)
        p.doorbell_batch = 1;
        assert_eq!(p.doorbell_amortized(), 300);
        p.doorbell_batch = 0; // degenerate config degrades to batch=1
        assert_eq!(p.doorbell_amortized(), 300);
    }

    #[test]
    fn zero_bandwidth_does_not_divide_by_zero() {
        let mut p = PcieModel::gen3_x8();
        p.bandwidth_bps = 0;
        let _ = p.wire_time(1000); // must not panic
    }

    #[test]
    fn latency_sweep_is_monotone() {
        let mut prev = SimTime::ZERO;
        for ns in [200u64, 600, 900, 2000, 5000] {
            let p = PcieModel::gen3_x8().with_latency(SimTime::from_ns(ns));
            let rt = p.round_trip(64);
            assert!(rt > prev);
            prev = rt;
        }
    }
}
