//! CPU cost model for the TAS reproduction.
//!
//! The paper's throughput and scalability results are CPU-efficiency
//! results: cycles per request, instruction counts, cache behaviour as
//! connection state grows, and contention on shared state (paper §2.2,
//! Tables 1–2). This crate models the testbed's processors:
//!
//! * [`Core`] — a processor core as a busy-until timeline: work items
//!   serialize on a core and each charges a cycle cost, so saturation,
//!   queueing, and pipeline parallelism emerge from accounting.
//! * [`CycleAccount`] — per-module (driver/IP/TCP/API/other/app) cycle and
//!   instruction counters; the Table 1 and Table 2 harnesses print directly
//!   from these.
//! * [`CacheModel`] — working-set model translating (per-connection state ×
//!   connections vs. effective cache) into per-request stall cycles; this is
//!   what produces Figure 4's divergence between TAS's 102-byte flow state
//!   and the baselines' scattered kilobyte state.
//! * [`ContentionModel`] — coherence/locking penalty for stacks that share
//!   connection state across cores (the monolithic in-kernel design).
//! * [`boundary`] — domain-crossing primitives (context switch, WRPKRU,
//!   PCIe/DMA with doorbell batching) as first-class cycle costs, plus
//!   [`CoreClass`] to distinguish host cores from wimpy NIC cores; the
//!   MPK-dataplane and off-path SmartNIC baseline models charge these.
//!
//! Cost *constants* for each stack live with that stack's implementation;
//! this crate provides the machinery.

mod account;
pub mod boundary;
mod cache;
mod core_model;

pub use account::{CycleAccount, Module, MODULE_COUNT};
pub use boundary::{Crossing, CrossingKind, PcieModel};
pub use cache::{CacheModel, ContentionModel};
pub use core_model::{Core, CoreClass, CorePool};
