//! Processor cores as busy-until timelines.

use tas_sim::SimTime;

/// The class of silicon a core belongs to.
///
/// Off-path SmartNIC stacks (PnO-style) split work between fast host
/// cores and the NIC's slower wimpy cores; accounting and reports need
/// to tell the two apart (host-CPU cycles/request is the paper's
/// efficiency currency — cycles burned on the NIC are "free" host CPU).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CoreClass {
    /// A server-class host core (the default everywhere).
    Host,
    /// A wimpy NIC-resident core (ARM-class, slower clock).
    Nic,
}

impl CoreClass {
    /// Stable lower-case label used in telemetry and reports.
    pub fn label(&self) -> &'static str {
        match self {
            CoreClass::Host => "host",
            CoreClass::Nic => "nic",
        }
    }
}

/// A simulated processor core.
///
/// Work items serialize on the core: an item submitted at `now` with cost
/// `c` cycles starts at `max(now, busy_until)` and finishes `c / freq`
/// later. Throughput saturation and queueing delay fall out of this
/// accounting; nothing else in the system enforces capacity.
///
/// # Examples
///
/// ```
/// use tas_cpusim::Core;
/// use tas_sim::SimTime;
/// let mut core = Core::new(2_100_000_000); // 2.1 GHz, as the paper's server.
/// let (_start, end) = core.run(SimTime::ZERO, 2_100);
/// assert_eq!(end, SimTime::from_us(1)); // 2100 cycles at 2.1 GHz = 1us.
/// ```
#[derive(Clone, Debug)]
pub struct Core {
    freq_hz: u64,
    class: CoreClass,
    busy_until: SimTime,
    busy_total: SimTime,
    busy_cycles: u64,
    last_work: SimTime,
}

impl Core {
    /// Creates a host-class core with the given clock frequency.
    ///
    /// # Panics
    ///
    /// Panics if `freq_hz` is zero.
    pub fn new(freq_hz: u64) -> Self {
        Core::with_class(freq_hz, CoreClass::Host)
    }

    /// Creates a core of an explicit class (NIC cores for off-path
    /// stacks).
    ///
    /// # Panics
    ///
    /// Panics if `freq_hz` is zero.
    pub fn with_class(freq_hz: u64, class: CoreClass) -> Self {
        assert!(freq_hz > 0, "core frequency must be positive");
        Core {
            freq_hz,
            class,
            busy_until: SimTime::ZERO,
            busy_total: SimTime::ZERO,
            busy_cycles: 0,
            last_work: SimTime::ZERO,
        }
    }

    /// Clock frequency in Hz.
    pub fn freq_hz(&self) -> u64 {
        self.freq_hz
    }

    /// The silicon class of this core.
    pub fn class(&self) -> CoreClass {
        self.class
    }

    /// Converts a cycle count to wall time on this core.
    pub fn cycles_to_time(&self, cycles: u64) -> SimTime {
        // ps = cycles * 1e12 / freq, in u128 to avoid overflow.
        SimTime::from_ps(((cycles as u128 * 1_000_000_000_000) / self.freq_hz as u128) as u64)
    }

    /// Converts wall time to cycles on this core.
    pub fn time_to_cycles(&self, t: SimTime) -> u64 {
        ((t.as_ps() as u128 * self.freq_hz as u128) / 1_000_000_000_000) as u64
    }

    /// Schedules `cycles` of work arriving at `now`; returns the start and
    /// completion instants.
    pub fn run(&mut self, now: SimTime, cycles: u64) -> (SimTime, SimTime) {
        let start = now.max(self.busy_until);
        let dur = self.cycles_to_time(cycles);
        let end = start + dur;
        self.busy_until = end;
        self.busy_total += dur;
        self.busy_cycles += cycles;
        self.last_work = end;
        #[cfg(feature = "profile")]
        tas_telemetry::profile::on_core_run(cycles);
        (start, end)
    }

    /// Schedules fractional-cycle work (cost models frequently produce
    /// non-integral cycle counts); rounds to the nearest cycle.
    pub fn run_f64(&mut self, now: SimTime, cycles: f64) -> (SimTime, SimTime) {
        self.run(now, cycles.max(0.0).round() as u64)
    }

    /// The instant this core next becomes free.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// True when the core has no scheduled work at `now`.
    pub fn is_idle(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }

    /// Completion time of the most recent work item (used for the 10 ms
    /// blocking policy of fast-path threads).
    pub fn last_work_end(&self) -> SimTime {
        self.last_work
    }

    /// Total busy time accumulated since creation.
    pub fn busy_total(&self) -> SimTime {
        self.busy_total
    }

    /// Exact cycle count submitted since creation (the integer ground
    /// truth the attribution profiler's conservation property checks
    /// against; `busy_total` rounds through the time conversion).
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }
}

/// A set of cores with utilization sampling, as the slow path's workload-
/// proportionality monitor sees them (§3.4).
#[derive(Clone, Debug)]
pub struct CorePool {
    cores: Vec<Core>,
    last_sample_busy: Vec<SimTime>,
    last_sample_at: SimTime,
}

impl CorePool {
    /// Creates `n` host-class cores at `freq_hz`.
    pub fn new(n: usize, freq_hz: u64) -> Self {
        CorePool::heterogeneous(&[(CoreClass::Host, n, freq_hz)])
    }

    /// Creates a pool from `(class, count, freq_hz)` groups in order —
    /// e.g. NIC cores 0..k followed by host cores k..n for an off-path
    /// SmartNIC stack.
    pub fn heterogeneous(groups: &[(CoreClass, usize, u64)]) -> Self {
        let cores: Vec<Core> = groups
            .iter()
            .flat_map(|&(class, n, freq)| (0..n).map(move |_| Core::with_class(freq, class)))
            .collect();
        let n = cores.len();
        CorePool {
            cores,
            last_sample_busy: vec![SimTime::ZERO; n],
            last_sample_at: SimTime::ZERO,
        }
    }

    /// The silicon class of core `i`.
    pub fn class(&self, i: usize) -> CoreClass {
        self.cores[i].class()
    }

    /// Total cycles submitted to cores of `class` since creation.
    pub fn busy_cycles_by_class(&self, class: CoreClass) -> u64 {
        self.cores
            .iter()
            .filter(|c| c.class() == class)
            .map(|c| c.busy_cycles())
            .sum()
    }

    /// Number of cores.
    pub fn len(&self) -> usize {
        self.cores.len()
    }

    /// True when the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }

    /// Access a core.
    pub fn core(&mut self, i: usize) -> &mut Core {
        &mut self.cores[i]
    }

    /// Immutable access to a core.
    pub fn core_ref(&self, i: usize) -> &Core {
        &self.cores[i]
    }

    /// Per-core utilization (fraction of wall time busy) since the previous
    /// sample, then resets the sampling window. Utilization can slightly
    /// exceed 1.0 when queued work extends past the sample instant.
    pub fn sample_utilization(&mut self, now: SimTime) -> Vec<f64> {
        let window = now.saturating_sub(self.last_sample_at);
        let out = if window == SimTime::ZERO {
            vec![0.0; self.cores.len()]
        } else {
            self.cores
                .iter()
                .zip(&self.last_sample_busy)
                .map(|(c, &prev)| {
                    c.busy_total().saturating_sub(prev).as_ps() as f64 / window.as_ps() as f64
                })
                .collect()
        };
        for (slot, c) in self.last_sample_busy.iter_mut().zip(&self.cores) {
            *slot = c.busy_total();
        }
        self.last_sample_at = now;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_serializes_on_core() {
        let mut c = Core::new(1_000_000_000); // 1 GHz: 1 cycle = 1 ns.
        let (s1, e1) = c.run(SimTime::ZERO, 100);
        assert_eq!(s1, SimTime::ZERO);
        assert_eq!(e1, SimTime::from_ns(100));
        // Arrives while busy: queues behind.
        let (s2, e2) = c.run(SimTime::from_ns(50), 100);
        assert_eq!(s2, SimTime::from_ns(100));
        assert_eq!(e2, SimTime::from_ns(200));
        // Arrives after idle gap: starts immediately.
        let (s3, _) = c.run(SimTime::from_ns(500), 10);
        assert_eq!(s3, SimTime::from_ns(500));
    }

    #[test]
    fn cycle_time_conversions_invert() {
        let c = Core::new(2_100_000_000);
        for cycles in [1u64, 100, 2_100, 1_000_000] {
            let t = c.cycles_to_time(cycles);
            let back = c.time_to_cycles(t);
            assert!(back.abs_diff(cycles) <= 1, "{cycles} -> {t} -> {back}");
        }
    }

    #[test]
    fn idle_detection() {
        let mut c = Core::new(1_000_000_000);
        assert!(c.is_idle(SimTime::ZERO));
        c.run(SimTime::ZERO, 1000);
        assert!(!c.is_idle(SimTime::from_ns(500)));
        assert!(c.is_idle(SimTime::from_us(1)));
        assert_eq!(c.last_work_end(), SimTime::from_us(1));
    }

    #[test]
    fn utilization_sampling() {
        let mut p = CorePool::new(2, 1_000_000_000);
        // Core 0 busy 600ns of a 1000ns window; core 1 idle.
        p.core(0).run(SimTime::ZERO, 600);
        let u = p.sample_utilization(SimTime::from_ns(1000));
        assert!((u[0] - 0.6).abs() < 1e-9, "{u:?}");
        assert_eq!(u[1], 0.0);
        // Next window: nothing happened.
        let u2 = p.sample_utilization(SimTime::from_ns(2000));
        assert_eq!(u2, vec![0.0, 0.0]);
    }

    #[test]
    fn zero_window_sample_is_zero() {
        let mut p = CorePool::new(1, 1_000_000_000);
        assert_eq!(p.sample_utilization(SimTime::ZERO), vec![0.0]);
    }

    #[test]
    fn run_f64_rounds() {
        let mut c = Core::new(1_000_000_000);
        let (_, e) = c.run_f64(SimTime::ZERO, 99.6);
        assert_eq!(e, SimTime::from_ns(100));
        let (_, e2) = c.run_f64(e, -5.0);
        assert_eq!(e2, e, "negative cost clamps to zero");
    }
}
