//! Cache-footprint and contention models.
//!
//! Paper §2.2 attributes the baselines' inefficiency to (a) large,
//! scattered per-connection state overflowing caches as connections grow,
//! and (b) state shared across cores causing coherence and lock stalls.
//! These two models turn those mechanisms into per-request stall cycles.

/// Working-set cache model.
///
/// Connection state of `state_bytes` per connection across `connections`
/// live connections forms a working set; accesses hit a cache of
/// `cache_bytes` with probability `min(1, cache / footprint)` (uniform
/// random touch within the working set — a good approximation for the
/// paper's uniformly-driven 32k/64k-connection experiments). Each request
/// touches `lines_per_request` distinct cache lines of connection state;
/// every miss stalls for `miss_penalty_cycles`.
///
/// TAS's fast path keeps 102 bytes/flow (2 lines) and partitions flows per
/// core; the Linux model touches dozens of scattered lines (tcp_sock, skb,
/// socket, epoll item…) in a cache shared with the application. Figure 4's
/// divergence is this model's output.
///
/// # Examples
///
/// ```
/// use tas_cpusim::CacheModel;
/// let m = CacheModel::new(2 << 20, 2, 120.0);
/// // Working set fits: no stalls.
/// assert_eq!(m.stall_cycles(128, 1_000), 0.0);
/// // Working set 4x the cache: 75% miss on 2 lines.
/// let stalls = m.stall_cycles(128, 65_536);
/// assert!((stalls - 2.0 * 0.75 * 120.0).abs() < 1.0);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct CacheModel {
    cache_bytes: u64,
    lines_per_request: u64,
    miss_penalty_cycles: f64,
}

impl CacheModel {
    /// Creates a cache model.
    ///
    /// # Panics
    ///
    /// Panics if `cache_bytes` is zero.
    pub fn new(cache_bytes: u64, lines_per_request: u64, miss_penalty_cycles: f64) -> Self {
        assert!(cache_bytes > 0, "cache size must be positive");
        CacheModel {
            cache_bytes,
            lines_per_request,
            miss_penalty_cycles,
        }
    }

    /// Cache capacity in bytes.
    pub fn cache_bytes(&self) -> u64 {
        self.cache_bytes
    }

    /// Expected stall cycles added to one request when `connections` live
    /// connections each hold `state_bytes` of stack state.
    pub fn stall_cycles(&self, state_bytes: u64, connections: u64) -> f64 {
        let footprint = state_bytes as f64 * connections as f64;
        if footprint <= self.cache_bytes as f64 {
            return 0.0;
        }
        let miss = 1.0 - self.cache_bytes as f64 / footprint;
        self.lines_per_request as f64 * miss * self.miss_penalty_cycles
    }

    /// The largest connection count whose working set still fits. The paper
    /// quotes "more than 20,000 active flows per core" for TAS's 102-byte
    /// state in ~2 MB of cache; this is that computation.
    pub fn capacity_connections(&self, state_bytes: u64) -> u64 {
        self.cache_bytes
            .checked_div(state_bytes)
            .unwrap_or(u64::MAX)
    }
}

/// Coherence and lock-contention model for stacks sharing connection state
/// across cores.
///
/// Per request, a sharing stack pays `base_cycles` of atomic/lock overhead
/// plus `per_core_cycles × (cores − 1)` of cross-core coherence traffic
/// (line bouncing grows with the number of writers). Partitioned stacks
/// (IX per-core, TAS fast path) construct this with zeroes.
#[derive(Clone, Copy, Debug)]
pub struct ContentionModel {
    base_cycles: f64,
    per_core_cycles: f64,
}

impl ContentionModel {
    /// Creates a contention model.
    pub fn new(base_cycles: f64, per_core_cycles: f64) -> Self {
        ContentionModel {
            base_cycles,
            per_core_cycles,
        }
    }

    /// No sharing: zero cost at any core count.
    pub fn none() -> Self {
        ContentionModel::new(0.0, 0.0)
    }

    /// Stall cycles per request when `cores` cores share the state.
    pub fn stall_cycles(&self, cores: usize) -> f64 {
        if cores <= 1 {
            // A single core still pays the atomic-instruction base cost.
            return self.base_cycles;
        }
        self.base_cycles + self.per_core_cycles * (cores as f64 - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_stalls_when_fitting() {
        let m = CacheModel::new(1 << 21, 2, 100.0);
        assert_eq!(m.stall_cycles(102, 20_000), 0.0);
    }

    #[test]
    fn stalls_grow_monotonically_with_connections() {
        let m = CacheModel::new(1 << 21, 8, 150.0);
        let mut prev = -1.0;
        for conns in [1_000u64, 10_000, 50_000, 100_000, 500_000] {
            let s = m.stall_cycles(1024, conns);
            assert!(s >= prev, "stalls must not decrease");
            prev = s;
        }
        // Asymptote: all lines miss.
        let s = m.stall_cycles(1024, 100_000_000);
        assert!((s - 8.0 * 150.0).abs() < 1.0);
    }

    #[test]
    fn paper_quote_20k_flows_per_core() {
        // "Current commodity server CPUs supply about 2MB of L2/3 data
        // cache per core … more than 20,000 active flows per core" with
        // 102-byte state.
        let m = CacheModel::new(2 << 20, 2, 100.0);
        assert!(m.capacity_connections(102) > 20_000);
    }

    #[test]
    fn contention_scales_with_cores() {
        let c = ContentionModel::new(50.0, 30.0);
        assert_eq!(c.stall_cycles(1), 50.0);
        assert_eq!(c.stall_cycles(4), 50.0 + 90.0);
        let n = ContentionModel::none();
        assert_eq!(n.stall_cycles(16), 0.0);
    }
}
