//! Per-module cycle and instruction accounting (paper Tables 1–2).

/// The network-stack modules the paper's Table 1 breaks cycles into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Module {
    /// NIC driver (DPDK poll-mode driver for IX/TAS, kernel driver for Linux).
    Driver = 0,
    /// IP layer processing.
    Ip = 1,
    /// TCP protocol processing.
    Tcp = 2,
    /// The application-facing API layer (POSIX sockets, or IX's event API).
    Api = 3,
    /// Everything else in the stack (softirq bookkeeping, skb management…).
    Other = 4,
    /// Application work.
    App = 5,
}

/// Number of [`Module`] variants.
pub const MODULE_COUNT: usize = 6;

impl Module {
    /// All modules in Table 1 order.
    pub const ALL: [Module; MODULE_COUNT] = [
        Module::Driver,
        Module::Ip,
        Module::Tcp,
        Module::Api,
        Module::Other,
        Module::App,
    ];

    /// Table row label.
    pub fn name(self) -> &'static str {
        match self {
            Module::Driver => "Driver",
            Module::Ip => "IP",
            Module::Tcp => "TCP",
            Module::Api => "Sockets/API",
            Module::Other => "Other",
            Module::App => "App",
        }
    }
}

/// Accumulated cycles and instructions per module, plus request count.
///
/// Stacks charge into this as they process; the Table 1/2 harnesses divide
/// by `requests` to print per-request columns.
///
/// # Examples
///
/// ```
/// use tas_cpusim::{CycleAccount, Module};
/// let mut acc = CycleAccount::new();
/// acc.charge(Module::Tcp, 810, 1200);
/// acc.add_request();
/// assert_eq!(acc.cycles(Module::Tcp), 810);
/// assert!((acc.cycles_per_request() - 810.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, Default)]
pub struct CycleAccount {
    cycles: [u64; MODULE_COUNT],
    instructions: [u64; MODULE_COUNT],
    requests: u64,
}

impl CycleAccount {
    /// Creates a zeroed account.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `cycles` and `instructions` to `module`.
    pub fn charge(&mut self, module: Module, cycles: u64, instructions: u64) {
        self.cycles[module as usize] += cycles;
        self.instructions[module as usize] += instructions;
    }

    /// Charges a fractional cycle cost (rounded to nearest).
    pub fn charge_f64(&mut self, module: Module, cycles: f64, instructions: u64) {
        self.charge(module, cycles.max(0.0).round() as u64, instructions);
    }

    /// Counts one completed request.
    pub fn add_request(&mut self) {
        self.requests += 1;
    }

    /// Total completed requests.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Cycles charged to a module.
    pub fn cycles(&self, module: Module) -> u64 {
        self.cycles[module as usize]
    }

    /// Instructions charged to a module.
    pub fn instructions(&self, module: Module) -> u64 {
        self.instructions[module as usize]
    }

    /// Total cycles across all modules.
    pub fn total_cycles(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// Total instructions across all modules.
    pub fn total_instructions(&self) -> u64 {
        self.instructions.iter().sum()
    }

    /// Cycles in the stack (everything except [`Module::App`]).
    pub fn stack_cycles(&self) -> u64 {
        self.total_cycles() - self.cycles(Module::App)
    }

    /// Average cycles per completed request (0 when no requests).
    pub fn cycles_per_request(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_cycles() as f64 / self.requests as f64
        }
    }

    /// Average instructions per completed request.
    pub fn instructions_per_request(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_instructions() as f64 / self.requests as f64
        }
    }

    /// Cycles per instruction over everything charged.
    pub fn cpi(&self) -> f64 {
        let i = self.total_instructions();
        if i == 0 {
            0.0
        } else {
            self.total_cycles() as f64 / i as f64
        }
    }

    /// Merges another account into this one.
    pub fn merge(&mut self, other: &CycleAccount) {
        for i in 0..MODULE_COUNT {
            self.cycles[i] += other.cycles[i];
            self.instructions[i] += other.instructions[i];
        }
        self.requests += other.requests;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_module() {
        let mut a = CycleAccount::new();
        a.charge(Module::Driver, 90, 50);
        a.charge(Module::Driver, 10, 5);
        a.charge(Module::App, 680, 900);
        assert_eq!(a.cycles(Module::Driver), 100);
        assert_eq!(a.instructions(Module::Driver), 55);
        assert_eq!(a.total_cycles(), 780);
        assert_eq!(a.stack_cycles(), 100);
    }

    #[test]
    fn per_request_averages() {
        let mut a = CycleAccount::new();
        for _ in 0..4 {
            a.charge(Module::Tcp, 100, 50);
            a.add_request();
        }
        assert!((a.cycles_per_request() - 100.0).abs() < 1e-9);
        assert!((a.instructions_per_request() - 50.0).abs() < 1e-9);
        assert!((a.cpi() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_account_is_zero_not_nan() {
        let a = CycleAccount::new();
        assert_eq!(a.cycles_per_request(), 0.0);
        assert_eq!(a.cpi(), 0.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = CycleAccount::new();
        a.charge(Module::Ip, 10, 10);
        a.add_request();
        let mut b = CycleAccount::new();
        b.charge(Module::Ip, 30, 20);
        b.add_request();
        a.merge(&b);
        assert_eq!(a.cycles(Module::Ip), 40);
        assert_eq!(a.requests(), 2);
    }

    #[test]
    fn module_names_match_table1() {
        assert_eq!(Module::Api.name(), "Sockets/API");
        assert_eq!(Module::ALL.len(), MODULE_COUNT);
    }
}
