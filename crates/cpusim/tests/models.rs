//! First-class coverage for the charging-path models: cache-footprint
//! stalls, cross-core contention, per-module cycle accounting, and the
//! boundary-crossing primitives the design-space stacks charge.
//! (Previously these were only exercised indirectly through the
//! baseline hosts.)

use tas_cpusim::{
    CacheModel, ContentionModel, CoreClass, CorePool, Crossing, CycleAccount, Module, PcieModel,
};
use tas_sim::SimTime;

// ---------------------------------------------------------------- cache

#[test]
fn cache_no_stalls_while_working_set_fits() {
    let m = CacheModel::new(33 * 1024 * 1024, 30, 220.0);
    assert_eq!(m.stall_cycles(2048, 1), 0.0);
    assert_eq!(m.stall_cycles(2048, m.capacity_connections(2048)), 0.0);
}

#[test]
fn cache_stalls_grow_with_connection_count() {
    let m = CacheModel::new(1024 * 1024, 30, 220.0);
    let fit = m.capacity_connections(2048);
    let s1 = m.stall_cycles(2048, fit + fit / 2);
    let s2 = m.stall_cycles(2048, fit * 4);
    let s3 = m.stall_cycles(2048, fit * 64);
    assert!(s1 > 0.0);
    assert!(s2 > s1);
    assert!(s3 > s2);
    // Bounded above by an all-miss request: every line missing.
    assert!(s3 <= 30.0 * 220.0);
}

#[test]
fn cache_stall_formula_is_miss_fraction_times_penalty() {
    // cache 1000 B, 10 lines/req, 100 c/miss; footprint 4000 B ->
    // miss fraction 0.75 -> 10 * 0.75 * 100 = 750 stall cycles.
    let m = CacheModel::new(1000, 10, 100.0);
    assert_eq!(m.stall_cycles(40, 100), 750.0);
}

#[test]
fn smaller_state_defers_the_cliff() {
    // TAS's 102-byte flow state vs. a baseline's 2 KB: same cache, the
    // small-state stack fits ~20x more connections before stalling.
    let m = CacheModel::new(1024 * 1024, 30, 220.0);
    assert!(m.capacity_connections(102) > 19 * m.capacity_connections(2048));
}

// ----------------------------------------------------------- contention

#[test]
fn contention_none_is_free_at_any_width() {
    let c = ContentionModel::none();
    for cores in [1, 2, 8, 64] {
        assert_eq!(c.stall_cycles(cores), 0.0);
    }
}

#[test]
fn contention_single_core_still_pays_atomic_base() {
    let c = ContentionModel::new(250.0, 140.0);
    assert_eq!(c.stall_cycles(0), 250.0);
    assert_eq!(c.stall_cycles(1), 250.0);
    assert_eq!(c.stall_cycles(2), 250.0 + 140.0);
    assert_eq!(c.stall_cycles(4), 250.0 + 3.0 * 140.0);
}

#[test]
fn contention_grows_linearly_with_sharers() {
    let c = ContentionModel::new(100.0, 50.0);
    let step = c.stall_cycles(5) - c.stall_cycles(4);
    assert_eq!(step, 50.0);
}

// ----------------------------------------------------------- accounting

#[test]
fn account_charges_attribute_to_modules() {
    let mut a = CycleAccount::default();
    a.charge(Module::Driver, 100, 80);
    a.charge(Module::Tcp, 300, 200);
    a.charge(Module::Tcp, 50, 25);
    a.add_request();
    assert_eq!(a.cycles(Module::Driver), 100);
    assert_eq!(a.cycles(Module::Tcp), 350);
    assert_eq!(a.instructions(Module::Tcp), 225);
    assert_eq!(a.total_cycles(), 450);
    assert_eq!(a.requests(), 1);
    assert_eq!(a.cycles_per_request(), 450.0);
}

#[test]
fn account_stack_cycles_exclude_app() {
    let mut a = CycleAccount::default();
    a.charge(Module::Api, 40, 10);
    a.charge(Module::App, 1000, 900);
    assert_eq!(a.stack_cycles(), 40);
    assert_eq!(a.total_cycles(), 1040);
}

#[test]
fn account_merge_sums_every_module() {
    let mut a = CycleAccount::default();
    let mut b = CycleAccount::default();
    for m in Module::ALL {
        a.charge(m, 10, 5);
        b.charge(m, 7, 3);
    }
    a.add_request();
    b.add_request();
    a.merge(&b);
    for m in Module::ALL {
        assert_eq!(a.cycles(m), 17);
        assert_eq!(a.instructions(m), 8);
    }
    assert_eq!(a.requests(), 2);
}

#[test]
fn account_fractional_charges_round_per_call() {
    let mut a = CycleAccount::default();
    a.charge_f64(Module::Other, 749.6, 10);
    assert_eq!(a.cycles(Module::Other), 750);
    a.charge_f64(Module::Other, -3.0, 0);
    assert_eq!(a.cycles(Module::Other), 750, "negative charges clamp to zero");
}

// ----------------------------------------------- core classes + boundary

#[test]
fn heterogeneous_pool_orders_groups_and_classes() {
    let p = CorePool::heterogeneous(&[
        (CoreClass::Nic, 2, 800_000_000),
        (CoreClass::Host, 3, 2_100_000_000),
    ]);
    assert_eq!(p.len(), 5);
    assert_eq!(p.class(0), CoreClass::Nic);
    assert_eq!(p.class(1), CoreClass::Nic);
    assert_eq!(p.class(2), CoreClass::Host);
    assert_eq!(p.core_ref(0).freq_hz(), 800_000_000);
    assert_eq!(p.core_ref(4).freq_hz(), 2_100_000_000);
}

#[test]
fn busy_cycles_split_by_class() {
    let mut p = CorePool::heterogeneous(&[
        (CoreClass::Nic, 1, 800_000_000),
        (CoreClass::Host, 1, 2_100_000_000),
    ]);
    p.core(0).run(SimTime::ZERO, 500);
    p.core(1).run(SimTime::ZERO, 2000);
    assert_eq!(p.busy_cycles_by_class(CoreClass::Nic), 500);
    assert_eq!(p.busy_cycles_by_class(CoreClass::Host), 2000);
}

#[test]
fn nic_core_is_slower_per_cycle() {
    let mut p = CorePool::heterogeneous(&[
        (CoreClass::Nic, 1, 800_000_000),
        (CoreClass::Host, 1, 2_100_000_000),
    ]);
    let (_, nic_end) = p.core(0).run(SimTime::ZERO, 10_000);
    let (_, host_end) = p.core(1).run(SimTime::ZERO, 10_000);
    assert!(nic_end > host_end, "same work takes longer on the wimpy core");
}

#[test]
fn crossing_sweep_is_monotone_in_cycles() {
    let mut prev = 0;
    for c in [40u64, 80, 400, 1400, 4000] {
        let x = Crossing::new(tas_cpusim::CrossingKind::Wrpkru, c);
        assert!(x.cycles > prev);
        prev = x.cycles;
    }
}

#[test]
fn pcie_round_trip_dominated_by_latency_for_small_messages() {
    let p = PcieModel::gen3_x8();
    let rt = p.round_trip(64);
    assert!(rt >= p.latency + p.latency);
    assert!(rt < p.latency + p.latency + SimTime::from_us(1));
}
