//! Flight-recorder telemetry for the TAS reproduction.
//!
//! The paper's evaluation is built on per-core cycle attribution and
//! per-flow event visibility. This crate is the runtime half of that
//! observability layer (the counter/gauge/histogram registry lives in
//! [`tas_sim::metrics`]): a bounded ring of structured flow events —
//! segment rx/tx, state transitions, congestion-control rate updates,
//! retransmits, out-of-order placements, controller core add/remove, and
//! fault-injector verdicts — plus deterministic text and JSONL renderers
//! and a pcap exporter that replays traced segments through
//! [`tas_proto::wire`] into a standard capture Wireshark opens directly.
//!
//! # Zero cost when disabled
//!
//! Emit sites across the stack are compiled behind each crate's `trace`
//! feature; a default build contains no tracing code at all. With the
//! feature on, every emit first checks a thread-local enabled flag, and
//! the tracer never draws from any simulation RNG nor reorders events, so
//! enabling it cannot perturb a run — a property the telemetry property
//! tests pin by comparing fingerprints with tracing on and off.
//!
//! # Examples
//!
//! ```
//! use tas_telemetry as tel;
//! use tas_sim::SimTime;
//! tel::start(1024);
//! tel::emit(|| tel::TraceRecord {
//!     t: SimTime::from_us(3),
//!     site: "fp",
//!     ev: tel::TraceEvent::CoreScale { active: 2, delta: 1 },
//! });
//! let records = tel::take();
//! tel::stop();
//! assert_eq!(records.len(), 1);
//! assert!(tel::render_jsonl(&records).starts_with("{\"t_ns\":3000,"));
//! ```

pub mod pcap;
pub mod profile;
pub mod spans;

pub use spans::Stage;

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use tas_proto::{FlowKey, Segment, TcpFlags};
use tas_sim::SimTime;

/// One structured flow event.
///
/// Segment events carry the full packet (boxed — records stay small for
/// the common header-only events) so the pcap exporter can replay exact
/// wire bytes; renderers print the header summary.
#[derive(Clone, Debug)]
pub enum TraceEvent {
    /// A segment arrived at the recording site.
    SegRx {
        /// The received packet.
        seg: Box<Segment>,
    },
    /// A segment was transmitted (or staged for transmission) at the
    /// recording site.
    SegTx {
        /// The transmitted packet.
        seg: Box<Segment>,
    },
    /// A connection state transition.
    State {
        /// The flow, from the recording host's perspective.
        flow: FlowKey,
        /// State left.
        from: &'static str,
        /// State entered.
        to: &'static str,
    },
    /// A congestion-control rate update.
    CcRate {
        /// The flow, from the recording host's perspective.
        flow: FlowKey,
        /// New rate in bytes/second (the slow path's per-flow pacing rate).
        rate: u64,
    },
    /// A retransmission was triggered.
    Retransmit {
        /// The flow, from the recording host's perspective.
        flow: FlowKey,
        /// Trigger: `"fast"` (dup-ACK), `"timeout"` (stall/RTO), or
        /// `"handshake"` (SYN/SYN-ACK/FIN retry).
        kind: &'static str,
        /// First sequence number retransmitted.
        seq: u32,
    },
    /// The receiver placed data out of order (the fast path's single
    /// tracked OOO interval).
    OooPlace {
        /// The flow, from the recording host's perspective.
        flow: FlowKey,
        /// Stream offset of the tracked interval.
        start: u64,
        /// Interval length in bytes after this placement.
        len: u64,
    },
    /// The proportionality controller changed the active core count.
    CoreScale {
        /// Active fast-path cores after the change.
        active: u32,
        /// +1 (core added) or -1 (core removed).
        delta: i32,
    },
    /// A fault injector perturbed (or dropped) a packet.
    Fault {
        /// Verdict: `"drop"`, `"dup"`, `"reorder"`, `"jitter"`, or
        /// `"corrupt"`.
        verdict: &'static str,
        /// The flow, from the far end's perspective.
        flow: FlowKey,
        /// Sequence number of the affected packet.
        seq: u32,
        /// Identity of the injecting device (NIC MAC low bits or switch
        /// port index).
        dev: u64,
    },
    /// A switch marked a packet congestion-experienced (DCTCP).
    EcnMark {
        /// The flow, from the receiver's perspective.
        flow: FlowKey,
        /// Sequence number of the marked packet.
        seq: u32,
    },
    /// A span hop completed: a payload range finished one stage of its
    /// app-to-app journey (see [`spans`] for the stage taxonomy and the
    /// assembler that turns these stamps into latency spans).
    Stage {
        /// The hop that completed.
        stage: Stage,
        /// The flow from the data *sender's* perspective — every stamp of
        /// one journey shares this orientation, whichever host or device
        /// recorded it.
        flow: FlowKey,
        /// TCP sequence number of the range's first payload byte.
        seq: u32,
        /// Payload bytes covered by this stamp.
        len: u32,
        /// Time the unit spent queued at this hop before service began
        /// (`0` where the hop has no queue), in nanoseconds. The span
        /// breakdown splits each stage delta into queueing (this) and
        /// processing (the rest).
        wait_ns: u64,
    },
}

/// A timestamped trace-ring entry.
#[derive(Clone, Debug)]
pub struct TraceRecord {
    /// Simulated time of the event.
    pub t: SimTime,
    /// Recording site: `"fp"`, `"sp"`, `"host"`, `"conn"`, `"nic"`,
    /// `"switch"`, or `"fault"`.
    pub site: &'static str,
    /// The event.
    pub ev: TraceEvent,
}

struct Tracer {
    enabled: bool,
    cap: usize,
    ring: VecDeque<TraceRecord>,
    /// Oldest records evicted when the bounded ring wrapped.
    evicted: u64,
    filter: Option<FlowKey>,
}

impl Tracer {
    const fn new() -> Tracer {
        Tracer {
            enabled: false,
            cap: 0,
            ring: VecDeque::new(),
            evicted: 0,
            filter: None,
        }
    }
}

thread_local! {
    static TRACER: RefCell<Tracer> = const { RefCell::new(Tracer::new()) };
}

/// Starts recording into a fresh bounded ring of `cap` records. When the
/// ring is full the oldest record is evicted (flight-recorder semantics);
/// [`evicted`] reports how many were lost.
pub fn start(cap: usize) {
    TRACER.with(|t| {
        let mut t = t.borrow_mut();
        t.enabled = true;
        t.cap = cap.max(1);
        t.ring.clear();
        t.evicted = 0;
        t.filter = None;
    });
}

/// Stops recording (the ring's contents stay until [`take`] or [`start`]).
pub fn stop() {
    TRACER.with(|t| t.borrow_mut().enabled = false);
}

/// True while recording.
pub fn is_enabled() -> bool {
    TRACER.with(|t| t.borrow().enabled)
}

/// Restricts recording to one flow (matched in either orientation), or
/// clears the restriction with `None`. Non-flow events (core scaling) are
/// always kept.
pub fn set_flow_filter(flow: Option<FlowKey>) {
    TRACER.with(|t| t.borrow_mut().filter = flow);
}

/// Number of records evicted since [`start`] because the ring was full.
pub fn evicted() -> u64 {
    TRACER.with(|t| t.borrow().evicted)
}

/// Drains and returns the recorded events in emission order.
pub fn take() -> Vec<TraceRecord> {
    TRACER.with(|t| t.borrow_mut().ring.drain(..).collect())
}

/// The flow a record pertains to, if any.
pub fn flow_of(rec: &TraceRecord) -> Option<FlowKey> {
    match &rec.ev {
        TraceEvent::SegRx { seg } | TraceEvent::SegTx { seg } => Some(seg.flow_key()),
        TraceEvent::State { flow, .. }
        | TraceEvent::CcRate { flow, .. }
        | TraceEvent::Retransmit { flow, .. }
        | TraceEvent::OooPlace { flow, .. }
        | TraceEvent::Fault { flow, .. }
        | TraceEvent::EcnMark { flow, .. }
        | TraceEvent::Stage { flow, .. } => Some(*flow),
        TraceEvent::CoreScale { .. } => None,
    }
}

/// Records an event. The closure runs only while recording is enabled, so
/// disabled-but-compiled-in sites pay one thread-local flag check and
/// construct nothing.
pub fn emit(f: impl FnOnce() -> TraceRecord) {
    TRACER.with(|t| {
        let mut t = t.borrow_mut();
        if !t.enabled {
            return;
        }
        let rec = f();
        if let (Some(want), Some(flow)) = (t.filter, flow_of(&rec)) {
            if flow != want && flow != want.reversed() {
                return;
            }
        }
        if t.ring.len() == t.cap {
            t.ring.pop_front();
            t.evicted += 1;
        }
        t.ring.push_back(rec);
    });
}

// ----------------------------------------------------------------------
// Renderers.

fn flags_str(f: TcpFlags) -> String {
    let mut s = String::new();
    for (bit, c) in [
        (TcpFlags::SYN, 'S'),
        (TcpFlags::FIN, 'F'),
        (TcpFlags::RST, 'R'),
        (TcpFlags::PSH, 'P'),
        (TcpFlags::ACK, 'A'),
        (TcpFlags::URG, 'U'),
        (TcpFlags::ECE, 'E'),
        (TcpFlags::CWR, 'C'),
    ] {
        if f.contains(bit) {
            s.push(c);
        }
    }
    if s.is_empty() {
        s.push('.');
    }
    s
}

fn seg_fields(seg: &Segment) -> String {
    format!(
        "{}:{}>{}:{} flags={} seq={} ack={} len={} ecn={}",
        seg.ip.src,
        seg.tcp.src_port,
        seg.ip.dst,
        seg.tcp.dst_port,
        flags_str(seg.tcp.flags),
        seg.tcp.seq,
        seg.tcp.ack,
        seg.payload.len(),
        seg.ip.ecn.bits(),
    )
}

fn flow_str(flow: &FlowKey) -> String {
    format!(
        "{}:{}<>{}:{}",
        flow.local_ip, flow.local_port, flow.remote_ip, flow.remote_port
    )
}

/// Renders records as human-readable text, one event per line.
pub fn render_text(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for r in records {
        let _ = write!(out, "[{:>12}ns] {:<6} ", r.t.as_nanos(), r.site);
        let _ = match &r.ev {
            TraceEvent::SegRx { seg } => writeln!(out, "seg_rx {}", seg_fields(seg)),
            TraceEvent::SegTx { seg } => writeln!(out, "seg_tx {}", seg_fields(seg)),
            TraceEvent::State { flow, from, to } => {
                writeln!(out, "state {} {from}->{to}", flow_str(flow))
            }
            TraceEvent::CcRate { flow, rate } => {
                writeln!(out, "cc_rate {} rate={rate}", flow_str(flow))
            }
            TraceEvent::Retransmit { flow, kind, seq } => {
                writeln!(out, "rexmit {} kind={kind} seq={seq}", flow_str(flow))
            }
            TraceEvent::OooPlace { flow, start, len } => {
                writeln!(out, "ooo_place {} start={start} len={len}", flow_str(flow))
            }
            TraceEvent::CoreScale { active, delta } => {
                writeln!(out, "core_scale active={active} delta={delta:+}")
            }
            TraceEvent::Fault {
                verdict,
                flow,
                seq,
                dev,
            } => writeln!(
                out,
                "fault {} verdict={verdict} seq={seq} dev={dev}",
                flow_str(flow)
            ),
            TraceEvent::EcnMark { flow, seq } => {
                writeln!(out, "ecn_mark {} seq={seq}", flow_str(flow))
            }
            TraceEvent::Stage {
                stage,
                flow,
                seq,
                len,
                wait_ns,
            } => writeln!(
                out,
                "stage {} {} seq={seq} len={len} wait_ns={wait_ns}",
                stage.name(),
                flow_str(flow)
            ),
        };
    }
    out
}

/// Renders records as JSONL — one JSON object per line, fixed key order,
/// no floats — so two same-seed runs produce byte-identical output and
/// golden traces diff line-by-line.
pub fn render_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for r in records {
        let _ = write!(out, "{{\"t_ns\":{},\"site\":\"{}\"", r.t.as_nanos(), r.site);
        let _ = match &r.ev {
            TraceEvent::SegRx { seg } => write!(out, ",\"ev\":\"seg_rx\",{}", seg_json(seg)),
            TraceEvent::SegTx { seg } => write!(out, ",\"ev\":\"seg_tx\",{}", seg_json(seg)),
            TraceEvent::State { flow, from, to } => write!(
                out,
                ",\"ev\":\"state\",\"flow\":\"{}\",\"from\":\"{from}\",\"to\":\"{to}\"",
                flow_str(flow)
            ),
            TraceEvent::CcRate { flow, rate } => write!(
                out,
                ",\"ev\":\"cc_rate\",\"flow\":\"{}\",\"rate\":{rate}",
                flow_str(flow)
            ),
            TraceEvent::Retransmit { flow, kind, seq } => write!(
                out,
                ",\"ev\":\"rexmit\",\"flow\":\"{}\",\"kind\":\"{kind}\",\"seq\":{seq}",
                flow_str(flow)
            ),
            TraceEvent::OooPlace { flow, start, len } => write!(
                out,
                ",\"ev\":\"ooo_place\",\"flow\":\"{}\",\"start\":{start},\"len\":{len}",
                flow_str(flow)
            ),
            TraceEvent::CoreScale { active, delta } => write!(
                out,
                ",\"ev\":\"core_scale\",\"active\":{active},\"delta\":{delta}"
            ),
            TraceEvent::Fault {
                verdict,
                flow,
                seq,
                dev,
            } => write!(
                out,
                ",\"ev\":\"fault\",\"verdict\":\"{verdict}\",\"flow\":\"{}\",\"seq\":{seq},\"dev\":{dev}",
                flow_str(flow)
            ),
            TraceEvent::EcnMark { flow, seq } => write!(
                out,
                ",\"ev\":\"ecn_mark\",\"flow\":\"{}\",\"seq\":{seq}",
                flow_str(flow)
            ),
            TraceEvent::Stage {
                stage,
                flow,
                seq,
                len,
                wait_ns,
            } => write!(
                out,
                ",\"ev\":\"stage\",\"stage\":\"{}\",\"flow\":\"{}\",\"seq\":{seq},\"len\":{len},\"wait_ns\":{wait_ns}",
                stage.name(),
                flow_str(flow)
            ),
        };
        out.push_str("}\n");
    }
    out
}

fn seg_json(seg: &Segment) -> String {
    format!(
        "\"src\":\"{}:{}\",\"dst\":\"{}:{}\",\"flags\":\"{}\",\"seq\":{},\"ack\":{},\"len\":{},\"ecn\":{}",
        seg.ip.src,
        seg.tcp.src_port,
        seg.ip.dst,
        seg.tcp.dst_port,
        flags_str(seg.tcp.flags),
        seg.tcp.seq,
        seg.tcp.ack,
        seg.payload.len(),
        seg.ip.ecn.bits(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use tas_proto::{MacAddr, TcpHeader};

    fn seg(seq: u32, len: usize) -> Box<Segment> {
        Box::new(Segment::tcp(
            MacAddr::for_host(1),
            MacAddr::for_host(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            TcpHeader::new(5000, 80, seq, 9, TcpFlags::ACK | TcpFlags::PSH),
            vec![0xab; len],
            true,
        ))
    }

    fn rx(t_us: u64, seq: u32) -> TraceRecord {
        TraceRecord {
            t: SimTime::from_us(t_us),
            site: "fp",
            ev: TraceEvent::SegRx { seg: seg(seq, 8) },
        }
    }

    #[test]
    fn ring_is_bounded_and_counts_evictions() {
        start(4);
        for i in 0..10 {
            emit(|| rx(i, i as u32));
        }
        assert_eq!(evicted(), 6);
        let recs = take();
        assert_eq!(recs.len(), 4);
        // Oldest evicted: the survivors are 6..10.
        match &recs[0].ev {
            TraceEvent::SegRx { seg } => assert_eq!(seg.tcp.seq, 6),
            _ => panic!("wrong event"),
        }
        stop();
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        stop();
        let mut ran = false;
        emit(|| {
            ran = true;
            rx(0, 0)
        });
        assert!(!ran, "closure must not run while disabled");
        assert!(take().is_empty());
    }

    #[test]
    fn flow_filter_matches_both_orientations() {
        start(64);
        let keep = seg(1, 8).flow_key();
        set_flow_filter(Some(keep));
        emit(|| rx(1, 1)); // Matches (receiver perspective).
        emit(|| TraceRecord {
            t: SimTime::from_us(2),
            site: "conn",
            ev: TraceEvent::State {
                flow: keep.reversed(),
                from: "syn_sent",
                to: "established",
            },
        }); // Matches reversed.
        emit(|| TraceRecord {
            t: SimTime::from_us(3),
            site: "sp",
            ev: TraceEvent::CcRate {
                flow: FlowKey::new(Ipv4Addr::new(9, 9, 9, 9), 1, Ipv4Addr::new(8, 8, 8, 8), 2),
                rate: 100,
            },
        }); // Different flow: filtered out.
        emit(|| TraceRecord {
            t: SimTime::from_us(4),
            site: "host",
            ev: TraceEvent::CoreScale {
                active: 2,
                delta: 1,
            },
        }); // Flow-less: kept.
        let recs = take();
        assert_eq!(recs.len(), 3);
        stop();
    }

    #[test]
    fn renderers_are_deterministic_and_cover_all_events() {
        let flow = FlowKey::new(Ipv4Addr::new(10, 0, 0, 2), 80, Ipv4Addr::new(10, 0, 0, 1), 5000);
        let records = vec![
            rx(1, 42),
            TraceRecord {
                t: SimTime::from_us(2),
                site: "conn",
                ev: TraceEvent::SegTx { seg: seg(43, 0) },
            },
            TraceRecord {
                t: SimTime::from_us(3),
                site: "conn",
                ev: TraceEvent::State {
                    flow,
                    from: "established",
                    to: "fin_wait1",
                },
            },
            TraceRecord {
                t: SimTime::from_us(4),
                site: "sp",
                ev: TraceEvent::CcRate { flow, rate: 12_500_000 },
            },
            TraceRecord {
                t: SimTime::from_us(5),
                site: "fp",
                ev: TraceEvent::Retransmit {
                    flow,
                    kind: "fast",
                    seq: 99,
                },
            },
            TraceRecord {
                t: SimTime::from_us(6),
                site: "fp",
                ev: TraceEvent::OooPlace {
                    flow,
                    start: 1448,
                    len: 1448,
                },
            },
            TraceRecord {
                t: SimTime::from_us(7),
                site: "host",
                ev: TraceEvent::CoreScale {
                    active: 3,
                    delta: -1,
                },
            },
            TraceRecord {
                t: SimTime::from_us(8),
                site: "fault",
                ev: TraceEvent::Fault {
                    verdict: "drop",
                    flow,
                    seq: 7,
                    dev: 1,
                },
            },
            TraceRecord {
                t: SimTime::from_us(9),
                site: "switch",
                ev: TraceEvent::EcnMark { flow, seq: 8 },
            },
        ];
        let a = render_jsonl(&records);
        let b = render_jsonl(&records);
        assert_eq!(a, b);
        assert_eq!(a.lines().count(), records.len());
        for line in a.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        let text = render_text(&records);
        assert_eq!(text.lines().count(), records.len());
        assert!(text.contains("state 10.0.0.2:80<>10.0.0.1:5000 established->fin_wait1"));
        assert!(a.contains("\"ev\":\"ecn_mark\""));
    }
}
