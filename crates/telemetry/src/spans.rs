//! Causal span tracking: where did a byte's latency go?
//!
//! The paper's §5.2 tail-latency analysis attributes p99 to fast-path
//! queueing. To answer that question on this substrate, every hop of a
//! payload range's journey from sending app to receiving app stamps a
//! [`TraceEvent::Stage`] record into the flight-recorder ring:
//!
//! ```text
//! app_send → fp_tx → nic_tx → switch_fwd → nic_rx → fp_rx
//!          → shm_doorbell → app_deliver        (+ sp_rx/sp_tx detours)
//! ```
//!
//! [`assemble`] groups the stamps by flow and correlates them in TCP
//! sequence space (every stage of one journey — the app's shm-ring append,
//! the fast path's segment cut, the wire hops, the receiver's shm-ring
//! read — names the same byte range by the same sequence numbers), then
//! emits one [`Span`] per transmitted segment. Per-stage deltas partition
//! the end-to-end time *exactly*: stage `i`'s delta is `t_i − t_{i−1}`,
//! so the sum over stages is `t_last − t_first` by construction. Each
//! stamp also carries the time the unit waited in a queue before service
//! at that hop, which splits every delta into queueing vs. processing —
//! the critical-path decomposition [`critical_path`] reports.
//!
//! # Truncation honesty
//!
//! The trace ring is bounded; under load it wraps and evicts the oldest
//! records. A span whose early stamps were evicted must *not* be reported
//! as a short latency — [`Span::e2e_ns`] is `None` unless the span is
//! complete, and when the ring wrapped, incomplete spans carry
//! `truncated = true` so consumers can tell "evicted" from "still in
//! flight". A property test pins this: under adversarial ring sizes every
//! assembled span is either complete (and exact) or flagged.

use crate::{TraceEvent, TraceRecord};
use std::collections::BTreeMap;
use tas_proto::FlowKey;
use tas_sim::Histogram;

/// One hop of a payload range's app-to-app journey. Variants are in
/// causal data-path order; the slow-path detour stages sort after the
/// data path and never appear in data spans.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// The sending app copied payload into its user-space shm TX ring.
    AppSend,
    /// The fast path dequeued the range from the shm ring, built a
    /// segment, and staged it for the NIC.
    FpTx,
    /// The NIC finished serializing the segment onto the wire.
    NicTx,
    /// A switch forwarded the segment (absent on switchless links).
    SwitchFwd,
    /// The segment arrived at the destination NIC's RX queue.
    NicRx,
    /// The destination fast path finished protocol processing and
    /// deposited the payload into the receiver's shm RX ring.
    FpRx,
    /// The fast path posted the readable notice to the app's context
    /// queue (the shm doorbell).
    ShmDoorbell,
    /// The receiving app read the bytes out of its shm RX ring.
    AppDeliver,
    /// Slow-path detour: the slow path processed an exception segment
    /// (handshake, teardown, unknown flow).
    SpRx,
    /// Slow-path detour: the slow path staged a segment (SYN/SYN-ACK/…).
    SpTx,
}

impl Stage {
    /// Stable lowercase name used by the renderers and report schema.
    pub fn name(&self) -> &'static str {
        match self {
            Stage::AppSend => "app_send",
            Stage::FpTx => "fp_tx",
            Stage::NicTx => "nic_tx",
            Stage::SwitchFwd => "switch_fwd",
            Stage::NicRx => "nic_rx",
            Stage::FpRx => "fp_rx",
            Stage::ShmDoorbell => "shm_doorbell",
            Stage::AppDeliver => "app_deliver",
            Stage::SpRx => "sp_rx",
            Stage::SpTx => "sp_tx",
        }
    }

    /// The data path in causal order (excludes the slow-path detour).
    pub const DATA_PATH: [Stage; 8] = [
        Stage::AppSend,
        Stage::FpTx,
        Stage::NicTx,
        Stage::SwitchFwd,
        Stage::NicRx,
        Stage::FpRx,
        Stage::ShmDoorbell,
        Stage::AppDeliver,
    ];

    /// Stages a span must contain to count as complete. `SwitchFwd` is
    /// optional (switchless links exist); `ShmDoorbell` is optional (a
    /// second segment arriving while a readable notice is outstanding is
    /// coalesced into the earlier doorbell, exactly like epoll
    /// level-triggering).
    const REQUIRED: [Stage; 6] = [
        Stage::AppSend,
        Stage::FpTx,
        Stage::NicTx,
        Stage::NicRx,
        Stage::FpRx,
        Stage::AppDeliver,
    ];
}

/// One stage's share of a span: total delta since the previous stamp,
/// split into queue wait and processing (service + propagation).
#[derive(Clone, Copy, Debug)]
pub struct StageDelta {
    /// The completed hop.
    pub stage: Stage,
    /// `t_stage − t_previous_stage` in nanoseconds.
    pub delta_ns: u64,
    /// Portion of the delta spent queued before service at this hop.
    pub queue_ns: u64,
    /// The rest: service time, serialization, propagation.
    pub proc_ns: u64,
}

/// The assembled journey of one transmitted payload range.
#[derive(Clone, Debug)]
pub struct Span {
    /// The flow from the data sender's perspective.
    pub flow: FlowKey,
    /// Sequence number of the range's first byte.
    pub seq: u32,
    /// Range length in bytes (as cut by the fast path into one segment).
    pub len: u32,
    /// `(stage, t_ns, wait_ns)` stamps in causal order.
    pub stages: Vec<(Stage, u64, u64)>,
    /// Every required stage was found, in order.
    pub complete: bool,
    /// The span is incomplete *and* the ring evicted records, so stamps
    /// may have been lost rather than never emitted.
    pub truncated: bool,
}

impl Span {
    /// End-to-end nanoseconds (app send → app deliver). `None` unless the
    /// span is complete — an incomplete span must never masquerade as a
    /// short latency.
    pub fn e2e_ns(&self) -> Option<u64> {
        if !self.complete || self.stages.len() < 2 {
            return None;
        }
        Some(self.stages[self.stages.len() - 1].1 - self.stages[0].1)
    }

    /// Per-stage deltas (entries for every stamp after the first). Their
    /// `delta_ns` sum equals [`Span::e2e_ns`] exactly by construction.
    pub fn deltas(&self) -> Vec<StageDelta> {
        let mut out = Vec::with_capacity(self.stages.len().saturating_sub(1));
        for w in self.stages.windows(2) {
            let (stage, t, wait) = w[1];
            let delta = t - w[0].1;
            let queue = wait.min(delta);
            out.push(StageDelta {
                stage,
                delta_ns: delta,
                queue_ns: queue,
                proc_ns: delta - queue,
            });
        }
        out
    }
}

struct StageEv {
    t_ns: u64,
    /// Stream offset relative to the flow's base sequence (wrapping u32
    /// space unwrapped against the first transmitted byte).
    rel: u64,
    len: u64,
    wait_ns: u64,
}

/// Assembles spans from a drained trace ring. `evicted` is the count
/// reported by [`crate::evicted`] at drain time; it decides whether
/// incomplete spans are flagged as truncated.
pub fn assemble(records: &[TraceRecord], evicted: u64) -> Vec<Span> {
    // Collect stage stamps grouped by flow, in time order (stable sort:
    // equal timestamps keep deterministic emission order).
    type RawStamp = (u64, Stage, u32, u32, u64);
    let mut by_flow: BTreeMap<FlowKey, Vec<RawStamp>> = BTreeMap::new();
    for r in records {
        if let TraceEvent::Stage {
            stage,
            flow,
            seq,
            len,
            wait_ns,
        } = r.ev
        {
            by_flow
                .entry(flow)
                .or_default()
                .push((r.t.as_nanos(), stage, seq, len, wait_ns));
        }
    }
    let mut spans = Vec::new();
    for (flow, mut evs) in by_flow {
        evs.sort_by_key(|e| e.0);
        // Base sequence: first byte the fast path transmitted (falls back
        // to the first stamp seen if the trace starts mid-flow).
        let base = evs
            .iter()
            .find(|e| e.1 == Stage::FpTx)
            .or(evs.first())
            .map(|e| e.2)
            .unwrap_or(0);
        // Per-stage interval indexes sorted by relative offset.
        let mut idx: BTreeMap<Stage, Vec<StageEv>> = BTreeMap::new();
        for &(t_ns, stage, seq, len, wait_ns) in &evs {
            idx.entry(stage).or_default().push(StageEv {
                t_ns,
                rel: seq.wrapping_sub(base) as u64,
                len: len as u64,
                wait_ns,
            });
        }
        let mut max_len: BTreeMap<Stage, u64> = BTreeMap::new();
        for (s, v) in idx.iter_mut() {
            v.sort_by(|a, b| a.rel.cmp(&b.rel).then(a.t_ns.cmp(&b.t_ns)));
            max_len.insert(*s, v.iter().map(|e| e.len).max().unwrap_or(0));
        }
        // One span per distinct transmitted range (first transmission
        // wins; retransmits of the same first byte do not open new spans).
        let mut seen = std::collections::BTreeSet::new();
        for &(_, stage, seq, len, _) in &evs {
            if stage != Stage::FpTx || len == 0 || !seen.insert(seq) {
                continue;
            }
            let b = seq.wrapping_sub(base) as u64;
            let mut stamps: Vec<(Stage, u64, u64)> = Vec::with_capacity(8);
            let mut t_prev = 0u64;
            let mut complete = true;
            for s in Stage::DATA_PATH {
                let found = idx.get(&s).and_then(|v| {
                    find_covering(v, b, t_prev, *max_len.get(&s).unwrap_or(&0))
                });
                match found {
                    Some((t, wait)) => {
                        stamps.push((s, t, wait));
                        t_prev = t;
                    }
                    None => {
                        if Stage::REQUIRED.contains(&s) {
                            complete = false;
                        }
                    }
                }
            }
            spans.push(Span {
                flow,
                seq,
                len,
                stages: stamps,
                complete,
                truncated: !complete && evicted > 0,
            });
        }
    }
    spans
}

/// Finds the earliest event at or after `t_min` whose interval covers
/// relative offset `b`. Events are sorted by `rel`; overlapping intervals
/// (coalesced sends, retransmits) are bounded by `max_len`, so the scan
/// left of the binary-search insertion point terminates early.
fn find_covering(evs: &[StageEv], b: u64, t_min: u64, max_len: u64) -> Option<(u64, u64)> {
    let hi = evs.partition_point(|e| e.rel <= b);
    let mut best: Option<(u64, u64)> = None;
    for e in evs[..hi].iter().rev() {
        if b - e.rel >= max_len {
            break;
        }
        if b - e.rel < e.len && e.t_ns >= t_min && best.is_none_or(|(t, _)| e.t_ns < t) {
            best = Some((e.t_ns, e.wait_ns));
        }
    }
    best
}

/// Aggregate view over a set of spans: end-to-end distribution plus
/// per-stage delta and queue-wait distributions (complete spans only).
#[derive(Debug, Default)]
pub struct Breakdown {
    /// End-to-end nanoseconds of every complete span.
    pub e2e: Histogram,
    /// `(stage, delta, queue)` distributions in data-path order.
    pub per_stage: Vec<(Stage, Histogram, Histogram)>,
    /// Spans examined.
    pub spans: usize,
    /// Complete spans (contributing to the distributions).
    pub complete: usize,
    /// Incomplete spans flagged truncated (ring wrapped mid-flow).
    pub truncated: usize,
}

/// Builds the aggregate breakdown over `spans`.
pub fn breakdown(spans: &[Span]) -> Breakdown {
    let mut b = Breakdown {
        per_stage: Stage::DATA_PATH
            .iter()
            .map(|&s| (s, Histogram::new(), Histogram::new()))
            .collect(),
        ..Breakdown::default()
    };
    for sp in spans {
        b.spans += 1;
        if sp.truncated {
            b.truncated += 1;
        }
        let Some(e2e) = sp.e2e_ns() else { continue };
        b.complete += 1;
        b.e2e.record(e2e);
        for d in sp.deltas() {
            if let Some(slot) = b.per_stage.iter_mut().find(|(s, _, _)| *s == d.stage) {
                slot.1.record(d.delta_ns);
                slot.2.record(d.queue_ns);
            }
        }
    }
    b
}

/// The exact per-stage decomposition of the span at quantile `q` of the
/// end-to-end distribution.
#[derive(Clone, Debug)]
pub struct CriticalPath {
    /// The selected span's end-to-end nanoseconds.
    pub e2e_ns: u64,
    /// Its per-stage deltas; `delta_ns` sums to `e2e_ns` exactly.
    pub stages: Vec<StageDelta>,
}

impl CriticalPath {
    /// Fraction of the end-to-end time spent queueing across all stages.
    pub fn queue_share(&self) -> f64 {
        if self.e2e_ns == 0 {
            return 0.0;
        }
        let q: u64 = self.stages.iter().map(|d| d.queue_ns).sum();
        q as f64 / self.e2e_ns as f64
    }
}

/// Selects the complete span at quantile `q` (by end-to-end latency) and
/// returns its exact stage decomposition. Unlike aggregate per-stage
/// quantiles — which need not sum to any particular span's total — this
/// is one real journey, so the parts sum to the whole.
pub fn critical_path(spans: &[Span], q: f64) -> Option<CriticalPath> {
    let mut complete: Vec<&Span> = spans.iter().filter(|s| s.complete).collect();
    if complete.is_empty() {
        return None;
    }
    complete.sort_by_key(|s| (s.e2e_ns().unwrap_or(0), s.seq));
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * complete.len() as f64).ceil() as usize).clamp(1, complete.len());
    let sp = complete[rank - 1];
    Some(CriticalPath {
        e2e_ns: sp.e2e_ns().expect("complete span"),
        stages: sp.deltas(),
    })
}

/// Groups complete spans' end-to-end latencies per tenant. Tenancy is
/// keyed by the flow's remote IP (each tenant owns distinct client hosts
/// in the scenario topologies); spans whose remote IP is unmapped land
/// under tenant key `u32::MAX` so nothing is silently dropped. The
/// returned map is ordered, so rendering it is deterministic.
pub fn by_tenant(
    spans: &[Span],
    tenant_of_ip: &BTreeMap<std::net::Ipv4Addr, u32>,
) -> BTreeMap<u32, Histogram> {
    let mut out: BTreeMap<u32, Histogram> = BTreeMap::new();
    for sp in spans {
        let Some(e2e) = sp.e2e_ns() else { continue };
        let tenant = tenant_of_ip
            .get(&sp.flow.remote_ip)
            .copied()
            .unwrap_or(u32::MAX);
        out.entry(tenant).or_default().record(e2e);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use tas_sim::SimTime;

    fn flow() -> FlowKey {
        FlowKey::new(Ipv4Addr::new(10, 0, 0, 1), 5000, Ipv4Addr::new(10, 0, 0, 2), 7)
    }

    fn rec(t_us: u64, stage: Stage, seq: u32, len: u32, wait_ns: u64) -> TraceRecord {
        TraceRecord {
            t: SimTime::from_us(t_us),
            site: "test",
            ev: TraceEvent::Stage {
                stage,
                flow: flow(),
                seq,
                len,
                wait_ns,
            },
        }
    }

    /// A full chain for one unit starting at `seq`, hops 1µs apart
    /// starting at `t0_us`.
    fn chain(t0_us: u64, seq: u32, len: u32) -> Vec<TraceRecord> {
        Stage::DATA_PATH
            .iter()
            .enumerate()
            .map(|(i, &s)| rec(t0_us + i as u64, s, seq, len, if s == Stage::FpRx { 300 } else { 0 }))
            .collect()
    }

    #[test]
    fn single_unit_assembles_exactly() {
        let spans = assemble(&chain(10, 1000, 64), 0);
        assert_eq!(spans.len(), 1);
        let sp = &spans[0];
        assert!(sp.complete && !sp.truncated);
        assert_eq!(sp.stages.len(), 8);
        assert_eq!(sp.e2e_ns(), Some(7_000));
        let deltas = sp.deltas();
        let sum: u64 = deltas.iter().map(|d| d.delta_ns).sum();
        assert_eq!(sum, 7_000, "stage deltas must partition the e2e exactly");
        // FpRx carried 300ns of queue wait; its 1µs delta splits 300/700.
        let fprx = deltas.iter().find(|d| d.stage == Stage::FpRx).unwrap();
        assert_eq!((fprx.queue_ns, fprx.proc_ns), (300, 700));
    }

    #[test]
    fn coalesced_app_send_covers_multiple_units() {
        // One 128-byte app send, cut into two 64-byte segments.
        let mut recs = vec![rec(1, Stage::AppSend, 1000, 128, 0)];
        for (t0, seq) in [(10u64, 1000u32), (20, 1064)] {
            recs.extend(chain(t0, seq, 64).into_iter().skip(1)); // no per-unit AppSend
        }
        let spans = assemble(&recs, 0);
        assert_eq!(spans.len(), 2);
        for sp in &spans {
            assert!(sp.complete, "coalesced send must still complete: {sp:?}");
            assert_eq!(sp.stages[0].0, Stage::AppSend);
            assert_eq!(sp.stages[0].1, 1_000);
        }
    }

    #[test]
    fn incomplete_span_reports_no_latency() {
        // AppSend and the delivery tail are missing; ring did not wrap.
        let recs: Vec<_> = chain(10, 500, 64).into_iter().skip(1).take(3).collect();
        let spans = assemble(&recs, 0);
        assert_eq!(spans.len(), 1);
        assert!(!spans[0].complete);
        assert!(!spans[0].truncated, "no evictions: merely in flight");
        assert_eq!(spans[0].e2e_ns(), None);
    }

    #[test]
    fn wrapped_ring_flags_truncation() {
        // The AppSend stamp fell off the wrapped ring.
        let recs: Vec<_> = chain(10, 500, 64).into_iter().skip(1).collect();
        let spans = assemble(&recs, 17);
        assert_eq!(spans.len(), 1);
        assert!(!spans[0].complete);
        assert!(spans[0].truncated, "evictions happened: must be flagged");
        assert_eq!(spans[0].e2e_ns(), None);
    }

    #[test]
    fn retransmit_does_not_open_a_second_span() {
        let mut recs = chain(10, 900, 64);
        recs.push(rec(50, Stage::FpTx, 900, 64, 0)); // rexmit of the same range
        recs.push(rec(51, Stage::NicTx, 900, 64, 0));
        let spans = assemble(&recs, 0);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].e2e_ns(), Some(7_000), "first journey wins");
    }

    #[test]
    fn sequence_wraparound_is_handled() {
        let seq = u32::MAX - 10;
        let spans = assemble(&chain(10, seq, 64), 0);
        assert_eq!(spans.len(), 1);
        assert!(spans[0].complete, "wrapping seq space must still match");
        assert_eq!(spans[0].e2e_ns(), Some(7_000));
    }

    #[test]
    fn breakdown_and_critical_path_agree() {
        let mut recs = Vec::new();
        // Ten units; the last one queues 40µs extra at FpRx.
        for i in 0..10u32 {
            let mut c = chain(100 + 100 * i as u64, 1000 + 64 * i, 64);
            if i == 9 {
                // Delay FpRx and everything after by 40µs.
                for r in c.iter_mut() {
                    if let TraceEvent::Stage { stage, .. } = r.ev {
                        if stage >= Stage::FpRx && stage <= Stage::AppDeliver {
                            r.t += SimTime::from_us(40);
                        }
                    }
                }
                if let TraceEvent::Stage { ref mut wait_ns, .. } = c[5].ev {
                    *wait_ns = 40_000 + 300;
                }
            }
            recs.extend(c);
        }
        let spans = assemble(&recs, 0);
        let b = breakdown(&spans);
        assert_eq!((b.spans, b.complete, b.truncated), (10, 10, 0));
        assert_eq!(b.e2e.count(), 10);
        // p50 span: plain 7µs chain, queueing only the 300ns FpRx wait.
        let p50 = critical_path(&spans, 0.5).unwrap();
        assert_eq!(p50.e2e_ns, 7_000);
        // p99 span: the delayed one; queueing dominates.
        let p99 = critical_path(&spans, 0.99).unwrap();
        assert_eq!(p99.e2e_ns, 47_000);
        let sum: u64 = p99.stages.iter().map(|d| d.delta_ns).sum();
        assert_eq!(sum, p99.e2e_ns);
        assert!(p99.queue_share() > 0.8, "queue share {}", p99.queue_share());
        assert!(p50.queue_share() < 0.1);
    }

    #[test]
    fn by_tenant_groups_complete_spans_by_remote_ip() {
        // Two units on the canonical flow (remote 10.0.0.2), assembled
        // into complete spans.
        let mut recs = chain(0, 1, 100);
        recs.extend(chain(100, 101, 100));
        let spans = assemble(&recs, 0);
        assert!(spans.iter().all(|s| s.complete));
        let mut map = BTreeMap::new();
        map.insert(Ipv4Addr::new(10, 0, 0, 2), 7u32);
        let per = by_tenant(&spans, &map);
        assert_eq!(per.len(), 1);
        assert_eq!(per.get(&7).map(|h| h.count()), Some(spans.len() as u64));
        // Unmapped remote IPs land under the sentinel, not on the floor.
        let empty = BTreeMap::new();
        let per = by_tenant(&spans, &empty);
        assert_eq!(per.get(&u32::MAX).map(|h| h.count()), Some(spans.len() as u64));
    }
}
