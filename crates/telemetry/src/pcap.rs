//! Pcap export of traced segments.
//!
//! Replays the segments captured in a trace ring through
//! [`tas_proto::wire::serialize`] — the same codec the simulated NICs
//! would use on real hardware — into a classic nanosecond-resolution pcap
//! (magic `0xa1b2_3c4d`, LINKTYPE_ETHERNET) that Wireshark and tcpdump
//! open directly. A small reader parses the format back so tests can
//! round-trip an export through [`tas_proto::wire::parse`] and verify
//! checksums, ECN codepoints, and ordering survive the trip.

use crate::{TraceEvent, TraceRecord};
use tas_proto::wire;
use tas_proto::Segment;
use tas_sim::SimTime;

/// Nanosecond-resolution pcap magic (host byte order).
const MAGIC_NS: u32 = 0xa1b2_3c4d;
/// LINKTYPE_ETHERNET.
const LINKTYPE_EN10MB: u32 = 1;
const SNAPLEN: u32 = 65_535;

/// A pcap writer accumulating records in memory.
///
/// Timestamps are the simulated clock: `ts_sec`/`ts_nsec` are derived
/// from [`SimTime::as_nanos`], so a capture of a deterministic run is
/// itself byte-deterministic.
pub struct PcapWriter {
    buf: Vec<u8>,
}

impl PcapWriter {
    /// Creates a writer with the global header already emitted.
    pub fn new() -> PcapWriter {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(&MAGIC_NS.to_le_bytes());
        buf.extend_from_slice(&2u16.to_le_bytes()); // version major
        buf.extend_from_slice(&4u16.to_le_bytes()); // version minor
        buf.extend_from_slice(&0i32.to_le_bytes()); // thiszone
        buf.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
        buf.extend_from_slice(&SNAPLEN.to_le_bytes());
        buf.extend_from_slice(&LINKTYPE_EN10MB.to_le_bytes());
        PcapWriter { buf }
    }

    /// Appends one segment stamped at simulated time `t`.
    pub fn push(&mut self, t: SimTime, seg: &Segment) {
        let frame = wire::serialize(seg);
        let ns = t.as_nanos();
        self.buf.extend_from_slice(&((ns / 1_000_000_000) as u32).to_le_bytes());
        self.buf.extend_from_slice(&((ns % 1_000_000_000) as u32).to_le_bytes());
        let len = frame.len().min(SNAPLEN as usize) as u32;
        self.buf.extend_from_slice(&len.to_le_bytes()); // incl_len
        self.buf.extend_from_slice(&(frame.len() as u32).to_le_bytes()); // orig_len
        self.buf.extend_from_slice(&frame[..len as usize]);
    }

    /// The finished capture bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if no packet records have been written.
    pub fn is_empty(&self) -> bool {
        self.buf.len() <= 24
    }
}

impl Default for PcapWriter {
    fn default() -> Self {
        PcapWriter::new()
    }
}

/// Builds a capture from trace records, keeping `SegRx`/`SegTx` events
/// whose site passes `site_filter` (e.g. `|s| s == "nic"` for the
/// canonical on-the-wire view, or `|_| true` for everything).
pub fn from_records(records: &[TraceRecord], mut site_filter: impl FnMut(&str) -> bool) -> Vec<u8> {
    let mut w = PcapWriter::new();
    for r in records {
        if !site_filter(r.site) {
            continue;
        }
        match &r.ev {
            TraceEvent::SegRx { seg } | TraceEvent::SegTx { seg } => w.push(r.t, seg),
            _ => {}
        }
    }
    w.into_bytes()
}

/// One packet read back from a capture.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PcapPacket {
    /// Capture timestamp, reconstructed on the simulated clock.
    pub t: SimTime,
    /// Raw frame bytes (feed to [`tas_proto::wire::parse`]).
    pub frame: Vec<u8>,
}

/// Errors from [`parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PcapError {
    /// Shorter than the 24-byte global header.
    TruncatedHeader,
    /// Magic number is not the nanosecond-pcap magic this crate writes.
    BadMagic(u32),
    /// A record header or body extends past the end of the buffer.
    TruncatedRecord,
}

/// Parses a capture produced by [`PcapWriter`] back into packets.
pub fn parse(bytes: &[u8]) -> Result<Vec<PcapPacket>, PcapError> {
    if bytes.len() < 24 {
        return Err(PcapError::TruncatedHeader);
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    if magic != MAGIC_NS {
        return Err(PcapError::BadMagic(magic));
    }
    let mut off = 24;
    let mut out = Vec::new();
    while off < bytes.len() {
        if off + 16 > bytes.len() {
            return Err(PcapError::TruncatedRecord);
        }
        let sec = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as u64;
        let nsec = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap()) as u64;
        let incl = u32::from_le_bytes(bytes[off + 8..off + 12].try_into().unwrap()) as usize;
        off += 16;
        if off + incl > bytes.len() {
            return Err(PcapError::TruncatedRecord);
        }
        out.push(PcapPacket {
            t: SimTime::from_ps((sec * 1_000_000_000 + nsec) * 1000),
            frame: bytes[off..off + incl].to_vec(),
        });
        off += incl;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use tas_proto::{MacAddr, TcpFlags, TcpHeader};

    fn seg(seq: u32, len: usize) -> Segment {
        Segment::tcp(
            MacAddr::for_host(1),
            MacAddr::for_host(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            TcpHeader::new(5000, 80, seq, 9, TcpFlags::ACK | TcpFlags::PSH),
            vec![0x5a; len],
            true,
        )
    }

    #[test]
    fn writer_reader_round_trip_preserves_frames_and_times() {
        let mut w = PcapWriter::new();
        assert!(w.is_empty());
        let s1 = seg(100, 32);
        let s2 = seg(132, 0);
        w.push(SimTime::from_us(7), &s1);
        w.push(SimTime::from_secs(2) + SimTime::from_ns(5), &s2);
        assert!(!w.is_empty());
        let bytes = w.into_bytes();

        let pkts = parse(&bytes).unwrap();
        assert_eq!(pkts.len(), 2);
        assert_eq!(pkts[0].t, SimTime::from_us(7));
        assert_eq!(pkts[1].t, SimTime::from_secs(2) + SimTime::from_ns(5));
        let back1 = wire::parse(&pkts[0].frame).unwrap();
        assert_eq!(back1.tcp.seq, 100);
        assert_eq!(back1.payload, vec![0x5a; 32]);
        let back2 = wire::parse(&pkts[1].frame).unwrap();
        assert_eq!(back2.tcp.seq, 132);
        assert!(back2.payload.is_empty());
    }

    #[test]
    fn from_records_keeps_only_segments_at_matching_sites() {
        let recs = vec![
            TraceRecord {
                t: SimTime::from_us(1),
                site: "nic",
                ev: TraceEvent::SegTx {
                    seg: Box::new(seg(1, 4)),
                },
            },
            TraceRecord {
                t: SimTime::from_us(2),
                site: "fp",
                ev: TraceEvent::SegTx {
                    seg: Box::new(seg(2, 4)),
                },
            },
            TraceRecord {
                t: SimTime::from_us(3),
                site: "nic",
                ev: TraceEvent::CoreScale { active: 1, delta: 1 },
            },
        ];
        let bytes = from_records(&recs, |s| s == "nic");
        let pkts = parse(&bytes).unwrap();
        assert_eq!(pkts.len(), 1);
        assert_eq!(wire::parse(&pkts[0].frame).unwrap().tcp.seq, 1);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(parse(&[0u8; 10]), Err(PcapError::TruncatedHeader));
        let mut bad = PcapWriter::new().into_bytes();
        bad[0] = 0xff;
        assert!(matches!(parse(&bad), Err(PcapError::BadMagic(_))));
        let mut trunc = PcapWriter::new();
        trunc.push(SimTime::from_us(1), &seg(1, 10));
        let mut b = trunc.into_bytes();
        b.truncate(b.len() - 3);
        assert_eq!(parse(&b), Err(PcapError::TruncatedRecord));
    }
}
