//! Attribution-exact cycle profiler.
//!
//! Unlike a sampling profiler, every cycle the simulation charges to a
//! [`tas_cpusim::Core`] is attributed to the frame stack that was live
//! when the cost model charged it. Instrumented code pushes scoped RAII
//! frames ([`guard`]) and routes cycle charges through [`charge`]; the
//! core model calls [`on_core_run`] when work is actually scheduled,
//! draining pending charges FIFO into a per-core profile tree. The tree
//! exports as Brendan-Gregg collapsed ("folded") stacks — which
//! `flamegraph.pl` and speedscope render directly — and as a
//! deterministic JSON tree.
//!
//! # Attribution model
//!
//! - A host *arms* the profiler with the identity of the core about to
//!   execute ([`set_core`]) or *disarms* it ([`disarm`]) when the
//!   running host is not being profiled. Arming clears any pending
//!   charges left by code that charged cycles which were never run
//!   (e.g. a cost estimate that was discarded).
//! - [`charge`] enqueues `(current frame, cycles)` FIFO; it does not
//!   attribute anything by itself.
//! - [`on_core_run`] drains queued charges, oldest first, up to the
//!   cycles actually submitted to the core. A shortfall (work run on the
//!   core that no instrumented site charged) is attributed to the frame
//!   on top of the stack at run time, so every armed core cycle lands
//!   somewhere: per core, the profile tree total equals the exact sum of
//!   armed `Core::run` cycles. That is the conservation invariant the
//!   workspace property tests pin against [`tas_cpusim::Core`]
//!   `busy_cycles` deltas.
//!
//! The profiler is thread-local, never consults any simulation RNG, and
//! is compiled into stack crates only under their `profile` feature (the
//! `trace` mold): a default build contains none of this code.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt::Write as _;

/// Identity of a simulated core: a host-assigned group label (`"fp"`,
/// `"sp"`, `"app"`, `"core"`) plus the index within the group.
pub type CoreId = (&'static str, u32);

/// Renders a core identity as the first folded-stack frame (`fp0`).
fn core_label((group, idx): CoreId) -> String {
    format!("{group}{idx}")
}

#[derive(Clone, Debug)]
struct Node {
    name: &'static str,
    children: BTreeMap<&'static str, usize>,
    /// Self cycles attributed to this frame, per core.
    cycles: BTreeMap<CoreId, u64>,
    /// Times this frame was entered.
    calls: u64,
}

impl Node {
    fn new(name: &'static str) -> Node {
        Node {
            name,
            children: BTreeMap::new(),
            cycles: BTreeMap::new(),
            calls: 0,
        }
    }

    fn self_total(&self) -> u64 {
        self.cycles.values().sum()
    }
}

struct Prof {
    enabled: bool,
    armed: Option<CoreId>,
    /// Bumped by `start`/`stop`/`take`; outstanding guards from an older
    /// generation become no-ops on drop.
    generation: u64,
    /// Index 0 is the root; never removed while enabled.
    nodes: Vec<Node>,
    /// Current frame path (node indices, innermost last).
    stack: Vec<usize>,
    /// Charges awaiting a `Core::run`: `(frame node, cycles)`.
    fifo: VecDeque<(usize, u64)>,
}

impl Prof {
    const fn new() -> Prof {
        Prof {
            enabled: false,
            armed: None,
            generation: 0,
            nodes: Vec::new(),
            stack: Vec::new(),
            fifo: VecDeque::new(),
        }
    }

    fn reset_tree(&mut self) {
        self.nodes.clear();
        self.nodes.push(Node::new("(root)"));
        self.stack.clear();
        self.fifo.clear();
    }

    fn top(&self) -> usize {
        self.stack.last().copied().unwrap_or(0)
    }

    fn add_cycles(&mut self, node: usize, core: CoreId, c: u64) {
        if let Some(n) = self.nodes.get_mut(node) {
            *n.cycles.entry(core).or_insert(0) += c;
        }
    }
}

thread_local! {
    static PROF: RefCell<Prof> = const { RefCell::new(Prof::new()) };
}

/// Enables profiling on this thread, clearing any previous tree.
pub fn start() {
    PROF.with(|p| {
        let mut p = p.borrow_mut();
        p.enabled = true;
        p.armed = None;
        p.generation = p.generation.wrapping_add(1);
        p.reset_tree();
    });
}

/// Disables profiling and discards the tree.
pub fn stop() {
    PROF.with(|p| {
        let mut p = p.borrow_mut();
        p.enabled = false;
        p.armed = None;
        p.generation = p.generation.wrapping_add(1);
        p.nodes.clear();
        p.stack.clear();
        p.fifo.clear();
    });
}

/// True when profiling is enabled on this thread.
pub fn is_enabled() -> bool {
    PROF.with(|p| p.borrow().enabled)
}

/// Arms attribution: subsequent charges and core runs belong to this
/// core. Clears pending charges (cycles charged but never run belong to
/// no core). No-op while disabled.
pub fn set_core(group: &'static str, idx: u32) {
    PROF.with(|p| {
        let mut p = p.borrow_mut();
        p.fifo.clear();
        if p.enabled {
            p.armed = Some((group, idx));
        }
    });
}

/// Disarms attribution: the code about to run belongs to a host that is
/// not being profiled. Clears pending charges.
pub fn disarm() {
    PROF.with(|p| {
        let mut p = p.borrow_mut();
        p.armed = None;
        p.fifo.clear();
    });
}

/// A scoped frame. Dropping pops the frame; inactive guards (profiler
/// disabled or disarmed at creation, or reset since) are free no-ops.
#[must_use]
pub struct Guard {
    active: bool,
    generation: u64,
}

impl Drop for Guard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        PROF.with(|p| {
            let mut p = p.borrow_mut();
            if p.generation == self.generation {
                p.stack.pop();
            }
        });
    }
}

/// Pushes frame `name` under the current frame and returns the guard
/// that pops it. Counts a call on the frame node.
pub fn guard(name: &'static str) -> Guard {
    PROF.with(|p| {
        let mut p = p.borrow_mut();
        if !p.enabled || p.armed.is_none() || p.nodes.is_empty() {
            return Guard {
                active: false,
                generation: 0,
            };
        }
        let parent = p.top();
        let existing = p
            .nodes
            .get(parent)
            .and_then(|n| n.children.get(name))
            .copied();
        let idx = match existing {
            Some(i) => i,
            None => {
                let i = p.nodes.len();
                p.nodes.push(Node::new(name));
                if let Some(par) = p.nodes.get_mut(parent) {
                    par.children.insert(name, i);
                }
                i
            }
        };
        if let Some(n) = p.nodes.get_mut(idx) {
            n.calls += 1;
        }
        p.stack.push(idx);
        Guard {
            active: true,
            generation: p.generation,
        }
    })
}

/// Enqueues `cycles` against the current frame, to be attributed when
/// the core actually runs them. No-op while disabled or disarmed.
pub fn charge(cycles: u64) {
    if cycles == 0 {
        return;
    }
    PROF.with(|p| {
        let mut p = p.borrow_mut();
        if !p.enabled || p.armed.is_none() {
            return;
        }
        let node = p.top();
        p.fifo.push_back((node, cycles));
    });
}

/// [`charge`] for fractional cycle costs; rounds exactly as
/// `Core::run_f64` does so charges line up with what the core runs.
pub fn charge_f64(cycles: f64) {
    charge(cycles.max(0.0).round() as u64);
}

/// Attribution drain, called by `Core::run` (under the cpusim `profile`
/// feature) with the cycles just submitted. Oldest charges drain first;
/// any shortfall is attributed to the frame currently on top of the
/// stack. No-op while disabled or disarmed.
pub fn on_core_run(cycles: u64) {
    if cycles == 0 {
        return;
    }
    PROF.with(|p| {
        let mut p = p.borrow_mut();
        if !p.enabled {
            return;
        }
        let Some(core) = p.armed else {
            return;
        };
        let mut remaining = cycles;
        while remaining > 0 {
            let Some((node, c)) = p.fifo.pop_front() else {
                break;
            };
            if c <= remaining {
                remaining -= c;
                p.add_cycles(node, core, c);
            } else {
                p.fifo.push_front((node, c - remaining));
                p.add_cycles(node, core, remaining);
                remaining = 0;
            }
        }
        if remaining > 0 {
            let top = p.top();
            p.add_cycles(top, core, remaining);
        }
    });
}

/// Takes the accumulated profile, resetting the tree (profiling stays
/// enabled). Outstanding guards become no-ops.
pub fn take() -> Profile {
    PROF.with(|p| {
        let mut p = p.borrow_mut();
        p.generation = p.generation.wrapping_add(1);
        p.armed = None;
        let nodes = std::mem::take(&mut p.nodes);
        if p.enabled {
            p.reset_tree();
        } else {
            p.stack.clear();
            p.fifo.clear();
        }
        Profile { nodes }
    })
}

/// An immutable profile snapshot: the per-core attribution tree.
#[derive(Clone, Debug)]
pub struct Profile {
    nodes: Vec<Node>,
}

impl Profile {
    /// An empty profile (what [`take`] returns when nothing ran).
    pub fn empty() -> Profile {
        Profile { nodes: Vec::new() }
    }

    /// True when no cycles were attributed anywhere.
    pub fn is_empty(&self) -> bool {
        self.total_cycles() == 0
    }

    /// Total attributed cycles across all cores and frames.
    pub fn total_cycles(&self) -> u64 {
        self.nodes.iter().map(Node::self_total).sum()
    }

    /// Total attributed cycles for one core.
    pub fn core_cycles(&self, group: &str, idx: u32) -> u64 {
        self.nodes
            .iter()
            .map(|n| {
                n.cycles
                    .iter()
                    .filter(|((g, i), _)| *g == group && *i == idx)
                    .map(|(_, c)| c)
                    .sum::<u64>()
            })
            .sum()
    }

    /// Every core that received cycles, in deterministic order.
    pub fn cores(&self) -> Vec<CoreId> {
        let mut set = BTreeSet::new();
        for n in &self.nodes {
            for core in n.cycles.keys() {
                set.insert(*core);
            }
        }
        set.into_iter().collect()
    }

    /// Per-core totals keyed by folded label (`fp0`), in label order.
    pub fn per_core_totals(&self) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for n in &self.nodes {
            for (core, c) in &n.cycles {
                *out.entry(core_label(*core)).or_insert(0) += c;
            }
        }
        out
    }

    /// Self cycles per frame path (frames joined with `/`, root
    /// excluded from the path; root residual keys as `(root)`), summed
    /// across cores. Zero-cycle structural frames are omitted.
    pub fn flat_self(&self) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        let mut path = Vec::new();
        self.walk_flat(0, &mut path, &mut out);
        out
    }

    fn walk_flat(&self, idx: usize, path: &mut Vec<&'static str>, out: &mut BTreeMap<String, u64>) {
        let Some(n) = self.nodes.get(idx) else {
            return;
        };
        let total = n.self_total();
        if total > 0 {
            let key = if path.is_empty() {
                "(root)".to_string()
            } else {
                path.join("/")
            };
            *out.entry(key).or_insert(0) += total;
        }
        for (name, &child) in &n.children {
            path.push(name);
            self.walk_flat(child, path, out);
            path.pop();
        }
    }

    /// Subtree cycle totals for each depth-1 frame (the per-module
    /// rollup), keyed by frame name, summed across cores.
    pub fn rollup_depth1(&self) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        let Some(root) = self.nodes.first() else {
            return out;
        };
        for (name, &child) in &root.children {
            out.insert((*name).to_string(), self.subtree_cycles(child));
        }
        out
    }

    fn subtree_cycles(&self, idx: usize) -> u64 {
        let Some(n) = self.nodes.get(idx) else {
            return 0;
        };
        n.self_total()
            + n.children
                .values()
                .map(|&c| self.subtree_cycles(c))
                .sum::<u64>()
    }

    /// Call count for the depth-1 frame `name` (0 when absent).
    pub fn calls_depth1(&self, name: &str) -> u64 {
        self.nodes
            .first()
            .and_then(|root| root.children.get(name))
            .and_then(|&i| self.nodes.get(i))
            .map(|n| n.calls)
            .unwrap_or(0)
    }

    /// Brendan-Gregg collapsed stacks: one line per `(core, frame path)`
    /// with self cycles > 0, `label;frame;frame cycles`, sorted
    /// lexicographically. `flamegraph.pl` and speedscope ingest this
    /// directly.
    pub fn folded(&self) -> String {
        let mut lines = Vec::new();
        let mut path = Vec::new();
        self.walk_folded(0, &mut path, &mut lines);
        lines.sort();
        let mut out = String::new();
        for l in &lines {
            out.push_str(l);
            out.push('\n');
        }
        out
    }

    fn walk_folded(&self, idx: usize, path: &mut Vec<&'static str>, lines: &mut Vec<String>) {
        let Some(n) = self.nodes.get(idx) else {
            return;
        };
        for (core, &c) in &n.cycles {
            if c == 0 {
                continue;
            }
            let mut line = core_label(*core);
            for frame in path.iter() {
                line.push(';');
                line.push_str(frame);
            }
            let _ = write!(line, " {c}");
            lines.push(line);
        }
        for (name, &child) in &n.children {
            path.push(name);
            self.walk_folded(child, path, lines);
            path.pop();
        }
    }

    /// Deterministic JSON tree (`tas-profile-v1`): per-core totals plus
    /// the frame tree with self cycles, call counts, and children in
    /// name order.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\"schema\":\"tas-profile-v1\",\"total_cycles\":");
        let _ = write!(s, "{}", self.total_cycles());
        s.push_str(",\"cores\":{");
        let mut first = true;
        for (label, total) in self.per_core_totals() {
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(s, "\"{label}\":{total}");
        }
        s.push_str("},\"root\":");
        self.node_json(0, &mut s);
        s.push('}');
        s
    }

    fn node_json(&self, idx: usize, s: &mut String) {
        let Some(n) = self.nodes.get(idx) else {
            s.push_str("null");
            return;
        };
        let _ = write!(
            s,
            "{{\"name\":\"{}\",\"calls\":{},\"self_cycles\":{{",
            n.name, n.calls
        );
        let mut first = true;
        for (core, c) in &n.cycles {
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(s, "\"{}\":{}", core_label(*core), c);
        }
        s.push_str("},\"children\":[");
        let mut first = true;
        for &child in n.children.values() {
            if !first {
                s.push(',');
            }
            first = false;
            self.node_json(child, s);
        }
        s.push_str("]}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_region(core: CoreId, frames: &[&'static str], cycles: u64) {
        set_core(core.0, core.1);
        let mut guards = Vec::new();
        for f in frames {
            guards.push(guard(f));
        }
        charge(cycles);
        drop(guards);
        on_core_run(cycles);
    }

    #[test]
    fn disabled_profiler_is_inert() {
        stop();
        set_core("fp", 0);
        let _g = guard("rx");
        charge(100);
        on_core_run(100);
        let p = take();
        assert!(p.is_empty());
        assert_eq!(p.folded(), "");
    }

    #[test]
    fn charges_attribute_to_frames_per_core() {
        start();
        run_region(("fp", 0), &["rx", "ack"], 120);
        run_region(("fp", 1), &["rx"], 30);
        run_region(("sp", 0), &["control"], 50);
        let p = take();
        stop();
        assert_eq!(p.total_cycles(), 200);
        assert_eq!(p.core_cycles("fp", 0), 120);
        assert_eq!(p.core_cycles("fp", 1), 30);
        assert_eq!(p.core_cycles("sp", 0), 50);
        let folded = p.folded();
        assert_eq!(folded, "fp0;rx;ack 120\nfp1;rx 30\nsp0;control 50\n");
        assert_eq!(p.flat_self().get("rx/ack"), Some(&120));
        assert_eq!(p.rollup_depth1().get("rx"), Some(&150));
    }

    #[test]
    fn residual_lands_on_stack_top() {
        start();
        set_core("core", 2);
        {
            let _g = guard("conn");
            charge(40);
            // The core ran more than was charged: shortfall goes to the
            // live frame.
            on_core_run(100);
        }
        let p = take();
        stop();
        assert_eq!(p.total_cycles(), 100);
        assert_eq!(p.flat_self().get("conn"), Some(&100));
    }

    #[test]
    fn overcharge_drops_at_rearm() {
        start();
        set_core("sp", 0);
        {
            let _g = guard("exception");
            charge(900);
            charge(500); // estimated but never run
        }
        on_core_run(900);
        // Re-arming clears the stale 500-cycle estimate.
        set_core("fp", 0);
        {
            let _g = guard("rx");
            charge(10);
        }
        on_core_run(10);
        let p = take();
        stop();
        assert_eq!(p.total_cycles(), 910);
        assert_eq!(p.flat_self().get("exception"), Some(&900));
        assert_eq!(p.flat_self().get("rx"), Some(&10));
    }

    #[test]
    fn partial_drain_preserves_fifo_order() {
        start();
        set_core("fp", 0);
        {
            let _g = guard("a");
            charge(100);
        }
        {
            let _g = guard("b");
            charge(60);
        }
        on_core_run(70); // 70 of a
        on_core_run(90); // 30 of a, 60 of b
        let p = take();
        stop();
        assert_eq!(p.flat_self().get("a"), Some(&100));
        assert_eq!(p.flat_self().get("b"), Some(&60));
    }

    #[test]
    fn disarm_suppresses_attribution() {
        start();
        disarm();
        let _g = guard("ghost");
        charge(100);
        on_core_run(100);
        drop(_g);
        let p = take();
        stop();
        assert!(p.is_empty());
    }

    #[test]
    fn take_invalidates_outstanding_guards() {
        start();
        set_core("fp", 0);
        let g = guard("rx");
        charge(5);
        on_core_run(5);
        let p = take();
        drop(g); // stale generation: must not touch the fresh stack
        run_region(("fp", 0), &["tx"], 7);
        let p2 = take();
        stop();
        assert_eq!(p.total_cycles(), 5);
        assert_eq!(p2.folded(), "fp0;tx 7\n");
    }

    #[test]
    fn structural_frames_count_calls_without_cycles() {
        start();
        set_core("fp", 0);
        for _ in 0..3 {
            let _g = guard("cc_newreno");
        }
        let p = take();
        stop();
        assert_eq!(p.calls_depth1("cc_newreno"), 3);
        assert_eq!(p.folded(), "", "zero-cycle frames stay out of folded");
        assert!(p.to_json().contains("\"name\":\"cc_newreno\",\"calls\":3"));
    }

    #[test]
    fn json_and_folded_are_deterministic() {
        let mk = || {
            start();
            run_region(("fp", 0), &["rx"], 11);
            run_region(("app", 3), &["app", "work"], 22);
            let p = take();
            stop();
            (p.folded(), p.to_json())
        };
        assert_eq!(mk(), mk());
        let (_, json) = mk();
        assert!(json.starts_with("{\"schema\":\"tas-profile-v1\""), "{json}");
    }
}
