//! Bounded descriptor queues (TAS "context queues").

use std::collections::VecDeque;

/// A bounded FIFO of descriptors with occupancy statistics.
///
/// Models the cache-efficient SPSC shared-memory queues connecting TAS's
/// components. A full queue rejects the descriptor and counts the failure —
/// the fast path reacts by re-notifying later (§3.1: "context queues only
/// fill when payload is queued at an application").
///
/// # Examples
///
/// ```
/// use tas_shm::DescQueue;
/// let mut q: DescQueue<u32> = DescQueue::new(2);
/// q.try_push(1).unwrap();
/// q.try_push(2).unwrap();
/// assert!(q.try_push(3).is_err());
/// assert_eq!(q.pop(), Some(1));
/// ```
#[derive(Clone, Debug)]
pub struct DescQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
    enqueued: u64,
    rejected: u64,
}

impl<T> DescQueue<T> {
    /// Creates a queue holding at most `capacity` descriptors.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        // lint:allow(R4): construction-time configuration check (documented
        // panic); queues are built at host setup, never per packet.
        assert!(capacity > 0, "queue capacity must be positive");
        DescQueue {
            items: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            enqueued: 0,
            rejected: 0,
        }
    }

    /// Capacity in descriptors.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no descriptors are queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True when at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Enqueues a descriptor, returning it back on a full queue.
    pub fn try_push(&mut self, item: T) -> Result<(), T> {
        if self.is_full() {
            self.rejected += 1;
            return Err(item);
        }
        self.items.push_back(item);
        self.enqueued += 1;
        Ok(())
    }

    /// Dequeues the oldest descriptor.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Peeks at the oldest descriptor without dequeuing.
    pub fn peek(&self) -> Option<&T> {
        self.items.front()
    }

    /// Dequeues up to `max` descriptors into `out` (batched consumption, as
    /// mTCP-style stacks do).
    pub fn pop_batch(&mut self, max: usize, out: &mut Vec<T>) -> usize {
        let n = max.min(self.items.len());
        let mut popped = 0;
        while popped < n {
            let Some(item) = self.items.pop_front() else {
                debug_assert!(false, "length checked above");
                break;
            };
            out.push(item);
            popped += 1;
        }
        popped
    }

    /// Total successfully enqueued descriptors.
    pub fn total_enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Total rejected (queue-full) descriptors.
    pub fn total_rejected(&self) -> u64 {
        self.rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = DescQueue::new(4);
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn rejects_when_full_and_counts() {
        let mut q = DescQueue::new(1);
        q.try_push("a").unwrap();
        assert_eq!(q.try_push("b"), Err("b"));
        assert_eq!(q.total_rejected(), 1);
        assert_eq!(q.total_enqueued(), 1);
        assert!(q.is_full());
        q.pop();
        q.try_push("b").unwrap();
    }

    #[test]
    fn batch_pop() {
        let mut q = DescQueue::new(8);
        for i in 0..6 {
            q.try_push(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(4, &mut out), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(q.pop_batch(4, &mut out), 2);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
        assert!(q.is_empty());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = DescQueue::new(2);
        q.try_push(42).unwrap();
        assert_eq!(q.peek(), Some(&42));
        assert_eq!(q.len(), 1);
    }
}
