//! Shared-memory primitives of the TAS architecture.
//!
//! TAS connects its three components (fast path, slow path, per-application
//! user-space stacks) exclusively through shared memory: per-flow circular
//! payload buffers and fixed-size descriptor ("context") queues (§3,
//! Figures 1–3 of the paper). This crate implements both:
//!
//! * [`ByteRing`] — a circular byte buffer addressed by absolute stream
//!   offsets, serving as both the RX payload buffer (fast path writes,
//!   application reads; supports writing one out-of-order interval ahead of
//!   the in-order frontier) and the TX payload buffer (application appends,
//!   fast path reads for (re)transmission, ACKs free space).
//! * [`DescQueue`] — a bounded FIFO of descriptors modeling a cache-
//!   efficient SPSC shared-memory queue, with occupancy statistics used by
//!   the CPU cost model.
//!
//! The simulator is single-threaded, so these are plain data structures;
//! the concurrency of the real system is captured by the explicit queue
//! discipline (nothing ever bypasses a queue) rather than by atomics.
// Panic-freedom is a stack invariant: unwrap/expect are denied in
// production code (tests are exempt). Packet-path code degrades
// gracefully via let-else + debug_assert; see tas-lint rule R4.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod byte_ring;
mod desc_queue;

pub use byte_ring::{ByteRing, RingError};
pub use desc_queue::DescQueue;
