//! Circular payload buffer addressed by absolute stream offsets.

/// Errors returned by [`ByteRing`] operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RingError {
    /// The operation would exceed the ring's capacity.
    Full,
    /// The requested range is not inside the valid window.
    OutOfRange,
}

impl std::fmt::Display for RingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RingError::Full => f.write_str("ring full"),
            RingError::OutOfRange => f.write_str("range outside ring window"),
        }
    }
}

impl std::error::Error for RingError {}

/// A fixed-capacity circular byte buffer over an absolute (u64) stream.
///
/// Three offsets partition the stream:
///
/// ```text
///   start                end                      start + capacity
///     |---- valid data ----|---- writable ahead ----|
/// ```
///
/// * `start..end` holds committed bytes (readable, e.g. in-order received
///   payload, or sent-but-unacked TX data).
/// * `end..start+capacity` is space where data may be staged out of order
///   ([`write_at`](ByteRing::write_at)) before being committed by
///   [`advance_end`](ByteRing::advance_end).
///
/// Used as TAS's per-flow RX buffer (`rx_start|size`, `rx_head|tail` in the
/// paper's Table 3) and TX buffer (`tx_head|tail`, `tx_sent`).
///
/// # Examples
///
/// ```
/// use tas_shm::ByteRing;
/// let mut r = ByteRing::new(8);
/// r.append(b"abc").unwrap();
/// assert_eq!(r.copy_out(0, 3).unwrap(), b"abc");
/// r.consume(3).unwrap();
/// assert_eq!(r.len(), 0);
/// ```
#[derive(Clone, Debug)]
pub struct ByteRing {
    buf: Box<[u8]>,
    start: u64,
    end: u64,
}

impl ByteRing {
    /// Creates a ring with the given capacity in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        // lint:allow(R4): construction-time configuration check (documented
        // panic); rings are built at connection setup, never per packet.
        assert!(capacity > 0, "ring capacity must be positive");
        ByteRing {
            buf: vec![0u8; capacity].into_boxed_slice(),
            start: 0,
            end: 0,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Committed bytes currently stored (`end - start`).
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// True when no committed bytes are stored.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Free space after the committed region.
    pub fn free(&self) -> usize {
        self.capacity() - self.len()
    }

    /// Absolute offset of the oldest committed byte.
    pub fn start_offset(&self) -> u64 {
        self.start
    }

    /// Absolute offset one past the newest committed byte.
    pub fn end_offset(&self) -> u64 {
        self.end
    }

    fn slot(&self, pos: u64) -> usize {
        (pos % self.buf.len() as u64) as usize
    }

    fn copy_in(&mut self, pos: u64, data: &[u8]) {
        let cap = self.buf.len();
        let s = self.slot(pos);
        let first = (cap - s).min(data.len());
        self.buf[s..s + first].copy_from_slice(&data[..first]);
        if first < data.len() {
            self.buf[..data.len() - first].copy_from_slice(&data[first..]);
        }
    }

    /// Appends committed data at `end`, failing (without partial writes)
    /// if it does not fit.
    pub fn append(&mut self, data: &[u8]) -> Result<(), RingError> {
        if data.len() > self.free() {
            return Err(RingError::Full);
        }
        self.copy_in(self.end, data);
        self.end += data.len() as u64;
        Ok(())
    }

    /// Appends as much of `data` as fits, returning the byte count written.
    pub fn append_partial(&mut self, data: &[u8]) -> usize {
        let n = data.len().min(self.free());
        self.copy_in(self.end, &data[..n]);
        self.end += n as u64;
        n
    }

    /// Writes `data` at absolute offset `pos`, which may lie beyond `end`
    /// (out-of-order staging) but must fit within `start + capacity`.
    /// Does not move `end`.
    pub fn write_at(&mut self, pos: u64, data: &[u8]) -> Result<(), RingError> {
        if pos < self.start || pos + data.len() as u64 > self.start + self.capacity() as u64 {
            return Err(RingError::OutOfRange);
        }
        self.copy_in(pos, data);
        Ok(())
    }

    /// Commits `n` bytes past `end` (e.g. after an out-of-order interval
    /// has been filled in).
    pub fn advance_end(&mut self, n: u64) -> Result<(), RingError> {
        if self.len() + n as usize > self.capacity() {
            return Err(RingError::Full);
        }
        self.end += n;
        Ok(())
    }

    /// Copies `dst.len()` bytes starting at absolute offset `pos` out of
    /// the committed region into `dst`, without allocating. This is the
    /// packet-path read: the fast path fills a pooled payload buffer
    /// straight from the ring.
    pub fn read_into(&self, pos: u64, dst: &mut [u8]) -> Result<(), RingError> {
        let len = dst.len();
        if pos < self.start || pos + len as u64 > self.end {
            return Err(RingError::OutOfRange);
        }
        let cap = self.buf.len();
        let s = self.slot(pos);
        let first = (cap - s).min(len);
        dst[..first].copy_from_slice(&self.buf[s..s + first]);
        if first < len {
            dst[first..].copy_from_slice(&self.buf[..len - first]);
        }
        Ok(())
    }

    /// Copies `len` bytes starting at absolute offset `pos` out of the
    /// committed region into a fresh `Vec` (harness/app-edge convenience;
    /// packet-path readers use [`Self::read_into`]).
    pub fn copy_out(&mut self, pos: u64, len: usize) -> Result<Vec<u8>, RingError> {
        let mut out = vec![0u8; len];
        self.read_into(pos, &mut out)?;
        Ok(out)
    }

    /// Reads and consumes up to `max` bytes from the front of the committed
    /// region (the application's `recv()` path).
    pub fn pop(&mut self, max: usize) -> Vec<u8> {
        let n = max.min(self.len());
        let Ok(out) = self.copy_out(self.start, n) else {
            debug_assert!(false, "front of committed region is always valid");
            return Vec::new();
        };
        self.start += n as u64;
        out
    }

    /// Frees `n` bytes from the front (TX-side: acknowledged data).
    pub fn consume(&mut self, n: u64) -> Result<(), RingError> {
        if n as usize > self.len() {
            return Err(RingError::OutOfRange);
        }
        self.start += n;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_read_consume_cycle() {
        let mut r = ByteRing::new(16);
        r.append(b"hello").unwrap();
        assert_eq!(r.len(), 5);
        assert_eq!(r.free(), 11);
        assert_eq!(r.copy_out(0, 5).unwrap(), b"hello");
        r.consume(2).unwrap();
        assert_eq!(r.copy_out(2, 3).unwrap(), b"llo");
        assert_eq!(r.copy_out(1, 2), Err(RingError::OutOfRange));
    }

    #[test]
    fn wraps_around_capacity() {
        let mut r = ByteRing::new(8);
        r.append(b"abcdef").unwrap();
        r.consume(6).unwrap();
        // Next append wraps around the physical end.
        r.append(b"ghijkl").unwrap();
        assert_eq!(r.copy_out(6, 6).unwrap(), b"ghijkl");
    }

    #[test]
    fn append_full_is_atomic() {
        let mut r = ByteRing::new(4);
        r.append(b"abc").unwrap();
        assert_eq!(r.append(b"de"), Err(RingError::Full));
        assert_eq!(r.len(), 3);
        r.append(b"d").unwrap();
        assert_eq!(r.free(), 0);
    }

    #[test]
    fn append_partial_fills_exactly() {
        let mut r = ByteRing::new(4);
        assert_eq!(r.append_partial(b"abcdef"), 4);
        assert_eq!(r.copy_out(0, 4).unwrap(), b"abcd");
        assert_eq!(r.append_partial(b"x"), 0);
    }

    #[test]
    fn out_of_order_staging_then_commit() {
        // Model TAS's RX out-of-order interval: bytes 5..8 arrive before
        // 0..5; the ring stages them, then the gap fills and both commit.
        let mut r = ByteRing::new(16);
        r.write_at(5, b"XYZ").unwrap();
        assert_eq!(r.len(), 0, "staged data is not committed");
        r.append(b"abcde").unwrap();
        r.advance_end(3).unwrap();
        assert_eq!(r.copy_out(0, 8).unwrap(), b"abcdeXYZ");
    }

    #[test]
    fn write_at_bounds_checked() {
        let mut r = ByteRing::new(8);
        r.append(b"ab").unwrap();
        r.consume(2).unwrap();
        // Window is now [2, 10).
        assert_eq!(r.write_at(1, b"z"), Err(RingError::OutOfRange));
        assert_eq!(r.write_at(9, b"zz"), Err(RingError::OutOfRange));
        r.write_at(9, b"z").unwrap();
    }

    #[test]
    fn pop_limits_to_available() {
        let mut r = ByteRing::new(8);
        r.append(b"abc").unwrap();
        assert_eq!(r.pop(10), b"abc");
        assert!(r.pop(10).is_empty());
    }

    #[test]
    fn advance_end_respects_capacity() {
        let mut r = ByteRing::new(4);
        r.append(b"abc").unwrap();
        assert_eq!(r.advance_end(2), Err(RingError::Full));
        r.advance_end(1).unwrap();
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn long_stream_offsets_stay_consistent() {
        // Push/pop far past several wrap points; offsets are absolute.
        let mut r = ByteRing::new(7);
        let mut next = 0u64;
        for round in 0..100u64 {
            let chunk: Vec<u8> = (0..5).map(|i| ((round * 5 + i) % 251) as u8).collect();
            r.append(&chunk).unwrap();
            let got = r.pop(5);
            for (i, b) in got.iter().enumerate() {
                assert_eq!(*b, ((next + i as u64) % 251) as u8);
            }
            next += 5;
        }
        assert_eq!(r.start_offset(), 500);
        assert_eq!(r.end_offset(), 500);
    }
}
