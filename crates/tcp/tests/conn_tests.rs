//! End-to-end tests of the TCP engine over an in-memory wire with
//! configurable latency and programmable drops.

use std::net::Ipv4Addr;
use tas_proto::{Ecn, MacAddr, Segment, TcpFlags};
use tas_sim::SimTime;
use tas_tcp::{CcKind, TcpConfig, TcpConn, TcpEvent, TcpState};

/// Drop/mutate filter: (segment, to_b, delivery index) -> drop?
type DropFilter = Box<dyn FnMut(&mut Segment, bool, u64) -> bool>;

fn ep(n: u32, port: u16) -> tas_tcp::conn::EndpointInfo {
    tas_tcp::conn::EndpointInfo {
        ip: Ipv4Addr::new(10, 0, 0, n as u8),
        port,
        mac: MacAddr::for_host(n),
    }
}

/// A two-endpoint wire: delivers staged segments with one-way `delay`,
/// optionally dropping or mutating them, and fires connection timers.
struct Wire {
    a: TcpConn,
    b: TcpConn,
    now: SimTime,
    delay: SimTime,
    /// In-flight: (deliver_at, to_b, segment).
    flight: Vec<(SimTime, bool, Segment)>,
    /// Returns true to drop; may mutate (e.g. set CE). Args: (segment,
    /// to_b, index of this segment since start).
    filter: DropFilter,
    seg_counter: u64,
    events_a: Vec<TcpEvent>,
    events_b: Vec<TcpEvent>,
}

impl Wire {
    fn connect_pair(cfg_a: TcpConfig, cfg_b: TcpConfig) -> Wire {
        let ea = ep(1, 4000);
        let eb = ep(2, 80);
        let now = SimTime::from_us(10);
        let delay = SimTime::from_us(25);
        let mut a = TcpConn::connect(now, cfg_a, ea, eb, 1_000_000);
        // Deliver the SYN to the listener by constructing the acceptor
        // directly from it (the listener-side demux is a host concern).
        let syns = a.take_outgoing();
        assert_eq!(syns.len(), 1);
        assert!(syns[0].tcp.flags.contains(TcpFlags::SYN));
        let b = TcpConn::accept(now + delay, cfg_b, eb, ea, &syns[0], 2_000_000);
        Wire {
            a,
            b,
            now: now + delay,
            delay,
            flight: Vec::new(),
            filter: Box::new(|_, _, _| false),
            seg_counter: 0,
            events_a: Vec::new(),
            events_b: Vec::new(),
        }
    }

    fn collect(&mut self, from_a_only: bool) {
        let delay = self.delay;
        for (is_a, conn) in [(true, &mut self.a), (false, &mut self.b)] {
            if from_a_only && !is_a {
                continue;
            }
            if conn.has_outgoing() {
                for seg in conn.take_outgoing() {
                    // Segments staged by `a` travel to `b` and vice versa.
                    self.flight.push((self.now + delay, is_a, seg));
                }
            }
        }
    }

    /// Runs until both sides are quiescent or `deadline` passes.
    fn pump_until(&mut self, deadline: SimTime) {
        loop {
            self.collect(false);
            // Earliest of: in-flight delivery, a timer.
            let next_flight = self.flight.iter().map(|f| f.0).min();
            let next_timer = [self.a.next_timer(), self.b.next_timer()]
                .into_iter()
                .flatten()
                .min();
            let next = match (next_flight, next_timer) {
                (Some(f), Some(t)) => f.min(t),
                (Some(f), None) => f,
                (None, Some(t)) => t,
                (None, None) => break,
            };
            if next > deadline {
                break;
            }
            self.now = self.now.max(next);
            // Deliver all due segments (stable order).
            let mut due: Vec<(SimTime, bool, Segment)> = Vec::new();
            let mut i = 0;
            while i < self.flight.len() {
                if self.flight[i].0 <= self.now {
                    due.push(self.flight.remove(i));
                } else {
                    i += 1;
                }
            }
            due.sort_by_key(|d| d.0);
            for (_, to_b, mut seg) in due {
                let idx = self.seg_counter;
                self.seg_counter += 1;
                if (self.filter)(&mut seg, to_b, idx) {
                    continue;
                }
                if to_b {
                    self.b.on_segment(self.now, seg);
                } else {
                    self.a.on_segment(self.now, seg);
                }
            }
            // Fire due timers.
            if let Some(t) = self.a.next_timer() {
                if t <= self.now {
                    self.a.on_timer(self.now);
                    self.a.poll(self.now);
                }
            }
            if let Some(t) = self.b.next_timer() {
                if t <= self.now {
                    self.b.on_timer(self.now);
                    self.b.poll(self.now);
                }
            }
            self.events_a.extend(self.a.take_events());
            self.events_b.extend(self.b.take_events());
        }
        self.events_a.extend(self.a.take_events());
        self.events_b.extend(self.b.take_events());
    }

    fn pump(&mut self) {
        // One slice covers the largest RTO; persist/probe timers mean a
        // connection with pending data is never fully quiescent, so pump
        // in bounded slices rather than to silence.
        let deadline = self.now + SimTime::from_secs(1);
        self.pump_until(deadline);
    }
}

fn established_pair() -> Wire {
    let mut w = Wire::connect_pair(TcpConfig::default(), TcpConfig::default());
    w.pump();
    assert_eq!(w.a.state(), TcpState::Established);
    assert_eq!(w.b.state(), TcpState::Established);
    w
}

#[test]
fn handshake_establishes_and_negotiates_ecn() {
    let mut w = Wire::connect_pair(TcpConfig::default(), TcpConfig::default());
    w.pump();
    assert_eq!(w.a.state(), TcpState::Established);
    assert_eq!(w.b.state(), TcpState::Established);
    assert!(w.a.ecn_active(), "client negotiated ECN");
    assert!(w.b.ecn_active(), "server negotiated ECN");
    assert!(w.events_a.contains(&TcpEvent::Connected));
    assert!(w.events_b.contains(&TcpEvent::Connected));
    // Handshake RTT sample (2 * 25us wire delay).
    let srtt = w.a.srtt().expect("rtt measured");
    assert!(
        srtt >= SimTime::from_us(40) && srtt <= SimTime::from_us(80),
        "srtt {srtt}"
    );
}

#[test]
fn ecn_not_negotiated_when_one_side_disables() {
    let cfg_off = TcpConfig {
        ecn: false,
        ..TcpConfig::default()
    };
    let mut w = Wire::connect_pair(TcpConfig::default(), cfg_off);
    w.pump();
    assert!(!w.a.ecn_active());
    assert!(!w.b.ecn_active());
}

#[test]
fn bulk_transfer_delivers_bytes_intact() {
    let mut w = established_pair();
    let data: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
    let mut sent = 0;
    let mut received = Vec::new();
    while received.len() < data.len() {
        if sent < data.len() {
            sent += w.a.send(&data[sent..]);
            w.a.poll(w.now);
        }
        w.pump();
        received.extend(w.b.recv(usize::MAX));
        w.b.poll(w.now);
        assert!(w.now < SimTime::from_secs(30), "transfer stalled");
    }
    assert_eq!(received, data);
    assert_eq!(w.a.stats.retransmits, 0, "lossless wire: no retransmits");
}

#[test]
fn bidirectional_transfer() {
    let mut w = established_pair();
    let da: Vec<u8> = vec![0xaa; 50_000];
    let db: Vec<u8> = vec![0xbb; 50_000];
    let (mut sa, mut sb) = (0, 0);
    let (mut ra, mut rb) = (Vec::new(), Vec::new());
    while ra.len() < db.len() || rb.len() < da.len() {
        if sa < da.len() {
            sa += w.a.send(&da[sa..]);
            w.a.poll(w.now);
        }
        if sb < db.len() {
            sb += w.b.send(&db[sb..]);
            w.b.poll(w.now);
        }
        w.pump();
        ra.extend(w.a.recv(usize::MAX));
        rb.extend(w.b.recv(usize::MAX));
        w.a.poll(w.now);
        w.b.poll(w.now);
        assert!(w.now < SimTime::from_secs(30), "transfer stalled");
    }
    assert!(ra.iter().all(|&b| b == 0xbb));
    assert!(rb.iter().all(|&b| b == 0xaa));
}

#[test]
fn single_drop_recovers_via_fast_retransmit() {
    let mut w = established_pair();
    // Drop the 5th data segment toward b, once.
    let mut dropped = false;
    w.filter = Box::new(move |seg, to_b, _| {
        if to_b && !seg.payload.is_empty() && seg.tcp.seq >= 1_000_001 + 4 * 1448 && !dropped {
            dropped = true;
            return true;
        }
        false
    });
    let data: Vec<u8> = (0..100_000u32).map(|i| (i % 127) as u8).collect();
    let mut sent = 0;
    let mut received = Vec::new();
    while received.len() < data.len() {
        if sent < data.len() {
            sent += w.a.send(&data[sent..]);
            w.a.poll(w.now);
        }
        w.pump();
        received.extend(w.b.recv(usize::MAX));
        w.b.poll(w.now);
        assert!(w.now < SimTime::from_secs(30), "recovery stalled");
    }
    assert_eq!(received, data);
    assert!(
        w.a.stats.fast_retransmits >= 1,
        "expected fast retransmit, stats: {:?}",
        w.a.stats
    );
    assert_eq!(w.a.stats.timeouts, 0, "should recover without RTO");
}

#[test]
fn heavy_loss_still_completes_with_timeouts() {
    let mut w = established_pair();
    // Pseudorandomly drop ~8% of data segments toward b (deterministic in
    // the delivery index, but not phase-locked to the window).
    w.filter = Box::new(|seg, to_b, idx| {
        to_b && !seg.payload.is_empty() && (idx.wrapping_mul(2_654_435_761) >> 16) % 100 < 8
    });
    let data: Vec<u8> = (0..60_000u32).map(|i| (i % 101) as u8).collect();
    let mut sent = 0;
    let mut received = Vec::new();
    while received.len() < data.len() {
        if sent < data.len() {
            sent += w.a.send(&data[sent..]);
            w.a.poll(w.now);
        }
        w.pump();
        received.extend(w.b.recv(usize::MAX));
        w.b.poll(w.now);
        assert!(w.now < SimTime::from_secs(60), "lossy transfer stalled");
    }
    assert_eq!(received, data);
    assert!(w.a.stats.retransmits > 0);
}

#[test]
fn go_back_n_retransmits_more_than_sack_style() {
    // Compares total segments on the wire: go-back-N re-sends data the
    // receiver discarded (counted as fresh sends), so wasted bandwidth is
    // what distinguishes the modes.
    let run = |keep_ooo: bool| -> u64 {
        let cfg = TcpConfig {
            keep_ooo,
            ..TcpConfig::default()
        };
        let mut w = Wire::connect_pair(cfg.clone(), cfg);
        w.pump();
        // Pseudorandomly drop ~3% of to-b data segments (hash-based, so
        // the pattern cannot phase-lock with retransmission cycles).
        let mut data_idx = 0u64;
        w.filter = Box::new(move |seg, to_b, _| {
            if to_b && !seg.payload.is_empty() {
                data_idx += 1;
                return (data_idx.wrapping_mul(2_654_435_761) >> 16) % 1000 < 30;
            }
            false
        });
        let data: Vec<u8> = vec![7; 300_000];
        let mut sent = 0;
        let mut got = 0;
        while got < data.len() {
            if sent < data.len() {
                sent += w.a.send(&data[sent..]);
                w.a.poll(w.now);
            }
            w.pump();
            got += w.b.recv(usize::MAX).len();
            w.b.poll(w.now);
            assert!(
                w.now < SimTime::from_secs(60),
                "stalled (keep_ooo={keep_ooo})"
            );
        }
        w.a.stats.segs_out
    };
    let with_sack = run(true);
    let gbn = run(false);
    assert!(
        gbn > with_sack,
        "go-back-N ({gbn} segs) must send more than SACK-style ({with_sack} segs)"
    );
}

#[test]
fn flow_control_blocks_and_window_update_unblocks() {
    let cfg_small = TcpConfig {
        recv_buf: 8 * 1024,
        ..TcpConfig::default()
    };
    let mut w = Wire::connect_pair(TcpConfig::default(), cfg_small);
    w.pump();
    let data = vec![9u8; 64 * 1024];
    let mut sent = w.a.send(&data);
    w.a.poll(w.now);
    w.pump();
    // Receiver app hasn't read: at most ~recv_buf delivered.
    assert!(w.b.readable() <= 8 * 1024);
    let in_flight_stalled = w.a.in_flight();
    assert!(in_flight_stalled <= 9 * 1024, "sender must respect rwnd");
    // Now the app reads everything repeatedly; transfer completes.
    let mut received = Vec::new();
    while received.len() < data.len() {
        received.extend(w.b.recv(usize::MAX));
        w.b.poll(w.now);
        if sent < data.len() {
            sent += w.a.send(&data[sent..]);
            w.a.poll(w.now);
        }
        w.pump();
        assert!(w.now < SimTime::from_secs(30), "window update lost");
    }
    assert_eq!(received.len(), data.len());
}

/// Runs a two-stage transfer: grow the window on a clean wire, then
/// transfer again with every to-b data segment CE-marked. Returns (cwnd
/// after stage 1, cwnd after stage 2, sender stats).
fn marked_transfer(cc: CcKind) -> (u32, u32, tas_tcp::ConnStats) {
    let cfg = TcpConfig {
        cc,
        ..TcpConfig::default()
    };
    let mut w = Wire::connect_pair(cfg.clone(), cfg);
    w.pump();
    let stage1: Vec<u8> = vec![1; 100_000];
    let mut sent = 0;
    let mut got = 0;
    while got < stage1.len() {
        if sent < stage1.len() {
            sent += w.a.send(&stage1[sent..]);
            w.a.poll(w.now);
        }
        w.pump();
        got += w.b.recv(usize::MAX).len();
        w.b.poll(w.now);
    }
    let grown = w.a.cwnd();
    assert!(
        grown > 10 * 1448,
        "slow start should grow cwnd, got {grown}"
    );
    // Stage 2: mark every to-b data segment CE (a saturated ECN switch).
    w.filter = Box::new(|seg, to_b, _| {
        if to_b && !seg.payload.is_empty() && seg.ip.ecn == Ecn::Ect0 {
            seg.ip.ecn = Ecn::Ce;
        }
        false
    });
    let stage2: Vec<u8> = vec![2; 300_000];
    sent = 0;
    got = 0;
    while got < stage2.len() {
        if sent < stage2.len() {
            sent += w.a.send(&stage2[sent..]);
            w.a.poll(w.now);
        }
        w.pump();
        got += w.b.recv(usize::MAX).len();
        w.b.poll(w.now);
        assert!(w.now < SimTime::from_secs(30));
    }
    (grown, w.a.cwnd(), w.a.stats)
}

#[test]
fn ce_marks_echoed_and_dctcp_backs_off() {
    let (grown, final_cwnd, stats) = marked_transfer(CcKind::Dctcp);
    assert!(stats.ece_in > 0, "ECE must be echoed: {stats:?}");
    assert!(
        final_cwnd < grown,
        "DCTCP must back off under persistent marking: {final_cwnd} vs {grown}"
    );
}

#[test]
fn graceful_close_both_directions() {
    let mut w = established_pair();
    w.a.send(b"last words");
    w.a.poll(w.now);
    w.a.close();
    w.a.poll(w.now);
    w.pump();
    assert_eq!(w.b.recv(usize::MAX), b"last words");
    assert!(w.events_b.contains(&TcpEvent::PeerFin));
    assert_eq!(w.b.state(), TcpState::CloseWait);
    assert_eq!(w.a.state(), TcpState::FinWait2);
    w.b.close();
    w.b.poll(w.now);
    w.pump();
    assert_eq!(w.b.state(), TcpState::Closed);
    // a passes through TIME_WAIT and then closes.
    assert!(matches!(w.a.state(), TcpState::TimeWait | TcpState::Closed));
    w.pump_until(w.now + SimTime::from_ms(10));
    assert_eq!(w.a.state(), TcpState::Closed);
    assert!(w.events_a.contains(&TcpEvent::Closed));
}

#[test]
fn simultaneous_close() {
    let mut w = established_pair();
    w.a.close();
    w.b.close();
    w.a.poll(w.now);
    w.b.poll(w.now);
    w.pump();
    w.pump_until(w.now + SimTime::from_ms(10));
    assert_eq!(w.a.state(), TcpState::Closed);
    assert_eq!(w.b.state(), TcpState::Closed);
}

#[test]
fn abort_resets_peer() {
    let mut w = established_pair();
    w.a.abort(w.now);
    w.pump();
    assert_eq!(w.a.state(), TcpState::Closed);
    assert_eq!(w.b.state(), TcpState::Closed);
    assert!(w.events_b.contains(&TcpEvent::Reset));
}

#[test]
fn lost_fin_is_retransmitted() {
    let mut w = established_pair();
    // Drop the first FIN toward b.
    let mut dropped = false;
    w.filter = Box::new(move |seg, to_b, _| {
        if to_b && seg.tcp.flags.contains(TcpFlags::FIN) && !dropped {
            dropped = true;
            return true;
        }
        false
    });
    w.a.close();
    w.a.poll(w.now);
    w.pump();
    assert!(
        w.events_b.contains(&TcpEvent::PeerFin),
        "FIN must arrive after retransmit"
    );
    assert!(w.a.stats.retransmits >= 1);
}

#[test]
fn newreno_reduces_on_ece() {
    let (grown, final_cwnd, stats) = marked_transfer(CcKind::NewReno);
    assert!(stats.ece_in > 0, "ECE must be echoed: {stats:?}");
    assert!(
        final_cwnd < grown,
        "NewReno must reduce after ECE: {final_cwnd} vs {grown}"
    );
}
