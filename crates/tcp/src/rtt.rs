//! RTT estimation and RTO computation (Jacobson/Karels, RFC 6298).

use tas_sim::SimTime;

/// Smoothed RTT estimator producing retransmission timeouts.
///
/// # Examples
///
/// ```
/// use tas_tcp::RttEstimator;
/// use tas_sim::SimTime;
/// let mut est = RttEstimator::new(SimTime::from_ms(10), SimTime::from_secs(1));
/// est.update(SimTime::from_us(100));
/// assert_eq!(est.srtt(), Some(SimTime::from_us(100)));
/// assert!(est.rto() >= SimTime::from_ms(10));
/// ```
#[derive(Clone, Debug)]
pub struct RttEstimator {
    srtt: Option<SimTime>,
    rttvar: SimTime,
    rto: SimTime,
    rto_min: SimTime,
    rto_max: SimTime,
    backoff: u32,
}

impl RttEstimator {
    /// Creates an estimator with the given RTO clamp. Before any sample,
    /// the RTO is `rto_max.min(1s)`-style conservative: we use `rto_min * 100`
    /// clamped to the bounds (datacenter configs set `rto_min` in the
    /// hundreds of microseconds to milliseconds).
    pub fn new(rto_min: SimTime, rto_max: SimTime) -> Self {
        let initial = (rto_min * 100).min(rto_max).max(rto_min);
        RttEstimator {
            srtt: None,
            rttvar: SimTime::ZERO,
            rto: initial,
            rto_min,
            rto_max,
            backoff: 0,
        }
    }

    /// Feeds one RTT sample.
    pub fn update(&mut self, sample: SimTime) {
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = sample / 2;
            }
            Some(srtt) => {
                // RFC 6298: rttvar = 3/4 rttvar + 1/4 |srtt - sample|;
                // srtt = 7/8 srtt + 1/8 sample.
                let delta = if srtt > sample {
                    srtt - sample
                } else {
                    sample - srtt
                };
                self.rttvar = SimTime::from_ps((self.rttvar.as_ps() * 3 + delta.as_ps()) / 4);
                self.srtt = Some(SimTime::from_ps((srtt.as_ps() * 7 + sample.as_ps()) / 8));
            }
        }
        // Both match arms above set `srtt`; the fallback keeps the RTO
        // computation sane even if that ever changes.
        let srtt = self.srtt.unwrap_or(sample);
        let candidate = srtt + (self.rttvar * 4).max(SimTime::from_us(1));
        self.rto = candidate.clamp_rto(self.rto_min, self.rto_max);
        self.backoff = 0;
    }

    /// Current smoothed RTT, if any sample has been seen.
    pub fn srtt(&self) -> Option<SimTime> {
        self.srtt
    }

    /// Current RTO including backoff.
    pub fn rto(&self) -> SimTime {
        let mut r = self.rto;
        for _ in 0..self.backoff.min(10) {
            r = (r * 2).min(self.rto_max);
        }
        r
    }

    /// Doubles the RTO (called on retransmission timeout).
    pub fn backoff(&mut self) {
        self.backoff += 1;
    }
}

trait ClampRto {
    fn clamp_rto(self, lo: SimTime, hi: SimTime) -> SimTime;
}

impl ClampRto for SimTime {
    fn clamp_rto(self, lo: SimTime, hi: SimTime) -> SimTime {
        self.max(lo).min(hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initializes() {
        let mut e = RttEstimator::new(SimTime::from_ms(1), SimTime::from_secs(4));
        e.update(SimTime::from_us(200));
        assert_eq!(e.srtt(), Some(SimTime::from_us(200)));
        // RTO = srtt + 4*rttvar = 200 + 400 = 600us, clamped up to 1ms.
        assert_eq!(e.rto(), SimTime::from_ms(1));
    }

    #[test]
    fn smoothing_converges() {
        let mut e = RttEstimator::new(SimTime::from_us(10), SimTime::from_secs(4));
        for _ in 0..100 {
            e.update(SimTime::from_us(150));
        }
        let srtt = e.srtt().unwrap();
        assert!(
            (srtt.as_micros_f64() - 150.0).abs() < 1.0,
            "srtt {srtt} should converge to 150us"
        );
        // Variance decays, so RTO approaches srtt (clamped by min).
        assert!(e.rto() < SimTime::from_us(200));
    }

    #[test]
    fn variance_widens_rto() {
        let mut e = RttEstimator::new(SimTime::from_us(10), SimTime::from_secs(4));
        for i in 0..50 {
            let s = if i % 2 == 0 { 100 } else { 500 };
            e.update(SimTime::from_us(s));
        }
        assert!(
            e.rto() > SimTime::from_us(500),
            "rto {} must exceed max sample",
            e.rto()
        );
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut e = RttEstimator::new(SimTime::from_ms(1), SimTime::from_ms(100));
        e.update(SimTime::from_us(100));
        let base = e.rto();
        e.backoff();
        assert_eq!(e.rto(), base * 2);
        for _ in 0..20 {
            e.backoff();
        }
        assert_eq!(e.rto(), SimTime::from_ms(100), "capped at rto_max");
        // A fresh sample resets backoff.
        e.update(SimTime::from_us(100));
        assert_eq!(e.rto(), base);
    }
}
