//! Congestion-control façade for the reference TCP engine.
//!
//! The algorithms themselves live in the shared `tas-cc` crate — one
//! source of truth consumed by both this per-connection engine (window
//! facet) and the TAS slow path (rate facet). This module re-exports the
//! shared surface under the names the engine and its callers have always
//! used; `CongestionControl` is the historical local name for
//! [`tas_cc::CongCtrl`].

pub use tas_cc::CongCtrl as CongestionControl;
pub use tas_cc::{make_cc, AckInfo, CcKind, Dctcp, NewReno, Timely};
