//! Pluggable congestion control: NewReno and window-based DCTCP.
//!
//! These are the *window-based* algorithms run by the baseline stacks and
//! by the "DCTCP" / "TCP" lines of Figures 11–13. TAS's own *rate-based*
//! DCTCP (the paper's contribution, enforced by the fast path and computed
//! by the slow path) lives in the `tas` crate.

use tas_sim::SimTime;

/// Which congestion-control algorithm a connection runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CcKind {
    /// Loss-based NewReno (the "TCP" lines in the paper's figures).
    NewReno,
    /// Window-based DCTCP (ECN-proportional backoff).
    Dctcp,
}

/// Feedback for one ACK arrival.
#[derive(Clone, Copy, Debug)]
pub struct AckInfo {
    /// Newly acknowledged bytes.
    pub acked: u32,
    /// The ACK carried an ECN echo.
    pub ece: bool,
    /// Arrival time.
    pub now: SimTime,
    /// RTT estimate at this point, if known.
    pub srtt: Option<SimTime>,
}

/// A congestion-control algorithm producing a congestion window in bytes.
pub trait CongestionControl: std::fmt::Debug {
    /// Processes one (possibly ECN-echoing) ACK.
    fn on_ack(&mut self, info: AckInfo);
    /// Reacts to a retransmission timeout.
    fn on_timeout(&mut self);
    /// Reacts to entering fast recovery (triple duplicate ACK).
    fn on_fast_retransmit(&mut self);
    /// Current congestion window in bytes.
    fn cwnd(&self) -> u32;
    /// Slow-start threshold in bytes (for inspection/tests).
    fn ssthresh(&self) -> u32;
    /// Algorithm name for experiment output.
    fn name(&self) -> &'static str;
}

/// Creates the algorithm for `kind` with the given MSS.
pub fn make_cc(kind: CcKind, mss: u32) -> Box<dyn CongestionControl> {
    match kind {
        CcKind::NewReno => Box::new(NewReno::new(mss)),
        CcKind::Dctcp => Box::new(Dctcp::new(mss)),
    }
}

/// Classic NewReno: slow start, congestion avoidance, multiplicative
/// decrease on loss; RFC 3168 response to ECE (treat as loss, once per
/// window — the window-limiting is handled by the caller latching ECE).
#[derive(Debug)]
pub struct NewReno {
    mss: u32,
    cwnd: u32,
    ssthresh: u32,
    acked_accum: u32,
}

/// Initial window: 10 segments (RFC 6928, what Linux uses).
const INIT_WINDOW_SEGS: u32 = 10;

impl NewReno {
    /// Creates NewReno state with the standard initial window.
    pub fn new(mss: u32) -> Self {
        NewReno {
            mss,
            cwnd: INIT_WINDOW_SEGS * mss,
            ssthresh: u32::MAX,
            acked_accum: 0,
        }
    }

    fn halve(&mut self) {
        self.ssthresh = (self.cwnd / 2).max(2 * self.mss);
        self.cwnd = self.ssthresh;
    }
}

impl CongestionControl for NewReno {
    fn on_ack(&mut self, info: AckInfo) {
        if info.ece {
            // RFC 3168: same response as packet loss.
            self.halve();
            return;
        }
        if self.cwnd < self.ssthresh {
            // Slow start: one MSS per acked MSS.
            self.cwnd = self.cwnd.saturating_add(info.acked.min(self.mss));
        } else {
            // Congestion avoidance: one MSS per window.
            self.acked_accum += info.acked;
            if self.acked_accum >= self.cwnd {
                self.acked_accum -= self.cwnd;
                self.cwnd = self.cwnd.saturating_add(self.mss);
            }
        }
    }

    fn on_timeout(&mut self) {
        self.ssthresh = (self.cwnd / 2).max(2 * self.mss);
        self.cwnd = self.mss;
    }

    fn on_fast_retransmit(&mut self) {
        self.halve();
    }

    fn cwnd(&self) -> u32 {
        self.cwnd
    }

    fn ssthresh(&self) -> u32 {
        self.ssthresh
    }

    fn name(&self) -> &'static str {
        "newreno"
    }
}

/// Window-based DCTCP (Alizadeh et al., SIGCOMM 2010).
///
/// Tracks the fraction `F` of ECN-marked bytes per observation window
/// (~1 RTT), smooths it into `alpha`, and on marks reduces the window by
/// `alpha/2` — gentle under mild congestion, as aggressive as NewReno when
/// everything is marked. Slow start is unchanged.
#[derive(Debug)]
pub struct Dctcp {
    mss: u32,
    cwnd: u32,
    ssthresh: u32,
    acked_accum: u32,
    /// EWMA of the marked fraction.
    alpha: f64,
    /// Smoothing gain `g`.
    gain: f64,
    bytes_acked_win: u64,
    bytes_marked_win: u64,
    window_end: Option<SimTime>,
    reduced_this_window: bool,
}

impl Dctcp {
    /// Creates DCTCP state with the standard `g = 1/16`.
    pub fn new(mss: u32) -> Self {
        Dctcp {
            mss,
            cwnd: INIT_WINDOW_SEGS * mss,
            ssthresh: u32::MAX,
            acked_accum: 0,
            alpha: 1.0, // Conservative start, per the DCTCP paper.
            gain: 1.0 / 16.0,
            bytes_acked_win: 0,
            bytes_marked_win: 0,
            window_end: None,
            reduced_this_window: false,
        }
    }

    /// Current smoothed mark fraction (for tests and experiment output).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    fn roll_window(&mut self, info: &AckInfo) {
        let rtt = info.srtt.unwrap_or(SimTime::from_us(100));
        match self.window_end {
            Some(end) if info.now < end => {}
            _ => {
                if self.bytes_acked_win > 0 {
                    let f = self.bytes_marked_win as f64 / self.bytes_acked_win as f64;
                    self.alpha = (1.0 - self.gain) * self.alpha + self.gain * f;
                }
                self.bytes_acked_win = 0;
                self.bytes_marked_win = 0;
                self.window_end = Some(info.now + rtt);
                self.reduced_this_window = false;
            }
        }
    }
}

impl CongestionControl for Dctcp {
    fn on_ack(&mut self, info: AckInfo) {
        self.roll_window(&info);
        self.bytes_acked_win += info.acked as u64;
        if info.ece {
            self.bytes_marked_win += info.acked as u64;
            // Leave slow start on first congestion signal.
            if self.cwnd < self.ssthresh {
                self.ssthresh = self.cwnd;
            }
            if !self.reduced_this_window {
                self.reduced_this_window = true;
                let reduce = (self.cwnd as f64 * self.alpha / 2.0) as u32;
                self.cwnd = self.cwnd.saturating_sub(reduce).max(2 * self.mss);
                self.ssthresh = self.cwnd;
                return;
            }
        }
        if self.cwnd < self.ssthresh {
            self.cwnd = self.cwnd.saturating_add(info.acked.min(self.mss));
        } else {
            self.acked_accum += info.acked;
            if self.acked_accum >= self.cwnd {
                self.acked_accum -= self.cwnd;
                self.cwnd = self.cwnd.saturating_add(self.mss);
            }
        }
    }

    fn on_timeout(&mut self) {
        self.ssthresh = (self.cwnd / 2).max(2 * self.mss);
        self.cwnd = self.mss;
    }

    fn on_fast_retransmit(&mut self) {
        self.ssthresh = (self.cwnd / 2).max(2 * self.mss);
        self.cwnd = self.ssthresh;
    }

    fn cwnd(&self) -> u32 {
        self.cwnd
    }

    fn ssthresh(&self) -> u32 {
        self.ssthresh
    }

    fn name(&self) -> &'static str {
        "dctcp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u32 = 1448;

    fn ack(acked: u32, ece: bool, t_us: u64) -> AckInfo {
        AckInfo {
            acked,
            ece,
            now: SimTime::from_us(t_us),
            srtt: Some(SimTime::from_us(100)),
        }
    }

    #[test]
    fn newreno_slow_start_doubles_per_rtt() {
        let mut cc = NewReno::new(MSS);
        let start = cc.cwnd();
        // Ack a full window: cwnd should double in slow start.
        let mut acked = 0;
        while acked < start {
            cc.on_ack(ack(MSS, false, 1));
            acked += MSS;
        }
        assert!(
            cc.cwnd() >= 2 * start - MSS,
            "cwnd {} vs {}",
            cc.cwnd(),
            start
        );
    }

    #[test]
    fn newreno_congestion_avoidance_linear() {
        let mut cc = NewReno::new(MSS);
        cc.on_timeout();
        // ssthresh is now low; grow past it into CA.
        while cc.cwnd() < cc.ssthresh() {
            cc.on_ack(ack(MSS, false, 1));
        }
        let w = cc.cwnd();
        // One full window of ACKs adds exactly one MSS.
        let mut acked = 0;
        while acked < w {
            cc.on_ack(ack(MSS, false, 2));
            acked += MSS;
        }
        assert_eq!(cc.cwnd(), w + MSS);
    }

    #[test]
    fn newreno_loss_responses() {
        let mut cc = NewReno::new(MSS);
        let w0 = cc.cwnd();
        cc.on_fast_retransmit();
        assert_eq!(cc.cwnd(), w0 / 2);
        cc.on_timeout();
        assert_eq!(cc.cwnd(), MSS);
        assert_eq!(cc.ssthresh(), (w0 / 2 / 2).max(2 * MSS));
    }

    #[test]
    fn newreno_ece_acts_like_loss() {
        let mut cc = NewReno::new(MSS);
        let w0 = cc.cwnd();
        cc.on_ack(ack(MSS, true, 1));
        assert_eq!(cc.cwnd(), w0 / 2);
    }

    #[test]
    fn dctcp_alpha_tracks_mark_fraction() {
        let mut cc = Dctcp::new(MSS);
        // Feed many windows with ~50% marked bytes.
        let mut t = 0;
        for _ in 0..300 {
            t += 200; // 2 windows of 100us RTT.
            cc.on_ack(AckInfo {
                acked: MSS,
                ece: t % 400 == 0,
                now: SimTime::from_us(t),
                srtt: Some(SimTime::from_us(100)),
            });
        }
        assert!(
            (cc.alpha() - 0.5).abs() < 0.15,
            "alpha {} should approach 0.5",
            cc.alpha()
        );
    }

    #[test]
    fn dctcp_gentle_reduction_scales_with_alpha() {
        let mut cc = Dctcp::new(MSS);
        // Converge alpha near zero first (no marks).
        for i in 0..2000 {
            cc.on_ack(ack(MSS, false, 1 + i * 10));
        }
        let w = cc.cwnd();
        let alpha = cc.alpha();
        assert!(alpha < 0.05, "alpha {alpha}");
        // A single mark now barely dents the window.
        cc.on_ack(ack(MSS, true, 1_000_000));
        let reduce = w - cc.cwnd();
        assert!(
            (reduce as f64) <= w as f64 * 0.05,
            "gentle: reduced {reduce} of {w}"
        );
    }

    #[test]
    fn dctcp_reduces_once_per_window() {
        let mut cc = Dctcp::new(MSS);
        let w0 = cc.cwnd();
        cc.on_ack(ack(MSS, true, 100));
        let w1 = cc.cwnd();
        assert!(w1 < w0);
        // Same observation window: second mark must not reduce again.
        cc.on_ack(ack(MSS, true, 110));
        assert!(cc.cwnd() >= w1, "no double reduction within a window");
    }

    #[test]
    fn dctcp_timeout_collapses_window() {
        let mut cc = Dctcp::new(MSS);
        cc.on_timeout();
        assert_eq!(cc.cwnd(), MSS);
    }

    #[test]
    fn factory_dispatches() {
        assert_eq!(make_cc(CcKind::NewReno, MSS).name(), "newreno");
        assert_eq!(make_cc(CcKind::Dctcp, MSS).name(), "dctcp");
    }
}
