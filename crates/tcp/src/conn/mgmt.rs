//! `ConnMgmt`: connection lifecycle state — the RFC 793 state machine,
//! open/close progress (FIN bookkeeping on both sides), the TIME_WAIT
//! timer, and the timestamp echo. All mutation goes through `&mut self`
//! methods here; everything else holds `&` views (lint rule R8).

use tas_sim::SimTime;

use super::{EndpointInfo, TcpState};

/// Connection-management component: owns the state machine and
/// open/close bookkeeping.
#[derive(Debug)]
pub struct ConnMgmt {
    /// Current RFC 793 state.
    pub(crate) state: TcpState,
    /// Local addressing.
    pub(crate) local: EndpointInfo,
    /// Remote addressing.
    pub(crate) remote: EndpointInfo,
    /// TIME_WAIT expiry, when in TIME_WAIT.
    pub(crate) time_wait_deadline: Option<SimTime>,
    /// Application requested close; FIN goes out once data drains.
    pub(crate) fin_queued: bool,
    /// Our FIN has been transmitted.
    pub(crate) fin_sent: bool,
    /// Our FIN has been acknowledged.
    pub(crate) fin_acked: bool,
    /// Stream offset of the peer's FIN, once seen.
    pub(crate) peer_fin_off: Option<u64>,
    /// The peer FIN has been delivered to the application.
    pub(crate) peer_fin_done: bool,
    /// Most recent peer TSval, echoed in our timestamps.
    pub(crate) ts_recent: u32,
}

impl ConnMgmt {
    pub(crate) fn new(local: EndpointInfo, remote: EndpointInfo) -> ConnMgmt {
        ConnMgmt {
            state: TcpState::Closed,
            local,
            remote,
            time_wait_deadline: None,
            fin_queued: false,
            fin_sent: false,
            fin_acked: false,
            peer_fin_off: None,
            peer_fin_done: false,
            ts_recent: 0,
        }
    }

    /// Transitions the state machine.
    pub(crate) fn set_state(&mut self, s: TcpState) {
        self.state = s;
    }

    /// Records the peer's most recent TSval for echo.
    pub(crate) fn note_ts(&mut self, tsval: u32) {
        self.ts_recent = tsval;
    }

    /// Marks the application's close request; returns false if already
    /// queued (close is idempotent).
    pub(crate) fn queue_fin(&mut self) -> bool {
        if self.fin_queued {
            return false;
        }
        self.fin_queued = true;
        true
    }

    pub(crate) fn set_fin_sent(&mut self, sent: bool) {
        self.fin_sent = sent;
    }

    pub(crate) fn mark_fin_acked(&mut self) {
        self.fin_acked = true;
    }

    /// Remembers where the peer's FIN sits in the stream.
    pub(crate) fn set_peer_fin(&mut self, off: u64) {
        self.peer_fin_off = Some(off);
    }

    /// Marks the peer FIN as delivered; returns false if it already was.
    pub(crate) fn mark_peer_fin_done(&mut self) -> bool {
        if self.peer_fin_done {
            return false;
        }
        self.peer_fin_done = true;
        true
    }

    /// Arms the TIME_WAIT timer.
    pub(crate) fn arm_time_wait(&mut self, deadline: SimTime) {
        self.time_wait_deadline = Some(deadline);
    }

    /// Final transition to CLOSED; returns false if already closed.
    pub(crate) fn enter_closed(&mut self) -> bool {
        if self.state == TcpState::Closed {
            return false;
        }
        self.state = TcpState::Closed;
        self.time_wait_deadline = None;
        true
    }
}
