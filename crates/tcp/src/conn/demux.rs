//! `Demux`: stateless segment steering. Owns no fields by construction —
//! it maps a received segment to a connection key and classifies what a
//! host should do with it. Both the baseline stack hosts and tests use
//! this one implementation so steering decisions cannot drift between
//! hosts.

use tas_proto::{FlowKey, Segment, TcpFlags};

/// What a host should do with a received segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DemuxDecision {
    /// A connection matches the key: deliver to it.
    Deliver,
    /// No connection, but a listener on the local port should accept
    /// this bare SYN.
    Accept,
    /// No matching state: drop (a RST generator is not needed for the
    /// experiments).
    Drop,
}

/// Stateless demultiplexer.
#[derive(Clone, Copy, Debug, Default)]
pub struct Demux;

impl Demux {
    /// The connection key for a received segment, from the receiver's
    /// perspective.
    pub fn key(seg: &Segment) -> FlowKey {
        seg.flow_key()
    }

    /// True for a connection-opening SYN (SYN without ACK).
    pub fn is_bare_syn(seg: &Segment) -> bool {
        seg.tcp.flags.contains(TcpFlags::SYN) && !seg.tcp.flags.contains(TcpFlags::ACK)
    }

    /// Steers a segment: `has_conn` is whether connection state exists
    /// for [`Demux::key`], `has_listener` whether the local port has a
    /// listening socket.
    pub fn classify(seg: &Segment, has_conn: bool, has_listener: bool) -> DemuxDecision {
        if has_conn {
            DemuxDecision::Deliver
        } else if Self::is_bare_syn(seg) && has_listener {
            DemuxDecision::Accept
        } else {
            DemuxDecision::Drop
        }
    }
}
