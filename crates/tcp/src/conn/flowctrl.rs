//! `FlowCtrl`: flow control — the peer's advertised send window (with
//! its negotiated scale and MSS) and our own advertised-window
//! bookkeeping for window-update ACKs. All mutation goes through
//! `&mut self` methods here (lint rule R8).

/// Flow-control component: owns both directions' window accounting.
#[derive(Debug)]
pub struct FlowCtrl {
    /// Peer's advertised window in bytes (already scaled).
    pub(crate) snd_wnd: u64,
    /// Peer's window-scale shift from the SYN.
    pub(crate) peer_wscale: u8,
    /// Peer's MSS from the SYN.
    pub(crate) peer_mss: u32,
    /// The advertised window we last put on the wire; a window update is
    /// emitted when the application reopens a previously-tight window.
    pub(crate) last_adv_window: u64,
}

impl FlowCtrl {
    pub(crate) fn new(mss: u32, recv_buf: usize) -> FlowCtrl {
        FlowCtrl {
            snd_wnd: mss as u64 * 10,
            peer_wscale: 0,
            peer_mss: mss,
            last_adv_window: recv_buf as u64,
        }
    }

    /// Applies the peer's SYN options: MSS, window scale, and the
    /// (unscaled) SYN window.
    pub(crate) fn apply_syn(&mut self, mss: Option<u32>, wscale: u8, syn_window: u64) {
        if let Some(m) = mss {
            self.peer_mss = m;
        }
        self.peer_wscale = wscale;
        // SYN window is unscaled.
        self.snd_wnd = syn_window;
    }

    /// Updates the peer window from a segment's raw (unscaled) field.
    pub(crate) fn update_wnd(&mut self, raw_window: u16) {
        self.snd_wnd = (raw_window as u64) << self.peer_wscale;
    }

    /// Records the advertised window just placed on the wire.
    pub(crate) fn note_advertised(&mut self, adv: u64) {
        self.last_adv_window = adv;
    }
}
