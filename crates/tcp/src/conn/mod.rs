//! The TCP connection state machine, decomposed into five components
//! with disjoint write scopes (DESIGN.md §16):
//!
//! * [`ConnMgmt`](mgmt::ConnMgmt) — lifecycle: RFC 793 states,
//!   open/close, TIME_WAIT, timestamp echo;
//! * [`SendRel`](send::SendRel) — send reliability: transmit ring,
//!   una/nxt/max-sent offsets, recovery, RTT, the RTO;
//! * [`RecvRel`](recv::RecvRel) — receive reliability: in-order ring,
//!   reassembler, receive frontier;
//! * [`FlowCtrl`](flowctrl::FlowCtrl) — both directions' window
//!   accounting;
//! * [`CongCtrl`](congctrl::CongCtrl) — the pluggable algorithm
//!   (shared `tas-cc`) plus ECN state;
//!
//! plus the stateless [`Demux`](demux::Demux). [`TcpConn`] is the
//! orchestrator: it owns one instance of each component and drives the
//! protocol, reading across components freely but mutating each
//! component's fields only through that component's `&mut self` methods.
//! The boundary is enforced two ways: `pub(crate)` fields keep external
//! crates out, and tas-lint rule R8 (the `[components]` ownership map in
//! `lint.toml`) keeps in-crate code honest.

pub mod congctrl;
pub mod demux;
pub mod flowctrl;
pub mod mgmt;
pub mod recv;
pub mod send;

pub use congctrl::CongCtrl;
pub use demux::{Demux, DemuxDecision};
pub use flowctrl::FlowCtrl;
pub use mgmt::ConnMgmt;
pub use recv::RecvRel;
pub use send::SendRel;

use crate::cc::{AckInfo, CcKind};
use std::net::Ipv4Addr;
use tas_proto::tcp::seq;
use tas_proto::{Ecn, FlowKey, MacAddr, Segment, TcpFlags, TcpHeader};
use tas_sim::SimTime;

/// TCP connection states (RFC 793), minus LISTEN which is a host-level
/// table of pending accepts rather than a connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TcpState {
    /// SYN sent, awaiting SYN-ACK.
    SynSent,
    /// SYN received and SYN-ACK sent, awaiting ACK.
    SynRcvd,
    /// Data transfer.
    Established,
    /// We closed first; FIN sent, awaiting its ACK.
    FinWait1,
    /// Our FIN acknowledged, awaiting peer FIN.
    FinWait2,
    /// Peer closed first; awaiting our close.
    CloseWait,
    /// Both closed, our FIN outstanding after peer's FIN.
    LastAck,
    /// Simultaneous close: FIN crossed; awaiting ACK of our FIN.
    Closing,
    /// Draining the network before releasing state.
    TimeWait,
    /// Fully closed.
    Closed,
}

impl TcpState {
    /// Stable lowercase name, used in traces and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            TcpState::SynSent => "syn_sent",
            TcpState::SynRcvd => "syn_rcvd",
            TcpState::Established => "established",
            TcpState::FinWait1 => "fin_wait1",
            TcpState::FinWait2 => "fin_wait2",
            TcpState::CloseWait => "close_wait",
            TcpState::LastAck => "last_ack",
            TcpState::Closing => "closing",
            TcpState::TimeWait => "time_wait",
            TcpState::Closed => "closed",
        }
    }
}

/// Events a connection reports to its owner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TcpEvent {
    /// Handshake completed.
    Connected,
    /// New in-order data is readable.
    DataAvailable,
    /// Acknowledgements freed send-buffer space.
    SendSpaceAvailable,
    /// Peer sent FIN; no more data will arrive.
    PeerFin,
    /// The connection reached CLOSED.
    Closed,
    /// The connection was reset.
    Reset,
}

/// Static per-connection configuration.
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// Maximum segment size (1448 = 1500 MTU − 40 TCP/IP − 12 timestamps).
    pub mss: u32,
    /// Send buffer capacity in bytes.
    pub send_buf: usize,
    /// Receive buffer capacity in bytes.
    pub recv_buf: usize,
    /// Negotiate and use ECN.
    pub ecn: bool,
    /// Use the timestamp option (RTT samples; always recommended).
    pub timestamps: bool,
    /// Our receive window scale shift.
    pub window_scale: u8,
    /// Congestion control algorithm.
    pub cc: CcKind,
    /// Minimum retransmission timeout (datacenter configs use 1–10 ms).
    pub rto_min: SimTime,
    /// Maximum retransmission timeout.
    pub rto_max: SimTime,
    /// TIME_WAIT duration (kept short; the simulator never reuses tuples).
    pub time_wait: SimTime,
    /// Keep out-of-order data at the receiver (SACK-style). When false the
    /// receiver drops everything past a hole (pure go-back-N, the "TAS
    /// simple recovery" line of Fig. 7 — TAS proper keeps one interval and
    /// is implemented in the `tas` crate).
    pub keep_ooo: bool,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1448,
            send_buf: 128 * 1024,
            recv_buf: 128 * 1024,
            ecn: true,
            timestamps: true,
            window_scale: 7,
            cc: CcKind::Dctcp,
            rto_min: SimTime::from_ms(1),
            rto_max: SimTime::from_secs(1),
            time_wait: SimTime::from_ms(1),
            keep_ooo: true,
        }
    }
}

/// One side's addressing.
#[derive(Clone, Copy, Debug)]
pub struct EndpointInfo {
    /// IP address.
    pub ip: Ipv4Addr,
    /// TCP port.
    pub port: u16,
    /// MAC address (the slow path's ARP/neighbour entry).
    pub mac: MacAddr,
}

/// Per-connection counters used by the experiments.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConnStats {
    /// Data segments sent (including retransmissions).
    pub segs_out: u64,
    /// Segments received.
    pub segs_in: u64,
    /// Payload bytes sent (first transmissions).
    pub bytes_sent: u64,
    /// Payload bytes received in order.
    pub bytes_received: u64,
    /// Retransmitted segments (all causes).
    pub retransmits: u64,
    /// Fast retransmits triggered.
    pub fast_retransmits: u64,
    /// Retransmission timeouts fired.
    pub timeouts: u64,
    /// Duplicate ACKs received.
    pub dupacks_in: u64,
    /// ACKs carrying ECN echo received.
    pub ece_in: u64,
}

/// A sans-IO TCP connection.
///
/// The owner feeds it segments ([`TcpConn::on_segment`]) and time
/// ([`TcpConn::on_timer`]), writes with [`TcpConn::send`]/[`TcpConn::close`]
/// and reads with [`TcpConn::recv`]; staged output segments are drained
/// with [`TcpConn::take_outgoing`] and application events with
/// [`TcpConn::take_events`]. [`TcpConn::next_timer`] reports when
/// `on_timer` next wants to run.
#[derive(Debug)]
pub struct TcpConn {
    cfg: TcpConfig,
    /// Lifecycle component.
    pub(crate) mgmt: ConnMgmt,
    /// Send-reliability component.
    pub(crate) snd: SendRel,
    /// Receive-reliability component.
    pub(crate) rcv: RecvRel,
    /// Flow-control component.
    pub(crate) fc: FlowCtrl,
    /// Congestion-control + ECN component.
    pub(crate) cc: CongCtrl,

    out: Vec<Segment>,
    events: Vec<TcpEvent>,
    /// Counters.
    pub stats: ConnStats,

    /// Flight-recorder clock: the time of the entry point currently being
    /// processed, so segment construction deep in the call tree can stamp
    /// trace records without threading `now` everywhere.
    #[cfg(feature = "trace")]
    trace_now: SimTime,
    /// Last state reported to the flight recorder; transitions are
    /// emitted by diffing at entry-point boundaries (a `close()` between
    /// events is reported at the next poll).
    #[cfg(feature = "trace")]
    traced_state: TcpState,
}

impl TcpConn {
    /// Opens a connection: returns the connection in SYN_SENT with the SYN
    /// staged for transmission.
    pub fn connect(
        now: SimTime,
        cfg: TcpConfig,
        local: EndpointInfo,
        remote: EndpointInfo,
        iss: u32,
    ) -> TcpConn {
        let mut conn = TcpConn::new_common(cfg, local, remote, iss);
        conn.trace_mark(now);
        conn.mgmt.set_state(TcpState::SynSent);
        let mut h = conn.header(TcpFlags::SYN, now);
        h.seq = iss;
        h.ack = 0;
        if conn.cfg.ecn {
            h.flags |= TcpFlags::ECE | TcpFlags::CWR;
        }
        conn.set_syn_options(&mut h);
        conn.trace_state_sync();
        conn.push_segment(h, Vec::new(), false);
        let rto = now + conn.snd.rtt.rto();
        conn.snd.arm_rto(rto);
        conn
    }

    /// Accepts a connection from a received SYN: returns the connection in
    /// SYN_RCVD with the SYN-ACK staged.
    pub fn accept(
        now: SimTime,
        cfg: TcpConfig,
        local: EndpointInfo,
        remote: EndpointInfo,
        syn: &Segment,
        iss: u32,
    ) -> TcpConn {
        let mut conn = TcpConn::new_common(cfg, local, remote, iss);
        conn.trace_mark(now);
        conn.trace_seg(true, syn);
        conn.mgmt.set_state(TcpState::SynRcvd);
        conn.rcv.init_irs(syn.tcp.seq);
        conn.apply_syn_options(syn);
        // ECN negotiation: peer requested with ECE|CWR on the SYN.
        let peer_wants_ecn = syn.tcp.flags.contains(TcpFlags::ECE | TcpFlags::CWR);
        let active = conn.cfg.ecn && peer_wants_ecn;
        conn.cc.set_active(active);
        let mut h = conn.header(TcpFlags::SYN | TcpFlags::ACK, now);
        h.seq = iss;
        h.ack = syn.tcp.seq.wrapping_add(1);
        if conn.cc.ecn_active {
            h.flags |= TcpFlags::ECE;
        }
        conn.set_syn_options(&mut h);
        conn.trace_state_sync();
        conn.push_segment(h, Vec::new(), false);
        let rto = now + conn.snd.rtt.rto();
        conn.snd.arm_rto(rto);
        conn
    }

    fn new_common(cfg: TcpConfig, local: EndpointInfo, remote: EndpointInfo, iss: u32) -> TcpConn {
        TcpConn {
            mgmt: ConnMgmt::new(local, remote),
            snd: SendRel::new(iss, cfg.send_buf, cfg.rto_min, cfg.rto_max),
            rcv: RecvRel::new(cfg.recv_buf, cfg.keep_ooo),
            fc: FlowCtrl::new(cfg.mss, cfg.recv_buf),
            cc: CongCtrl::new(cfg.cc, cfg.mss),
            out: Vec::new(),
            events: Vec::new(),
            stats: ConnStats::default(),
            #[cfg(feature = "trace")]
            trace_now: SimTime::ZERO,
            #[cfg(feature = "trace")]
            traced_state: TcpState::Closed,
            cfg,
        }
    }

    // ------------------------------------------------------------------
    // Flight recorder (all no-ops unless the `trace` feature is on).

    /// The connection's flow key (local perspective).
    pub fn flow_key(&self) -> FlowKey {
        FlowKey::new(
            self.mgmt.local.ip,
            self.mgmt.local.port,
            self.mgmt.remote.ip,
            self.mgmt.remote.port,
        )
    }

    #[cfg(feature = "trace")]
    fn trace_mark(&mut self, now: SimTime) {
        self.trace_now = now;
    }

    #[cfg(not(feature = "trace"))]
    #[inline(always)]
    fn trace_mark(&mut self, _now: SimTime) {}

    /// Emits one State record if the state changed since last sync.
    #[cfg(feature = "trace")]
    fn trace_state_sync(&mut self) {
        if self.traced_state != self.mgmt.state {
            let (t, flow) = (self.trace_now, self.flow_key());
            let (from, to) = (self.traced_state.name(), self.mgmt.state.name());
            tas_telemetry::emit(|| tas_telemetry::TraceRecord {
                t,
                site: "conn",
                ev: tas_telemetry::TraceEvent::State { flow, from, to },
            });
            self.traced_state = self.mgmt.state;
        }
    }

    #[cfg(not(feature = "trace"))]
    #[inline(always)]
    fn trace_state_sync(&mut self) {}

    #[cfg(feature = "trace")]
    fn trace_seg(&self, rx: bool, seg: &Segment) {
        let t = self.trace_now;
        tas_telemetry::emit(|| {
            let seg = Box::new(seg.clone());
            tas_telemetry::TraceRecord {
                t,
                site: "conn",
                ev: if rx {
                    tas_telemetry::TraceEvent::SegRx { seg }
                } else {
                    tas_telemetry::TraceEvent::SegTx { seg }
                },
            }
        });
    }

    #[cfg(not(feature = "trace"))]
    #[inline(always)]
    fn trace_seg(&self, _rx: bool, _seg: &Segment) {}

    #[cfg(feature = "trace")]
    fn trace_rexmit(&self, kind: &'static str, seq_no: u32) {
        let (t, flow) = (self.trace_now, self.flow_key());
        tas_telemetry::emit(|| tas_telemetry::TraceRecord {
            t,
            site: "conn",
            ev: tas_telemetry::TraceEvent::Retransmit {
                flow,
                kind,
                seq: seq_no,
            },
        });
    }

    #[cfg(not(feature = "trace"))]
    #[inline(always)]
    fn trace_rexmit(&self, _kind: &'static str, _seq_no: u32) {}

    #[cfg(feature = "trace")]
    fn trace_ooo(&self, start: u64, len: u64) {
        let (t, flow) = (self.trace_now, self.flow_key());
        tas_telemetry::emit(|| tas_telemetry::TraceRecord {
            t,
            site: "conn",
            ev: tas_telemetry::TraceEvent::OooPlace { flow, start, len },
        });
    }

    #[cfg(not(feature = "trace"))]
    #[inline(always)]
    fn trace_ooo(&self, _start: u64, _len: u64) {}

    // ------------------------------------------------------------------
    // Accessors.

    /// Current state.
    pub fn state(&self) -> TcpState {
        self.mgmt.state
    }

    /// Local endpoint.
    pub fn local(&self) -> EndpointInfo {
        self.mgmt.local
    }

    /// Remote endpoint.
    pub fn remote(&self) -> EndpointInfo {
        self.mgmt.remote
    }

    /// Whether ECN was negotiated.
    pub fn ecn_active(&self) -> bool {
        self.cc.ecn_active
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> u32 {
        self.cc.algo.cwnd()
    }

    /// Smoothed RTT, if measured.
    pub fn srtt(&self) -> Option<SimTime> {
        self.snd.rtt.srtt()
    }

    /// Bytes readable by the application.
    pub fn readable(&self) -> usize {
        self.rcv.rx.len()
    }

    /// Free space in the send buffer.
    pub fn send_space(&self) -> usize {
        self.snd.tx.free()
    }

    /// Occupied bytes in the send buffer (queued + unacknowledged). The
    /// queue-depth time series samples this per connection.
    pub fn send_buffered(&self) -> usize {
        self.snd.tx.len()
    }

    /// Unacknowledged payload bytes in flight.
    pub fn in_flight(&self) -> u64 {
        self.snd.nxt_off - self.snd.una_off
    }

    /// The connection is fully closed and its state can be dropped.
    pub fn is_closed(&self) -> bool {
        self.mgmt.state == TcpState::Closed
    }

    /// Diagnostic snapshot: (una_off, nxt_off, tx_end, cwnd, snd_wnd,
    /// in_recovery, dupacks, rto_deadline_ps, readable, reasm_held).
    #[allow(clippy::type_complexity)] // A flat diagnostic tuple.
    pub fn debug_state(&self) -> (u64, u64, u64, u32, u64, bool, u32, u64, usize, usize) {
        (
            self.snd.una_off,
            self.snd.nxt_off,
            self.snd.tx.end_offset(),
            self.cc.algo.cwnd(),
            self.fc.snd_wnd,
            self.snd.in_recovery,
            self.snd.dupacks,
            self.snd.rto_deadline.map(|t| t.as_ps()).unwrap_or(0),
            self.rcv.rx.len(),
            self.rcv.reasm.held(),
        )
    }

    /// When [`TcpConn::on_timer`] next needs to run, if ever.
    pub fn next_timer(&self) -> Option<SimTime> {
        match (self.snd.rto_deadline, self.mgmt.time_wait_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, b) => b,
        }
    }

    /// Drains staged outgoing segments.
    pub fn take_outgoing(&mut self) -> Vec<Segment> {
        std::mem::take(&mut self.out)
    }

    /// True when output is staged (lets owners skip the Vec swap).
    pub fn has_outgoing(&self) -> bool {
        !self.out.is_empty()
    }

    /// Drains pending application events.
    pub fn take_events(&mut self) -> Vec<TcpEvent> {
        std::mem::take(&mut self.events)
    }

    // ------------------------------------------------------------------
    // Application calls.

    /// Buffers application data for transmission; returns bytes accepted
    /// (bounded by send-buffer space). Call [`TcpConn::poll`] afterwards.
    pub fn send(&mut self, data: &[u8]) -> usize {
        if self.mgmt.fin_queued
            || matches!(self.mgmt.state, TcpState::Closed | TcpState::TimeWait)
        {
            return 0;
        }
        self.snd.buffer(data)
    }

    /// Reads up to `max` bytes of in-order received data.
    pub fn recv(&mut self, max: usize) -> Vec<u8> {
        self.rcv.read(max)
    }

    /// Initiates close: a FIN is sent once buffered data drains.
    pub fn close(&mut self) {
        if !self.mgmt.queue_fin() {
            return;
        }
        match self.mgmt.state {
            TcpState::Established | TcpState::SynRcvd => {
                self.mgmt.set_state(TcpState::FinWait1);
            }
            TcpState::CloseWait => self.mgmt.set_state(TcpState::LastAck),
            _ => {}
        }
    }

    /// Aborts: stages an RST and closes immediately.
    pub fn abort(&mut self, now: SimTime) {
        self.trace_mark(now);
        if !matches!(self.mgmt.state, TcpState::Closed) {
            let mut h = self.header(TcpFlags::RST | TcpFlags::ACK, now);
            h.seq = self.seq_of(self.snd.nxt_off);
            h.ack = self.ack_value();
            self.push_segment(h, Vec::new(), false);
            self.enter_closed();
            self.trace_state_sync();
        }
    }

    // ------------------------------------------------------------------
    // Sequence/offset mapping.

    fn seq_of(&self, off: u64) -> u32 {
        self.snd.iss.wrapping_add(1).wrapping_add(off as u32)
    }

    fn rcv_seq_of(&self, off: u64) -> u32 {
        self.rcv.irs.wrapping_add(1).wrapping_add(off as u32)
    }

    fn ack_value(&self) -> u32 {
        // ACK covers the peer FIN once all data before it is consumed.
        let mut a = self.rcv_seq_of(self.rcv.rcv_off);
        if let Some(fo) = self.mgmt.peer_fin_off {
            if self.rcv.rcv_off >= fo {
                a = a.wrapping_add(1);
            }
        }
        a
    }

    // ------------------------------------------------------------------
    // Segment construction.

    fn header(&self, flags: TcpFlags, now: SimTime) -> TcpHeader {
        let mut h = TcpHeader::new(self.mgmt.local.port, self.mgmt.remote.port, 0, 0, flags);
        if self.cfg.timestamps {
            h.options.timestamp = Some((now.as_micros() as u32, self.mgmt.ts_recent));
        }
        let adv = self.adv_window();
        h.window = (adv >> self.cfg.window_scale).min(u16::MAX as u64) as u16;
        h
    }

    fn adv_window(&self) -> u64 {
        // Conservative: space that in-order data can always use.
        self.rcv.rx.free().saturating_sub(self.rcv.reasm.held()) as u64
    }

    fn set_syn_options(&self, h: &mut TcpHeader) {
        h.options.mss = Some(self.cfg.mss.min(u16::MAX as u32) as u16);
        h.options.wscale = Some(self.cfg.window_scale);
        h.options.sack_permitted = self.cfg.keep_ooo;
        // SYN windows are never scaled.
        h.window = self.adv_window().min(u16::MAX as u64) as u16;
    }

    fn apply_syn_options(&mut self, syn: &Segment) {
        self.fc.apply_syn(
            syn.tcp.options.mss.map(|m| m as u32),
            syn.tcp.options.wscale.unwrap_or(0),
            syn.tcp.window as u64,
        );
        if let Some((tsval, _)) = syn.tcp.options.timestamp {
            self.mgmt.note_ts(tsval);
        }
    }

    fn push_segment(&mut self, tcp: TcpHeader, payload: Vec<u8>, data_ect: bool) {
        let mut seg = Segment::tcp(
            self.mgmt.local.mac,
            self.mgmt.remote.mac,
            self.mgmt.local.ip,
            self.mgmt.remote.ip,
            tcp,
            payload,
            false,
        );
        // ECT(0) only on data segments of ECN connections.
        if data_ect && self.cc.ecn_active {
            seg.ip.ecn = Ecn::Ect0;
        }
        self.stats.segs_out += 1;
        self.trace_seg(false, &seg);
        self.out.push(seg);
    }

    /// Stages a pure ACK reflecting current receive state.
    fn emit_ack(&mut self, now: SimTime) {
        let mut h = self.header(TcpFlags::ACK, now);
        h.seq = self.seq_of(self.snd.nxt_off.min(self.fin_off_or_max()));
        h.ack = self.ack_value();
        if self.cfg.keep_ooo {
            if let Some((off, len)) = self.rcv.reasm.first_range() {
                h.options.sack_block = Some((self.rcv_seq_of(off), self.rcv_seq_of(off + len)));
            }
        }
        if self.echo_ece() {
            h.flags |= TcpFlags::ECE;
        }
        let adv = self.adv_window();
        self.fc.note_advertised(adv);
        self.push_segment(h, Vec::new(), false);
    }

    fn fin_off_or_max(&self) -> u64 {
        u64::MAX
    }

    fn echo_ece(&self) -> bool {
        if !self.cc.ecn_active {
            return false;
        }
        match self.cfg.cc {
            // DCTCP: accurate per-packet echo.
            CcKind::Dctcp => self.cc.last_seg_ce,
            // Classic (and delay-based TIMELY): latched until CWR.
            CcKind::NewReno | CcKind::Timely => self.cc.ece_latched,
        }
    }

    /// Re-checks structural invariants (see [`crate::audit`]); compiled
    /// out of plain release builds.
    #[cfg(any(test, debug_assertions, feature = "audit"))]
    fn audit_invariants(&self) {
        crate::audit::check_conn(&crate::audit::ConnView {
            una_off: self.snd.una_off,
            nxt_off: self.snd.nxt_off,
            max_sent_off: self.snd.max_sent_off,
            tx: &self.snd.tx,
            rcv_off: self.rcv.rcv_off,
            rx: &self.rcv.rx,
            reasm: &self.rcv.reasm,
        });
    }

    #[cfg(not(any(test, debug_assertions, feature = "audit")))]
    #[inline(always)]
    fn audit_invariants(&self) {}

    // ------------------------------------------------------------------
    // Transmission.

    /// Transmits whatever the congestion and flow-control windows allow;
    /// also emits window updates after the application drained a full
    /// receive buffer. Call after `send`, `recv`, `on_segment`, `on_timer`.
    pub fn poll(&mut self, now: SimTime) {
        #[cfg(feature = "profile")]
        let _prof = tas_telemetry::profile::guard("tcp_tx");
        self.trace_mark(now);
        self.trace_state_sync();
        if matches!(
            self.mgmt.state,
            TcpState::SynSent | TcpState::SynRcvd | TcpState::Closed
        ) {
            return;
        }
        // Window update after the app freed a previously-tight window.
        let adv = self.adv_window();
        if self.fc.last_adv_window < self.cfg.mss as u64 && adv >= 2 * self.cfg.mss as u64 {
            self.emit_ack(now);
        }
        let mut wnd = self.fc.snd_wnd.min(self.cc.algo.cwnd() as u64);
        if self.snd.in_recovery {
            // NewReno window inflation: each duplicate ACK signals a
            // departed segment; sending new data keeps the ACK clock
            // alive through recovery.
            wnd = wnd.saturating_add(self.snd.dupacks as u64 * self.cfg.mss as u64);
        }
        loop {
            let avail = self.snd.tx.end_offset().saturating_sub(self.snd.nxt_off);
            let in_flight = self.snd.nxt_off - self.snd.una_off;
            let budget = wnd.saturating_sub(in_flight);
            let n = avail
                .min(budget)
                .min(self.fc.peer_mss.min(self.cfg.mss) as u64);
            if n == 0 {
                break;
            }
            let Ok(payload) = self.snd.tx.copy_out(self.snd.nxt_off, n as usize) else {
                debug_assert!(false, "nxt_off within tx ring");
                break;
            };
            let mut h = self.header(TcpFlags::ACK, now);
            h.seq = self.seq_of(self.snd.nxt_off);
            h.ack = self.ack_value();
            if avail == n {
                h.flags |= TcpFlags::PSH;
            }
            if self.cc.take_cwr_pending() {
                h.flags |= TcpFlags::CWR;
            }
            if self.echo_ece() {
                h.flags |= TcpFlags::ECE;
            }
            self.snd.note_sent(n);
            self.stats.bytes_sent += n;
            self.push_segment(h, payload, true);
            let rto = now + self.snd.rtt.rto();
            self.snd.arm_rto_if_unarmed(rto);
        }
        // Zero-window persist: data is waiting but the advertised window
        // is shut and nothing is in flight — without a probe, a lost
        // window update deadlocks the connection. Arm the RTO as a
        // persist timer; on_timer sends a probe segment.
        if self.snd.tx.end_offset() > self.snd.nxt_off
            && self.in_flight() == 0
            && self.snd.rto_deadline.is_none()
        {
            let rto = now + self.snd.rtt.rto();
            self.snd.arm_rto(rto);
        }
        // FIN once everything buffered has been transmitted.
        if self.mgmt.fin_queued
            && !self.mgmt.fin_sent
            && self.snd.nxt_off == self.snd.tx.end_offset()
            && matches!(
                self.mgmt.state,
                TcpState::FinWait1 | TcpState::LastAck | TcpState::Closing
            )
        {
            let mut h = self.header(TcpFlags::FIN | TcpFlags::ACK, now);
            h.seq = self.seq_of(self.snd.nxt_off);
            h.ack = self.ack_value();
            self.mgmt.set_fin_sent(true);
            self.push_segment(h, Vec::new(), false);
            let rto = now + self.snd.rtt.rto();
            self.snd.arm_rto_if_unarmed(rto);
        }
        self.trace_state_sync();
        self.audit_invariants();
    }

    /// Retransmits one MSS of payload starting at stream offset `off`.
    fn retransmit_at(&mut self, now: SimTime, off: u64) {
        let end = self.snd.tx.end_offset();
        if off >= end {
            return;
        }
        let n = (end - off).min(self.fc.peer_mss.min(self.cfg.mss) as u64);
        let Ok(payload) = self.snd.tx.copy_out(off, n as usize) else {
            return;
        };
        let mut h = self.header(TcpFlags::ACK | TcpFlags::PSH, now);
        h.seq = self.seq_of(off);
        h.ack = self.ack_value();
        self.stats.retransmits += 1;
        self.push_segment(h, payload, true);
    }

    /// Retransmits one segment from the left window edge (fast retransmit
    /// or RTO-driven go-back-N start).
    fn retransmit_head(&mut self, now: SimTime) {
        let avail = self.snd.tx.end_offset().saturating_sub(self.snd.una_off);
        let n = avail.min(self.fc.peer_mss.min(self.cfg.mss) as u64);
        if n > 0 {
            let Ok(payload) = self.snd.tx.copy_out(self.snd.una_off, n as usize) else {
                debug_assert!(false, "una_off within tx ring");
                return;
            };
            let mut h = self.header(TcpFlags::ACK | TcpFlags::PSH, now);
            h.seq = self.seq_of(self.snd.una_off);
            h.ack = self.ack_value();
            self.stats.retransmits += 1;
            self.push_segment(h, payload, true);
        } else if self.mgmt.fin_sent && !self.mgmt.fin_acked {
            let mut h = self.header(TcpFlags::FIN | TcpFlags::ACK, now);
            h.seq = self.seq_of(self.snd.una_off);
            h.ack = self.ack_value();
            self.stats.retransmits += 1;
            self.push_segment(h, Vec::new(), false);
        }
        let rto = now + self.snd.rtt.rto();
        self.snd.arm_rto_if_unarmed(rto);
    }

    // ------------------------------------------------------------------
    // Timers.

    /// Processes timer expirations at `now`.
    pub fn on_timer(&mut self, now: SimTime) {
        #[cfg(feature = "profile")]
        let _prof = tas_telemetry::profile::guard("tcp_timer");
        self.trace_mark(now);
        if let Some(tw) = self.mgmt.time_wait_deadline {
            if now >= tw {
                self.enter_closed();
                self.trace_state_sync();
                return;
            }
        }
        let Some(deadline) = self.snd.rto_deadline else {
            return;
        };
        if now < deadline {
            return;
        }
        self.snd.disarm_rto();
        match self.mgmt.state {
            TcpState::SynSent | TcpState::SynRcvd => {
                // Retransmit the handshake segment.
                self.snd.rtt_backoff();
                self.stats.timeouts += 1;
                let flags = if self.mgmt.state == TcpState::SynSent {
                    let mut f = TcpFlags::SYN;
                    if self.cfg.ecn {
                        f |= TcpFlags::ECE | TcpFlags::CWR;
                    }
                    f
                } else {
                    TcpFlags::SYN | TcpFlags::ACK
                };
                let mut h = self.header(flags, now);
                h.seq = self.snd.iss;
                h.ack = if self.mgmt.state == TcpState::SynRcvd {
                    self.rcv.irs.wrapping_add(1)
                } else {
                    0
                };
                self.set_syn_options(&mut h);
                self.stats.retransmits += 1;
                self.trace_rexmit("handshake", self.snd.iss);
                self.push_segment(h, Vec::new(), false);
                let rto = now + self.snd.rtt.rto();
                self.snd.arm_rto(rto);
            }
            TcpState::Closed => {}
            _ => {
                let outstanding = self.in_flight() > 0
                    || (self.mgmt.fin_sent && !self.mgmt.fin_acked)
                    || self.snd.tx.end_offset() > self.snd.nxt_off;
                if outstanding {
                    // Go-back-N: rewind to the left edge.
                    self.snd.rtt_backoff();
                    self.stats.timeouts += 1;
                    self.trace_rexmit("timeout", self.seq_of(self.snd.una_off));
                    self.cc.on_timeout();
                    self.snd.rewind_to_una();
                    self.snd.exit_recovery();
                    self.snd.reset_dupacks();
                    if self.mgmt.fin_sent && self.snd.nxt_off == self.snd.tx.end_offset() {
                        // Only the FIN is outstanding.
                        self.mgmt.set_fin_sent(true);
                        self.retransmit_head(now);
                    } else {
                        self.mgmt.set_fin_sent(false);
                        self.retransmit_head(now);
                    }
                    let rto = now + self.snd.rtt.rto();
                    self.snd.arm_rto(rto);
                    self.poll(now);
                }
            }
        }
        self.trace_state_sync();
        self.audit_invariants();
    }

    // ------------------------------------------------------------------
    // Segment processing.

    /// Processes one received segment addressed to this connection.
    pub fn on_segment(&mut self, now: SimTime, seg: Segment) {
        #[cfg(feature = "profile")]
        let _prof = tas_telemetry::profile::guard("tcp_rx");
        self.trace_mark(now);
        self.trace_seg(true, &seg);
        self.stats.segs_in += 1;
        if seg.tcp.flags.contains(TcpFlags::RST) {
            self.events.push(TcpEvent::Reset);
            self.enter_closed();
            self.trace_state_sync();
            return;
        }
        if let Some((tsval, _)) = seg.tcp.options.timestamp {
            // PAWS is not needed (no wrap within experiments); keep the
            // most recent value for echo.
            self.mgmt.note_ts(tsval);
        }
        match self.mgmt.state {
            TcpState::SynSent => self.on_segment_syn_sent(now, seg),
            TcpState::SynRcvd => self.on_segment_syn_rcvd(now, seg),
            TcpState::Closed => {}
            _ => self.on_segment_established(now, seg),
        }
        self.poll(now);
        self.audit_invariants();
    }

    fn on_segment_syn_sent(&mut self, now: SimTime, seg: Segment) {
        let f = seg.tcp.flags;
        if !f.contains(TcpFlags::SYN | TcpFlags::ACK) {
            return;
        }
        if seg.tcp.ack != self.snd.iss.wrapping_add(1) {
            return;
        }
        self.rcv.init_irs(seg.tcp.seq);
        self.apply_syn_options(&seg);
        let active = self.cfg.ecn && f.contains(TcpFlags::ECE);
        self.cc.set_active(active);
        self.mgmt.set_state(TcpState::Established);
        self.snd.disarm_rto();
        // RTT from the handshake echo.
        if let Some((_, tsecr)) = seg.tcp.options.timestamp {
            if tsecr != 0 {
                let sample = now.as_micros().wrapping_sub(tsecr as u64);
                self.snd.rtt_update(SimTime::from_us(sample.max(1)));
            }
        }
        self.events.push(TcpEvent::Connected);
        self.emit_ack(now);
    }

    fn on_segment_syn_rcvd(&mut self, now: SimTime, seg: Segment) {
        let f = seg.tcp.flags;
        if f.contains(TcpFlags::SYN) {
            // Duplicate SYN: retransmit SYN-ACK via timer path; ignore here.
            return;
        }
        if f.contains(TcpFlags::ACK) && seg.tcp.ack == self.snd.iss.wrapping_add(1) {
            self.mgmt.set_state(TcpState::Established);
            self.snd.disarm_rto();
            self.fc.update_wnd(seg.tcp.window);
            if let Some((_, tsecr)) = seg.tcp.options.timestamp {
                if tsecr != 0 {
                    let sample = now.as_micros().wrapping_sub(tsecr as u64);
                    self.snd.rtt_update(SimTime::from_us(sample.max(1)));
                }
            }
            self.events.push(TcpEvent::Connected);
            // The ACK may carry data; fall through.
            if !seg.payload.is_empty() || f.contains(TcpFlags::FIN) {
                self.on_segment_established(now, seg);
            }
        }
    }

    fn on_segment_established(&mut self, now: SimTime, seg: Segment) {
        let f = seg.tcp.flags;
        if f.contains(TcpFlags::ACK) {
            self.process_ack(now, &seg);
        }
        if !seg.payload.is_empty() {
            self.process_data(now, &seg);
        }
        if f.contains(TcpFlags::FIN) {
            self.process_fin(now, &seg);
        } else if seg.payload.is_empty() {
            // Pure ACK: no response needed.
        }
    }

    fn process_ack(&mut self, now: SimTime, seg: &Segment) {
        let ack = seg.tcp.ack;
        let una_seq = self.seq_of(self.snd.una_off);
        // Highest valid ack: the highest byte ever sent (+1 if FIN sent) —
        // recovery may have rewound nxt below data the peer holds.
        let mut max_seq = self.seq_of(self.snd.max_sent_off.max(self.snd.nxt_off));
        if self.mgmt.fin_sent {
            max_seq = max_seq.wrapping_add(1);
        }
        let ece = self.cc.ecn_active && seg.tcp.flags.contains(TcpFlags::ECE);
        if ece {
            self.stats.ece_in += 1;
        }
        if seq::gt(ack, una_seq) && seq::le(ack, max_seq) {
            let mut newly = seq::sub(ack, una_seq) as u64;
            // Does the ack cover our FIN?
            if self.mgmt.fin_sent && ack == max_seq {
                self.mgmt.mark_fin_acked();
                newly -= 1;
            }
            let payload_acked = newly.min(self.snd.tx.len() as u64);
            if !self.snd.advance_una(newly, payload_acked) {
                debug_assert!(false, "acked bytes are in the ring");
            }
            if payload_acked > 0 {
                self.events.push(TcpEvent::SendSpaceAvailable);
            }
            self.snd.reset_dupacks();
            // RTT sample from the timestamp echo.
            if let Some((_, tsecr)) = seg.tcp.options.timestamp {
                if tsecr != 0 {
                    let sample = now.as_micros().wrapping_sub(tsecr as u64);
                    self.snd.rtt_update(SimTime::from_us(sample.max(1)));
                }
            }
            // Congestion response. NewReno reduces at most once per window
            // in flight; DCTCP consumes every echo for its mark fraction.
            let cc_ece = match self.cfg.cc {
                CcKind::Dctcp => ece,
                CcKind::NewReno | CcKind::Timely => {
                    self.cc
                        .classic_ece_gate(ece, self.snd.una_off, self.snd.nxt_off)
                }
            };
            self.cc.on_ack(AckInfo {
                acked: payload_acked as u32,
                ece: cc_ece,
                now,
                srtt: self.snd.rtt.srtt(),
            });
            // Recovery bookkeeping.
            if self.snd.in_recovery {
                if self.snd.una_off >= self.snd.recover_off {
                    self.snd.exit_recovery();
                } else {
                    // NewReno partial ack: retransmit the next hole.
                    self.retransmit_head(now);
                }
            }
            // Rearm or disarm the RTO.
            let outstanding =
                self.in_flight() > 0 || (self.mgmt.fin_sent && !self.mgmt.fin_acked);
            if outstanding {
                let rto = now + self.snd.rtt.rto();
                self.snd.arm_rto(rto);
            } else {
                self.snd.disarm_rto();
            }
            self.advance_close_states(now);
        } else if ack == una_seq
            && seg.payload.is_empty()
            && !seg.tcp.flags.contains(TcpFlags::FIN)
            && self.in_flight() > 0
            && (seg.tcp.window as u64) << self.fc.peer_wscale <= self.fc.snd_wnd
        {
            // Duplicate ACK.
            self.stats.dupacks_in += 1;
            let dups = self.snd.count_dupack();
            if ece {
                self.cc.on_ack(AckInfo {
                    acked: 0,
                    ece,
                    now,
                    srtt: self.snd.rtt.srtt(),
                });
            }
            if dups == 3 && !self.snd.in_recovery {
                self.snd.enter_recovery(self.cfg.mss);
                self.stats.fast_retransmits += 1;
                self.trace_rexmit("fast", self.seq_of(self.snd.una_off));
                self.cc.on_fast_retransmit();
                self.retransmit_head(now);
            } else if self.snd.in_recovery && dups > 3 && self.cfg.keep_ooo {
                // SACK-guided recovery: retransmit only the hole between
                // the cumulative ACK and the receiver's first held block.
                let hole_end = match seg.tcp.options.sack_block {
                    Some((l, _)) => {
                        let una = self.seq_of(self.snd.una_off);
                        self.snd.una_off + seq::sub(l, una) as u64
                    }
                    None => self.snd.recover_off,
                };
                self.snd.clamp_cursor_to_una();
                if self.snd.recovery_cursor_off < hole_end.min(self.snd.recover_off) {
                    self.trace_rexmit("fast", self.seq_of(self.snd.recovery_cursor_off));
                    self.retransmit_at(now, self.snd.recovery_cursor_off);
                    self.snd.advance_cursor(self.cfg.mss);
                }
            }
        }
        // Window update (simplified: latest segment wins).
        self.fc.update_wnd(seg.tcp.window);
    }

    fn process_data(&mut self, now: SimTime, seg: &Segment) {
        let rcv_nxt = self.rcv_seq_of(self.rcv.rcv_off);
        let seg_seq = seg.tcp.seq;
        self.cc.note_ce(seg.is_ce_marked());
        if seg.tcp.flags.contains(TcpFlags::CWR) {
            self.cc.clear_latch_on_cwr();
        }
        // Offset of the segment start relative to rcv_nxt.
        let data = &seg.payload;
        if seq::ge(rcv_nxt, seg_seq) {
            // Starts at or before rcv_nxt: possibly old data.
            let skip = seq::sub(rcv_nxt, seg_seq) as usize;
            if skip >= data.len() {
                // Entirely old: pure duplicate.
                self.emit_ack(now);
                return;
            }
            let fresh = &data[skip..];
            // In-order: commit to the rx ring.
            let n = self.rcv.commit_in_order(fresh);
            self.stats.bytes_received += n as u64;
            // Pull any now-contiguous reassembled data.
            let drained = self.rcv.drain_reassembled();
            self.stats.bytes_received += drained as u64;
            if n > 0 {
                self.events.push(TcpEvent::DataAvailable);
            }
        } else {
            // Out of order: ahead of rcv_nxt.
            let off = self.rcv.rcv_off + seq::sub(seg_seq, rcv_nxt) as u64;
            if self.cfg.keep_ooo {
                // Bound by the receive window horizon.
                let horizon = self.rcv.rcv_off + self.rcv.rx.free() as u64;
                if off < horizon {
                    let room = (horizon - off) as usize;
                    let d = data[..data.len().min(room)].to_vec();
                    self.trace_ooo(off, d.len() as u64);
                    self.rcv.insert_ooo(off, d);
                }
            }
            // Duplicate ACK to trigger peer fast retransmit.
        }
        self.emit_ack(now);
    }

    fn process_fin(&mut self, now: SimTime, seg: &Segment) {
        let rcv_nxt = self.rcv_seq_of(self.rcv.rcv_off);
        let fin_seq = seg.tcp.seq.wrapping_add(seg.payload.len() as u32);
        let fin_off = self.rcv.rcv_off + seq::sub(fin_seq, rcv_nxt) as u64;
        if seq::gt(fin_seq, rcv_nxt) {
            // FIN beyond in-order data we hold: remember and ack what we
            // have (the gap will be retransmitted).
            self.mgmt.set_peer_fin(fin_off);
            self.emit_ack(now);
            return;
        }
        self.mgmt.set_peer_fin(self.rcv.rcv_off);
        if self.mgmt.mark_peer_fin_done() {
            self.events.push(TcpEvent::PeerFin);
            match self.mgmt.state {
                TcpState::Established | TcpState::SynRcvd => {
                    self.mgmt.set_state(TcpState::CloseWait);
                }
                TcpState::FinWait1 => {
                    if self.mgmt.fin_acked {
                        self.enter_time_wait(now);
                        self.mgmt.set_state(TcpState::TimeWait);
                    } else {
                        self.mgmt.set_state(TcpState::Closing);
                    }
                }
                TcpState::FinWait2 => {
                    self.enter_time_wait(now);
                    self.mgmt.set_state(TcpState::TimeWait);
                }
                _ => {}
            }
        }
        self.emit_ack(now);
        self.advance_close_states(now);
    }

    fn advance_close_states(&mut self, now: SimTime) {
        if self.mgmt.fin_acked {
            match self.mgmt.state {
                TcpState::FinWait1 => self.mgmt.set_state(TcpState::FinWait2),
                TcpState::Closing => {
                    self.enter_time_wait(now);
                    self.mgmt.set_state(TcpState::TimeWait);
                }
                TcpState::LastAck => self.enter_closed(),
                _ => {}
            }
        }
    }

    fn enter_time_wait(&mut self, now: SimTime) {
        self.mgmt.arm_time_wait(now + self.cfg.time_wait);
        self.snd.disarm_rto();
    }

    fn enter_closed(&mut self) {
        if self.mgmt.enter_closed() {
            self.snd.disarm_rto();
            self.events.push(TcpEvent::Closed);
        }
    }
}
