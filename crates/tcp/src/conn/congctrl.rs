//! `CongCtrl`: congestion control and ECN — the pluggable algorithm
//! (shared `tas-cc` trait object) plus the ECN negotiation/echo state
//! that feeds it. All mutation goes through `&mut self` methods here
//! (lint rule R8).

use crate::cc::{make_cc, AckInfo, CcKind, CongestionControl};

/// Congestion-control component: owns the algorithm and ECN state.
#[derive(Debug)]
pub struct CongCtrl {
    /// The congestion-control algorithm (window facet of `tas_cc`).
    pub(crate) algo: Box<dyn CongestionControl>,
    /// ECN negotiated on this connection.
    pub(crate) ecn_active: bool,
    /// RFC 3168 latched receiver echo (NewReno); cleared by sender CWR.
    pub(crate) ece_latched: bool,
    /// DCTCP-style per-packet echo: the last data segment was CE-marked.
    pub(crate) last_seg_ce: bool,
    /// Set CWR on the next outgoing data segment.
    pub(crate) cwr_pending: bool,
    /// NewReno ECE guard: ignore further ECE until `una_off` passes this
    /// offset (at most one window reduction per RTT, RFC 3168 §6.1.2).
    pub(crate) ece_guard_off: u64,
}

impl CongCtrl {
    pub(crate) fn new(kind: CcKind, mss: u32) -> CongCtrl {
        CongCtrl {
            algo: make_cc(kind, mss),
            ecn_active: false,
            ece_latched: false,
            last_seg_ce: false,
            cwr_pending: false,
            ece_guard_off: 0,
        }
    }

    /// Records the ECN negotiation outcome from the handshake.
    pub(crate) fn set_active(&mut self, active: bool) {
        self.ecn_active = active;
    }

    /// Feeds one ACK to the algorithm (profiled per algorithm name).
    pub(crate) fn on_ack(&mut self, info: AckInfo) {
        #[cfg(feature = "profile")]
        let _cc = tas_telemetry::profile::guard(self.algo.name());
        self.algo.on_ack(info);
    }

    /// Algorithm response to a retransmission timeout.
    pub(crate) fn on_timeout(&mut self) {
        #[cfg(feature = "profile")]
        let _cc = tas_telemetry::profile::guard(self.algo.name());
        self.algo.on_timeout();
    }

    /// Algorithm response to entering fast recovery.
    pub(crate) fn on_fast_retransmit(&mut self) {
        #[cfg(feature = "profile")]
        let _cc = tas_telemetry::profile::guard(self.algo.name());
        self.algo.on_fast_retransmit();
    }

    /// Records the CE mark state of the data segment just received; CE
    /// latches the classic (RFC 3168) echo.
    pub(crate) fn note_ce(&mut self, ce: bool) {
        self.last_seg_ce = ce;
        if ce {
            self.ece_latched = true;
        }
    }

    /// Sender signalled CWR: stop the latched echo.
    pub(crate) fn clear_latch_on_cwr(&mut self) {
        self.ece_latched = false;
    }

    /// Consumes a pending CWR flag for the next data segment.
    pub(crate) fn take_cwr_pending(&mut self) -> bool {
        let p = self.cwr_pending;
        self.cwr_pending = false;
        p
    }

    /// Classic (NewReno/TIMELY) once-per-RTT ECE gate: passes the echo
    /// through only when `una_off` has cleared the guard, then re-arms
    /// the guard at `nxt_off` and schedules a CWR.
    pub(crate) fn classic_ece_gate(&mut self, ece: bool, una_off: u64, nxt_off: u64) -> bool {
        if ece && una_off >= self.ece_guard_off {
            self.cwr_pending = true;
            self.ece_guard_off = nxt_off;
            true
        } else {
            false
        }
    }
}
