//! `RecvRel`: receive-side reliability and ordered delivery — the
//! in-order receive ring, the out-of-order reassembler, and the receive
//! frontier (`rcv_nxt` as a stream offset). All mutation goes through
//! `&mut self` methods here (lint rule R8).

use crate::reasm::Reassembler;
use tas_shm::ByteRing;

/// Receive-reliability component: owns ordered delivery to the
/// application.
#[derive(Debug)]
pub struct RecvRel {
    /// Initial receive sequence number (peer's ISS).
    pub(crate) irs: u32,
    /// Stream offset of the next in-order byte expected (`rcv_nxt`).
    pub(crate) rcv_off: u64,
    /// In-order receive buffer the application reads from.
    pub(crate) rx: ByteRing,
    /// Out-of-order segment store (SACK-style receiver).
    pub(crate) reasm: Reassembler,
}

impl RecvRel {
    pub(crate) fn new(recv_buf: usize, keep_ooo: bool) -> RecvRel {
        RecvRel {
            irs: 0,
            rcv_off: 0,
            rx: ByteRing::new(recv_buf),
            reasm: Reassembler::new(if keep_ooo { recv_buf } else { 0 }),
        }
    }

    /// Latches the peer's ISS and resets the frontier (handshake).
    pub(crate) fn init_irs(&mut self, irs: u32) {
        self.irs = irs;
        self.rcv_off = 0;
    }

    /// Commits in-order payload to the receive ring, bounded by free
    /// space; advances the frontier and returns the bytes taken.
    pub(crate) fn commit_in_order(&mut self, fresh: &[u8]) -> usize {
        let take = fresh.len().min(self.rx.free());
        let n = if self.rx.append(&fresh[..take]).is_ok() {
            take
        } else {
            debug_assert!(false, "take bounded by free space");
            0
        };
        self.rcv_off += n as u64;
        // A retransmission can carry bytes we already buffered out of
        // order; tell the reassembler the frontier moved past them so
        // overlapped chunks are trimmed, not stranded.
        self.reasm.advance_frontier(self.rcv_off);
        n
    }

    /// Pulls any now-contiguous reassembled run into the ring; returns
    /// the bytes delivered.
    pub(crate) fn drain_reassembled(&mut self) -> usize {
        let Some(run) = self.reasm.pop_ready(self.rcv_off) else {
            return 0;
        };
        let take = run.len().min(self.rx.free());
        if self.rx.append(&run[..take]).is_ok() {
            self.rcv_off += take as u64;
            take
        } else {
            debug_assert!(false, "reassembled run bounded by rx.free()");
            0
        }
    }

    /// Stores an out-of-order chunk at stream offset `off`.
    pub(crate) fn insert_ooo(&mut self, off: u64, data: Vec<u8>) {
        self.reasm.insert(off, data);
    }

    /// Reads up to `max` in-order bytes for the application.
    pub(crate) fn read(&mut self, max: usize) -> Vec<u8> {
        self.rx.pop(max)
    }
}
