//! `SendRel`: send-side reliability — the transmit ring and its offsets
//! (`snd_una`/`snd_nxt` as stream offsets), duplicate-ACK counting, fast
//! recovery state, RTT estimation, and the retransmission timer. All
//! mutation goes through `&mut self` methods here (lint rule R8).

use crate::rtt::RttEstimator;
use tas_shm::ByteRing;
use tas_sim::SimTime;

/// Send-reliability component: owns everything the sender needs to get
/// bytes delivered exactly once, in order.
#[derive(Debug)]
pub struct SendRel {
    /// Initial send sequence number.
    pub(crate) iss: u32,
    /// Stream offset of the first unacknowledged byte (`snd_una`).
    pub(crate) una_off: u64,
    /// Stream offset of the next byte to transmit (`snd_nxt`).
    pub(crate) nxt_off: u64,
    /// Highest offset ever transmitted; go-back-N rewinds `nxt_off`, but
    /// cumulative ACKs up to this mark must still be accepted.
    pub(crate) max_sent_off: u64,
    /// Send buffer (unacknowledged + queued bytes).
    pub(crate) tx: ByteRing,
    /// Consecutive duplicate ACKs at the current left edge.
    pub(crate) dupacks: u32,
    /// In NewReno fast recovery.
    pub(crate) in_recovery: bool,
    /// Recovery ends when `una_off` reaches this offset.
    pub(crate) recover_off: u64,
    /// SACK-style recovery sweep: next offset to retransmit on further
    /// duplicate ACKs (the receiver holds out-of-order data, so sweeping
    /// the window fills holes without waiting for an RTO).
    pub(crate) recovery_cursor_off: u64,
    /// RTT estimator (Jacobson/Karels via timestamps).
    pub(crate) rtt: RttEstimator,
    /// Retransmission (and zero-window persist) timer.
    pub(crate) rto_deadline: Option<SimTime>,
}

impl SendRel {
    pub(crate) fn new(iss: u32, send_buf: usize, rto_min: SimTime, rto_max: SimTime) -> SendRel {
        SendRel {
            iss,
            una_off: 0,
            nxt_off: 0,
            max_sent_off: 0,
            tx: ByteRing::new(send_buf),
            dupacks: 0,
            in_recovery: false,
            recover_off: 0,
            recovery_cursor_off: 0,
            rtt: RttEstimator::new(rto_min, rto_max),
            rto_deadline: None,
        }
    }

    /// Buffers application bytes; returns how many fit.
    pub(crate) fn buffer(&mut self, data: &[u8]) -> usize {
        self.tx.append_partial(data)
    }

    /// Advances the left edge by `newly` acknowledged bytes (of which
    /// `payload` are ring bytes to release; the rest is a FIN).
    /// Returns false on ring-accounting failure (audited by caller).
    pub(crate) fn advance_una(&mut self, newly: u64, payload: u64) -> bool {
        self.una_off += newly;
        // The ACK may land beyond a rewound nxt: resume from there.
        self.nxt_off = self.nxt_off.max(self.una_off);
        if payload > 0 && self.tx.consume(payload).is_err() {
            return false;
        }
        true
    }

    /// Records `n` freshly transmitted bytes.
    pub(crate) fn note_sent(&mut self, n: u64) {
        self.nxt_off += n;
        self.max_sent_off = self.max_sent_off.max(self.nxt_off);
    }

    /// Go-back-N: rewinds the transmit cursor to the left edge.
    pub(crate) fn rewind_to_una(&mut self) {
        self.nxt_off = self.una_off;
    }

    pub(crate) fn reset_dupacks(&mut self) {
        self.dupacks = 0;
    }

    /// Counts one duplicate ACK; returns the new count.
    pub(crate) fn count_dupack(&mut self) -> u32 {
        self.dupacks += 1;
        self.dupacks
    }

    /// Enters fast recovery: records the recovery horizon and primes the
    /// SACK sweep cursor one MSS past the left edge.
    pub(crate) fn enter_recovery(&mut self, mss: u32) {
        self.in_recovery = true;
        self.recover_off = self.nxt_off;
        self.recovery_cursor_off = self.una_off + mss as u64;
    }

    pub(crate) fn exit_recovery(&mut self) {
        self.in_recovery = false;
    }

    /// Keeps the sweep cursor at or past the left edge.
    pub(crate) fn clamp_cursor_to_una(&mut self) {
        self.recovery_cursor_off = self.recovery_cursor_off.max(self.una_off);
    }

    /// Advances the sweep cursor after a recovery retransmission.
    pub(crate) fn advance_cursor(&mut self, mss: u32) {
        self.recovery_cursor_off += mss as u64;
    }

    /// Feeds one RTT sample to the estimator.
    pub(crate) fn rtt_update(&mut self, sample: SimTime) {
        self.rtt.update(sample);
    }

    /// Exponential RTO backoff on timeout.
    pub(crate) fn rtt_backoff(&mut self) {
        self.rtt.backoff();
    }

    /// Arms the retransmission timer unconditionally.
    pub(crate) fn arm_rto(&mut self, deadline: SimTime) {
        self.rto_deadline = Some(deadline);
    }

    /// Arms the retransmission timer only if not already running.
    pub(crate) fn arm_rto_if_unarmed(&mut self, deadline: SimTime) {
        if self.rto_deadline.is_none() {
            self.rto_deadline = Some(deadline);
        }
    }

    pub(crate) fn disarm_rto(&mut self) {
        self.rto_deadline = None;
    }
}
