//! A complete reference TCP engine.
//!
//! This is the protocol substrate the baseline stacks (Linux-model,
//! IX-model, mTCP-model) are built on, playing the role the mature kernel
//! TCP implementation plays in the paper's evaluation. It is a sans-IO
//! engine: [`TcpConn`] consumes segments and timer expirations and stages
//! outgoing segments and application events; host agents move the staged
//! segments onto the simulated network.
//!
//! Implemented: the full RFC 793 state machine, option negotiation (MSS,
//! window scaling, timestamps, SACK-permitted), flow control with window
//! scaling, full out-of-order reassembly (every received segment is kept,
//! like a SACK-capable Linux receiver), RTT estimation (Jacobson/Karels
//! via timestamps), RTO with exponential backoff, fast retransmit +
//! NewReno fast recovery, and pluggable congestion control: NewReno and
//! window-based DCTCP with ECN negotiation and per-packet accurate ECN
//! echo.
//!
//! Simplifications (documented in DESIGN.md): every data segment is ACKed
//! immediately (no delayed ACK — all stacks in the evaluation are compared
//! with the same ACK policy, and TAS's fast path also ACKs per packet), no
//! Nagle (datacenter stacks disable it), no urgent data, short TIME_WAIT.
// Panic-freedom is a stack invariant: unwrap/expect are denied in
// production code (tests are exempt). Packet-path code degrades
// gracefully via let-else + debug_assert; see tas-lint rule R4.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod audit;
pub mod cc;
pub mod conn;
pub mod reasm;
pub mod rtt;

pub use cc::{CcKind, CongestionControl, Dctcp, NewReno, Timely};
pub use conn::{ConnStats, EndpointInfo, TcpConfig, TcpConn, TcpEvent, TcpState};
pub use reasm::Reassembler;
pub use rtt::RttEstimator;
