//! Connection invariant auditing for the baseline TCP stack.
//!
//! Sibling of `tas::audit`: in debug/test builds (and with the `audit`
//! feature), [`TcpConn`](crate::TcpConn) re-checks its structural
//! invariants at the entry and exit of every segment/timer/poll
//! operation. `TcpConn`'s fields are private to its module, so the
//! connection hands this module a [`ConnView`] of the relevant values.

use crate::reasm::Reassembler;
use std::sync::atomic::{AtomicU64, Ordering};
use tas_shm::ByteRing;

/// Process-wide count of audited operations.
static CHECKS: AtomicU64 = AtomicU64::new(0);

/// Number of audit passes performed so far in this process.
pub fn checks_performed() -> u64 {
    CHECKS.load(Ordering::Relaxed)
}

/// True when audit hooks are compiled in.
pub const fn enabled() -> bool {
    cfg!(any(test, debug_assertions, feature = "audit"))
}

/// The slice of connection state the auditor inspects.
pub struct ConnView<'a> {
    /// Send-side unacknowledged base (stream offset).
    pub una_off: u64,
    /// Next stream offset to transmit.
    pub nxt_off: u64,
    /// Highest stream offset ever transmitted.
    pub max_sent_off: u64,
    /// Transmit payload ring.
    pub tx: &'a ByteRing,
    /// In-order receive frontier (stream offset).
    pub rcv_off: u64,
    /// Receive payload ring.
    pub rx: &'a ByteRing,
    /// Out-of-order reassembly buffer.
    pub reasm: &'a Reassembler,
}

/// Checks one connection's invariants; panics with a description on any
/// violation.
pub fn check_conn(v: &ConnView<'_>) {
    CHECKS.fetch_add(1, Ordering::Relaxed);
    for (name, ring) in [("rx", v.rx), ("tx", v.tx)] {
        assert!(
            ring.len() + ring.free() == ring.capacity(),
            "audit violation: {name} ring len {} + free {} != capacity {}",
            ring.len(),
            ring.free(),
            ring.capacity()
        );
        assert!(
            ring.end_offset() - ring.start_offset() == ring.len() as u64,
            "audit violation: {name} ring offsets [{}, {}) disagree with len {}",
            ring.start_offset(),
            ring.end_offset(),
            ring.len()
        );
    }
    // Send side: the unacked base is exactly the TX ring's start (ACK
    // processing consumes acked payload in lockstep; the FIN sequence
    // byte never advances una_off), and the send cursor stays between
    // the base and the buffered frontier even across go-back-N rewinds.
    assert!(
        v.una_off == v.tx.start_offset(),
        "audit violation: una_off {} diverged from tx ring base {}",
        v.una_off,
        v.tx.start_offset()
    );
    assert!(
        v.una_off <= v.nxt_off && v.nxt_off <= v.tx.end_offset(),
        "audit violation: send cursor {} outside [{}, {}]",
        v.nxt_off,
        v.una_off,
        v.tx.end_offset()
    );
    assert!(
        v.max_sent_off <= v.tx.end_offset(),
        "audit violation: max_sent_off {} beyond buffered frontier {}",
        v.max_sent_off,
        v.tx.end_offset()
    );
    // Receive side: the in-order frontier advances in lockstep with
    // bytes committed to the RX ring.
    assert!(
        v.rcv_off == v.rx.end_offset(),
        "audit violation: rcv_off {} diverged from rx ring frontier {}",
        v.rcv_off,
        v.rx.end_offset()
    );
    // Reassembler: no buffered chunk may sit below the delivered
    // frontier (delivered data must never be re-surfaced — the
    // duplicate-residue bug class).
    if let Some((start, _end)) = v.reasm.first_range() {
        assert!(
            start >= v.reasm.delivered_frontier(),
            "audit violation: reassembler holds chunk at {} below delivered frontier {}",
            start,
            v.reasm.delivered_frontier()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rings() -> (ByteRing, ByteRing) {
        (ByteRing::new(1024), ByteRing::new(1024))
    }

    #[test]
    fn fresh_conn_view_passes() {
        let (rx, tx) = rings();
        let reasm = Reassembler::new(4096);
        check_conn(&ConnView {
            una_off: 0,
            nxt_off: 0,
            max_sent_off: 0,
            tx: &tx,
            rcv_off: 0,
            rx: &rx,
            reasm: &reasm,
        });
        assert!(checks_performed() > 0);
        assert!(enabled());
    }

    #[test]
    #[should_panic(expected = "una_off")]
    fn diverged_una_caught() {
        let (rx, tx) = rings();
        let reasm = Reassembler::new(4096);
        check_conn(&ConnView {
            una_off: 3,
            nxt_off: 3,
            max_sent_off: 3,
            tx: &tx,
            rcv_off: 0,
            rx: &rx,
            reasm: &reasm,
        });
    }

    #[test]
    #[should_panic(expected = "rcv_off")]
    fn diverged_rcv_frontier_caught() {
        let (rx, tx) = rings();
        let reasm = Reassembler::new(4096);
        check_conn(&ConnView {
            una_off: 0,
            nxt_off: 0,
            max_sent_off: 0,
            tx: &tx,
            rcv_off: 10,
            rx: &rx,
            reasm: &reasm,
        });
    }
}
