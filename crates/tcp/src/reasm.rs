//! Out-of-order segment reassembly.
//!
//! A SACK-capable receiver (the Linux model in Fig. 7) keeps *every*
//! received segment; this reassembler stores arbitrary out-of-order data
//! keyed by stream offset, bounded by the receive-buffer horizon, and
//! yields contiguous runs as holes fill. (TAS's fast path deliberately
//! keeps only a single interval instead — that lives in the `tas` crate;
//! Figure 7 compares the two.)

use std::collections::BTreeMap;

/// Bounded out-of-order reassembly buffer over stream offsets.
///
/// # Examples
///
/// ```
/// use tas_tcp::Reassembler;
/// let mut r = Reassembler::new(1024);
/// r.insert(5, b"world".to_vec());
/// assert!(r.pop_ready(0).is_none());
/// r.insert(0, b"hello".to_vec());
/// assert_eq!(r.pop_ready(0).unwrap(), b"helloworld");
/// ```
#[derive(Clone, Debug, Default)]
pub struct Reassembler {
    /// Out-of-order chunks keyed by absolute stream offset. Invariant:
    /// entries never overlap, and none start below `delivered`.
    chunks: BTreeMap<u64, Vec<u8>>,
    /// Total bytes held.
    held: usize,
    /// Maximum bytes held (receive-buffer bound).
    limit: usize,
    /// Delivered frontier: the highest offset ever handed out through
    /// [`Reassembler::pop_ready`]. Duplicates of already-delivered data
    /// (a retransmission racing the original under loss) are trimmed
    /// against it on insert, so they can never strand bytes below the
    /// frontier where no `pop_ready` cursor will ever reach them.
    delivered: u64,
}

impl Reassembler {
    /// Creates a reassembler bounded to `limit` buffered bytes.
    pub fn new(limit: usize) -> Self {
        Reassembler {
            chunks: BTreeMap::new(),
            held: 0,
            limit,
            delivered: 0,
        }
    }

    /// Bytes currently buffered out of order.
    pub fn held(&self) -> usize {
        self.held
    }

    /// Number of discontiguous chunks held.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// The delivered frontier: offset just past the last byte returned
    /// by [`Reassembler::pop_ready`].
    pub fn delivered_frontier(&self) -> u64 {
        self.delivered
    }

    /// Inserts a segment at absolute stream offset `offset`. Bytes below
    /// the delivered frontier and overlapping bytes already held are
    /// trimmed; data beyond the buffer limit is dropped. Returns the
    /// number of new bytes stored.
    pub fn insert(&mut self, offset: u64, mut data: Vec<u8>) -> usize {
        if data.is_empty() {
            return 0;
        }
        let mut offset = offset;
        // Trim against data already delivered: a duplicate of a popped
        // segment must leave no residue (held() stays 0).
        if offset < self.delivered {
            let stale = (self.delivered - offset) as usize;
            if stale >= data.len() {
                return 0; // Entirely old data.
            }
            data.drain(..stale);
            offset = self.delivered;
        }
        // Trim against the predecessor chunk.
        if let Some((&po, pdata)) = self.chunks.range(..=offset).next_back() {
            let pend = po + pdata.len() as u64;
            if pend > offset {
                let overlap = (pend - offset) as usize;
                if overlap >= data.len() {
                    return 0; // Fully contained.
                }
                data.drain(..overlap);
                offset = pend;
            }
        }
        // Trim against successors.
        let mut stored = 0;
        let end = offset + data.len() as u64;
        let successors: Vec<u64> = self.chunks.range(offset..end).map(|(&o, _)| o).collect();
        let mut pieces: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut cursor = offset;
        let mut remaining = data;
        for so in successors {
            if so > cursor {
                let take = (so - cursor) as usize;
                let rest = remaining.split_off(take);
                pieces.push((cursor, remaining));
                remaining = rest;
            }
            // Skip the bytes covered by the existing chunk at `so`.
            let covered = self.chunks[&so].len().min(remaining.len());
            remaining.drain(..covered);
            cursor = so + self.chunks[&so].len() as u64;
            if remaining.is_empty() {
                break;
            }
        }
        if !remaining.is_empty() && cursor < end {
            pieces.push((cursor, remaining));
        }
        for (o, d) in pieces {
            if d.is_empty() {
                continue;
            }
            // Respect the byte limit.
            if self.held + d.len() > self.limit {
                let room = self.limit - self.held;
                if room == 0 {
                    break;
                }
                let mut d = d;
                d.truncate(room);
                stored += d.len();
                self.held += d.len();
                self.chunks.insert(o, d);
                break;
            }
            stored += d.len();
            self.held += d.len();
            self.chunks.insert(o, d);
        }
        stored
    }

    /// If a chunk begins exactly at `next_offset`, removes and returns the
    /// maximal contiguous run starting there.
    pub fn pop_ready(&mut self, next_offset: u64) -> Option<Vec<u8>> {
        let mut out: Vec<u8> = Vec::new();
        let mut cursor = next_offset;
        while let Some((&o, _)) = self.chunks.range(cursor..=cursor).next() {
            let Some(d) = self.chunks.remove(&o) else {
                debug_assert!(false, "ranged key present in map");
                break;
            };
            self.held -= d.len();
            cursor += d.len() as u64;
            out.extend_from_slice(&d);
        }
        self.delivered = self.delivered.max(cursor);
        if out.is_empty() {
            None
        } else {
            Some(out)
        }
    }

    /// Advances the delivered frontier to `frontier` when bytes up to it
    /// arrived in order, bypassing the reassembler (a retransmission can
    /// overrun data already buffered out of order). Chunks entirely below
    /// the frontier are dropped; a chunk straddling it is trimmed so its
    /// tail stays poppable at the new frontier instead of being stranded
    /// where no `pop_ready` cursor will ever reach it.
    pub fn advance_frontier(&mut self, frontier: u64) {
        while let Some((&o, d)) = self.chunks.range(..frontier).next() {
            let end = o + d.len() as u64;
            let Some(d) = self.chunks.remove(&o) else {
                debug_assert!(false, "ranged key present in map");
                break;
            };
            if end <= frontier {
                self.held -= d.len();
            } else {
                let stale = (frontier - o) as usize;
                let mut d = d;
                d.drain(..stale);
                self.held -= stale;
                self.chunks.insert(frontier, d);
                break;
            }
        }
        self.delivered = self.delivered.max(frontier);
    }

    /// The first buffered chunk as (offset, length), if any — the first
    /// SACK block.
    pub fn first_range(&self) -> Option<(u64, u64)> {
        self.chunks.iter().next().map(|(&o, d)| (o, d.len() as u64))
    }

    /// Offset just past the highest buffered byte, if any (for SACK-style
    /// diagnostics).
    pub fn max_offset(&self) -> Option<u64> {
        self.chunks
            .iter()
            .next_back()
            .map(|(&o, d)| o + d.len() as u64)
    }

    /// Drops all buffered data.
    pub fn clear(&mut self) {
        self.chunks.clear();
        self.held = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_passthrough() {
        let mut r = Reassembler::new(100);
        r.insert(0, b"abc".to_vec());
        assert_eq!(r.pop_ready(0).unwrap(), b"abc");
        assert_eq!(r.held(), 0);
    }

    #[test]
    fn fills_single_hole() {
        let mut r = Reassembler::new(100);
        r.insert(3, b"def".to_vec());
        assert!(r.pop_ready(0).is_none());
        r.insert(0, b"abc".to_vec());
        assert_eq!(r.pop_ready(0).unwrap(), b"abcdef");
    }

    #[test]
    fn advance_frontier_trims_overrun_chunks() {
        // An in-order retransmission overruns buffered ooo data: the
        // covered prefix is discarded, the tail re-keys to the frontier.
        let mut r = Reassembler::new(100);
        r.insert(5, b"fghij".to_vec());
        r.insert(12, b"mn".to_vec());
        r.advance_frontier(8);
        assert_eq!(r.held(), 4, "f/g/h trimmed");
        assert_eq!(r.first_range(), Some((8, 2)));
        assert_eq!(r.pop_ready(8).unwrap(), b"ij");
        r.advance_frontier(14);
        assert_eq!(r.held(), 0, "fully covered chunk dropped");
        assert!(r.pop_ready(14).is_none());
        // Stale duplicates after the advance leave no residue.
        assert_eq!(r.insert(6, b"ghijklm".to_vec()), 0);
    }

    #[test]
    fn multiple_holes_fill_out_of_order() {
        let mut r = Reassembler::new(100);
        r.insert(6, b"ghi".to_vec());
        r.insert(0, b"abc".to_vec());
        assert_eq!(r.pop_ready(0).unwrap(), b"abc");
        r.insert(3, b"def".to_vec());
        assert_eq!(r.pop_ready(3).unwrap(), b"defghi");
    }

    #[test]
    fn duplicate_segments_ignored() {
        let mut r = Reassembler::new(100);
        assert_eq!(r.insert(5, b"xyz".to_vec()), 3);
        assert_eq!(r.insert(5, b"xyz".to_vec()), 0);
        assert_eq!(r.held(), 3);
    }

    #[test]
    fn partial_overlap_trimmed() {
        let mut r = Reassembler::new(100);
        r.insert(0, b"abcd".to_vec());
        // Overlaps [2,4), extends to 6.
        assert_eq!(r.insert(2, b"CDEF".to_vec()), 2);
        assert_eq!(r.pop_ready(0).unwrap(), b"abcdEF");
    }

    #[test]
    fn overlap_bridging_existing_chunks() {
        let mut r = Reassembler::new(100);
        r.insert(0, b"ab".to_vec());
        r.insert(4, b"ef".to_vec());
        // Covers 0..6, should only store the hole 2..4.
        assert_eq!(r.insert(0, b"XXcdXX".to_vec()), 2);
        assert_eq!(r.pop_ready(0).unwrap(), b"abcdef");
    }

    #[test]
    fn limit_enforced() {
        let mut r = Reassembler::new(4);
        assert_eq!(r.insert(10, b"abcdef".to_vec()), 4);
        assert_eq!(r.held(), 4);
        assert_eq!(r.insert(100, b"x".to_vec()), 0);
    }

    #[test]
    fn max_offset_reported() {
        let mut r = Reassembler::new(100);
        assert_eq!(r.max_offset(), None);
        r.insert(7, b"ab".to_vec());
        assert_eq!(r.max_offset(), Some(9));
    }

    #[test]
    fn clear_resets() {
        let mut r = Reassembler::new(100);
        r.insert(3, b"abc".to_vec());
        r.clear();
        assert_eq!(r.held(), 0);
        assert_eq!(r.chunk_count(), 0);
    }
}
