//! A host running one of the baseline stacks.
//!
//! [`StackHost`] pairs the complete `tas-tcp` connection engine with a
//! [`StackProfile`] and a [`ThreadModel`]:
//!
//! * [`ThreadModel::InKernel`] (Linux): stack processing runs on the same
//!   cores as the application; per-connection state is shared machine-wide
//!   (cache + contention charges); the app pays per-syscall costs.
//! * [`ThreadModel::RunToCompletion`] (IX): per-core partitioned stacks,
//!   run-to-completion into the app's event handler, libevent-style API.
//! * [`ThreadModel::SplitBatched`] (mTCP): dedicated stack cores; events
//!   cross to app cores in batches (flushed on size or timeout), buying
//!   throughput at a latency cost.
//! * [`ThreadModel::MpkDataplane`] (MPK-protected dataplane): Linux-grade
//!   packet processing runs to completion on the app's cores inside an
//!   intra-process protection domain; every app↔stack interaction pays a
//!   WRPKRU-scale crossing instead of a syscall.
//! * [`ThreadModel::OffPathNic`] (PnO-style SmartNIC): the whole TCP
//!   stack runs on wimpy NIC-resident cores ([`CoreClass::Nic`]); host
//!   cores only run the app and a descriptor shim, and every app↔NIC
//!   interaction crosses the modeled PCIe/DMA boundary.

use crate::profiles::StackProfile;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use tas_cpusim::{CacheModel, CoreClass, CorePool, Crossing, CycleAccount, Module, PcieModel};
use tas_netsim::app::{App, AppEvent, SockId, StackApi};
use tas_netsim::rss::hash_tuple;
use tas_netsim::{HostNic, NetMsg, NicConfig};
use tas_proto::{FlowKey, MacAddr, Segment, TcpFlags};
use tas_sim::{
    impl_as_any, Agent, CoreUtilSeries, CounterId, Ctx, Event, Registry, Scope, SeriesRecorder,
    SimTime, TimerId,
};
use tas_tcp::{EndpointInfo, TcpConfig, TcpConn, TcpEvent};

/// Threading/batching architecture of the stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThreadModel {
    /// Monolithic in-kernel (Linux): stack on app cores, shared state.
    InKernel,
    /// Per-core run-to-completion (IX).
    RunToCompletion,
    /// Dedicated stack cores with batched app queues (mTCP).
    SplitBatched {
        /// Cores reserved for the stack (out of the host total).
        stack_cores: usize,
        /// Events per batch before an eager flush.
        batch: usize,
        /// Maximum time events wait before a flush.
        flush: SimTime,
    },
    /// Intra-process MPK-protected dataplane: run-to-completion on app
    /// cores with per-core partitioned state, but every app↔stack
    /// boundary interaction pays `crossing` (a WRPKRU pair) instead of
    /// the syscall cost baked into the Linux API constants.
    MpkDataplane {
        /// Cost of one protected-domain crossing.
        crossing: Crossing,
    },
    /// Off-path SmartNIC (PnO-style): cores `0..nic_cores` are wimpy
    /// NIC-class cores running the entire TCP stack; the remaining
    /// cores are host-class and run only the app plus a descriptor
    /// shim. Every app↔NIC interaction pays the PCIe/DMA boundary
    /// (one-way descriptor latency, payload serialization, amortized
    /// doorbells).
    OffPathNic {
        /// Cores dedicated to the on-NIC stack (out of the host total).
        nic_cores: usize,
        /// NIC core clock; host cores keep the config's `freq_hz`.
        nic_freq_hz: u64,
        /// The modeled PCIe/DMA boundary.
        pcie: PcieModel,
    },
}

/// Configuration of a baseline host.
#[derive(Clone, Debug)]
pub struct StackHostConfig {
    /// Core clock.
    pub freq_hz: u64,
    /// Total cores.
    pub cores: usize,
    /// Threading model.
    pub model: ThreadModel,
    /// TCP parameters (congestion control, buffers, recovery mode).
    pub tcp: TcpConfig,
    /// Effective cache available for connection state: machine-wide for
    /// shared-state stacks, divided per core for partitioned ones.
    pub cache_bytes: u64,
    /// RX-ring bound: packets arriving when the owning core is further
    /// behind than this are dropped.
    pub max_core_backlog: SimTime,
}

impl StackHostConfig {
    /// A Linux-model host with `cores` cores (paper server: 2.1 GHz,
    /// 33 MB aggregate cache).
    pub fn linux(cores: usize) -> Self {
        StackHostConfig {
            freq_hz: 2_100_000_000,
            cores,
            model: ThreadModel::InKernel,
            tcp: TcpConfig {
                // Effective Linux tail-recovery timescale: stock RTO_MIN
                // is 200 ms but tail-loss probes (on by default since 3.10)
                // retransmit after ~2 SRTT; 10 ms approximates the
                // combined behaviour without modelling TLP explicitly.
                rto_min: SimTime::from_ms(10),
                rto_max: SimTime::from_secs(2),
                ..TcpConfig::default()
            },
            cache_bytes: 33 << 20,
            max_core_backlog: SimTime::from_us(500),
        }
    }

    /// An IX-model host.
    pub fn ix(cores: usize) -> Self {
        let mut cfg = StackHostConfig::linux(cores);
        cfg.model = ThreadModel::RunToCompletion;
        cfg.tcp.rto_min = SimTime::from_ms(10);
        cfg
    }

    /// An mTCP-model host with `stack_cores` of the total dedicated to the
    /// stack.
    pub fn mtcp(cores: usize, stack_cores: usize) -> Self {
        let mut cfg = StackHostConfig::linux(cores);
        cfg.model = ThreadModel::SplitBatched {
            stack_cores,
            batch: 32,
            flush: SimTime::from_us(100),
        };
        cfg.tcp.rto_min = SimTime::from_ms(10);
        cfg
    }

    /// An MPK-protected-dataplane host: Linux-grade packet processing in
    /// an intra-process protection domain, crossed via WRPKRU.
    pub fn mpk(cores: usize) -> Self {
        let mut cfg = StackHostConfig::linux(cores);
        cfg.model = ThreadModel::MpkDataplane {
            crossing: Crossing::wrpkru(),
        };
        cfg
    }

    /// A PnO-style off-path SmartNIC host: `nic_cores` wimpy 800 MHz
    /// NIC cores run the stack behind a PCIe Gen3 x8 boundary;
    /// `host_cores` host cores run the app. The effective cache is the
    /// SmartNIC's small last-level cache (BlueField-class, ~6 MB),
    /// partitioned across the NIC cores.
    pub fn pno(host_cores: usize, nic_cores: usize) -> Self {
        let mut cfg = StackHostConfig::linux(host_cores + nic_cores);
        cfg.model = ThreadModel::OffPathNic {
            nic_cores,
            nic_freq_hz: 800_000_000,
            pcie: PcieModel::gen3_x8(),
        };
        cfg.cache_bytes = 6 << 20;
        cfg
    }
}

/// Timer kinds.
pub mod timers {
    /// Host init.
    pub const INIT: u32 = 0;
    /// Per-connection TCP timer; data = (slot << 32) | generation.
    pub const CONN: u32 = 1;
    /// mTCP batch flush; data = app core index.
    pub const BATCH: u32 = 2;
    /// Application timer; data = (context << 48) | token.
    pub const APP: u32 = 3;
    /// Deferred app-event delivery; data = core index.
    pub const APP_RUN: u32 = 4;
    /// Deferred connection command (API send/recv/connect follow-ups).
    pub const CONN_CMD: u32 = 5;
}

/// Diagnostic snapshot row from [`StackHost::dump_conns`]; see
/// [`TcpConn::debug_state`](tas_tcp::TcpConn::debug_state) for fields.
pub type ConnDebug = (u64, u64, u64, u32, u64, bool, u32, u64, usize, usize);

/// Descriptor size DMA'd per app↔NIC notification/command (a cache line,
/// as real NIC descriptor rings use).
const EVENT_DESC_BYTES: u64 = 64;

struct Slot {
    conn: TcpConn,
    accepted: bool,
    want_write: bool,
    connected_sent: bool,
    closed_sent: bool,
    /// A Readable event is outstanding (epoll level-trigger coalescing:
    /// one wakeup drains a whole backlog with one recv, instead of one
    /// syscall per segment).
    rx_notified: bool,
    armed: SimTime,
    gen: u32,
    /// Live engine handle for the armed CONN timer; superseded timers are
    /// cancelled in the queue (the `gen` check remains as a backstop for
    /// same-instant fires the engine cannot retract).
    timer_id: Option<TimerId>,
}

enum ApiOp {
    Touch(u32),
    Connect { slot: u32 },
    Timer { delay: SimTime, token: u64 },
    Post { context: u16, token: u64 },
}

enum ConnCmd {
    Touch(u32),
    Connect(u32),
}

#[derive(Default)]
struct Frame {
    core: usize,
    now: SimTime,
    api_cycles: u64,
    app_cycles: u64,
    /// Domain crossings this frame performed (activation entry plus one
    /// per API call); priced by the thread model's boundary primitive.
    crossings: u64,
    /// Payload bytes the frame moved across the app↔stack boundary
    /// (DMA-serialized for the off-path model).
    dma_bytes: u64,
    ops: Vec<ApiOp>,
}

struct Inner {
    profile: StackProfile,
    cfg: StackHostConfig,
    ip: Ipv4Addr,
    mac: MacAddr,
    nic: HostNic,
    cores: CorePool,
    slots: Vec<Option<Slot>>,
    free: Vec<u32>,
    /// Flow-key → slot lookup: point lookups only, but BTreeMap so any
    /// future iteration (teardown sweeps, debug dumps) is deterministic.
    by_key: BTreeMap<FlowKey, u32>,
    listeners: BTreeMap<u16, ()>,
    next_port: u16,
    acct: CycleAccount,
    /// Per-app-core pending event batches (mTCP model).
    batches: Vec<Vec<(SockId, AppEvent)>>,
    batch_armed: Vec<bool>,
    /// Deferred app events per core: every cross-component hop is queued
    /// and woken by a timer at its ready time — executing it inline at a
    /// future timestamp would reserve the core ahead of interim arrivals.
    app_q: Vec<std::collections::VecDeque<AppEvent>>,
    /// Deferred connection commands (drained by CONN_CMD timers).
    cmd_q: std::collections::VecDeque<ConnCmd>,
    started: bool,
    /// Host-level metric registry (replaces the old ad-hoc `HostStats`
    /// struct storage; [`StackHost::host_stats`] rebuilds the compat view).
    reg: Registry,
    c_drop_backlog: CounterId,
    c_established: CounterId,
    c_closed: CounterId,
    c_batches: CounterId,
    c_app_bytes: CounterId,
    /// Domain crossings charged at the boundary primitive's cost (only
    /// advances for the MPK/off-path models; zero elsewhere).
    c_crossings: CounterId,
    /// Payload bytes serialized across the PCIe/DMA boundary.
    c_dma_bytes: CounterId,
    /// TCP counters folded in from connections whose slots were dropped
    /// (so telemetry keeps the full-run totals, not just live conns).
    tcp_cum: tas_tcp::ConnStats,
    /// Fixed-cadence queue-depth/occupancy sampler (sim-clock grid); the
    /// same recorder the TAS host carries, so determinism tests can
    /// compare both stacks' series byte-for-byte.
    series: SeriesRecorder,
    /// Per-core utilization, sampled on the same 1 ms grid.
    core_util: CoreUtilSeries,
    frame: Frame,
    /// True when this host's cycles are attributed by the profiler
    /// (mirrors `TasHost`: only the host under measurement is enabled).
    #[cfg(feature = "profile")]
    prof: bool,
}

#[cfg(feature = "profile")]
impl Inner {
    /// Arms cycle attribution for one of this host's cores, or disarms
    /// the thread-local profiler when this host is not being profiled.
    fn prof_arm(&self, idx: u32) {
        if self.prof {
            tas_telemetry::profile::set_core("core", idx);
        } else {
            tas_telemetry::profile::disarm();
        }
    }
}

/// A baseline-stack host agent.
pub struct StackHost {
    inner: Inner,
    app: Option<Box<dyn App>>,
    /// Tenant identity assigned by a multi-tenant harness; `None` until
    /// [`StackHost::set_tenant`] tags the host.
    tenant: Option<u32>,
}

impl StackHost {
    /// Creates a host; inject a [`timers::INIT`] timer to start it.
    pub fn new(
        ip: Ipv4Addr,
        mac: MacAddr,
        mut nic_cfg: NicConfig,
        profile: StackProfile,
        cfg: StackHostConfig,
        uplink: tas_sim::AgentId,
        app: Box<dyn App>,
    ) -> Self {
        assert!(cfg.cores >= 1, "need at least one core");
        if let ThreadModel::SplitBatched { stack_cores, .. } = cfg.model {
            assert!(
                stack_cores >= 1 && stack_cores < cfg.cores,
                "mTCP model needs 1..cores stack cores"
            );
        }
        if let ThreadModel::OffPathNic { nic_cores, .. } = cfg.model {
            assert!(
                nic_cores >= 1 && nic_cores < cfg.cores,
                "off-path model needs 1..cores NIC cores"
            );
        }
        nic_cfg.rx_queues = cfg.cores;
        let nic = HostNic::new(mac, nic_cfg, uplink);
        let cores = match cfg.model {
            ThreadModel::OffPathNic {
                nic_cores,
                nic_freq_hz,
                ..
            } => CorePool::heterogeneous(&[
                (CoreClass::Nic, nic_cores, nic_freq_hz),
                (CoreClass::Host, cfg.cores - nic_cores, cfg.freq_hz),
            ]),
            _ => CorePool::new(cfg.cores, cfg.freq_hz),
        };
        let app_core_count = cfg.cores;
        let mut reg = Registry::new();
        let c_drop_backlog = reg.counter("host.drop_backlog", Scope::Global);
        let c_established = reg.counter("host.established", Scope::Global);
        let c_closed = reg.counter("host.closed", Scope::Global);
        let c_batches = reg.counter("host.batches", Scope::Global);
        let c_app_bytes = reg.counter("app.bytes_delivered", Scope::Global);
        let c_crossings = reg.counter("boundary.crossings", Scope::Global);
        let c_dma_bytes = reg.counter("boundary.dma_bytes", Scope::Global);
        StackHost {
            inner: Inner {
                profile,
                cfg,
                ip,
                mac,
                nic,
                cores,
                slots: Vec::new(),
                free: Vec::new(),
                by_key: BTreeMap::new(),
                listeners: BTreeMap::new(),
                next_port: 40_000,
                acct: CycleAccount::new(),
                batches: (0..app_core_count).map(|_| Vec::new()).collect(),
                batch_armed: vec![false; app_core_count],
                app_q: (0..app_core_count)
                    .map(|_| std::collections::VecDeque::new())
                    .collect(),
                cmd_q: std::collections::VecDeque::new(),
                started: false,
                reg,
                c_drop_backlog,
                c_established,
                c_closed,
                c_batches,
                c_app_bytes,
                c_crossings,
                c_dma_bytes,
                tcp_cum: tas_tcp::ConnStats::default(),
                series: SeriesRecorder::new(SimTime::from_ms(1)),
                core_util: CoreUtilSeries::new(app_core_count),
                frame: Frame::default(),
                #[cfg(feature = "profile")]
                prof: false,
            },
            app: Some(app),
            tenant: None,
        }
    }

    // ------------------------------------------------------------------
    // Accessors.

    /// Tags this host with a tenant identity (mirrors
    /// `TasHost::set_tenant`); tenant-scoped counters are re-emitted in
    /// [`StackHost::telemetry_snapshot`].
    pub fn set_tenant(&mut self, tenant: u32) {
        self.tenant = Some(tenant);
    }

    /// The tenant identity, if one was assigned.
    pub fn tenant(&self) -> Option<u32> {
        self.tenant
    }

    /// The host's IP.
    pub fn ip(&self) -> Ipv4Addr {
        self.inner.ip
    }

    /// The stack profile name.
    pub fn stack_name(&self) -> &'static str {
        self.inner.profile.name
    }

    /// Opts this host into cycle-attribution profiling: its core runs
    /// arm the thread-local profiler with `core<i>` identities. Hosts
    /// never enabled disarm the profiler before running instead, so
    /// enabling one host on a thread profiles exactly that host.
    #[cfg(feature = "profile")]
    pub fn enable_profiling(&mut self) {
        self.inner.prof = true;
    }

    /// Cycle accounting (Tables 1–2).
    pub fn account(&self) -> &CycleAccount {
        &self.inner.acct
    }

    /// Exact cycles submitted per core since creation (the integer
    /// ground truth the attribution profiler conserves against).
    pub fn busy_cycles(&self) -> Vec<u64> {
        (0..self.inner.cores.len())
            .map(|i| self.inner.cores.core_ref(i).busy_cycles())
            .collect()
    }

    /// Silicon class of each core, in core order (all host-class except
    /// under the off-path model, whose NIC cores come first).
    pub fn core_classes(&self) -> Vec<CoreClass> {
        (0..self.inner.cores.len())
            .map(|i| self.inner.cores.class(i))
            .collect()
    }

    /// Total cycles submitted to cores of `class` — the off-path
    /// model's headline currency is *host*-class cycles per request
    /// (NIC-core cycles are the SmartNIC's, not the server's).
    pub fn busy_cycles_by_class(&self, class: CoreClass) -> u64 {
        self.inner.cores.busy_cycles_by_class(class)
    }

    /// Mutable account access.
    pub fn account_mut(&mut self) -> &mut CycleAccount {
        &mut self.inner.acct
    }

    /// The host's metric registry.
    pub fn registry(&self) -> &Registry {
        &self.inner.reg
    }

    /// A deterministic, ordered snapshot of every counter the host can
    /// see: registry, cumulative TCP counters (live connections plus
    /// everything folded in when slots were dropped), NIC fault-injector
    /// counters, and live-state gauges.
    pub fn telemetry_snapshot(&self) -> tas_sim::Snapshot {
        let mut snap = self.inner.reg.snapshot();
        let t = self.tcp_stats();
        snap.insert_counter("tcp.segs_out", Scope::Global, t.segs_out);
        snap.insert_counter("tcp.segs_in", Scope::Global, t.segs_in);
        snap.insert_counter("tcp.bytes_sent", Scope::Global, t.bytes_sent);
        snap.insert_counter("tcp.bytes_received", Scope::Global, t.bytes_received);
        snap.insert_counter("tcp.retransmits", Scope::Global, t.retransmits);
        snap.insert_counter("tcp.fast_retransmits", Scope::Global, t.fast_retransmits);
        snap.insert_counter("tcp.timeouts", Scope::Global, t.timeouts);
        snap.insert_counter("tcp.dupacks_in", Scope::Global, t.dupacks_in);
        snap.insert_counter("tcp.ece_in", Scope::Global, t.ece_in);
        for (k, v) in self.inner.nic.tx_fault_snapshot().iter() {
            snap.insert(k.name, k.scope, *v);
        }
        snap.insert_gauge("conns.live", Scope::Global, self.inner.by_key.len() as i64);
        if let Some(ten) = self.tenant {
            let scope = Scope::Tenant(ten);
            snap.insert_gauge("tenant.flows_live", scope, self.inner.by_key.len() as i64);
            snap.insert_counter(
                "tenant.established",
                scope,
                self.inner.reg.counter_value("host.established", Scope::Global),
            );
            snap.insert_counter("tenant.bytes_rx", scope, t.bytes_received);
        }
        snap
    }

    /// The host's NIC (e.g. for fault-injection counters in tests).
    pub fn nic(&self) -> &tas_netsim::HostNic {
        &self.inner.nic
    }

    /// Live connection count.
    pub fn conn_count(&self) -> usize {
        self.inner.by_key.len()
    }

    /// Aggregated TCP stats: live connections plus counters folded in
    /// from connections whose slots were already dropped, so the totals
    /// cover the whole run.
    pub fn tcp_stats(&self) -> tas_tcp::ConnStats {
        let mut total = self.inner.tcp_cum;
        for s in self.inner.slots.iter().flatten() {
            let st = s.conn.stats;
            total.segs_out += st.segs_out;
            total.segs_in += st.segs_in;
            total.bytes_sent += st.bytes_sent;
            total.bytes_received += st.bytes_received;
            total.retransmits += st.retransmits;
            total.fast_retransmits += st.fast_retransmits;
            total.timeouts += st.timeouts;
            total.dupacks_in += st.dupacks_in;
            total.ece_in += st.ece_in;
        }
        total
    }

    /// Diagnostic: per-connection debug snapshots.
    pub fn dump_conns(&self, n: usize) -> Vec<ConnDebug> {
        self.inner
            .slots
            .iter()
            .flatten()
            .take(n)
            .map(|s| s.conn.debug_state())
            .collect()
    }

    /// Downcasts the application if it is a `T`.
    pub fn try_app<T: 'static>(&self) -> Option<&T> {
        self.app
            .as_ref()
            .and_then(|a| a.as_any().downcast_ref::<T>())
    }

    /// Downcasts the application.
    ///
    /// # Panics
    ///
    /// Panics if the app is not a `T`.
    pub fn app_as<T: 'static>(&self) -> &T {
        self.app
            .as_ref()
            .expect("app present")
            .as_any()
            .downcast_ref::<T>()
            .expect("app type mismatch")
    }

    /// Mutable downcast of the application.
    ///
    /// # Panics
    ///
    /// Panics if the app is not a `T`.
    pub fn app_as_mut<T: 'static>(&mut self) -> &mut T {
        self.app
            .as_mut()
            .expect("app present")
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("app type mismatch")
    }

    // ------------------------------------------------------------------
    // Core assignment.

    fn stack_core_count(inner: &Inner) -> usize {
        match inner.cfg.model {
            ThreadModel::SplitBatched { stack_cores, .. } => stack_cores,
            ThreadModel::OffPathNic { nic_cores, .. } => nic_cores,
            _ => inner.cfg.cores,
        }
    }

    /// First core the application may run on (app cores sit above the
    /// NIC cores in the off-path layout; elsewhere core 0 is fine).
    fn first_app_core(inner: &Inner) -> usize {
        match inner.cfg.model {
            ThreadModel::OffPathNic { nic_cores, .. } => nic_cores,
            _ => 0,
        }
    }

    /// Cycles one app↔stack boundary crossing costs under this thread
    /// model (zero where the cost is already folded into API constants).
    fn crossing_cycles(inner: &Inner) -> u64 {
        match inner.cfg.model {
            ThreadModel::MpkDataplane { crossing } => crossing.cycles,
            ThreadModel::OffPathNic { pcie, .. } => pcie.doorbell_amortized(),
            _ => 0,
        }
    }

    /// Profiler frame name for this model's boundary primitive.
    #[cfg(feature = "profile")]
    fn crossing_label(inner: &Inner) -> &'static str {
        match inner.cfg.model {
            ThreadModel::MpkDataplane { crossing } => crossing.kind.label(),
            ThreadModel::OffPathNic { pcie, .. } => pcie.doorbell.kind.label(),
            _ => "ctxsw",
        }
    }

    fn app_core_of(inner: &Inner, slot: u32) -> usize {
        match inner.cfg.model {
            ThreadModel::SplitBatched { stack_cores, .. } => {
                stack_cores + (slot as usize % (inner.cfg.cores - stack_cores))
            }
            ThreadModel::OffPathNic { nic_cores, .. } => {
                nic_cores + (slot as usize % (inner.cfg.cores - nic_cores))
            }
            _ => Self::stack_core_of(inner, slot),
        }
    }

    fn stack_core_of(inner: &Inner, slot: u32) -> usize {
        let Some(s) = inner.slots.get(slot as usize).and_then(Option::as_ref) else {
            return 0;
        };
        let k = s.conn.remote();
        let l = s.conn.local();
        let h = hash_tuple(k.ip, l.ip, k.port, l.port);
        h as usize % Self::stack_core_count(inner)
    }

    // ------------------------------------------------------------------
    // Stack-side processing.

    fn cache_and_contention(inner: &Inner) -> u64 {
        let p = &inner.profile;
        let conns = inner.by_key.len() as u64;
        if conns == 0 {
            return 0;
        }
        let (cache, conns_in_set) = if p.partitioned_state {
            let n = Self::stack_core_count(inner) as u64;
            (inner.cfg.cache_bytes / n.max(1), conns / n.max(1))
        } else {
            (inner.cfg.cache_bytes, conns)
        };
        let model = CacheModel::new(cache.max(1), p.lines_per_req, p.miss_penalty);
        let stall = model.stall_cycles(p.conn_state_bytes, conns_in_set) as u64;
        let contention = p.contention.stall_cycles(inner.cfg.cores) as u64;
        stall + contention
    }

    /// Runs a connection interaction on its stack core at `t`: `f` drives
    /// the engine, then staged segments are cost-charged and transmitted
    /// and events delivered. `base_cost` is the packet-type processing
    /// cost; `label` names the operation's profile frame.
    #[cfg_attr(not(feature = "profile"), allow(unused_variables))]
    #[allow(clippy::too_many_arguments)] // One call site per packet class; the tuple is the cost model.
    fn run_conn(
        &mut self,
        label: &'static str,
        slot: u32,
        t: SimTime,
        base_cost: u64,
        extra: u64,
        ctx: &mut Ctx<'_, NetMsg>,
        f: impl FnOnce(&mut TcpConn, SimTime),
    ) {
        let core_idx = Self::stack_core_of(&self.inner, slot);
        #[cfg(feature = "profile")]
        self.inner.prof_arm(core_idx as u32);
        #[cfg(feature = "profile")]
        let _prof = tas_telemetry::profile::guard(label);
        #[cfg(feature = "profile")]
        tas_telemetry::profile::charge(base_cost);
        let start = t.max(self.inner.cores.core_ref(core_idx).busy_until());
        let (out, events, tx_cost) = {
            let inner = &mut self.inner;
            let Some(s) = inner.slots.get_mut(slot as usize).and_then(Option::as_mut) else {
                return;
            };
            f(&mut s.conn, start);
            s.conn.poll(start);
            let out = s.conn.take_outgoing();
            let events = s.conn.take_events();
            // Charge transmit costs per staged segment.
            let mut tx_cost = 0;
            for seg in &out {
                let c = if seg.payload.is_empty() {
                    inner.profile.tx_ack
                } else {
                    inner.profile.tx_data
                };
                c.charge(&mut inner.acct, inner.profile.ipc_times_100);
                tx_cost += c.total();
            }
            (out, events, tx_cost)
        };
        let total = base_cost + extra + tx_cost;
        // Transmit and stall cycles charge through the account, not a
        // profiled funnel; stage them under their own frames so the
        // core-run drain attributes them.
        #[cfg(feature = "profile")]
        {
            if tx_cost > 0 {
                let _g = tas_telemetry::profile::guard("tx");
                tas_telemetry::profile::charge(tx_cost);
            }
            if extra > 0 {
                let _g = tas_telemetry::profile::guard("stalls");
                tas_telemetry::profile::charge(extra);
            }
        }
        if extra > 0 {
            // Cache/contention stalls: backend-bound cycles, no retired
            // instructions.
            self.inner.acct.charge(Module::Tcp, extra, 0);
        }
        let (_, end) = self.inner.cores.core(core_idx).run(t, total);
        for seg in out {
            self.inner.nic.tx(end, seg, ctx);
        }
        self.handle_conn_events(slot, events, end, ctx);
        self.rearm_conn_timer(slot, ctx);
    }

    fn rearm_conn_timer(&mut self, slot: u32, ctx: &mut Ctx<'_, NetMsg>) {
        let Some(s) = self
            .inner
            .slots
            .get_mut(slot as usize)
            .and_then(Option::as_mut)
        else {
            return;
        };
        if s.conn.is_closed() {
            // Drop the connection state, folding its counters into the
            // cumulative totals first; retract any armed timer so the
            // queue holds no ghost entry for a dead slot.
            let stale_timer = s.timer_id.take();
            let key = FlowKey::new(
                s.conn.local().ip,
                s.conn.local().port,
                s.conn.remote().ip,
                s.conn.remote().port,
            );
            let st = s.conn.stats;
            let cum = &mut self.inner.tcp_cum;
            cum.segs_out += st.segs_out;
            cum.segs_in += st.segs_in;
            cum.bytes_sent += st.bytes_sent;
            cum.bytes_received += st.bytes_received;
            cum.retransmits += st.retransmits;
            cum.fast_retransmits += st.fast_retransmits;
            cum.timeouts += st.timeouts;
            cum.dupacks_in += st.dupacks_in;
            cum.ece_in += st.ece_in;
            self.inner.by_key.remove(&key);
            self.inner.slots[slot as usize] = None;
            self.inner.free.push(slot);
            let id = self.inner.c_closed;
            self.inner.reg.inc(id);
            if let Some(tid) = stale_timer {
                ctx.cancel_timer(tid);
            }
            return;
        }
        let Some(next) = s.conn.next_timer() else {
            s.armed = SimTime::MAX;
            return;
        };
        if next < s.armed {
            s.gen = s.gen.wrapping_add(1);
            s.armed = next;
            let data = ((slot as u64) << 32) | s.gen as u64;
            if let Some(tid) = s.timer_id.take() {
                ctx.cancel_timer(tid);
            }
            s.timer_id = Some(ctx.timer_at(next, timers::CONN, data));
        }
    }

    fn handle_conn_events(
        &mut self,
        slot: u32,
        events: Vec<TcpEvent>,
        t: SimTime,
        ctx: &mut Ctx<'_, NetMsg>,
    ) {
        for ev in events {
            let app_ev = {
                let Some(s) = self
                    .inner
                    .slots
                    .get_mut(slot as usize)
                    .and_then(Option::as_mut)
                else {
                    return;
                };
                match ev {
                    TcpEvent::Connected => {
                        if s.connected_sent {
                            None
                        } else {
                            s.connected_sent = true;
                            self.inner.reg.inc(self.inner.c_established);
                            if s.accepted {
                                Some(AppEvent::Accepted {
                                    sock: slot,
                                    port: s.conn.local().port,
                                })
                            } else {
                                Some(AppEvent::Connected { sock: slot })
                            }
                        }
                    }
                    TcpEvent::DataAvailable => {
                        if s.rx_notified {
                            None
                        } else {
                            s.rx_notified = true;
                            Some(AppEvent::Readable { sock: slot })
                        }
                    }
                    TcpEvent::SendSpaceAvailable => {
                        // EPOLLOUT-style coalescing: wake the writer once a
                        // useful chunk of buffer space is available, not on
                        // every freed segment.
                        let threshold = (inner_send_buf(s) / 4).max(8 * 1024);
                        if s.want_write && s.conn.send_space() >= threshold {
                            s.want_write = false;
                            Some(AppEvent::Writable { sock: slot })
                        } else {
                            None
                        }
                    }
                    TcpEvent::PeerFin | TcpEvent::Reset | TcpEvent::Closed => {
                        if s.closed_sent {
                            None
                        } else {
                            s.closed_sent = true;
                            Some(AppEvent::Closed { sock: slot })
                        }
                    }
                }
            };
            if let Some(app_ev) = app_ev {
                self.route_app_event(slot, app_ev, t, ctx);
            }
        }
    }

    fn route_app_event(&mut self, slot: u32, ev: AppEvent, t: SimTime, ctx: &mut Ctx<'_, NetMsg>) {
        match self.inner.cfg.model {
            ThreadModel::SplitBatched { batch, flush, .. } => {
                let app_core = Self::app_core_of(&self.inner, slot);
                self.inner.batches[app_core].push((slot, ev));
                if self.inner.batches[app_core].len() >= batch {
                    self.flush_batch(app_core, t, ctx);
                } else if !self.inner.batch_armed[app_core] {
                    self.inner.batch_armed[app_core] = true;
                    ctx.timer_at(t + flush, timers::BATCH, app_core as u64);
                }
            }
            ThreadModel::OffPathNic { pcie, .. } => {
                // NIC→host notification: the event descriptor DMAs
                // across the PCIe boundary before the app can see it.
                let core = Self::app_core_of(&self.inner, slot);
                self.defer_app(t + pcie.one_way(EVENT_DESC_BYTES), core, ev, ctx);
            }
            _ => {
                let core = Self::app_core_of(&self.inner, slot);
                self.defer_app(t, core, ev, ctx);
            }
        }
    }

    /// Queues an app event for delivery at `t` on `core`.
    fn defer_app(&mut self, t: SimTime, core: usize, ev: AppEvent, ctx: &mut Ctx<'_, NetMsg>) {
        self.inner.app_q[core].push_back(ev);
        ctx.timer_at(t, timers::APP_RUN, core as u64);
    }

    fn flush_batch(&mut self, app_core: usize, t: SimTime, ctx: &mut Ctx<'_, NetMsg>) {
        self.inner.batch_armed[app_core] = false;
        let evs = std::mem::take(&mut self.inner.batches[app_core]);
        if evs.is_empty() {
            return;
        }
        let id = self.inner.c_batches;
        self.inner.reg.inc(id);
        for (_slot, ev) in evs {
            self.deliver_app(t, app_core, ev, ctx);
        }
    }

    // ------------------------------------------------------------------
    // Application delivery (same frame pattern as the TAS host).

    fn deliver_app(&mut self, t: SimTime, core: usize, ev: AppEvent, ctx: &mut Ctx<'_, NetMsg>) {
        self.inner.frame = Frame {
            core,
            now: t,
            api_cycles: self.inner.profile.api_poll,
            app_cycles: 0,
            // The activation itself enters the app's domain once.
            crossings: 1,
            dma_bytes: 0,
            ops: Vec::new(),
        };
        let mut app = self.app.take().expect("app present (no nested delivery)");
        {
            let mut api = Api {
                inner: &mut self.inner,
                ctx,
            };
            app.on_event(ev, &mut api);
        }
        self.app = Some(app);
        self.finish_frame(t, ctx);
    }

    fn finish_frame(&mut self, t: SimTime, ctx: &mut Ctx<'_, NetMsg>) {
        let frame = std::mem::take(&mut self.inner.frame);
        let ipc = self.inner.profile.ipc_times_100;
        self.inner
            .acct
            .charge(Module::Api, frame.api_cycles, frame.api_cycles * ipc / 100);
        self.inner
            .acct
            .charge(Module::App, frame.app_cycles, frame.app_cycles * 120 / 100);
        // Boundary crossings: WRPKRU flips or amortized doorbells, paid
        // on the app core. Pipeline-serializing, so no retired
        // instructions — the same convention as cache/contention stalls.
        let boundary = frame.crossings * Self::crossing_cycles(&self.inner);
        if boundary > 0 {
            self.inner.acct.charge(Module::Api, boundary, 0);
            let id = self.inner.c_crossings;
            self.inner.reg.add(id, frame.crossings);
        }
        if frame.dma_bytes > 0 {
            if let ThreadModel::OffPathNic { .. } = self.inner.cfg.model {
                let id = self.inner.c_dma_bytes;
                self.inner.reg.add(id, frame.dma_bytes);
            }
        }
        let total = frame.api_cycles + frame.app_cycles + boundary;
        // Application frames charge through the account, not a profiled
        // funnel; stage the API/handler/boundary split explicitly so the
        // core-run drain attributes it.
        #[cfg(feature = "profile")]
        {
            self.inner.prof_arm(frame.core as u32);
            {
                let _g = tas_telemetry::profile::guard("app");
                if frame.api_cycles > 0 {
                    let _g2 = tas_telemetry::profile::guard("api");
                    tas_telemetry::profile::charge(frame.api_cycles);
                }
                if frame.app_cycles > 0 {
                    let _g2 = tas_telemetry::profile::guard("work");
                    tas_telemetry::profile::charge(frame.app_cycles);
                }
            }
            if boundary > 0 {
                let _g = tas_telemetry::profile::guard("boundary");
                let _g2 = tas_telemetry::profile::guard(Self::crossing_label(&self.inner));
                tas_telemetry::profile::charge(boundary);
            }
        }
        let (_, end) = self.inner.cores.core(frame.core).run(t, total);
        // Host→stack commands: under the off-path model the command
        // descriptor (plus any payload the frame staged) must DMA across
        // the PCIe boundary before the NIC-side stack can act on it.
        let cmd_at = match self.inner.cfg.model {
            ThreadModel::OffPathNic { pcie, .. } => {
                end + pcie.one_way(EVENT_DESC_BYTES + frame.dma_bytes)
            }
            _ => end,
        };
        for op in frame.ops {
            match op {
                ApiOp::Touch(slot) => {
                    self.inner.cmd_q.push_back(ConnCmd::Touch(slot));
                    ctx.timer_at(cmd_at, timers::CONN_CMD, 0);
                }
                ApiOp::Connect { slot } => {
                    self.inner.cmd_q.push_back(ConnCmd::Connect(slot));
                    ctx.timer_at(cmd_at, timers::CONN_CMD, 0);
                }
                ApiOp::Timer { delay, token } => {
                    let data = ((frame.core as u64) << 48) | (token & 0xFFFF_FFFF_FFFF);
                    ctx.timer_at(end + delay, timers::APP, data);
                }
                ApiOp::Post { context, token } => {
                    let data = ((context as u64) << 48) | (token & 0xFFFF_FFFF_FFFF);
                    ctx.timer_at(end, timers::APP, data);
                }
            }
        }
    }

    fn ensure_started(&mut self, ctx: &mut Ctx<'_, NetMsg>) {
        if self.inner.started {
            return;
        }
        self.inner.started = true;
        let t = ctx.now();
        self.inner.frame = Frame {
            core: Self::first_app_core(&self.inner),
            now: t,
            api_cycles: 0,
            app_cycles: 0,
            crossings: 1,
            dma_bytes: 0,
            ops: Vec::new(),
        };
        let mut app = self.app.take().expect("app present");
        {
            let mut api = Api {
                inner: &mut self.inner,
                ctx,
            };
            app.on_start(&mut api);
        }
        self.app = Some(app);
        self.finish_frame(t, ctx);
    }

    // ------------------------------------------------------------------
    // Packet receive.

    /// Samples the queue-depth gauges onto the fixed sim-clock grid (the
    /// recorder dedupes re-entries within one interval).
    fn sample_series(&mut self, now: SimTime) {
        let inner = &mut self.inner;
        if !inner.series.begin(now) {
            return;
        }
        inner
            .series
            .record("nic.rx_pending", inner.nic.rx_pending() as f64);
        inner
            .series
            .record("conns.live", inner.by_key.len() as f64);
        let (mut tx_buf, mut rx_ready) = (0u64, 0u64);
        for slot in inner.slots.iter().flatten() {
            tx_buf += slot.conn.send_buffered() as u64;
            rx_ready += slot.conn.readable() as u64;
        }
        inner.series.record("tcp.tx_buffered", tx_buf as f64);
        inner.series.record("tcp.rx_readable", rx_ready as f64);
        let batched: usize = inner.batches.iter().map(Vec::len).sum();
        inner.series.record("app.batched_events", batched as f64);
        let tick = inner.series.current_tick();
        let busy: Vec<SimTime> = (0..inner.cores.len())
            .map(|i| inner.cores.core_ref(i).busy_total())
            .collect();
        inner.core_util.sample(tick, busy);
    }

    /// Fixed-cadence queue-depth/occupancy time series for this host.
    pub fn queue_series(&self) -> &SeriesRecorder {
        &self.inner.series
    }

    /// Per-core utilization time series on the 1 ms sampling grid (the
    /// utilization-attribution series the cpuprof bench digests).
    pub fn core_util_series(&self) -> &CoreUtilSeries {
        &self.inner.core_util
    }

    fn on_packet(&mut self, seg: Segment, ctx: &mut Ctx<'_, NetMsg>) {
        let now = ctx.now();
        self.sample_series(now);
        let q = self.inner.nic.rx_enqueue(seg);
        let seg = self.inner.nic.rx_dequeue(q).expect("just enqueued");
        let key = seg.flow_key();
        let is_data = !seg.payload.is_empty();
        if let Some(&slot) = self.inner.by_key.get(&key) {
            let core_idx = Self::stack_core_of(&self.inner, slot);
            let backlog = self
                .inner
                .cores
                .core_ref(core_idx)
                .busy_until()
                .saturating_sub(now);
            if backlog > self.inner.cfg.max_core_backlog {
                let id = self.inner.c_drop_backlog;
                self.inner.reg.inc(id);
                let per_core = self
                    .inner
                    .reg
                    .counter("host.drop_backlog", Scope::Core(core_idx as u32));
                self.inner.reg.inc(per_core);
                return;
            }
            let cost = if is_data {
                self.inner.profile.rx_data
            } else {
                self.inner.profile.rx_ack
            };
            cost.charge(&mut self.inner.acct, self.inner.profile.ipc_times_100);
            let extra = Self::cache_and_contention(&self.inner);
            let label = if is_data { "rx_data" } else { "rx_ack" };
            self.run_conn(label, slot, now, cost.total(), extra, ctx, |conn, t| {
                conn.on_segment(t, seg);
            });
            return;
        }
        // New inbound connection?
        if seg.tcp.flags.contains(TcpFlags::SYN)
            && !seg.tcp.flags.contains(TcpFlags::ACK)
            && self.inner.listeners.contains_key(&key.local_port)
        {
            let iss = ctx.rng().next_u32();
            let inner = &mut self.inner;
            let local = EndpointInfo {
                ip: inner.ip,
                port: key.local_port,
                mac: inner.mac,
            };
            let remote = EndpointInfo {
                ip: key.remote_ip,
                port: key.remote_port,
                mac: seg.eth.src,
            };
            let conn = TcpConn::accept(now, inner.cfg.tcp.clone(), local, remote, &seg, iss);
            let slot = Self::install(inner, key, conn, true);
            // Kernel-side accept processing.
            let cost = inner.profile.api_conn / 2 + inner.profile.rx_data.total();
            inner
                .acct
                .charge(Module::Tcp, cost, cost * inner.profile.ipc_times_100 / 100);
            self.run_conn("accept", slot, now, cost, 0, ctx, |_c, _t| {});
        }
        // Else: no matching state — drop (a RST generator is not needed
        // for the experiments).
    }

    fn install(inner: &mut Inner, key: FlowKey, conn: TcpConn, accepted: bool) -> u32 {
        let slot = Slot {
            conn,
            accepted,
            want_write: false,
            connected_sent: false,
            closed_sent: false,
            rx_notified: false,
            armed: SimTime::MAX,
            gen: 0,
            timer_id: None,
        };
        let id = match inner.free.pop() {
            Some(id) => {
                inner.slots[id as usize] = Some(slot);
                id
            }
            None => {
                inner.slots.push(Some(slot));
                (inner.slots.len() - 1) as u32
            }
        };
        inner.by_key.insert(key, id);
        id
    }
}

fn inner_send_buf(s: &Slot) -> usize {
    s.conn.send_space() + s.conn.in_flight() as usize
}

/// Resolves the deterministic MAC for a simulated host IP.
fn mac_for_ip(ip: Ipv4Addr) -> MacAddr {
    let o = ip.octets();
    MacAddr::for_host(u32::from_be_bytes([0, o[1], o[2], o[3]]))
}

// ----------------------------------------------------------------------
// Application API.

struct Api<'a, 'b> {
    inner: &'a mut Inner,
    ctx: &'a mut Ctx<'b, NetMsg>,
}

impl StackApi for Api<'_, '_> {
    fn now(&self) -> SimTime {
        self.inner.frame.now
    }

    fn listen(&mut self, port: u16) {
        self.inner.frame.api_cycles += self.inner.profile.api_conn;
        self.inner.frame.crossings += 1;
        self.inner.listeners.insert(port, ());
    }

    fn connect(&mut self, ip: Ipv4Addr, port: u16) -> SockId {
        self.inner.frame.api_cycles += self.inner.profile.api_conn;
        self.inner.frame.crossings += 1;
        let local_port = self.inner.next_port;
        self.inner.next_port = self.inner.next_port.checked_add(1).unwrap_or(40_000);
        let local = EndpointInfo {
            ip: self.inner.ip,
            port: local_port,
            mac: self.inner.mac,
        };
        let remote = EndpointInfo {
            ip,
            port,
            mac: mac_for_ip(ip),
        };
        let iss = self.ctx.rng().next_u32();
        let conn = TcpConn::connect(
            self.inner.frame.now,
            self.inner.cfg.tcp.clone(),
            local,
            remote,
            iss,
        );
        let key = FlowKey::new(self.inner.ip, local_port, ip, port);
        let slot = StackHost::install(self.inner, key, conn, false);
        self.inner.frame.ops.push(ApiOp::Connect { slot });
        slot
    }

    fn send(&mut self, sock: SockId, data: &[u8]) -> usize {
        self.inner.frame.api_cycles += self.inner.profile.api_send;
        self.inner.frame.crossings += 1;
        let Some(s) = self
            .inner
            .slots
            .get_mut(sock as usize)
            .and_then(Option::as_mut)
        else {
            return 0;
        };
        let n = s.conn.send(data);
        if n < data.len() {
            s.want_write = true;
        }
        if n > 0 {
            self.inner.frame.dma_bytes += n as u64;
            self.inner.frame.ops.push(ApiOp::Touch(sock));
        }
        n
    }

    fn recv(&mut self, sock: SockId, max: usize) -> Vec<u8> {
        self.inner.frame.api_cycles += self.inner.profile.api_recv;
        self.inner.frame.crossings += 1;
        let Some(s) = self
            .inner
            .slots
            .get_mut(sock as usize)
            .and_then(Option::as_mut)
        else {
            return Vec::new();
        };
        let out = s.conn.recv(max);
        s.rx_notified = false;
        if !out.is_empty() {
            self.inner.reg.add(self.inner.c_app_bytes, out.len() as u64);
            self.inner.frame.dma_bytes += out.len() as u64;
            self.inner.frame.ops.push(ApiOp::Touch(sock));
        }
        out
    }

    fn readable(&self, sock: SockId) -> usize {
        self.inner
            .slots
            .get(sock as usize)
            .and_then(Option::as_ref)
            .map(|s| s.conn.readable())
            .unwrap_or(0)
    }

    fn close(&mut self, sock: SockId) {
        self.inner.frame.api_cycles += self.inner.profile.api_conn;
        self.inner.frame.crossings += 1;
        if let Some(s) = self
            .inner
            .slots
            .get_mut(sock as usize)
            .and_then(Option::as_mut)
        {
            s.conn.close();
            self.inner.frame.ops.push(ApiOp::Touch(sock));
        }
    }

    fn charge_app_cycles(&mut self, cycles: u64) {
        self.inner.frame.app_cycles += cycles;
    }

    fn set_app_timer(&mut self, delay: SimTime, token: u64) {
        self.inner.frame.ops.push(ApiOp::Timer { delay, token });
    }

    fn post(&mut self, context: u16, token: u64) {
        // Inter-thread queue hop (pthread queue + wakeup). App threads
        // only exist on app cores, so off-path hosts map the context
        // into the host-core range above the NIC cores.
        self.inner.frame.api_cycles += 180;
        let context = match self.inner.cfg.model {
            ThreadModel::OffPathNic { nic_cores, .. } => {
                (nic_cores + context as usize % (self.inner.cfg.cores - nic_cores)) as u16
            }
            _ => (context as usize % self.inner.cfg.cores) as u16,
        };
        self.inner.frame.ops.push(ApiOp::Post { context, token });
    }
}

// ----------------------------------------------------------------------
// Agent implementation.

impl Agent<NetMsg> for StackHost {
    fn on_event(&mut self, ev: Event<NetMsg>, ctx: &mut Ctx<'_, NetMsg>) {
        self.ensure_started(ctx);
        match ev {
            Event::Msg {
                msg: NetMsg::Packet(seg),
                ..
            } => self.on_packet(seg, ctx),
            Event::Msg {
                msg: NetMsg::Ctl { kind, a, b },
                ..
            } => {
                let now = ctx.now();
                let core = Self::first_app_core(&self.inner);
                self.deliver_app(now, core, AppEvent::Ctl { kind, a, b }, ctx);
            }
            Event::Timer { kind, data } => {
                let now = ctx.now();
                match kind {
                    timers::INIT => {}
                    timers::CONN => {
                        let slot = (data >> 32) as u32;
                        let gen = data as u32;
                        let stale = self
                            .inner
                            .slots
                            .get_mut(slot as usize)
                            .and_then(Option::as_mut)
                            .map(|s| {
                                if s.gen == gen {
                                    s.armed = SimTime::MAX;
                                    s.timer_id = None;
                                    false
                                } else {
                                    true
                                }
                            })
                            .unwrap_or(true);
                        if !stale {
                            // Timeout processing costs roughly a data-path
                            // traversal.
                            let cost = self.inner.profile.rx_ack.total();
                            self.run_conn("timer", slot, now, cost, 0, ctx, |conn, t| {
                                conn.on_timer(t);
                            });
                        }
                    }
                    timers::BATCH => {
                        self.sample_series(now);
                        let core = data as usize;
                        self.flush_batch(core, now, ctx);
                    }
                    timers::APP => {
                        let core = (data >> 48) as usize;
                        let token = data & 0xFFFF_FFFF_FFFF;
                        self.deliver_app(now, core, AppEvent::Timer { token }, ctx);
                    }
                    timers::APP_RUN => {
                        let core = data as usize;
                        if let Some(ev) = self.inner.app_q[core].pop_front() {
                            self.deliver_app(now, core, ev, ctx);
                        }
                    }
                    timers::CONN_CMD => {
                        if let Some(cmd) = self.inner.cmd_q.pop_front() {
                            match cmd {
                                ConnCmd::Touch(slot) => {
                                    // Poll the connection for output the API
                                    // call produced (sends, window updates).
                                    self.run_conn("cmd", slot, now, 0, 0, ctx, |_c, _t| {});
                                }
                                ConnCmd::Connect(slot) => {
                                    let cost = self.inner.profile.api_conn;
                                    self.run_conn("connect", slot, now, cost, 0, ctx, |_c, _t| {});
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    impl_as_any!();
}
