//! Baseline network stacks the paper compares TAS against.
//!
//! Three host models share the complete `tas-tcp` protocol engine and
//! differ — exactly as the real systems do — in *architecture* and *cost*:
//!
//! * **Linux model** ([`profiles::linux`]): monolithic in-kernel stack.
//!   Stack work runs on the same cores as the application with per-syscall
//!   costs, connection state is large, scattered, and shared across all
//!   cores (cache + coherence penalties from `tas-cpusim`), and the
//!   receiver keeps all out-of-order data (SACK-style recovery).
//! * **IX model** ([`profiles::ix`]): protected kernel bypass. Per-core
//!   run-to-completion with partitioned connection state, a libevent-like
//!   API instead of sockets, much smaller per-packet costs — but still a
//!   full TCP state machine per packet with sizeable per-connection state.
//! * **mTCP model** ([`profiles::mtcp`]): user-level stack on dedicated
//!   stack cores, exchanging *batched* event queues with application
//!   cores; batching amortizes per-event cost at a latency price (the
//!   effect behind Fig. 6, Fig. 10 and Table 8).
//!
//! Two design-space models extend the comparison beyond the paper's
//! contemporaries (ROADMAP item 5):
//!
//! * **MPK dataplane** ([`profiles::mpk`]): Linux-grade packet
//!   processing in an intra-process protection domain — syscall-class
//!   API crossings become WRPKRU-scale lightweight activations
//!   ([`tas_cpusim::Crossing`]), state is partitioned per core.
//! * **PnO off-path SmartNIC** ([`profiles::pno`]): the whole TCP stack
//!   on wimpy NIC-class cores ([`tas_cpusim::CoreClass::Nic`]); host
//!   cores run only the app and a descriptor shim, and every app↔NIC
//!   interaction pays the modeled PCIe/DMA boundary
//!   ([`tas_cpusim::PcieModel`]).
//!
//! All three run the same [`App`](tas_netsim::app::App) implementations as
//! TAS, and the per-module cycle costs are calibrated against the paper's
//! Tables 1–2 (the *shape* of every scaling curve then comes from the
//! cache/contention models, not from curve fitting).

pub mod host;
pub mod profiles;

pub use host::{StackHost, StackHostConfig, ThreadModel};
pub use profiles::{PktCost, StackProfile};
