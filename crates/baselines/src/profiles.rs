//! Per-stack cost profiles, calibrated to the paper's Tables 1–2.

use tas_cpusim::{ContentionModel, CycleAccount, Module};

/// Cycle cost of one packet traversal, split by module (Table 1 rows).
#[derive(Clone, Copy, Debug, Default)]
pub struct PktCost {
    /// NIC driver cycles.
    pub driver: u64,
    /// IP layer cycles.
    pub ip: u64,
    /// TCP layer cycles.
    pub tcp: u64,
    /// Other stack work (softirq, skb management, scheduling).
    pub other: u64,
}

impl PktCost {
    /// Total cycles.
    pub fn total(&self) -> u64 {
        self.driver + self.ip + self.tcp + self.other
    }

    /// Charges this cost into a per-module account, deriving instruction
    /// counts from `ipc_times_100`.
    pub fn charge(&self, acct: &mut CycleAccount, ipc_times_100: u64) {
        let i = |c: u64| c * ipc_times_100 / 100;
        acct.charge(Module::Driver, self.driver, i(self.driver));
        acct.charge(Module::Ip, self.ip, i(self.ip));
        acct.charge(Module::Tcp, self.tcp, i(self.tcp));
        acct.charge(Module::Other, self.other, i(self.other));
    }
}

/// A complete stack cost/architecture profile.
#[derive(Clone, Copy, Debug)]
pub struct StackProfile {
    /// Stack name for experiment output.
    pub name: &'static str,
    /// Receiving one data segment.
    pub rx_data: PktCost,
    /// Receiving one pure ACK.
    pub rx_ack: PktCost,
    /// Transmitting one data segment.
    pub tx_data: PktCost,
    /// Transmitting one pure ACK.
    pub tx_ack: PktCost,
    /// API: event-loop return, per event (epoll_wait / event dispatch).
    pub api_poll: u64,
    /// API: one receive call including copy-out.
    pub api_recv: u64,
    /// API: one send call including copy-in.
    pub api_send: u64,
    /// API: connection-control call (connect/accept/close).
    pub api_conn: u64,
    /// Retired instructions per 100 cycles (Table 2 CPI⁻¹).
    pub ipc_times_100: u64,
    /// Per-connection stack state footprint in bytes (tcp_sock + skbs +
    /// socket + epoll item for Linux; IX's leaner but still KB-scale).
    pub conn_state_bytes: u64,
    /// Distinct state cache lines touched per request.
    pub lines_per_req: u64,
    /// Stall cycles per missed line.
    pub miss_penalty: f64,
    /// Whether connection state (and therefore the cache working set) is
    /// partitioned per core (IX/mTCP) or shared machine-wide (Linux).
    pub partitioned_state: bool,
    /// Lock/coherence cost for shared state.
    pub contention: ContentionModel,
}

/// The Linux in-kernel stack model (Table 1: 0.73/1.53/3.92/8.0/1.5 kc).
pub fn linux() -> StackProfile {
    StackProfile {
        name: "linux",
        rx_data: PktCost {
            driver: 200,
            ip: 450,
            tcp: 1400,
            other: 400,
        },
        rx_ack: PktCost {
            driver: 120,
            ip: 250,
            tcp: 700,
            other: 200,
        },
        tx_data: PktCost {
            driver: 250,
            ip: 500,
            tcp: 1300,
            other: 500,
        },
        tx_ack: PktCost {
            driver: 160,
            ip: 330,
            tcp: 520,
            other: 400,
        },
        api_poll: 1800,
        api_recv: 2800,
        api_send: 3400,
        api_conn: 6000,
        ipc_times_100: 76, // CPI 1.32.
        conn_state_bytes: 2048,
        lines_per_req: 30,
        miss_penalty: 220.0,
        partitioned_state: false,
        contention: ContentionModel::new(250.0, 140.0),
    }
}

/// The IX protected-kernel-bypass model (Table 1: 0.05/0.12/1.05/0.76 kc).
pub fn ix() -> StackProfile {
    StackProfile {
        name: "ix",
        rx_data: PktCost {
            driver: 15,
            ip: 40,
            tcp: 380,
            other: 0,
        },
        rx_ack: PktCost {
            driver: 8,
            ip: 15,
            tcp: 160,
            other: 0,
        },
        tx_data: PktCost {
            driver: 15,
            ip: 40,
            tcp: 330,
            other: 0,
        },
        tx_ack: PktCost {
            driver: 12,
            ip: 25,
            tcp: 180,
            other: 0,
        },
        api_poll: 260,
        api_recv: 230,
        api_send: 270,
        api_conn: 1500,
        ipc_times_100: 122, // CPI 0.82.
        conn_state_bytes: 1024,
        lines_per_req: 18,
        miss_penalty: 230.0,
        partitioned_state: true,
        contention: ContentionModel::none(),
    }
}

/// The mTCP user-level stack model (costs between Linux and IX; its
/// defining property is the batched split threading model).
pub fn mtcp() -> StackProfile {
    StackProfile {
        name: "mtcp",
        rx_data: PktCost {
            driver: 25,
            ip: 60,
            tcp: 560,
            other: 60,
        },
        rx_ack: PktCost {
            driver: 12,
            ip: 25,
            tcp: 240,
            other: 30,
        },
        tx_data: PktCost {
            driver: 25,
            ip: 60,
            tcp: 500,
            other: 60,
        },
        tx_ack: PktCost {
            driver: 15,
            ip: 35,
            tcp: 260,
            other: 30,
        },
        api_poll: 380,
        api_recv: 340,
        api_send: 400,
        api_conn: 2500,
        ipc_times_100: 110,
        conn_state_bytes: 1280,
        lines_per_req: 20,
        miss_penalty: 230.0,
        partitioned_state: true,
        contention: ContentionModel::none(),
    }
}

/// The MPK-protected dataplane model ("Protected Data Plane OS Using
/// Memory Protection Keys"): the packet-processing code is Linux-grade —
/// same per-packet module costs, same kilobyte-scale connection state —
/// but it runs inside an intra-process protection domain, so the
/// syscall-entry component (~a [`tas_cpusim::Crossing::context_switch`]
/// per call) drops out of every API constant and is replaced by the
/// WRPKRU crossing the thread model charges explicitly. State is
/// partitioned per core, leaving only an atomic-handoff residue of the
/// Linux contention cost.
pub fn mpk() -> StackProfile {
    let l = linux();
    let ctxsw = tas_cpusim::Crossing::context_switch().cycles;
    StackProfile {
        name: "mpk",
        api_poll: l.api_poll - ctxsw,
        api_recv: l.api_recv - ctxsw,
        api_send: l.api_send - ctxsw,
        api_conn: l.api_conn - 2 * ctxsw, // connect/accept enter twice
        partitioned_state: true,
        contention: ContentionModel::new(60.0, 30.0),
        ..l
    }
}

/// The PnO-style off-path SmartNIC model ("Plug & Offload"): a lean
/// user-level TCP stack (mTCP-class per-packet costs) runs entirely on
/// the NIC's wimpy cores, so host-side API constants shrink to a
/// descriptor shim (post/poll a DMA ring, copy payload). The price is
/// paid elsewhere: NIC cores clock ~2.6x slower and every interaction
/// crosses the PCIe boundary the thread model charges.
pub fn pno() -> StackProfile {
    let m = mtcp();
    StackProfile {
        name: "pno",
        // Slightly above mTCP's TCP costs: the offload firmware carries
        // extra descriptor/DMA bookkeeping per segment.
        rx_data: PktCost { tcp: 620, ..m.rx_data },
        rx_ack: PktCost { tcp: 270, ..m.rx_ack },
        tx_data: PktCost { tcp: 560, ..m.tx_data },
        tx_ack: PktCost { tcp: 290, ..m.tx_ack },
        api_poll: 150,
        api_recv: 250,
        api_send: 300,
        api_conn: 1200,
        ipc_times_100: 95, // in-order-ish ARM cores.
        miss_penalty: 300.0, // NIC DRAM is slower than host DDR.
        partitioned_state: true,
        contention: ContentionModel::none(),
        ..m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linux_matches_table1_columns() {
        let p = linux();
        // Per KV request: rx data + tx ack + tx data + rx ack.
        let driver = p.rx_data.driver + p.rx_ack.driver + p.tx_data.driver + p.tx_ack.driver;
        let ip = p.rx_data.ip + p.rx_ack.ip + p.tx_data.ip + p.tx_ack.ip;
        let tcp = p.rx_data.tcp + p.rx_ack.tcp + p.tx_data.tcp + p.tx_ack.tcp;
        let other = p.rx_data.other + p.rx_ack.other + p.tx_data.other + p.tx_ack.other;
        let sockets = p.api_poll + p.api_recv + p.api_send;
        assert_eq!(driver, 730); // Table 1: 0.73 kc.
        assert_eq!(ip, 1530); // 1.53 kc.
        assert_eq!(tcp, 3920); // 3.92 kc.
        assert_eq!(other, 1500); // 1.5 kc.
        assert_eq!(sockets, 8000); // 8.0 kc.
    }

    #[test]
    fn ix_matches_table1_columns() {
        let p = ix();
        let driver = p.rx_data.driver + p.rx_ack.driver + p.tx_data.driver + p.tx_ack.driver;
        let ip = p.rx_data.ip + p.rx_ack.ip + p.tx_data.ip + p.tx_ack.ip;
        let tcp = p.rx_data.tcp + p.rx_ack.tcp + p.tx_data.tcp + p.tx_ack.tcp;
        let api = p.api_poll + p.api_recv + p.api_send;
        assert_eq!(driver, 50); // 0.05 kc.
        assert_eq!(ip, 120); // 0.12 kc.
        assert_eq!(tcp, 1050); // 1.05 kc.
        assert_eq!(api, 760); // 0.76 kc.
    }

    #[test]
    fn relative_ordering_linux_worst() {
        let l = linux();
        let i = ix();
        let m = mtcp();
        let per_req = |p: &StackProfile| {
            p.rx_data.total()
                + p.rx_ack.total()
                + p.tx_data.total()
                + p.tx_ack.total()
                + p.api_poll
                + p.api_recv
                + p.api_send
        };
        assert!(per_req(&l) > per_req(&m), "linux > mtcp");
        assert!(per_req(&m) > per_req(&i), "mtcp > ix");
    }

    #[test]
    fn mpk_is_linux_minus_the_kernel_entry() {
        let l = linux();
        let m = mpk();
        // Identical packet-processing costs (the dataplane code is the
        // same); only the API boundary got cheaper.
        assert_eq!(m.rx_data.total(), l.rx_data.total());
        assert_eq!(m.tx_data.total(), l.tx_data.total());
        assert_eq!(m.conn_state_bytes, l.conn_state_bytes);
        assert!(m.api_recv < l.api_recv);
        assert!(m.api_send < l.api_send);
        assert!(m.partitioned_state);
        // Even with the explicit WRPKRU crossing added back, an API
        // call stays far below the syscall version.
        let wrpkru = tas_cpusim::Crossing::wrpkru().cycles;
        assert!(m.api_send + wrpkru < l.api_send);
    }

    #[test]
    fn pno_host_api_is_a_thin_shim() {
        let p = pno();
        let l = linux();
        // Host-side per-request API work is an order below Linux.
        let shim = p.api_poll + p.api_recv + p.api_send;
        let sockets = l.api_poll + l.api_recv + l.api_send;
        assert!(shim * 10 < sockets, "{shim} vs {sockets}");
        // NIC-side packet costs are lean (user-level stack class), not
        // Linux class.
        assert!(p.rx_data.total() < l.rx_data.total() / 2);
        assert!(p.partitioned_state);
    }

    #[test]
    fn charge_splits_modules() {
        let mut acct = CycleAccount::new();
        linux().rx_data.charge(&mut acct, 76);
        assert_eq!(acct.cycles(Module::Tcp), 1400);
        assert_eq!(acct.cycles(Module::Ip), 450);
        assert!(acct.instructions(Module::Tcp) < 1400, "CPI > 1 for Linux");
    }
}
