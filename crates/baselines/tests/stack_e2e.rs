//! End-to-end tests of the baseline stacks (Linux/IX/mTCP models) and
//! their interoperation with TAS hosts — the property behind the paper's
//! Table 4 compatibility matrix.

use tas::host::timers as tas_timers;
use tas::{TasConfig, TasHost};
use tas_apps::echo::{EchoServer, Lifetime, RpcClient, ServerMode};
use tas_baselines::{host::timers as bl_timers, profiles, StackHost, StackHostConfig};
use tas_netsim::app::App;
use tas_netsim::topo::{build_star, host_ip, HostSpec};
use tas_netsim::{NetMsg, NicConfig, PortConfig};
use tas_sim::{AgentId, Sim, SimTime};

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Kind {
    Linux,
    Ix,
    Mtcp,
    Tas,
}

/// Builds a 2-host star: host 0 = server of `server_kind`, host 1 =
/// client of `client_kind`, echo RPC workload.
fn build_pair(
    server_kind: Kind,
    client_kind: Kind,
    reqs: u32,
    req_size: usize,
    lifetime: Lifetime,
    seed: u64,
) -> (Sim<NetMsg>, Vec<AgentId>) {
    let mut sim: Sim<NetMsg> = Sim::new(seed);
    let server_ip = host_ip(0);
    let mut factory = move |sim: &mut Sim<NetMsg>, spec: HostSpec| {
        let app: Box<dyn App> = if spec.index == 0 {
            Box::new(EchoServer::new(7, req_size, ServerMode::Echo, 300))
        } else {
            let mut c = RpcClient::new(server_ip, 7, 1, 1, req_size, lifetime);
            c.max_requests = reqs as u64;
            Box::new(c)
        };
        let kind = if spec.index == 0 {
            server_kind
        } else {
            client_kind
        };
        make_host(sim, spec, kind, app)
    };
    let topo = build_star(
        &mut sim,
        2,
        |_| PortConfig::tengig(),
        |_| NicConfig::client_10g(1),
        &mut factory,
    );
    for &h in &topo.hosts {
        // INIT timer kinds coincide (0) across host types.
        sim.inject_timer(SimTime::ZERO, h, 0, 0);
    }
    (sim, topo.hosts)
}

fn make_host(sim: &mut Sim<NetMsg>, spec: HostSpec, kind: Kind, app: Box<dyn App>) -> AgentId {
    match kind {
        Kind::Tas => sim.add_agent(Box::new(TasHost::new(
            spec.ip,
            spec.mac,
            spec.nic,
            TasConfig::rpc_bench(1, 1),
            spec.uplink,
            app,
        ))),
        Kind::Linux => sim.add_agent(Box::new(StackHost::new(
            spec.ip,
            spec.mac,
            spec.nic,
            profiles::linux(),
            StackHostConfig::linux(2),
            spec.uplink,
            app,
        ))),
        Kind::Ix => sim.add_agent(Box::new(StackHost::new(
            spec.ip,
            spec.mac,
            spec.nic,
            profiles::ix(),
            StackHostConfig::ix(2),
            spec.uplink,
            app,
        ))),
        Kind::Mtcp => sim.add_agent(Box::new(StackHost::new(
            spec.ip,
            spec.mac,
            spec.nic,
            profiles::mtcp(),
            StackHostConfig::mtcp(3, 1),
            spec.uplink,
            app,
        ))),
    }
}

fn client_done(sim: &Sim<NetMsg>, host: AgentId, kind: Kind) -> u64 {
    match kind {
        Kind::Tas => sim.agent::<TasHost>(host).app_as::<RpcClient>().done,
        _ => sim.agent::<StackHost>(host).app_as::<RpcClient>().done,
    }
}

#[test]
fn linux_echo_round_trips() {
    let (mut sim, hosts) = build_pair(Kind::Linux, Kind::Linux, 200, 64, Lifetime::Persistent, 1);
    sim.run_until(SimTime::from_ms(500));
    assert_eq!(client_done(&sim, hosts[1], Kind::Linux), 200);
    let server = sim.agent::<StackHost>(hosts[0]);
    assert_eq!(server.app_as::<EchoServer>().messages, 200);
    assert_eq!(
        server
            .registry()
            .counter_value("host.established", tas_sim::Scope::Global),
        1
    );
}

#[test]
fn ix_echo_round_trips() {
    let (mut sim, hosts) = build_pair(Kind::Ix, Kind::Ix, 200, 64, Lifetime::Persistent, 2);
    sim.run_until(SimTime::from_ms(500));
    assert_eq!(client_done(&sim, hosts[1], Kind::Ix), 200);
}

#[test]
fn mtcp_echo_round_trips() {
    let (mut sim, hosts) = build_pair(Kind::Mtcp, Kind::Mtcp, 200, 64, Lifetime::Persistent, 3);
    sim.run_until(SimTime::from_secs(2));
    assert_eq!(client_done(&sim, hosts[1], Kind::Mtcp), 200);
    let server = sim.agent::<StackHost>(hosts[0]);
    assert!(
        server
            .registry()
            .counter_value("host.batches", tas_sim::Scope::Global)
            > 0,
        "mTCP model must batch"
    );
}

#[test]
fn tas_linux_interop_both_directions() {
    // Table 4's property: any sender/receiver combination works.
    for (s, c, seed) in [
        (Kind::Tas, Kind::Linux, 10u64),
        (Kind::Linux, Kind::Tas, 11),
    ] {
        let (mut sim, hosts) = build_pair(s, c, 100, 64, Lifetime::Persistent, seed);
        sim.run_until(SimTime::from_ms(500));
        assert_eq!(
            client_done(&sim, hosts[1], c),
            100,
            "{s:?} server with {c:?} client must interoperate"
        );
    }
}

#[test]
fn mtcp_latency_exceeds_ix_latency() {
    // Batching buys mTCP throughput at a latency cost; IX delivers
    // per-event. Median RPC latency must order accordingly.
    let run = |kind: Kind, seed: u64| -> u64 {
        let (mut sim, hosts) = build_pair(kind, Kind::Tas, 300, 64, Lifetime::Persistent, seed);
        sim.run_until(SimTime::from_secs(2));
        let client = sim.agent::<TasHost>(hosts[1]).app_as::<RpcClient>();
        assert_eq!(client.done, 300);
        client.latency.quantile(0.5)
    };
    let ix = run(Kind::Ix, 20);
    let mtcp = run(Kind::Mtcp, 21);
    assert!(
        mtcp > ix * 2,
        "mTCP median {mtcp}ns should far exceed IX median {ix}ns"
    );
}

#[test]
fn linux_latency_exceeds_tas_latency() {
    let run = |kind: Kind, seed: u64| -> u64 {
        let (mut sim, hosts) = build_pair(kind, Kind::Tas, 300, 64, Lifetime::Persistent, seed);
        sim.run_until(SimTime::from_secs(2));
        let client = sim.agent::<TasHost>(hosts[1]).app_as::<RpcClient>();
        assert_eq!(client.done, 300);
        client.latency.quantile(0.5)
    };
    let tas = run(Kind::Tas, 30);
    let linux = run(Kind::Linux, 31);
    assert!(
        linux > tas,
        "Linux median {linux}ns should exceed TAS median {tas}ns"
    );
}

#[test]
fn short_lived_connections_cycle_on_linux() {
    let (mut sim, hosts) = build_pair(
        Kind::Linux,
        Kind::Linux,
        0,
        64,
        Lifetime::ShortLived { msgs_per_conn: 4 },
        40,
    );
    sim.run_until(SimTime::from_ms(400));
    let client = sim.agent::<StackHost>(hosts[1]).app_as::<RpcClient>();
    assert!(
        client.conns_completed >= 3,
        "connections must cycle: {} completed, {} RPCs",
        client.conns_completed,
        client.done
    );
    assert!(client.done >= 12);
}

#[test]
fn short_lived_connections_cycle_on_tas() {
    let (mut sim, hosts) = build_pair(
        Kind::Tas,
        Kind::Tas,
        0,
        64,
        Lifetime::ShortLived { msgs_per_conn: 4 },
        41,
    );
    sim.run_until(SimTime::from_ms(400));
    let client = sim.agent::<TasHost>(hosts[1]).app_as::<RpcClient>();
    assert!(
        client.conns_completed >= 3,
        "connections must cycle through the slow path: {} completed, {} RPCs",
        client.conns_completed,
        client.done
    );
    let server = sim.agent::<TasHost>(hosts[0]);
    assert!(server.sp_stats().established >= 4);
}

#[test]
fn fault_schedule_linux_tas_interop_with_auditors() {
    // A Linux-model server (reference TcpConn engine) talking to a TAS
    // client under a seeded drop+dup+reorder schedule in both directions.
    // Both invariant auditors (tas::audit on the TAS host, tas_tcp::audit
    // inside every TcpConn) are live; all RPCs must complete.
    use tas_netsim::{FaultSpec, Switch};
    assert!(tas_tcp::audit::enabled() && tas::audit::enabled());
    let mut sim: Sim<NetMsg> = Sim::new(60);
    let server_ip = host_ip(0);
    let mut factory = move |sim: &mut Sim<NetMsg>, spec: HostSpec| {
        let app: Box<dyn App> = if spec.index == 0 {
            Box::new(EchoServer::new(7, 64, ServerMode::Echo, 300))
        } else {
            let mut c = RpcClient::new(server_ip, 7, 1, 1, 64, Lifetime::Persistent);
            c.max_requests = 200;
            Box::new(c)
        };
        let kind = if spec.index == 0 {
            Kind::Linux
        } else {
            Kind::Tas
        };
        let mut spec = spec;
        if spec.index == 1 {
            spec.nic.tx_fault = FaultSpec::lossy(0.01, 0.01, 0.02, 61);
        }
        make_host(sim, spec, kind, app)
    };
    let topo = build_star(
        &mut sim,
        2,
        |i| {
            if i == 0 {
                // Faults toward the server, so the reference TcpConn's
                // reassembler sees drops, duplicates, and reordering.
                PortConfig {
                    fault: FaultSpec::lossy(0.01, 0.01, 0.02, 62),
                    ..PortConfig::tengig()
                }
            } else {
                PortConfig::tengig()
            }
        },
        |_| NicConfig::client_10g(1),
        &mut factory,
    );
    for &h in &topo.hosts {
        sim.inject_timer(SimTime::ZERO, h, 0, 0);
    }
    let tcp_audits = tas_tcp::audit::checks_performed();
    let tas_audits = tas::audit::checks_performed();
    sim.run_until(SimTime::from_secs(10));
    assert_eq!(
        client_done(&sim, topo.hosts[1], Kind::Tas),
        200,
        "all RPCs must survive the fault schedule"
    );
    let fired = |s: &tas_sim::Snapshot| {
        [
            "fault.dropped",
            "fault.duplicated",
            "fault.reordered",
            "fault.jittered",
            "fault.corrupted",
        ]
        .iter()
        .map(|&n| s.counter(n, tas_sim::Scope::Global))
        .sum::<u64>()
            > 0
    };
    let nic_snap = sim.agent::<TasHost>(topo.hosts[1]).nic().tx_fault_snapshot();
    assert!(nic_snap.counter("fault.seen", tas_sim::Scope::Global) > 200 && fired(&nic_snap));
    let port_snap = sim.agent::<Switch>(topo.switch).port_fault_snapshot(0);
    assert!(port_snap.counter("fault.seen", tas_sim::Scope::Global) > 200 && fired(&port_snap));
    assert!(tas_tcp::audit::checks_performed() > tcp_audits);
    assert!(tas::audit::checks_performed() > tas_audits);
}

#[test]
fn loadgen_drives_tas_server() {
    use tas_apps::loadgen::{timers as lg_timers, LoadGenConfig, LoadGenHost};
    let mut sim: Sim<NetMsg> = Sim::new(50);
    let server_ip = host_ip(0);
    let lg_cfg = LoadGenConfig {
        server: server_ip,
        conns: 64,
        ..LoadGenConfig::default()
    };
    let mut factory = move |sim: &mut Sim<NetMsg>, spec: HostSpec| -> AgentId {
        if spec.index == 0 {
            let app: Box<dyn App> = Box::new(EchoServer::new(7, 64, ServerMode::Echo, 300));
            sim.add_agent(Box::new(TasHost::new(
                spec.ip,
                spec.mac,
                spec.nic,
                TasConfig::rpc_bench(2, 1),
                spec.uplink,
                app,
            )))
        } else {
            sim.add_agent(Box::new(LoadGenHost::new(
                spec.ip,
                spec.mac,
                spec.nic,
                spec.uplink,
                lg_cfg.clone(),
            )))
        }
    };
    let topo = build_star(
        &mut sim,
        2,
        |_| PortConfig::tengig(),
        |_| NicConfig::client_10g(1),
        &mut factory,
    );
    sim.inject_timer(SimTime::ZERO, topo.hosts[0], tas_timers::INIT, 0);
    sim.inject_timer(SimTime::ZERO, topo.hosts[1], lg_timers::INIT, 0);
    sim.run_until(SimTime::from_ms(100));
    let lg = sim.agent::<LoadGenHost>(topo.hosts[1]);
    assert_eq!(lg.established, 64, "all loadgen connections establish");
    assert!(lg.done > 1000, "closed-loop RPCs flow: {}", lg.done);
    assert_eq!(lg.rexmits, 0, "lossless LAN: no watchdog retransmits");
    let server = sim.agent::<TasHost>(topo.hosts[0]);
    assert_eq!(server.sp_stats().established, 64);
}

#[test]
fn loadgen_drives_linux_server() {
    use tas_apps::loadgen::{timers as lg_timers, LoadGenConfig, LoadGenHost};
    let mut sim: Sim<NetMsg> = Sim::new(51);
    let server_ip = host_ip(0);
    let lg_cfg = LoadGenConfig {
        server: server_ip,
        conns: 32,
        ..LoadGenConfig::default()
    };
    let mut factory = move |sim: &mut Sim<NetMsg>, spec: HostSpec| -> AgentId {
        if spec.index == 0 {
            let app: Box<dyn App> = Box::new(EchoServer::new(7, 64, ServerMode::Echo, 300));
            sim.add_agent(Box::new(StackHost::new(
                spec.ip,
                spec.mac,
                spec.nic,
                profiles::linux(),
                StackHostConfig::linux(2),
                spec.uplink,
                app,
            )))
        } else {
            sim.add_agent(Box::new(LoadGenHost::new(
                spec.ip,
                spec.mac,
                spec.nic,
                spec.uplink,
                lg_cfg.clone(),
            )))
        }
    };
    let topo = build_star(
        &mut sim,
        2,
        |_| PortConfig::tengig(),
        |_| NicConfig::client_10g(1),
        &mut factory,
    );
    sim.inject_timer(SimTime::ZERO, topo.hosts[0], bl_timers::INIT, 0);
    sim.inject_timer(SimTime::ZERO, topo.hosts[1], lg_timers::INIT, 0);
    sim.run_until(SimTime::from_ms(100));
    let lg = sim.agent::<LoadGenHost>(topo.hosts[1]);
    assert_eq!(lg.established, 32);
    assert!(lg.done > 500, "RPCs flow over the Linux model: {}", lg.done);
}
