//! Cross-process determinism of the `tas-lint` binary: two fresh
//! processes scanning the same tree must emit byte-identical JSON, and
//! the exit code must encode the verdict (0 clean / 1 deny findings).

use std::path::PathBuf;
use std::process::{Command, Output};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

fn run_lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tas-lint"))
        .args(args)
        .output()
        .expect("spawn tas-lint")
}

#[test]
fn two_processes_emit_identical_json() {
    let root = repo_root();
    let root = root.to_str().expect("utf-8 path");
    let a = run_lint(&["--root", root, "--json"]);
    let b = run_lint(&["--root", root, "--json"]);
    assert_eq!(
        a.stdout, b.stdout,
        "hash-seed or walk-order nondeterminism leaked into the report"
    );
    assert_eq!(a.status.code(), b.status.code());
    let text = String::from_utf8(a.stdout).expect("json is utf-8");
    assert!(
        text.starts_with("{\"tool\":\"tas-lint\",\"version\":1,"),
        "stable schema prefix: {}",
        &text[..text.len().min(80)]
    );
    assert!(text.contains("\"summary\":{"));
}

#[test]
fn workspace_is_clean_and_exits_zero() {
    let root = repo_root();
    let out = run_lint(&["--root", root.to_str().expect("utf-8 path")]);
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace must be lint-clean at deny:\n{text}"
    );
    assert!(text.contains("0 deny"), "{text}");
}

#[test]
fn deny_findings_exit_one() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("lint-exit-one");
    let src_dir = dir.join("crates/tas/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir");
    // Minimal tree: the repo's own config plus one R4 violation in scope.
    std::fs::copy(repo_root().join("lint.toml"), dir.join("lint.toml")).expect("copy config");
    std::fs::write(
        src_dir.join("fastpath.rs"),
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    )
    .expect("write violation");
    let out = run_lint(&["--root", dir.to_str().expect("utf-8 path"), "--json"]);
    assert_eq!(out.status.code(), Some(1), "deny findings must gate");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"rule\":\"R4\""), "{text}");
}

#[test]
fn r8_findings_are_byte_identical_across_processes() {
    // A tree that trips R8 four ways (cross-component writes, &mut
    // borrow, ownership-map drift): two fresh processes must agree on
    // every byte of the JSON, and the findings must gate.
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("lint-r8-identity");
    let src_dir = dir.join("crates/tas/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir");
    std::fs::copy(repo_root().join("lint.toml"), dir.join("lint.toml")).expect("copy config");
    std::fs::copy(
        repo_root().join("crates/lint/tests/fixtures/r8_ownership_bad.rs"),
        src_dir.join("slowpath.rs"),
    )
    .expect("copy fixture");
    let root = dir.to_str().expect("utf-8 path");
    let a = run_lint(&["--root", root, "--json"]);
    let b = run_lint(&["--root", root, "--json"]);
    assert_eq!(a.stdout, b.stdout, "R8 output must be byte-deterministic");
    assert_eq!(a.status.code(), Some(1), "R8 findings gate at deny");
    let text = String::from_utf8(a.stdout).expect("json is utf-8");
    assert_eq!(text.matches("\"rule\":\"R8\"").count(), 4, "{text}");
    assert!(text.contains("write-scope boundary"), "{text}");
}

#[test]
fn unknown_flag_exits_two() {
    let out = run_lint(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
}
