//! Proves every rule live against committed fixtures, using the real
//! repo `lint.toml` for scoping and severities. Each rule has a bad
//! fixture that must fire and a fixed fixture that must stay silent;
//! R1's pair reconstructs the PR-1 slowpath retry-batch bug and its
//! BTreeMap fix, plus a pragma-suppressed variant.

use tas_lint::{scan_source, Config, Finding};

fn repo_config() -> Config {
    tas_lint::config::parse(include_str!("../../../lint.toml")).expect("repo lint.toml parses")
}

/// Scans a fixture as if it lived at `rel` inside the workspace.
fn scan(rel: &str, src: &str) -> Vec<Finding> {
    scan_source(rel, src, &repo_config())
}

fn rules_of(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule.as_str()).collect()
}

#[test]
fn r1_fires_on_the_pr1_retry_batch_bug() {
    let f = scan(
        "crates/tas/src/slowpath.rs",
        include_str!("fixtures/r1_retry_batch_bad.rs"),
    );
    assert!(
        f.iter().any(|f| f.rule == "R1"),
        "R1 must fire on HashMap retry iteration: {f:?}"
    );
    let r1 = f.iter().find(|f| f.rule == "R1").expect("checked");
    assert!(
        r1.message.contains("iteration-order"),
        "message names the failure mode: {}",
        r1.message
    );
}

#[test]
fn r1_silent_on_the_btreemap_fix() {
    let f = scan(
        "crates/tas/src/slowpath.rs",
        include_str!("fixtures/r1_retry_batch_fixed.rs"),
    );
    assert!(f.is_empty(), "BTreeMap version must be clean: {f:?}");
}

#[test]
fn r1_pragma_suppresses_with_justification() {
    let f = scan(
        "crates/tas/src/slowpath.rs",
        include_str!("fixtures/r1_retry_batch_allowed.rs"),
    );
    assert!(
        f.is_empty(),
        "justified pragmas must suppress R1+R2 and leave no allow-syntax residue: {f:?}"
    );
}

#[test]
fn r2_fires_on_ambient_sources_and_accepts_sim_clock() {
    let bad = scan(
        "crates/sim/src/backoff.rs",
        include_str!("fixtures/r2_ambient_bad.rs"),
    );
    assert_eq!(
        rules_of(&bad),
        vec!["R2", "R2", "R2"],
        "Instant, SystemTime, thread_rng each fire: {bad:?}"
    );
    let good = scan(
        "crates/sim/src/backoff.rs",
        include_str!("fixtures/r2_ambient_fixed.rs"),
    );
    assert!(good.is_empty(), "{good:?}");
}

#[test]
fn r3_fires_on_bare_seq_arithmetic_and_accepts_wrapping() {
    let bad = scan(
        "crates/tcp/src/conn.rs",
        include_str!("fixtures/r3_seq_bad.rs"),
    );
    assert_eq!(
        rules_of(&bad),
        vec!["R3", "R3"],
        "the `<` and the `+` each fire: {bad:?}"
    );
    let good = scan(
        "crates/tcp/src/conn.rs",
        include_str!("fixtures/r3_seq_fixed.rs"),
    );
    assert!(good.is_empty(), "{good:?}");
}

#[test]
fn r4_fires_on_fastpath_panics_and_accepts_let_else() {
    let bad = scan(
        "crates/tas/src/fastpath.rs",
        include_str!("fixtures/r4_fastpath_bad.rs"),
    );
    assert_eq!(
        rules_of(&bad),
        vec!["R4", "R4", "R4"],
        "unwrap, expect, panic! each fire: {bad:?}"
    );
    let good = scan(
        "crates/tas/src/fastpath.rs",
        include_str!("fixtures/r4_fastpath_fixed.rs"),
    );
    assert!(good.is_empty(), "debug_assert! is sanctioned: {good:?}");
}

#[test]
fn r5_fires_on_ungated_emit_and_accepts_the_gate() {
    let bad = scan(
        "crates/tas/src/host.rs",
        include_str!("fixtures/r5_trace_bad.rs"),
    );
    assert_eq!(
        rules_of(&bad),
        vec!["R5", "R5"],
        "`emit` and `TraceRecord` each fire: {bad:?}"
    );
    let good = scan(
        "crates/tas/src/host.rs",
        include_str!("fixtures/r5_trace_fixed.rs"),
    );
    assert!(good.is_empty(), "{good:?}");
}

#[test]
fn r7_fires_on_ungated_profiler_sites_and_accepts_the_gate() {
    let bad = scan(
        "crates/tas/src/fastpath.rs",
        include_str!("fixtures/r7_profile_bad.rs"),
    );
    assert_eq!(
        rules_of(&bad),
        vec!["R7", "R7"],
        "the guard and the charge each fire: {bad:?}"
    );
    let good = scan(
        "crates/tas/src/fastpath.rs",
        include_str!("fixtures/r7_profile_fixed.rs"),
    );
    assert!(
        good.is_empty(),
        "gated sites and `profile` fields must be clean: {good:?}"
    );
}

#[test]
fn r6_fires_on_removed_surfaces_and_accepts_replacements() {
    let bad = scan(
        "crates/netsim/src/nic.rs",
        include_str!("fixtures/r6_deprecated_bad.rs"),
    );
    assert_eq!(
        rules_of(&bad),
        vec!["R6", "R6", "R6"],
        "tx_loss, FaultCounters, tx_fault_counters each fire: {bad:?}"
    );
    let good = scan(
        "crates/netsim/src/nic.rs",
        include_str!("fixtures/r6_deprecated_fixed.rs"),
    );
    assert!(good.is_empty(), "{good:?}");
}

#[test]
fn r8_fires_on_cross_component_writes_and_map_drift() {
    let bad = scan(
        "crates/tas/src/slowpath.rs",
        include_str!("fixtures/r8_ownership_bad.rs"),
    );
    assert_eq!(
        rules_of(&bad),
        vec!["R8", "R8", "R8", "R8"],
        "plain write, compound write, &mut borrow, and drift each fire: {bad:?}"
    );
    assert!(
        bad.iter().any(|f| f.message.contains("write to `flow.snd.tx_sent`")),
        "{bad:?}"
    );
    assert!(
        bad.iter().any(|f| f.message.contains("exclusive borrow of `flow.rcv.rx`")),
        "{bad:?}"
    );
    assert!(
        bad.iter()
            .any(|f| f.message.contains("probe_hint") && f.message.contains("drifted")),
        "the undeclared field is reported as map drift: {bad:?}"
    );
}

#[test]
fn r8_silent_on_owner_method_dispatch() {
    let good = scan(
        "crates/tas/src/slowpath.rs",
        include_str!("fixtures/r8_ownership_fixed.rs"),
    );
    assert!(
        good.is_empty(),
        "owner-impl writes, method dispatch, and reads must be clean: {good:?}"
    );
}

#[test]
fn r8_reports_stale_map_entries_too() {
    // The reverse drift direction: the map claims a field the struct no
    // longer has. A trimmed FpFlowCtrl is missing `win_closed`.
    let src = "pub struct FpFlowCtrl { pub snd_wnd: u64, pub peer_wscale: u8 }\n";
    let f = scan("crates/tas/src/flow.rs", src);
    assert!(
        f.iter()
            .any(|f| f.rule == "R8" && f.message.contains("win_closed")),
        "stale ownership-map entries must be reported: {f:?}"
    );
}

#[test]
fn findings_carry_deny_severity_from_repo_config() {
    let f = scan(
        "crates/tas/src/fastpath.rs",
        include_str!("fixtures/r4_fastpath_bad.rs"),
    );
    assert!(
        f.iter().all(|f| f.severity == tas_lint::Severity::Deny),
        "repo config gates every rule at deny: {f:?}"
    );
}

#[test]
fn out_of_scope_paths_do_not_fire() {
    // R4 is scoped to the fast path and the shm rings; the same panicky
    // code in a benchmark crate is legal.
    let f = scan(
        "crates/bench/src/report.rs",
        include_str!("fixtures/r4_fastpath_bad.rs"),
    );
    assert!(
        f.iter().all(|f| f.rule != "R4"),
        "bench code is outside R4's scope: {f:?}"
    );
}

#[test]
fn unused_pragma_is_reported_not_ignored() {
    let src = "// lint:allow(R4): nothing here actually panics today\nfn f() {}\n";
    let f = scan("crates/tas/src/fastpath.rs", src);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, "allow-syntax");
    assert!(f[0].message.contains("unused"), "{}", f[0].message);
}
