//! The sanctioned sources: the sim clock and the seeded Rng stream.
//! R2 must stay silent.

pub fn sample_backoff(now: SimTime, rng: &mut Rng) -> u64 {
    now.as_ps() ^ rng.next_u64()
}
