//! Bare arithmetic and comparisons on u32 sequence-space values: both
//! overflow in debug builds and mis-order across the 2^32 wrap. R3 must
//! fire on the `+` and on the `<`.

impl Conn {
    fn ack_advances(&self, seg_ack: u32) -> bool {
        self.snd_una < seg_ack
    }

    fn next_to_send(&self) -> u32 {
        self.snd_nxt + 1
    }
}
