//! Reconstruction of the PR-1 slowpath retry-batch bug: the retry scan
//! iterated a `HashMap<FlowKey, Retry>`, so the order SYN retransmits
//! hit the wire depended on the process's hash seed. R1 must fire here.

pub struct SlowPath {
    retries: HashMap<FlowKey, Retry>,
}

impl SlowPath {
    pub fn poll_retries(&mut self, now: u64, batch: &mut Vec<FlowKey>) {
        for (key, retry) in self.retries.iter_mut() {
            if retry.deadline <= now {
                retry.attempts += 1;
                batch.push(*key);
            }
        }
    }
}
