//! Resurrecting the compat surfaces deleted in PR 5: the `tx_loss`
//! probability fold and the `FaultCounters`/`HostStats` accessors. R6
//! must fire on each banned identifier.

pub fn observe(nic: &Nic, cfg: &mut NicConfig) -> u64 {
    cfg.tx_loss = 0.05;
    let c: FaultCounters = nic.tx_fault_counters();
    c.dropped
}
