//! The same emit site under the per-crate `trace` feature gate. R5
//! must stay silent.

impl Host {
    #[cfg(feature = "trace")]
    fn log_rx(&self, now: SimTime, seg: &Segment) {
        tas_telemetry::emit(|| tas_telemetry::TraceRecord {
            t: now,
            site: "host",
            ev: rx_event(seg),
        });
    }
}
