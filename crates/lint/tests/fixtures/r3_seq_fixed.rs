//! Wrap-safe sequence handling: `seq::` compare helpers and wrapping
//! arithmetic. R3 must stay silent.

impl Conn {
    fn ack_advances(&self, seg_ack: u32) -> bool {
        seq::lt(self.snd_una, seg_ack)
    }

    fn next_to_send(&self) -> u32 {
        self.snd_nxt.wrapping_add(1)
    }
}
