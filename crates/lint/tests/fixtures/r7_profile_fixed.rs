//! R7 fixed fixture: the same profiler sites under `feature = "profile"`
//! cfg gates, plus a field named `profile` (path-free, always legal).

pub struct Fastpath {
    cycles: u64,
    profile: bool,
}

impl Fastpath {
    pub fn poll_rx(&mut self) {
        #[cfg(feature = "profile")]
        let _g = tas_telemetry::profile::guard("rx");
        self.cycles += 17;
        self.profile = true;
        #[cfg(feature = "profile")]
        tas_telemetry::profile::charge(17);
    }

    #[cfg(any(feature = "trace", feature = "profile"))]
    pub fn arm(&self) {
        tas_telemetry::profile::set_core("fp", 0);
    }
}
