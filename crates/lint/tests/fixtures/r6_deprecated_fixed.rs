//! The replacement surfaces: `FaultSpec` on the config side and the
//! registry snapshot on the observation side. R6 must stay silent.

pub fn observe(nic: &Nic, cfg: &mut NicConfig) -> u64 {
    cfg.tx_fault = FaultSpec::uniform_loss(0.05, 0);
    let snap = tas_sim::registry_snapshot();
    snap.counter("fault.dropped", Scope::Global)
}
