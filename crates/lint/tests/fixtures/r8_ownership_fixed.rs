//! R8 fixture (clean): the same mutations routed through the owning
//! components' methods, and a component struct that matches its
//! ownership-map entry exactly. Scanned as `crates/tas/src/slowpath.rs`.

pub struct FpRecvRel {
    pub rx: ByteRing,
    pub irs: u32,
    pub ooo_start: u64,
    pub ooo_len: u32,
}

impl FpRecvRel {
    /// Writes to owned fields inside the owner's impl are the sanctioned
    /// mutation path.
    pub fn clear_ooo(&mut self) {
        self.ooo_len = 0;
        self.ooo_start = 0;
    }
}

pub struct SlowPath {
    flows: FlowTable,
}

impl SlowPath {
    fn poke(&mut self, flow: &mut FlowState) {
        // Mutations dispatch to the owning component.
        flow.snd.rewind_for_retransmit();
        flow.cc.count_nominal_mark(1448);
        flow.rcv.clear_ooo();
        // Reads of any component's state stay legal everywhere.
        let backlog = flow.cc.cnt_ackb;
        let _ = backlog;
    }
}
