//! Graceful degradation: let-else with debug_assert! keeps the
//! invariant check in audit builds and drops the packet in release
//! builds. R4 must stay silent (debug_assert! is sanctioned).

impl FastPath {
    pub fn tx_one(&mut self, fid: u32, off: u64, n: usize) {
        let Some(flow) = self.flows.get_mut(fid) else {
            debug_assert!(false, "tx for uninstalled flow {fid}");
            return;
        };
        let Ok(payload) = flow.tx.copy_out(off, n) else {
            debug_assert!(false, "tx window outside ring");
            return;
        };
        if payload.is_empty() {
            return;
        }
        self.push_segment(flow, payload);
    }
}
