//! Panicking constructs on the packet fast path: one malformed segment
//! would take down every connection on the core. R4 must fire on the
//! unwrap, the expect, and the panic!.

impl FastPath {
    pub fn tx_one(&mut self, fid: u32, off: u64, n: usize) {
        let flow = self.flows.get_mut(fid).unwrap();
        let payload = flow.tx.copy_out(off, n).expect("inside ring");
        if payload.is_empty() {
            panic!("empty descriptor");
        }
        self.push_segment(flow, payload);
    }
}
