//! Ambient nondeterminism in sim code: wall-clock reads and OS
//! randomness make replays diverge. R2 must fire on each source.

pub fn sample_backoff() -> u64 {
    let started = Instant::now();
    let wall = SystemTime::now();
    let mut rng = thread_rng();
    started.elapsed().as_nanos() as u64 ^ rng.next_u64() ^ wall_nanos(wall)
}
