//! The hash-map variant with justified inline pragmas: both the R2
//! container finding and the R1 iteration finding are suppressed, and
//! every pragma is consumed (no `allow-syntax` residue).

pub struct SlowPath {
    // lint:allow(R2): fixture for pragma mechanics; iteration result is
    // sorted by the caller before any packet ordering depends on it.
    retries: HashMap<FlowKey, Retry>,
}

impl SlowPath {
    pub fn poll_retries(&mut self, now: u64, batch: &mut Vec<FlowKey>) {
        // lint:allow(R1): fixture for pragma mechanics; the caller sorts
        // the batch before emission, so hash order never reaches the wire.
        for (key, retry) in self.retries.iter_mut() {
            if retry.deadline <= now {
                batch.push(*key);
            }
        }
    }
}
