//! R8 fixture (violating): cross-component writes and ownership-map
//! drift. Scanned as `crates/tas/src/slowpath.rs`, so the `tas_flow`
//! component map applies. Expected findings:
//!   1. `flow.snd.tx_sent = 0`       — plain write across `snd`
//!   2. `flow.cc.cnt_ackb += 1448`   — compound write across `cc`
//!   3. `&mut flow.rcv.rx`           — exclusive borrow across `rcv`
//!   4. `FpRecvRel::probe_hint`      — field missing from the map (drift)

/// A drifted component struct: `probe_hint` exists here but has no
/// owner in `[components.tas_flow.rcv].fields`.
pub struct FpRecvRel {
    pub rx: ByteRing,
    pub irs: u32,
    pub ooo_start: u64,
    pub ooo_len: u32,
    pub probe_hint: u64,
}

pub struct SlowPath {
    flows: FlowTable,
}

impl SlowPath {
    fn poke(&mut self, flow: &mut FlowState) {
        flow.snd.tx_sent = 0;
        flow.cc.cnt_ackb += 1448;
        let ring = &mut flow.rcv.rx;
        ring.advance_end(1);
    }
}
