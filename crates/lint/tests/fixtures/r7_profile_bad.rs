//! R7 bad fixture: profiler call sites with no `feature = "profile"`
//! gate. Both the guard and the charge must fire — ungated sites either
//! break the default build or drag the profiler into it.

pub struct Fastpath {
    cycles: u64,
}

impl Fastpath {
    pub fn poll_rx(&mut self) {
        let _g = tas_telemetry::profile::guard("rx");
        self.cycles += 17;
        tas_telemetry::profile::charge(17);
    }
}
