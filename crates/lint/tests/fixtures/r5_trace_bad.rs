//! An ungated flight-recorder emit site: it drags tas-telemetry into
//! default builds and breaks the trace-off zero-overhead proof. R5 must
//! fire on `emit` and on `TraceRecord`.

impl Host {
    fn log_rx(&self, now: SimTime, seg: &Segment) {
        tas_telemetry::emit(|| tas_telemetry::TraceRecord {
            t: now,
            site: "host",
            ev: rx_event(seg),
        });
    }
}
