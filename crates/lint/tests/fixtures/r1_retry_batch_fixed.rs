//! The PR-1 fix: a `BTreeMap` keyed by `FlowKey` makes the retry batch
//! order a pure function of the flow keys. R1 must stay silent.

pub struct SlowPath {
    retries: BTreeMap<FlowKey, Retry>,
}

impl SlowPath {
    pub fn poll_retries(&mut self, now: u64, batch: &mut Vec<FlowKey>) {
        for (key, retry) in self.retries.iter_mut() {
            if retry.deadline <= now {
                retry.attempts += 1;
                batch.push(*key);
            }
        }
    }
}
