//! `lint.toml` parsing.
//!
//! The build environment is offline, so the engine parses its own config
//! with a minimal hand-rolled TOML-subset reader. The supported grammar
//! is exactly what the committed `lint.toml` uses:
//!
//! ```toml
//! exclude = ["vendor/", "crates/lint/tests/fixtures/"]
//!
//! [rules.R1]
//! severity = "deny"
//! paths = ["crates/tas/src/"]
//! idents = ["extra_banned_name"]        # rule-specific string lists
//!
//! [[allow]]
//! rule = "R1"
//! path = "crates/tas/src/flow.rs"
//! reason = "point-lookup table; never iterated"
//! ```
//!
//! Tables (`[rules.RN]`), arrays of tables (`[[allow]]`), string values,
//! and string arrays. No nested inline tables, no multi-line strings —
//! the parser rejects what it does not understand so a config typo fails
//! loudly instead of silently disabling a rule.

use std::collections::BTreeMap;

/// How hard a rule's findings gate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational; never fails a run.
    Note,
    /// Reported; fails only `--deny-warnings` runs.
    Warn,
    /// Fails the run (exit code 1, tier-1 test failure).
    Deny,
}

impl Severity {
    /// Stable lower-case name (JSON output).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }

    fn parse(s: &str) -> Option<Severity> {
        match s {
            "note" => Some(Severity::Note),
            "warn" => Some(Severity::Warn),
            "deny" => Some(Severity::Deny),
            _ => None,
        }
    }
}

/// Per-rule configuration.
#[derive(Clone, Debug)]
pub struct RuleConfig {
    /// Gate level.
    pub severity: Severity,
    /// Repo-relative path prefixes the rule applies to. Empty = whole
    /// workspace.
    pub paths: Vec<String>,
    /// Extra rule-specific identifier lists (R3 seq names, R4 index
    /// receivers, R6 banned tokens).
    pub idents: Vec<String>,
    /// Whether the rule also runs inside `#[cfg(test)]` items and
    /// `tests/`/`benches/`/`examples/` targets. Default false.
    pub include_test_code: bool,
}

impl Default for RuleConfig {
    fn default() -> Self {
        RuleConfig {
            severity: Severity::Deny,
            paths: Vec::new(),
            idents: Vec::new(),
            include_test_code: false,
        }
    }
}

/// One component's slice of a decomposed state struct (R8).
#[derive(Clone, Debug, Default)]
pub struct Component {
    /// The component struct's type name — the only impl target whose
    /// methods may write the component's fields.
    pub strukt: String,
    /// The aggregate field through which the component is reached
    /// (`flow.snd`, `conn.cc`, …).
    pub accessor: String,
    /// The leaf fields the component owns. Must match the component
    /// struct's declaration exactly (R8's drift check enforces this).
    pub fields: Vec<String>,
}

/// A decomposed state struct and its field-ownership map (R8).
#[derive(Clone, Debug, Default)]
pub struct ComponentGroup {
    /// The aggregate struct's type name (`TcpConn`, `FlowState`).
    pub strukt: String,
    /// Repo-relative path prefixes where this map is enforced.
    pub paths: Vec<String>,
    /// Aggregate fields with no owner, writable from any impl (staging
    /// buffers, counters, config).
    pub shared: Vec<String>,
    /// Components keyed by the `[components.<group>.<name>]` key.
    pub components: BTreeMap<String, Component>,
}

impl ComponentGroup {
    /// True when the map is enforced at `rel_path`.
    pub fn in_scope(&self, rel_path: &str) -> bool {
        self.paths.is_empty() || self.paths.iter().any(|p| rel_path.starts_with(p.as_str()))
    }

    /// The component (name, entry) reached through aggregate field
    /// `accessor`, if any.
    pub fn by_accessor(&self, accessor: &str) -> Option<(&str, &Component)> {
        self.components
            .iter()
            .find(|(_, c)| c.accessor == accessor)
            .map(|(n, c)| (n.as_str(), c))
    }

    /// The component (name, entry) owning leaf field `field`, if any.
    pub fn by_field(&self, field: &str) -> Option<(&str, &Component)> {
        self.components
            .iter()
            .find(|(_, c)| c.fields.iter().any(|f| f == field))
            .map(|(n, c)| (n.as_str(), c))
    }

    /// The component (name, entry) whose struct is `name`, if any.
    pub fn by_struct(&self, name: &str) -> Option<(&str, &Component)> {
        self.components
            .iter()
            .find(|(_, c)| c.strukt == name)
            .map(|(n, c)| (n.as_str(), c))
    }
}

/// A path-scoped allow entry from `lint.toml`.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    /// Rule id (`R1`..`R6`) or `*`.
    pub rule: String,
    /// Repo-relative path prefix the allow covers.
    pub path: String,
    /// Required human justification.
    pub reason: String,
}

/// The parsed configuration.
#[derive(Clone, Debug, Default)]
pub struct Config {
    /// Repo-relative path prefixes excluded from scanning entirely.
    pub exclude: Vec<String>,
    /// Per-rule settings, keyed by rule id.
    pub rules: BTreeMap<String, RuleConfig>,
    /// Path-scoped allows.
    pub allows: Vec<AllowEntry>,
    /// R8 field-ownership maps, keyed by group name.
    pub components: BTreeMap<String, ComponentGroup>,
}

impl Config {
    /// Effective config for `rule`: the parsed entry or the default.
    pub fn rule(&self, id: &str) -> RuleConfig {
        self.rules.get(id).cloned().unwrap_or_default()
    }

    /// True when `rel_path` is scoped in for `rule` (path prefix match;
    /// empty scope = everywhere).
    pub fn in_scope(&self, id: &str, rel_path: &str) -> bool {
        let rc = self.rule(id);
        rc.paths.is_empty() || rc.paths.iter().any(|p| rel_path.starts_with(p.as_str()))
    }

    /// True when a `[[allow]]` entry covers `rule` at `rel_path`.
    pub fn allowed(&self, rule: &str, rel_path: &str) -> bool {
        self.allows
            .iter()
            .any(|a| (a.rule == rule || a.rule == "*") && rel_path.starts_with(a.path.as_str()))
    }
}

/// A parse failure, with its 1-based line.
#[derive(Debug)]
pub struct ConfigError {
    /// Line number.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.msg)
    }
}

enum Section {
    Top,
    Rule(String),
    Allow,
    Group(String),
    Component(String, String),
}

/// Parses the `lint.toml` text.
pub fn parse(text: &str) -> Result<Config, ConfigError> {
    let mut cfg = Config::default();
    let mut section = Section::Top;
    let lines: Vec<&str> = text.lines().collect();
    let mut i = 0;
    while i < lines.len() {
        let lineno = i + 1;
        let mut line = strip_comment(lines[i]).trim().to_string();
        i += 1;
        // Multi-line array: join until the `]` closes (quote-aware
        // bracket counting is unnecessary — paths never contain `]`).
        if line.contains('[')
            && line.contains('=')
            && line.matches('[').count() > line.matches(']').count()
        {
            while i < lines.len() && line.matches('[').count() > line.matches(']').count() {
                line.push(' ');
                line.push_str(strip_comment(lines[i]).trim());
                i += 1;
            }
        }
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| ConfigError { line: lineno, msg };
        if let Some(name) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            if name.trim() != "allow" {
                return Err(err(format!("unknown array-of-tables [[{}]]", name.trim())));
            }
            cfg.allows.push(AllowEntry {
                rule: String::new(),
                path: String::new(),
                reason: String::new(),
            });
            section = Section::Allow;
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            let name = name.trim();
            if let Some(rule) = name.strip_prefix("rules.") {
                cfg.rules.entry(rule.to_string()).or_default();
                section = Section::Rule(rule.to_string());
                continue;
            }
            if let Some(rest) = name.strip_prefix("components.") {
                section = match rest.split_once('.') {
                    None => {
                        cfg.components.entry(rest.to_string()).or_default();
                        Section::Group(rest.to_string())
                    }
                    Some((group, comp)) => {
                        if comp.contains('.') {
                            return Err(err(format!(
                                "component tables nest at most once: [{name}]"
                            )));
                        }
                        cfg.components
                            .entry(group.to_string())
                            .or_default()
                            .components
                            .entry(comp.to_string())
                            .or_default();
                        Section::Component(group.to_string(), comp.to_string())
                    }
                };
                continue;
            }
            return Err(err(format!("unknown table [{name}]")));
        }
        let Some(eq) = line.find('=') else {
            return Err(err(format!("expected `key = value`, got `{line}`")));
        };
        let key = line[..eq].trim();
        let val = line[eq + 1..].trim();
        match &mut section {
            Section::Top => match key {
                "exclude" => cfg.exclude = parse_string_array(val).map_err(err)?,
                _ => return Err(err(format!("unknown top-level key `{key}`"))),
            },
            Section::Rule(id) => {
                let rc = cfg.rules.get_mut(id.as_str()).unwrap_or_else(|| {
                    unreachable!("section entry inserted when the header was parsed")
                });
                match key {
                    "severity" => {
                        let s = parse_string(val).map_err(err)?;
                        rc.severity = Severity::parse(&s)
                            .ok_or_else(|| err(format!("unknown severity `{s}`")))?;
                    }
                    "paths" => rc.paths = parse_string_array(val).map_err(err)?,
                    "idents" => rc.idents = parse_string_array(val).map_err(err)?,
                    "include_test_code" => {
                        rc.include_test_code = match val {
                            "true" => true,
                            "false" => false,
                            _ => return Err(err(format!("expected true/false, got `{val}`"))),
                        }
                    }
                    _ => return Err(err(format!("unknown rule key `{key}`"))),
                }
            }
            Section::Allow => {
                let entry = cfg
                    .allows
                    .last_mut()
                    .unwrap_or_else(|| unreachable!("[[allow]] pushes before keys parse"));
                let s = parse_string(val).map_err(err)?;
                match key {
                    "rule" => entry.rule = s,
                    "path" => entry.path = s,
                    "reason" => entry.reason = s,
                    _ => return Err(err(format!("unknown allow key `{key}`"))),
                }
            }
            Section::Group(g) => {
                let group = cfg.components.get_mut(g.as_str()).unwrap_or_else(|| {
                    unreachable!("group entry inserted when the header was parsed")
                });
                match key {
                    "struct" => group.strukt = parse_string(val).map_err(err)?,
                    "paths" => group.paths = parse_string_array(val).map_err(err)?,
                    "shared" => group.shared = parse_string_array(val).map_err(err)?,
                    _ => return Err(err(format!("unknown component-group key `{key}`"))),
                }
            }
            Section::Component(g, c) => {
                let comp = cfg
                    .components
                    .get_mut(g.as_str())
                    .and_then(|gr| gr.components.get_mut(c.as_str()))
                    .unwrap_or_else(|| {
                        unreachable!("component entry inserted when the header was parsed")
                    });
                match key {
                    "struct" => comp.strukt = parse_string(val).map_err(err)?,
                    "accessor" => comp.accessor = parse_string(val).map_err(err)?,
                    "fields" => comp.fields = parse_string_array(val).map_err(err)?,
                    _ => return Err(err(format!("unknown component key `{key}`"))),
                }
            }
        }
    }
    // Validate allows: every entry needs rule, path, and a real reason.
    for (idx, a) in cfg.allows.iter().enumerate() {
        if a.rule.is_empty() || a.path.is_empty() {
            return Err(ConfigError {
                line: 0,
                msg: format!("[[allow]] #{} is missing `rule` or `path`", idx + 1),
            });
        }
        if a.reason.trim().len() < MIN_REASON_LEN {
            return Err(ConfigError {
                line: 0,
                msg: format!(
                    "[[allow]] #{} ({} at {}): `reason` must justify the exemption \
                     (≥ {MIN_REASON_LEN} chars)",
                    idx + 1,
                    a.rule,
                    a.path
                ),
            });
        }
    }
    // Validate component groups: every group names its aggregate struct,
    // every component names its struct + accessor + fields, and within a
    // group no accessor or leaf field has two owners — an ambiguous map
    // would make R8's verdicts depend on iteration order.
    for (gname, g) in &cfg.components {
        let gerr = |msg: String| ConfigError { line: 0, msg };
        if g.strukt.is_empty() {
            return Err(gerr(format!("[components.{gname}] is missing `struct`")));
        }
        let mut accessors: BTreeMap<&str, &str> = BTreeMap::new();
        let mut owners: BTreeMap<&str, &str> = BTreeMap::new();
        for (cname, c) in &g.components {
            if c.strukt.is_empty() || c.accessor.is_empty() || c.fields.is_empty() {
                return Err(gerr(format!(
                    "[components.{gname}.{cname}] needs `struct`, `accessor`, and `fields`"
                )));
            }
            if let Some(prev) = accessors.insert(c.accessor.as_str(), cname.as_str()) {
                return Err(gerr(format!(
                    "[components.{gname}]: accessor `{}` claimed by both `{prev}` and `{cname}`",
                    c.accessor
                )));
            }
            for f in &c.fields {
                if let Some(prev) = owners.insert(f.as_str(), cname.as_str()) {
                    return Err(gerr(format!(
                        "[components.{gname}]: field `{f}` owned by both `{prev}` and `{cname}`"
                    )));
                }
            }
        }
        if let Some(s) = g.shared.iter().find(|s| accessors.contains_key(s.as_str())) {
            return Err(gerr(format!(
                "[components.{gname}]: `{s}` is both shared and a component accessor"
            )));
        }
        if g.components.is_empty() {
            return Err(gerr(format!(
                "[components.{gname}] declares no components"
            )));
        }
    }
    Ok(cfg)
}

/// Minimum length of an allow justification, config-file and inline both.
/// Short enough not to pad, long enough that `"ok"` does not pass review.
pub const MIN_REASON_LEN: usize = 10;

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, ch) in line.char_indices() {
        match ch {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = ch == '\\' && !prev_backslash;
    }
    line
}

fn parse_string(val: &str) -> Result<String, String> {
    let v = val.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(format!("expected a double-quoted string, got `{v}`"))
    }
}

fn parse_string_array(val: &str) -> Result<Vec<String>, String> {
    let v = val.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("expected a [\"…\", …] array, got `{v}`"))?;
    let mut out = Vec::new();
    for part in split_top_level(inner) {
        let p = part.trim();
        if p.is_empty() {
            continue;
        }
        out.push(parse_string(p)?);
    }
    Ok(out)
}

/// Splits on commas outside quotes.
fn split_top_level(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for ch in s.chars() {
        match ch {
            '"' => {
                in_str = !in_str;
                cur.push(ch);
            }
            ',' if !in_str => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(ch),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_schema() {
        let cfg = parse(
            r#"
# top comment
exclude = ["vendor/", "target/"]

[rules.R1]
severity = "deny"
paths = ["crates/tas/src/", "crates/tcp/src/"]

[rules.R3]
severity = "warn"
idents = ["seq", "ack"]
include_test_code = true

[[allow]]
rule = "R1"
path = "crates/tas/src/flow.rs"
reason = "point-lookup only, never iterated"
"#,
        )
        .unwrap();
        assert_eq!(cfg.exclude, vec!["vendor/", "target/"]);
        assert_eq!(cfg.rule("R1").severity, Severity::Deny);
        assert_eq!(cfg.rule("R3").severity, Severity::Warn);
        assert!(cfg.rule("R3").include_test_code);
        assert!(cfg.in_scope("R1", "crates/tcp/src/conn.rs"));
        assert!(!cfg.in_scope("R1", "crates/apps/src/kv.rs"));
        assert!(cfg.in_scope("R2", "anything/at/all.rs"), "no entry = everywhere");
        assert!(cfg.allowed("R1", "crates/tas/src/flow.rs"));
        assert!(!cfg.allowed("R2", "crates/tas/src/flow.rs"));
    }

    #[test]
    fn rejects_unknown_keys_and_thin_reasons() {
        assert!(parse("nonsense = true").is_err());
        assert!(parse("[rules.R1]\nseverity = \"fatal\"").is_err());
        let thin = "[[allow]]\nrule = \"R1\"\npath = \"x.rs\"\nreason = \"ok\"";
        assert!(parse(thin).is_err(), "two-char reason must not pass");
    }

    #[test]
    fn comments_inside_strings_survive() {
        let cfg = parse("exclude = [\"a#b/\"] # trailing").unwrap();
        assert_eq!(cfg.exclude, vec!["a#b/"]);
    }
}
