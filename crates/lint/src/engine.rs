//! The scan engine: walks the workspace, runs the rule catalog, applies
//! inline and config-file allows, and renders findings.
//!
//! Determinism contract: for a fixed tree + config, two independent
//! processes produce byte-identical output. Files are scanned in sorted
//! relative-path order, findings are sorted by (path, line, col, rule),
//! all internal maps are BTree-ordered, and paths are rendered
//! repo-relative with `/` separators so the absolute root never leaks
//! into the report.

use crate::config::{Config, Severity, MIN_REASON_LEN};
use crate::lexer::lex;
use crate::rules::{regions, run_rule, RawFinding, RULES};
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

/// A resolved finding, ready to render.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repo-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule id.
    pub rule: String,
    /// Effective severity.
    pub severity: Severity,
    /// Description.
    pub message: String,
}

/// One engine run's output.
#[derive(Debug, Default)]
pub struct Report {
    /// All surviving findings, sorted.
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Inline allows that matched a finding (rule, path, line).
    pub allows_used: usize,
}

impl Report {
    /// Count at a given severity.
    pub fn count(&self, sev: Severity) -> usize {
        self.findings.iter().filter(|f| f.severity == sev).count()
    }

    /// True when nothing gates: no deny findings.
    pub fn clean(&self) -> bool {
        self.count(Severity::Deny) == 0
    }
}

/// An inline `lint:allow` pragma parsed from a comment.
#[derive(Debug)]
struct InlineAllow {
    /// Rules the pragma covers.
    rules: Vec<String>,
    /// The source line the pragma suppresses (the comment's own line for
    /// trailing pragmas, the next code line for standalone ones).
    line: u32,
    /// True once a finding consumed it (unused allows are reported).
    used: bool,
}

/// Parses `lint:allow(R1, R2): reason` pragmas out of one file's
/// comments. Returns (allows, malformed) where malformed entries become
/// `allow-syntax` deny findings — a silent typo must not silently
/// un-suppress or over-suppress.
fn parse_inline_allows(
    comments: &[crate::lexer::Comment],
    code_lines: &BTreeSet<u32>,
) -> (Vec<InlineAllow>, Vec<RawFinding>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        // The pragma must LEAD the comment (after the `//`/`/*` sigils):
        // prose that merely mentions lint:allow mid-sentence — like this
        // module's own docs — is not a pragma.
        let body = c
            .text
            .trim_start_matches(['/', '*', '!'])
            .trim_start();
        if !body.starts_with("lint:allow") {
            continue;
        }
        let rest = &body["lint:allow".len()..];
        let mut fail = |msg: &str| {
            bad.push(RawFinding {
                line: c.line,
                col: 1,
                rule: "allow-syntax",
                message: format!("malformed lint:allow pragma: {msg}"),
            });
        };
        let Some(open) = rest.find('(') else {
            fail("expected `lint:allow(RULE[, RULE…]): reason`");
            continue;
        };
        let Some(close) = rest.find(')') else {
            fail("missing `)` after rule list");
            continue;
        };
        if open != 0 || close < open {
            fail("expected `(` immediately after lint:allow");
            continue;
        }
        let rules: Vec<String> = rest[open + 1..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            fail("empty rule list");
            continue;
        }
        if let Some(unknown) = rules
            .iter()
            .find(|r| !RULES.iter().any(|(id, _, _)| id == &r.as_str()))
        {
            fail(&format!("unknown rule `{unknown}`"));
            continue;
        }
        let after = rest[close + 1..].trim_start();
        let Some(reason) = after.strip_prefix(':') else {
            fail("missing `: reason` after rule list");
            continue;
        };
        if reason.trim().len() < MIN_REASON_LEN {
            fail(&format!(
                "reason must justify the exemption (≥ {MIN_REASON_LEN} chars)"
            ));
            continue;
        }
        // Standalone comment lines cover the next code line; trailing
        // comments cover their own line.
        let target = if code_lines.contains(&c.line) {
            c.line
        } else {
            code_lines
                .range(c.line + 1..)
                .next()
                .copied()
                .unwrap_or(c.line)
        };
        allows.push(InlineAllow {
            rules,
            line: target,
            used: false,
        });
    }
    (allows, bad)
}

/// Scans one file's source text. `rel` is the repo-relative path used
/// for rule scoping and allowlists.
pub fn scan_source(rel: &str, src: &str, cfg: &Config) -> Vec<Finding> {
    let lexed = lex(src);
    let flags = regions(&lexed);
    let code_lines: BTreeSet<u32> = lexed.toks.iter().map(|t| t.line).collect();
    let (mut inline, malformed) = parse_inline_allows(&lexed.comments, &code_lines);

    let mut raw: Vec<RawFinding> = malformed;
    for (id, _, _) in RULES {
        if !cfg.in_scope(id, rel) || cfg.allowed(id, rel) {
            continue;
        }
        let rc = cfg.rule(id);
        raw.extend(run_rule(id, &lexed, &flags, &rc, rel, cfg));
    }

    let mut out = Vec::new();
    for f in raw {
        let suppressed = inline
            .iter_mut()
            .find(|a| a.line == f.line && a.rules.iter().any(|r| r == f.rule));
        if let Some(a) = suppressed {
            a.used = true;
            continue;
        }
        let severity = if f.rule == "allow-syntax" {
            Severity::Deny
        } else {
            cfg.rule(f.rule).severity
        };
        out.push(Finding {
            path: rel.to_string(),
            line: f.line,
            col: f.col,
            rule: f.rule.to_string(),
            severity,
            message: f.message,
        });
    }
    // Unused inline allows are themselves findings: a pragma that no
    // longer suppresses anything is stale documentation.
    for a in inline.iter().filter(|a| !a.used) {
        out.push(Finding {
            path: rel.to_string(),
            line: a.line,
            col: 1,
            rule: "allow-syntax".to_string(),
            severity: Severity::Deny,
            message: format!(
                "unused lint:allow({}) pragma; the violation it suppressed is gone — remove it",
                a.rules.join(", ")
            ),
        });
    }
    out
}

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github"];

/// Collects every `.rs` file under `root`, sorted by relative path.
fn collect_rs_files(root: &Path, cfg: &Config) -> std::io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for p in entries {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            if cfg.exclude.iter().any(|e| rel.starts_with(e.as_str())) {
                continue;
            }
            if p.is_dir() {
                if !SKIP_DIRS.contains(&name) && !name.starts_with('.') {
                    stack.push(p);
                }
            } else if name.ends_with(".rs") {
                out.push((rel, p));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Runs the full workspace scan rooted at `root`.
pub fn scan_workspace(root: &Path, cfg: &Config) -> std::io::Result<Report> {
    let files = collect_rs_files(root, cfg)?;
    let mut report = Report::default();
    for (rel, path) in &files {
        let src = fs::read_to_string(path)?;
        // Integration tests, benches, and examples are test code by
        // target kind: mark via a synthetic rule-config check inside
        // scan by pre-filtering — rules with include_test_code=false
        // skip these files wholesale for R1..R4/R6.
        let findings = if is_test_target(rel) {
            scan_test_target(rel, &src, cfg)
        } else {
            scan_source(rel, &src, cfg)
        };
        report.findings.extend(findings);
        report.files_scanned += 1;
    }
    report.findings.sort();
    Ok(report)
}

/// True for files that are test-only compilation targets: integration
/// tests, benches, examples, and build scripts.
fn is_test_target(rel: &str) -> bool {
    rel.contains("/tests/")
        || rel.starts_with("tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
        || rel.ends_with("build.rs")
}

/// Scan for a test-kind target: only rules with `include_test_code`
/// apply (plus allow-syntax hygiene).
fn scan_test_target(rel: &str, src: &str, cfg: &Config) -> Vec<Finding> {
    let mut narrowed = cfg.clone();
    let active: Vec<String> = RULES
        .iter()
        .map(|(id, _, _)| id.to_string())
        .filter(|id| cfg.rule(id).include_test_code)
        .collect();
    // Scope out inactive rules by pointing them at an impossible path.
    for (id, _, _) in RULES {
        if !active.iter().any(|a| a == id) {
            narrowed
                .rules
                .entry(id.to_string())
                .or_default()
                .paths = vec!["\u{0}/nowhere/".to_string()];
        }
    }
    scan_source(rel, src, &narrowed)
}

/// Renders the human-readable report.
pub fn render_text(report: &Report) -> String {
    let mut s = String::new();
    for f in &report.findings {
        s.push_str(&format!(
            "{}: {}:{}:{}: [{}] {}\n",
            f.severity.as_str(),
            f.path,
            f.line,
            f.col,
            f.rule,
            f.message
        ));
    }
    s.push_str(&format!(
        "tas-lint: {} files scanned, {} deny, {} warn, {} note\n",
        report.files_scanned,
        report.count(Severity::Deny),
        report.count(Severity::Warn),
        report.count(Severity::Note),
    ));
    s
}

/// Escapes a string for JSON output.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the machine-readable report. Hand-rolled and byte-stable:
/// key order is fixed, no floats, no timestamps, no absolute paths.
pub fn render_json(report: &Report) -> String {
    let mut s = String::from("{\"tool\":\"tas-lint\",\"version\":1,\"findings\":[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"rule\":\"{}\",\"severity\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
            json_escape(&f.rule),
            f.severity.as_str(),
            json_escape(&f.path),
            f.line,
            f.col,
            json_escape(&f.message)
        ));
    }
    s.push_str(&format!(
        "],\"summary\":{{\"files_scanned\":{},\"deny\":{},\"warn\":{},\"note\":{}}}}}\n",
        report.files_scanned,
        report.count(Severity::Deny),
        report.count(Severity::Warn),
        report.count(Severity::Note),
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config;

    fn cfg() -> Config {
        Config::default()
    }

    #[test]
    fn inline_allow_suppresses_same_line() {
        let src = "fn f(m: &HashMap<u32, u32>) { let t = Instant::now(); } // lint:allow(R2): sim clock unavailable in this harness\n";
        let f = scan_source("crates/sim/src/x.rs", src, &cfg());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn inline_allow_standalone_covers_next_code_line() {
        let src = "// lint:allow(R2): point-lookup table, never iterated (R1 guards iteration)\nstruct S { m: HashMap<u32, u32> }\n";
        let f = scan_source("crates/sim/src/x.rs", src, &cfg());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unused_allow_is_a_deny_finding() {
        let src = "// lint:allow(R2): left behind after a refactor removed it\nfn f() {}\n";
        let f = scan_source("x.rs", src, &cfg());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "allow-syntax");
    }

    #[test]
    fn malformed_allow_is_a_deny_finding() {
        let src = "let t = Instant::now(); // lint:allow(R2) no colon reason\n";
        let f = scan_source("x.rs", src, &cfg());
        assert!(f.iter().any(|f| f.rule == "allow-syntax"), "{f:?}");
        let thin = "let t = Instant::now(); // lint:allow(R2): ok\n";
        let f2 = scan_source("x.rs", thin, &cfg());
        assert!(f2.iter().any(|f| f.rule == "allow-syntax"), "thin reason: {f2:?}");
    }

    #[test]
    fn prose_mentioning_the_pragma_is_not_a_pragma() {
        let src = "// docs can say lint:allow(R1) freely in prose\nfn f() {}\n";
        assert!(scan_source("x.rs", src, &cfg()).is_empty());
    }

    #[test]
    fn config_allowlist_suppresses_by_path_prefix() {
        let toml = "[[allow]]\nrule = \"R2\"\npath = \"crates/sim/src/x.rs\"\nreason = \"fixture exercised by the engine tests\"\n";
        let cfg = config::parse(toml).unwrap();
        let src = "let t = Instant::now();\n";
        assert!(scan_source("crates/sim/src/x.rs", src, &cfg).is_empty());
        assert_eq!(scan_source("crates/sim/src/y.rs", src, &cfg).len(), 1);
    }

    #[test]
    fn findings_sort_by_path_line_col() {
        let src = "let a = Instant::now();\nlet b = SystemTime::now();\n";
        let f = scan_source("x.rs", src, &cfg());
        assert_eq!(f.len(), 2);
        assert!(f[0].line < f[1].line);
    }

    #[test]
    fn json_is_valid_shape_and_escapes() {
        let mut r = Report::default();
        r.findings.push(Finding {
            path: "a \"b\".rs".into(),
            line: 1,
            col: 2,
            rule: "R1".into(),
            severity: Severity::Deny,
            message: "quote \" and backslash \\".into(),
        });
        r.files_scanned = 1;
        let j = render_json(&r);
        assert!(j.contains("\\\""));
        assert!(j.ends_with("}\n"));
        assert!(j.starts_with("{\"tool\":\"tas-lint\""));
    }
}
