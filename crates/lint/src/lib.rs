//! tas-lint: determinism static analysis for the TAS workspace.
//!
//! The simulator's headline claim — byte-identical traces, goodput
//! figures, and bench reports across runs and machines — only holds if
//! no code path consults ambient nondeterminism. The Rust compiler
//! cannot see that contract; this crate can. It is a token-level
//! analyzer (hand-rolled lexer, no external deps: the build environment
//! is offline) with a small rule catalog targeting exactly the bug
//! classes this repo has already paid for:
//!
//! | rule | name | bug class |
//! |------|------|-----------|
//! | R1 | hash-iteration-nondeterminism | the PR-1 slowpath retry-batch bug |
//! | R2 | ambient-nondeterminism | wall-clock time / OS rng / unordered maps in sim code |
//! | R3 | seq-space-arithmetic | u32 sequence-number wraparound |
//! | R4 | fastpath-panic-freedom | packet-path panics |
//! | R5 | trace-gate-hygiene | telemetry outside the `trace` feature gate |
//! | R6 | deny-deprecated | resurrecting removed compat surfaces |
//!
//! Three consumers share this one core: the `tas-lint` binary, the
//! root `tests/lint_workspace.rs` tier-1 test, and the CI `lint` job.
//! Output is byte-deterministic (sorted file walk, sorted findings,
//! repo-relative paths, BTree maps throughout).

pub mod config;
pub mod engine;
pub mod lexer;
pub mod rules;

pub use config::{Config, Severity};
pub use engine::{render_json, render_text, scan_source, scan_workspace, Finding, Report};

use std::path::Path;

/// Convenience entry point: load `lint.toml` from `root` (falling back
/// to defaults when absent) and scan the tree.
pub fn run(root: &Path) -> Result<Report, String> {
    let cfg_path = root.join("lint.toml");
    let cfg = if cfg_path.exists() {
        let text = std::fs::read_to_string(&cfg_path)
            .map_err(|e| format!("reading {}: {e}", cfg_path.display()))?;
        config::parse(&text).map_err(|e| e.to_string())?
    } else {
        Config::default()
    };
    scan_workspace(root, &cfg).map_err(|e| format!("scanning {}: {e}", root.display()))
}
