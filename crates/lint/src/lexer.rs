//! A hand-rolled, comment- and string-aware Rust lexer.
//!
//! Token-level analysis is all the rule catalog needs: every rule keys on
//! identifier/punctuation shapes (`map.iter(`, `seq + 1`, `#[cfg(test)]`),
//! none needs name resolution or type inference. Staying at the token
//! level keeps the engine dependency-free (the build environment is
//! offline), byte-stable across runs, and fast enough to scan the whole
//! workspace inside a tier-1 test.
//!
//! The lexer guarantees rules never see into comments or string literals:
//! string/char contents are carried opaquely and comments land in a
//! separate side channel (which the engine mines for `lint:allow`
//! pragmas).

/// What a token is, at the granularity the rules care about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`for`, `in`, `use`, names, ...).
    Ident,
    /// Lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// Numeric literal.
    Num,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Punctuation, possibly multi-character (`::`, `->`, `<<`, `..=`).
    Punct,
}

/// One lexed token.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Kind.
    pub kind: TokKind,
    /// The token's text. `Str`/`Char` tokens carry the raw literal
    /// including quotes; rules match on `kind`, so identifier-shaped
    /// rules can never fire inside literals, while the attribute
    /// classifier can still read `#[cfg(feature = "trace")]`.
    pub text: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column of the first byte.
    pub col: u32,
}

/// A comment, kept out of the token stream.
#[derive(Clone, Debug)]
pub struct Comment {
    /// Full comment text including the `//` / `/*` sigils.
    pub text: String,
    /// 1-based line where the comment starts.
    pub line: u32,
}

/// Lexer output: code tokens plus the comment side channel.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-character punctuation, longest first so maximal munch works.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.src.get(self.pos + ahead).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek(0);
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        b
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into tokens and comments. Unterminated constructs lex to
/// end-of-file rather than erroring: the engine lints what the compiler
/// will reject anyway, and a lint run must never abort mid-workspace.
pub fn lex(src: &str) -> Lexed {
    let mut c = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();
    while c.pos < c.src.len() {
        let (line, col) = (c.line, c.col);
        let b = c.peek(0);
        // Whitespace.
        if b.is_ascii_whitespace() {
            c.bump();
            continue;
        }
        // Comments.
        if b == b'/' && c.peek(1) == b'/' {
            let start = c.pos;
            while c.pos < c.src.len() && c.peek(0) != b'\n' {
                c.bump();
            }
            out.comments.push(Comment {
                text: String::from_utf8_lossy(&c.src[start..c.pos]).into_owned(),
                line,
            });
            continue;
        }
        if b == b'/' && c.peek(1) == b'*' {
            let start = c.pos;
            c.bump();
            c.bump();
            let mut depth = 1u32;
            while c.pos < c.src.len() && depth > 0 {
                if c.starts_with("/*") {
                    depth += 1;
                    c.bump();
                    c.bump();
                } else if c.starts_with("*/") {
                    depth -= 1;
                    c.bump();
                    c.bump();
                } else {
                    c.bump();
                }
            }
            out.comments.push(Comment {
                text: String::from_utf8_lossy(&c.src[start..c.pos]).into_owned(),
                line,
            });
            continue;
        }
        // Raw strings: r"…", r#"…"#, br#"…"#, …
        if (b == b'r' || (b == b'b' && c.peek(1) == b'r')) && {
            let at = if b == b'b' { 1 } else { 0 };
            let mut h = 1 + at;
            while c.peek(h) == b'#' {
                h += 1;
            }
            c.peek(h) == b'"'
        } {
            let raw_start = c.pos;
            if b == b'b' {
                c.bump(); // consume 'b'
            }
            c.bump(); // consume 'r'
            let mut hashes = 0usize;
            while c.peek(0) == b'#' {
                hashes += 1;
                c.bump();
            }
            c.bump(); // opening quote
            let closer: String = format!("\"{}", "#".repeat(hashes));
            while c.pos < c.src.len() && !c.starts_with(&closer) {
                c.bump();
            }
            for _ in 0..closer.len() {
                if c.pos < c.src.len() {
                    c.bump();
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Str,
                text: String::from_utf8_lossy(&c.src[raw_start..c.pos]).into_owned(),
                line,
                col,
            });
            continue;
        }
        // Plain and byte strings.
        if b == b'"' || (b == b'b' && c.peek(1) == b'"') {
            let str_start = c.pos;
            if b == b'b' {
                c.bump();
            }
            c.bump(); // opening quote
            while c.pos < c.src.len() {
                let q = c.bump();
                if q == b'\\' {
                    c.bump();
                } else if q == b'"' {
                    break;
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Str,
                text: String::from_utf8_lossy(&c.src[str_start..c.pos]).into_owned(),
                line,
                col,
            });
            continue;
        }
        // Char literals vs lifetimes. A lifetime is `'` + ident not
        // followed by a closing `'`.
        if b == b'\'' || (b == b'b' && c.peek(1) == b'\'') {
            let at = if b == b'b' { 1 } else { 0 };
            let is_lifetime = at == 0 && is_ident_start(c.peek(1)) && {
                // Scan the ident; a lifetime has no closing quote.
                let mut h = 2;
                while is_ident_continue(c.peek(h)) {
                    h += 1;
                }
                c.peek(h) != b'\''
            };
            if is_lifetime {
                c.bump(); // '
                let start = c.pos;
                while is_ident_continue(c.peek(0)) {
                    c.bump();
                }
                out.toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: format!("'{}", String::from_utf8_lossy(&c.src[start..c.pos])),
                    line,
                    col,
                });
            } else {
                if at == 1 {
                    c.bump(); // b
                }
                c.bump(); // opening '
                while c.pos < c.src.len() {
                    let q = c.bump();
                    if q == b'\\' {
                        c.bump();
                    } else if q == b'\'' {
                        break;
                    }
                }
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text: "'…'".into(),
                    line,
                    col,
                });
            }
            continue;
        }
        // Identifiers and keywords (incl. raw idents r#name).
        if is_ident_start(b) || (b == b'r' && c.peek(1) == b'#' && is_ident_start(c.peek(2))) {
            if b == b'r' && c.peek(1) == b'#' {
                c.bump();
                c.bump();
            }
            let start = c.pos;
            while is_ident_continue(c.peek(0)) {
                c.bump();
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: String::from_utf8_lossy(&c.src[start..c.pos]).into_owned(),
                line,
                col,
            });
            continue;
        }
        // Numbers (loose: digits then any ident-ish/dotted continuation
        // that keeps `1.0e-3`, `0xff`, `1_000u64` single tokens; `1..2`
        // must not eat the range dots).
        if b.is_ascii_digit() {
            let start = c.pos;
            c.bump();
            loop {
                let n = c.peek(0);
                if is_ident_continue(n)
                    || (n == b'.' && c.peek(1) != b'.' && !is_ident_start(c.peek(1)))
                {
                    c.bump();
                } else if (n == b'+' || n == b'-')
                    && matches!(c.src.get(c.pos.wrapping_sub(1)), Some(b'e') | Some(b'E'))
                    && c.src[start..c.pos].contains(&b'.')
                {
                    // Float exponent sign (`1.5e-3`); integer `1e-3` does
                    // not occur in this codebase.
                    c.bump();
                } else {
                    break;
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Num,
                text: String::from_utf8_lossy(&c.src[start..c.pos]).into_owned(),
                line,
                col,
            });
            continue;
        }
        // Punctuation: maximal munch over the multi-char table.
        let mut matched = false;
        for p in PUNCTS {
            if c.starts_with(p) {
                for _ in 0..p.len() {
                    c.bump();
                }
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (*p).into(),
                    line,
                    col,
                });
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }
        c.bump();
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: (b as char).to_string(),
            line,
            col,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).toks.iter().map(|t| t.text.clone()).collect()
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let l = lex("let x = \"HashMap.iter()\"; // HashMap::new\n/* for x in map */ y");
        let idents: Vec<_> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["let", "x", "y"]);
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("HashMap::new"));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifes = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = l.toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn raw_strings_swallow_quotes() {
        let l = lex(r####"let s = r#"say "hi" to HashMap"#; done"####);
        assert!(l
            .toks
            .iter()
            .all(|t| t.kind != TokKind::Ident || t.text != "HashMap"));
        assert_eq!(l.toks.last().unwrap().text, "done");
    }

    #[test]
    fn punct_munch_is_maximal() {
        assert_eq!(
            texts("a << b >>= c ..= d :: e"),
            vec!["a", "<<", "b", ">>=", "c", "..=", "d", "::", "e"]
        );
    }

    #[test]
    fn numbers_stay_single_tokens() {
        assert_eq!(
            texts("1_000u64 0xff 1.5e-3 1..2"),
            vec!["1_000u64", "0xff", "1.5e-3", "1", "..", "2"]
        );
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* a /* b */ c */ x");
        assert_eq!(l.toks.len(), 1);
        assert_eq!(l.toks[0].text, "x");
    }

    #[test]
    fn line_numbers_track() {
        let l = lex("a\nb\n  c");
        assert_eq!(l.toks[0].line, 1);
        assert_eq!(l.toks[1].line, 2);
        assert_eq!(l.toks[2].line, 3);
        assert_eq!(l.toks[2].col, 3);
    }
}
