//! The rule catalog.
//!
//! Every rule is a pure function over one file's token stream plus the
//! precomputed region map (test-cfg, trace-cfg, use-statement flags).
//! Rules return raw findings; the engine applies severities, inline
//! allows, and config-file allowlists.

use crate::config::{ComponentGroup, Config, RuleConfig};
use crate::lexer::{Lexed, Tok, TokKind};
use std::collections::BTreeSet;

/// A raw finding (before severity / allow resolution).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct RawFinding {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule id (`R1`..`R6`, or `allow-syntax`).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

/// Per-token context flags.
#[derive(Clone, Copy, Debug, Default)]
pub struct TokFlags {
    /// Inside an item/statement gated by `#[cfg(… test …)]` (not negated).
    pub test_cfg: bool,
    /// Inside an item/statement gated by `#[cfg(… feature = "trace" …)]`.
    pub trace_cfg: bool,
    /// Inside an item/statement gated by `#[cfg(… feature = "profile" …)]`.
    pub profile_cfg: bool,
    /// Inside a `use …;` declaration.
    pub in_use: bool,
    /// Inside attribute brackets (`#[…]` / `#![…]`).
    pub in_attr: bool,
}

/// The rule registry: (id, slug, short description). Order is the
/// canonical reporting order.
pub const RULES: &[(&str, &str, &str)] = &[
    (
        "R1",
        "hash-iteration-nondeterminism",
        "iteration over HashMap/HashSet in packet-ordering-sensitive code",
    ),
    (
        "R2",
        "ambient-nondeterminism",
        "ambient time, OS randomness, or unordered containers in sim code",
    ),
    (
        "R3",
        "seq-space-arithmetic",
        "bare arithmetic/comparison on sequence-space values",
    ),
    (
        "R4",
        "fastpath-panic-freedom",
        "panicking construct on the fast path",
    ),
    (
        "R5",
        "trace-gate-hygiene",
        "trace emit site outside the per-crate `trace` feature gate",
    ),
    (
        "R6",
        "deny-deprecated",
        "use of a removed compat surface",
    ),
    (
        "R7",
        "profile-site-hygiene",
        "profiler call site outside the per-crate `profile` feature gate",
    ),
    (
        "R8",
        "write-scope-boundary",
        "cross-component write to owned connection state",
    ),
];

/// Methods whose call on a hash container leaks iteration order.
const ITERATING_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
    "extend",
];

/// Computes the per-token region flags.
///
/// Attributes `#[…]`/`#![…]` are classified by content: a `cfg` whose
/// token list contains `test` (not directly under `not(…)`) marks the
/// following item as test code; one containing `feature = "trace"` marks
/// it trace-gated. Inner attributes (`#![…]`) cover the rest of the
/// file. Item extent is bracket-balanced: the first `;` or `,` at the
/// attribute's nesting depth, or the close of the first `{…}` block.
pub fn regions(lexed: &Lexed) -> Vec<TokFlags> {
    let toks = &lexed.toks;
    let mut flags = vec![TokFlags::default(); toks.len()];
    // Pass 1: attribute contents + classification.
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text != "#" || toks[i].kind != TokKind::Punct {
            i += 1;
            continue;
        }
        let inner = i + 1 < toks.len() && toks[i + 1].text == "!";
        let br = i + if inner { 2 } else { 1 };
        if br >= toks.len() || toks[br].text != "[" {
            i += 1;
            continue;
        }
        // Find the matching `]`.
        let mut depth = 0i32;
        let mut end = br;
        for (j, t) in toks.iter().enumerate().skip(br) {
            match t.text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        end = j;
                        break;
                    }
                }
                _ => {}
            }
        }
        let content = &toks[br + 1..end];
        for f in flags.iter_mut().take(end + 1).skip(i) {
            f.in_attr = true;
        }
        let is_cfg = content.first().map(|t| t.text == "cfg").unwrap_or(false);
        let test_gate = is_cfg && cfg_mentions_test(content);
        let trace_gate = is_cfg && cfg_mentions_feature(content, "trace");
        let profile_gate = is_cfg && cfg_mentions_feature(content, "profile");
        if test_gate || trace_gate || profile_gate {
            let (from, to) = if inner {
                // Inner attribute: rest of file.
                (end + 1, toks.len())
            } else {
                (end + 1, item_extent(toks, end + 1))
            };
            for f in flags.iter_mut().take(to).skip(from) {
                f.test_cfg |= test_gate;
                f.trace_cfg |= trace_gate;
                f.profile_cfg |= profile_gate;
            }
        }
        i = end + 1;
    }
    // Pass 2: `use` statements.
    let mut in_use = false;
    for (j, t) in toks.iter().enumerate() {
        if !in_use && t.kind == TokKind::Ident && t.text == "use" && !flags[j].in_attr {
            in_use = true;
        }
        if in_use {
            flags[j].in_use = true;
            if t.text == ";" {
                in_use = false;
            }
        }
    }
    flags
}

/// True when a `cfg(...)` token list mentions `test` outside `not(…)`.
fn cfg_mentions_test(content: &[Tok]) -> bool {
    for (j, t) in content.iter().enumerate() {
        if t.kind == TokKind::Ident && t.text == "test" {
            let negated = j >= 2 && content[j - 1].text == "(" && content[j - 2].text == "not";
            if !negated {
                return true;
            }
        }
    }
    false
}

/// True when a `cfg(...)` token list contains `feature = "<name>"`.
fn cfg_mentions_feature(content: &[Tok], name: &str) -> bool {
    let needle = format!("\"{name}\"");
    content.windows(3).any(|w| {
        w[0].kind == TokKind::Ident
            && w[0].text == "feature"
            && w[1].text == "="
            && w[2].kind == TokKind::Str
            && w[2].text.contains(&needle)
    })
}

/// Extent of the item/statement starting at `start` (skipping any
/// further attributes): exclusive end index.
fn item_extent(toks: &[Tok], mut start: usize) -> usize {
    // Skip stacked attributes.
    while start + 1 < toks.len() && toks[start].text == "#" && toks[start + 1].text == "[" {
        let mut depth = 0i32;
        let mut j = start + 1;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        start = j + 1;
    }
    let mut depth = 0i32;
    let mut j = start;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" => {
                // First block at base depth closes the item.
                if depth == 0 {
                    let mut bd = 0i32;
                    while j < toks.len() {
                        match toks[j].text.as_str() {
                            "{" => bd += 1,
                            "}" => {
                                bd -= 1;
                                if bd == 0 {
                                    return j + 1;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    return toks.len();
                }
                depth += 1;
            }
            "}" => depth -= 1,
            ";" | "," if depth <= 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

fn finding(t: &Tok, rule: &'static str, message: String) -> RawFinding {
    RawFinding {
        line: t.line,
        col: t.col,
        rule,
        message,
    }
}

/// Skip helper shared by rules that exempt test code.
fn skip(flags: &TokFlags, rc: &RuleConfig) -> bool {
    (!rc.include_test_code && flags.test_cfg) || flags.in_attr
}

// ---------------------------------------------------------------------
// R1: hash-iteration-nondeterminism.

/// Collects identifiers declared (or assigned) as `HashMap`/`HashSet` in
/// this file: `name: HashMap<…>`, `name: &mut HashSet<…>`,
/// `name = HashMap::new()`, `let mut name = HashMap::with_capacity(…)`.
fn hash_container_names(toks: &[Tok]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        // Walk back over a path prefix (`std :: collections ::`).
        let mut j = i;
        while j >= 2 && toks[j - 1].text == "::" {
            j -= 2;
        }
        // Walk back over reference sigils.
        while j >= 1 && (toks[j - 1].text == "&" || toks[j - 1].text == "mut") {
            j -= 1;
        }
        if j >= 2 && toks[j - 1].text == ":" && toks[j - 2].kind == TokKind::Ident {
            names.insert(toks[j - 2].text.clone());
            continue;
        }
        // Assignment form: `name = HashMap::…` / `let mut name = …`.
        if j >= 2 && toks[j - 1].text == "=" && toks[j - 2].kind == TokKind::Ident {
            names.insert(toks[j - 2].text.clone());
        }
    }
    names
}

/// R1: flags order-leaking operations on hash containers.
pub fn r1(lexed: &Lexed, flags: &[TokFlags], rc: &RuleConfig) -> Vec<RawFinding> {
    let toks = &lexed.toks;
    let mut names = hash_container_names(toks);
    for extra in &rc.idents {
        names.insert(extra.clone());
    }
    if names.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    // Method form: `name . iter (`.
    for i in 0..toks.len() {
        if skip(&flags[i], rc) || flags[i].in_use {
            continue;
        }
        let t = &toks[i];
        if t.kind == TokKind::Ident
            && names.contains(&t.text)
            && i + 3 < toks.len()
            && toks[i + 1].text == "."
            && toks[i + 2].kind == TokKind::Ident
            && ITERATING_METHODS.contains(&toks[i + 2].text.as_str())
            && toks[i + 3].text == "("
        {
            out.push(finding(
                &toks[i + 2],
                "R1",
                format!(
                    "iteration-order-dependent `.{}()` on hash container `{}`; \
                     use BTreeMap/BTreeSet or collect-and-sort",
                    toks[i + 2].text, t.text
                ),
            ));
        }
    }
    // Loop form: scan `for` … `in` … `{` windows.
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind != TokKind::Ident || toks[i].text != "for" || skip(&flags[i], rc) {
            i += 1;
            continue;
        }
        // `for<'a>` HRTB is not a loop.
        if i + 1 < toks.len() && toks[i + 1].text == "<" {
            i += 1;
            continue;
        }
        // Find `in` at depth 0, then the loop-body `{` at depth 0.
        let mut depth = 0i32;
        let mut in_at = None;
        let mut body_at = None;
        for (j, t) in toks.iter().enumerate().skip(i + 1) {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    body_at = Some(j);
                    break;
                }
                "{" => depth += 1,
                "}" => depth -= 1,
                ";" if depth == 0 => break,
                "in" if depth == 0 && t.kind == TokKind::Ident && in_at.is_none() => {
                    in_at = Some(j)
                }
                _ => {}
            }
        }
        if let (Some(inn), Some(body)) = (in_at, body_at) {
            for t in &toks[inn + 1..body] {
                if t.kind == TokKind::Ident && names.contains(&t.text) {
                    // Method-form findings already cover `map.keys()` etc.
                    let method_follows = toks[inn + 1..body].windows(3).any(|w| {
                        w[0].text == t.text
                            && w[1].text == "."
                            && ITERATING_METHODS.contains(&w[2].text.as_str())
                    });
                    if !method_follows {
                        out.push(finding(
                            t,
                            "R1",
                            format!(
                                "`for … in` over hash container `{}` leaks hash-seed \
                                 iteration order; use BTreeMap/BTreeSet or sort first",
                                t.text
                            ),
                        ));
                    }
                    break;
                }
            }
        }
        i += 1;
    }
    out
}

// ---------------------------------------------------------------------
// R2: ambient-nondeterminism.

/// R2: ambient time sources, OS randomness, unordered containers.
pub fn r2(lexed: &Lexed, flags: &[TokFlags], rc: &RuleConfig) -> Vec<RawFinding> {
    let toks = &lexed.toks;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || skip(&flags[i], rc) || flags[i].in_use {
            continue;
        }
        let msg = match t.text.as_str() {
            "Instant" | "SystemTime" => Some(format!(
                "ambient wall-clock `{}` in sim code; use the sim clock (`SimTime`, `ctx.now()`)",
                t.text
            )),
            "thread_rng" | "OsRng" | "random" if t.text != "random" || is_call(toks, i) => {
                Some(format!(
                    "OS randomness `{}` in sim code; use the seeded `tas_sim::Rng` stream",
                    t.text
                ))
            }
            "HashMap" | "HashSet" => Some(format!(
                "unordered `{}` in sim code; use BTreeMap/BTreeSet, or justify a \
                 point-lookup-only table with `lint:allow(R2)`",
                t.text
            )),
            _ => None,
        };
        if let Some(m) = msg {
            out.push(finding(t, "R2", m));
        }
    }
    out
}

fn is_call(toks: &[Tok], i: usize) -> bool {
    toks.get(i + 1).map(|t| t.text == "(").unwrap_or(false)
}

// ---------------------------------------------------------------------
// R3: seq-space-arithmetic.

/// Default sequence-space identifier shapes; `idents` in `lint.toml`
/// appends exact names. A name matches when it equals an exact entry or
/// carries a listed suffix, and is not excluded (window/buffer sizes
/// share the `snd_`/`rcv_` prefixes but are lengths, not positions).
const R3_EXACT: &[&str] = &[
    "seq", "ack", "iss", "irs", "seq_no", "snd_una", "snd_nxt", "rcv_nxt", "snd_max",
];
const R3_SUFFIX: &[&str] = &["_seq", "_ack", "_frontier", "_cursor"];
const R3_EXCLUDE: &[&str] = &["snd_wnd", "rcv_wnd", "snd_buf", "rcv_buf"];

fn is_seq_ident(name: &str, rc: &RuleConfig) -> bool {
    if R3_EXCLUDE.contains(&name) {
        return false;
    }
    R3_EXACT.contains(&name)
        || R3_SUFFIX.iter().any(|s| name.ends_with(s))
        || rc.idents.iter().any(|s| s == name)
}

/// Operators that are wrap-hazardous on u32 sequence numbers. Equality
/// is wrap-safe and stays legal; shifts and masks are not arithmetic.
const R3_OPS: &[&str] = &["+", "-", "<", "<=", ">", ">=", "+=", "-="];

/// R3: bare arithmetic/relational operators on seq-space identifiers.
/// The fix is `wrapping_add`/`wrapping_sub` or the `seq::{lt,le,gt,ge}`
/// helpers from `tas_proto::tcp`.
pub fn r3(lexed: &Lexed, flags: &[TokFlags], rc: &RuleConfig) -> Vec<RawFinding> {
    let toks = &lexed.toks;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Punct || !R3_OPS.contains(&t.text.as_str()) || skip(&flags[i], rc) {
            continue;
        }
        // Left operand: the identifier directly before the operator
        // (fields arrive as `path . name`, so the last path segment).
        let left_seq = i >= 1
            && toks[i - 1].kind == TokKind::Ident
            && is_seq_ident(&toks[i - 1].text, rc);
        // Right operand, for `+`/`-` only (`x + seq`); relational ops
        // with a seq on the right are already caught via the left rule
        // on the mirrored comparison sites. An ident followed by `::` is
        // a path segment (`x + seq::sub(a, b)` — the sanctioned helper
        // module), not a value.
        let right_seq = (t.text == "+" || t.text == "-")
            && toks
                .get(i + 1)
                .map(|r| r.kind == TokKind::Ident && is_seq_ident(&r.text, rc))
                .unwrap_or(false)
            && toks.get(i + 2).map(|n| n.text != "::").unwrap_or(true);
        if left_seq || right_seq {
            let name = if left_seq {
                &toks[i - 1].text
            } else {
                &toks[i + 1].text
            };
            out.push(finding(
                t,
                "R3",
                format!(
                    "bare `{}` on sequence-space value `{}`; use wrapping_add/wrapping_sub \
                     or the `seq::` compare helpers (u32 seq space wraps)",
                    t.text, name
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------
// R4: fastpath-panic-freedom.

/// Panicking macros banned on the fast path. `debug_assert!` stays
/// legal: it compiles out of release fast-path builds.
const R4_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// R4: unwrap/expect/panicking macros/queue-state indexing in fast-path
/// files, outside `#[cfg(test)]`.
pub fn r4(lexed: &Lexed, flags: &[TokFlags], rc: &RuleConfig) -> Vec<RawFinding> {
    let toks = &lexed.toks;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || skip(&flags[i], rc) {
            continue;
        }
        match t.text.as_str() {
            "unwrap" | "expect" | "unwrap_unchecked"
                if i >= 1 && toks[i - 1].text == "." && is_call(toks, i) =>
            {
                out.push(finding(
                    t,
                    "R4",
                    format!(
                        "`.{}()` can panic on the fast path; use let-else with a \
                         graceful drop (debug_assert! preserves the invariant check)",
                        t.text
                    ),
                ));
            }
            m if R4_MACROS.contains(&m)
                && toks.get(i + 1).map(|n| n.text == "!").unwrap_or(false) =>
            {
                out.push(finding(
                    t,
                    "R4",
                    format!(
                        "`{m}!` panics on the fast path; degrade gracefully \
                         (debug_assert! is the sanctioned invariant check)"
                    ),
                ));
            }
            name if rc.idents.contains(&t.text)
                && toks.get(i + 1).map(|n| n.text == "[").unwrap_or(false) =>
            {
                out.push(finding(
                    t,
                    "R4",
                    format!(
                        "indexing `{name}[…]` on queue state can panic; use `.get()` \
                         with a graceful fallback"
                    ),
                ));
            }
            _ => {}
        }
    }
    out
}

// ---------------------------------------------------------------------
// R5: trace-gate-hygiene.

/// Identifiers that mark a flight-recorder emit site.
const R5_SITES: &[&str] = &["emit", "TraceEvent", "TraceRecord"];

/// R5: every emit site must sit inside a `feature = "trace"` cfg region.
pub fn r5(lexed: &Lexed, flags: &[TokFlags], rc: &RuleConfig) -> Vec<RawFinding> {
    let toks = &lexed.toks;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !R5_SITES.contains(&t.text.as_str()) {
            continue;
        }
        if flags[i].trace_cfg || flags[i].in_use || flags[i].in_attr {
            continue;
        }
        if !rc.include_test_code && flags[i].test_cfg {
            continue;
        }
        // `emit` must be a call or a path segment ending in a call
        // (`tas_telemetry::emit(…)`) — a local method named `emit` on a
        // non-telemetry type would false-positive otherwise. TraceEvent/
        // TraceRecord are unambiguous.
        if t.text == "emit" && !is_call(toks, i) {
            continue;
        }
        out.push(finding(
            t,
            "R5",
            format!(
                "trace site `{}` outside a `#[cfg(feature = \"trace\")]` gate; \
                 ungated sites break the trace-off zero-overhead proof",
                t.text
            ),
        ));
    }
    out
}

// ---------------------------------------------------------------------
// R6: deny-deprecated.

/// Compat surfaces deleted in this PR; `idents` in `lint.toml` can
/// extend the list as future PRs retire more API.
const R6_BANNED: &[&str] = &[
    "tx_loss",
    "HostStats",
    "FaultCounters",
    "host_stats",
    "tx_fault_counters",
    "port_fault_counters",
];

/// R6: no resurrecting removed compat surfaces.
pub fn r6(lexed: &Lexed, flags: &[TokFlags], rc: &RuleConfig) -> Vec<RawFinding> {
    let toks = &lexed.toks;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || skip(&flags[i], rc) {
            continue;
        }
        if R6_BANNED.contains(&t.text.as_str()) || rc.idents.contains(&t.text) {
            out.push(finding(
                t,
                "R6",
                format!(
                    "`{}` is a removed compat surface; use the registry/injector \
                     replacement named in DESIGN.md §11",
                    t.text
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------
// R7: profile-site-hygiene.

/// R7: every profiler call site (`profile::guard`, `profile::charge`,
/// `profile::set_core`, …) must sit inside a `feature = "profile"` cfg
/// region. Only the path form `profile::…` marks a site — fields and
/// locals named `profile` are unrelated.
pub fn r7(lexed: &Lexed, flags: &[TokFlags], rc: &RuleConfig) -> Vec<RawFinding> {
    let toks = &lexed.toks;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "profile" {
            continue;
        }
        if toks.get(i + 1).map(|n| n.text != "::").unwrap_or(true) {
            continue;
        }
        if flags[i].profile_cfg || flags[i].in_use || flags[i].in_attr {
            continue;
        }
        if !rc.include_test_code && flags[i].test_cfg {
            continue;
        }
        out.push(finding(
            t,
            "R7",
            "profiler site `profile::…` outside a `#[cfg(feature = \"profile\")]` gate; \
             ungated sites break the profile-off zero-overhead proof"
                .to_string(),
        ));
    }
    out
}

// ---------------------------------------------------------------------
// R8: write-scope-boundary.

/// Compound assignment operators plus plain `=` — the token shapes that
/// mutate a place. The lexer munches each as a single token, so `==`,
/// `<=`, `>=`, `!=`, and `=>` can never alias into this set.
const R8_ASSIGN_OPS: &[&str] = &[
    "=", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<=", ">>=",
];

/// An `impl` block's token extent and target type name.
struct ImplBlock {
    /// First body token (after `{`).
    start: usize,
    /// Exclusive end (the closing `}`).
    end: usize,
    /// The implemented type's name (`impl X`, `impl Tr for X` → `X`).
    name: String,
}

/// Finds every `impl` block: `(body_start, body_end, type_name)`.
/// Generics are skipped by angle-depth counting (`<<`/`>>` count
/// double); the type is the last angle-depth-0 identifier before the
/// body brace, reset at `for` so `impl Trait for Type` attributes to
/// `Type` and not the trait.
fn impl_blocks(toks: &[Tok], flags: &[TokFlags]) -> Vec<ImplBlock> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind != TokKind::Ident || toks[i].text != "impl" || flags[i].in_attr {
            i += 1;
            continue;
        }
        let mut adepth = 0i32;
        let mut name = String::new();
        let mut j = i + 1;
        let mut body = None;
        while j < toks.len() {
            let t = &toks[j];
            match t.text.as_str() {
                "<" => adepth += 1,
                ">" => adepth -= 1,
                "<<" => adepth += 2,
                ">>" => adepth -= 2,
                "->" | "=>" => {}
                "for" | "where" if t.kind == TokKind::Ident && adepth == 0 => name.clear(),
                "{" if adepth <= 0 => {
                    body = Some(j);
                    break;
                }
                ";" if adepth <= 0 => break, // `impl Trait for Type;` — no body
                _ if t.kind == TokKind::Ident && adepth == 0 => name = t.text.clone(),
                _ => {}
            }
            j += 1;
        }
        let Some(open) = body else {
            i = j + 1;
            continue;
        };
        // Match the body braces.
        let mut depth = 0i32;
        let mut end = toks.len();
        for (k, t) in toks.iter().enumerate().skip(open) {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        end = k;
                        break;
                    }
                }
                _ => {}
            }
        }
        out.push(ImplBlock {
            start: open + 1,
            end,
            name,
        });
        // Continue scanning inside the body so nested impls attribute to
        // their own (innermost) block.
        i = open + 1;
    }
    out
}

/// The innermost impl block containing token `idx`, if any.
fn enclosing_impl(blocks: &[ImplBlock], idx: usize) -> Option<&ImplBlock> {
    blocks
        .iter()
        .filter(|b| b.start <= idx && idx < b.end)
        .max_by_key(|b| b.start)
}

/// A field-access chain ending at a written-to place: the `.`-separated
/// identifier segments, plus whether the chain's root is an opaque
/// expression (call/index result) rather than a plain identifier.
struct Chain {
    /// Segments left to right; the last one is the written field.
    segs: Vec<String>,
    /// True when the receiver continues left of the collected segments
    /// through `)`/`]` — `f(x).field`, `xs[i].field`.
    opaque_root: bool,
}

/// Walks a place expression backwards from `end` (the token before an
/// assignment operator). Returns `None` unless the place ends in an
/// identifier.
fn chain_back(toks: &[Tok], end: usize) -> Option<Chain> {
    if toks[end].kind != TokKind::Ident {
        return None;
    }
    let mut segs = vec![toks[end].text.clone()];
    let mut j = end;
    let mut opaque_root = false;
    while j >= 2 && toks[j - 1].text == "." {
        if toks[j - 2].kind == TokKind::Ident {
            segs.push(toks[j - 2].text.clone());
            j -= 2;
        } else {
            opaque_root = true;
            break;
        }
    }
    segs.reverse();
    Some(Chain { segs, opaque_root })
}

/// Walks a place expression forward from `start` (the token after
/// `&mut`). Stops at the first non-`ident.ident` shape; a trailing
/// segment that opens a call is a method name, not a field, and is
/// dropped.
fn chain_fwd(toks: &[Tok], start: usize) -> Option<Chain> {
    if toks.get(start).map(|t| t.kind) != Some(TokKind::Ident) {
        return None;
    }
    let mut segs = vec![toks[start].text.clone()];
    let mut j = start;
    while j + 2 < toks.len() && toks[j + 1].text == "." && toks[j + 2].kind == TokKind::Ident {
        segs.push(toks[j + 2].text.clone());
        j += 2;
    }
    if toks.get(j + 1).map(|t| t.text == "(").unwrap_or(false) {
        segs.pop();
    }
    if segs.len() < 2 {
        return None; // `&mut local` borrows a whole value, not a field.
    }
    Some(Chain { segs, opaque_root: false })
}

/// Checks one written-to place against one ownership map. Returns the
/// violated component's (name, struct) when the write crosses the
/// boundary.
fn r8_violation<'a>(
    chain: &Chain,
    group: &'a ComponentGroup,
    impl_name: Option<&str>,
) -> Option<(&'a str, String)> {
    let last = chain.segs.len() - 1;
    // Write *through* a component accessor (`flow.snd.tx_sent = …`,
    // `x.cc.bucket.tokens = …`): only the owning component's impl may.
    // The root segment counts too — a reborrowed alias named after the
    // accessor (`let snd = &mut flow.snd; snd.iss = …`) is still a
    // cross-component write when it happens outside the owner.
    for (pos, seg) in chain.segs.iter().enumerate() {
        if pos == last {
            break;
        }
        if group.shared.iter().any(|s| s == seg) {
            return None; // Shared aggregate field: writable anywhere.
        }
        if let Some((cname, comp)) = group.by_accessor(seg) {
            if impl_name != Some(comp.strukt.as_str()) {
                return Some((cname, comp.strukt.clone()));
            }
            return None;
        }
    }
    // Direct write to an owned leaf field through `self`
    // (`self.tx_sent = …`): legal only inside the owning struct's impl.
    // Non-`self` roots are skipped — an unrelated local whose field
    // happens to share an owned field's name must not false-positive.
    if chain.segs[0] == "self" && !chain.opaque_root {
        if let Some(field) = chain.segs.get(1) {
            if let Some((cname, comp)) = group.by_field(field) {
                if impl_name != Some(comp.strukt.as_str()) {
                    return Some((cname, comp.strukt.clone()));
                }
            }
        }
    }
    None
}

/// Parses the field names of `struct <name> { … }` declarations in this
/// file, keyed by struct name. Tuple and unit structs have no named
/// fields and are skipped.
fn struct_fields(toks: &[Tok], flags: &[TokFlags]) -> Vec<(String, u32, BTreeSet<String>)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].kind != TokKind::Ident
            || toks[i].text != "struct"
            || flags[i].in_attr
            || toks[i + 1].kind != TokKind::Ident
        {
            i += 1;
            continue;
        }
        let name = toks[i + 1].text.clone();
        let line = toks[i + 1].line;
        // Find the body `{` (skipping generics); `;` or `(` first means
        // unit/tuple struct.
        let mut adepth = 0i32;
        let mut j = i + 2;
        let mut open = None;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "<" => adepth += 1,
                ">" => adepth -= 1,
                "<<" => adepth += 2,
                ">>" => adepth -= 2,
                "{" if adepth <= 0 => {
                    open = Some(j);
                    break;
                }
                ";" | "(" if adepth <= 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j + 1;
            continue;
        };
        let mut fields = BTreeSet::new();
        let mut depth = 0i32;
        let mut k = open;
        while k < toks.len() {
            match toks[k].text.as_str() {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                // The identifier before a depth-1 `:` is a field
                // name (`pub(crate) name: Type` — the paren group
                // sits at depth 2, types keep colons behind `::`).
                ":" if depth == 1
                    && k >= 1
                    && toks[k - 1].kind == TokKind::Ident
                    && !flags[k - 1].in_attr =>
                {
                    fields.insert(toks[k - 1].text.clone());
                }
                _ => {}
            }
            k += 1;
        }
        out.push((name, line, fields));
        i = k + 1;
    }
    out
}

/// R8: decomposed connection state may only be mutated by its owning
/// component's methods. Two checks per [`ComponentGroup`] scoped to this
/// file:
///
/// 1. **Write-scope**: an assignment or `&mut` borrow that reaches a
///    component's state — through its aggregate accessor from any impl
///    but the owner's, or through `self.<owned field>` in a foreign
///    impl — is a finding. Reads, method calls (`flow.snd.note_sent(n)`
///    dispatches to the owner), and struct-literal construction stay
///    legal.
/// 2. **Ownership-map drift**: where the aggregate or a component struct
///    is declared, its field list must match the map — every aggregate
///    field an accessor or shared, every component field list exact —
///    so the map cannot silently rot as the structs evolve.
pub fn r8(
    lexed: &Lexed,
    flags: &[TokFlags],
    rc: &RuleConfig,
    rel: &str,
    cfg: &Config,
) -> Vec<RawFinding> {
    let groups: Vec<(&String, &ComponentGroup)> = cfg
        .components
        .iter()
        .filter(|(_, g)| g.in_scope(rel))
        .collect();
    if groups.is_empty() {
        return Vec::new();
    }
    let toks = &lexed.toks;
    let blocks = impl_blocks(toks, flags);
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if skip(&flags[i], rc) {
            continue;
        }
        // Assignment: `<place> <op> …`, place walked backwards.
        let chain = if t.kind == TokKind::Punct && R8_ASSIGN_OPS.contains(&t.text.as_str()) {
            if i == 0 {
                continue;
            }
            chain_back(toks, i - 1)
        // Exclusive borrow: `&mut <place>`, place walked forwards.
        } else if t.text == "&"
            && toks.get(i + 1).map(|n| n.text == "mut").unwrap_or(false)
        {
            chain_fwd(toks, i + 2)
        } else {
            None
        };
        let Some(chain) = chain else { continue };
        if chain.segs.len() < 2 && chain.segs[0] != "self" {
            continue;
        }
        let impl_name = enclosing_impl(&blocks, i).map(|b| b.name.as_str());
        for (gname, g) in &groups {
            if let Some((cname, strukt)) = r8_violation(&chain, g, impl_name) {
                let place = chain.segs.join(".");
                let kind = if t.text == "&" { "exclusive borrow of" } else { "write to" };
                out.push(finding(
                    t,
                    "R8",
                    format!(
                        "{kind} `{place}` crosses the `{gname}` write-scope boundary: \
                         component `{cname}` state is only mutated by `{strukt}` methods \
                         (DESIGN.md §16)"
                    ),
                ));
                break;
            }
        }
    }
    // Drift: struct declarations in this file vs the ownership map.
    for (name, line, fields) in struct_fields(toks, flags) {
        for (gname, g) in &groups {
            if name == g.strukt {
                for f in &fields {
                    if !g.shared.iter().any(|s| s == f) && g.by_accessor(f).is_none() {
                        out.push(RawFinding {
                            line,
                            col: 1,
                            rule: "R8",
                            message: format!(
                                "field `{f}` of `{name}` is neither a component accessor \
                                 nor shared in [components.{gname}]; assign it an owner"
                            ),
                        });
                    }
                }
                for (cname, c) in &g.components {
                    if !fields.contains(&c.accessor) {
                        out.push(RawFinding {
                            line,
                            col: 1,
                            rule: "R8",
                            message: format!(
                                "[components.{gname}.{cname}] claims accessor \
                                 `{}` but `{name}` has no such field",
                                c.accessor
                            ),
                        });
                    }
                }
                for s in &g.shared {
                    if !fields.contains(s) {
                        out.push(RawFinding {
                            line,
                            col: 1,
                            rule: "R8",
                            message: format!(
                                "[components.{gname}] lists shared field `{s}` but \
                                 `{name}` has no such field"
                            ),
                        });
                    }
                }
            } else if let Some((cname, c)) = g.by_struct(&name) {
                for f in &fields {
                    if !c.fields.iter().any(|cf| cf == f) {
                        out.push(RawFinding {
                            line,
                            col: 1,
                            rule: "R8",
                            message: format!(
                                "field `{f}` of `{name}` is missing from \
                                 [components.{gname}.{cname}].fields; the ownership map drifted"
                            ),
                        });
                    }
                }
                for f in &c.fields {
                    if !fields.contains(f) {
                        out.push(RawFinding {
                            line,
                            col: 1,
                            rule: "R8",
                            message: format!(
                                "[components.{gname}.{cname}] lists field `{f}` but \
                                 `{name}` has no such field; the ownership map drifted"
                            ),
                        });
                    }
                }
            }
        }
    }
    out
}

/// Runs one rule by id.
pub fn run_rule(
    id: &str,
    lexed: &Lexed,
    flags: &[TokFlags],
    rc: &RuleConfig,
    rel: &str,
    cfg: &Config,
) -> Vec<RawFinding> {
    match id {
        "R1" => r1(lexed, flags, rc),
        "R2" => r2(lexed, flags, rc),
        "R3" => r3(lexed, flags, rc),
        "R4" => r4(lexed, flags, rc),
        "R5" => r5(lexed, flags, rc),
        "R6" => r6(lexed, flags, rc),
        "R7" => r7(lexed, flags, rc),
        "R8" => r8(lexed, flags, rc, rel, cfg),
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(id: &str, src: &str) -> Vec<RawFinding> {
        let lexed = lex(src);
        let flags = regions(&lexed);
        run_rule(id, &lexed, &flags, &RuleConfig::default(), "x.rs", &Config::default())
    }

    #[test]
    fn r1_fires_on_iter_and_for_over_hashmap() {
        let src = "struct S { m: HashMap<K, V> }\nfn f(s: &mut S) { for (k, v) in s.m.iter_mut() {} }";
        let f = run("R1", src);
        assert_eq!(f.len(), 1, "{f:?}");
        let src2 = "struct S { m: HashMap<K, V> }\nfn f(s: &S) { for x in &s.m {} }";
        assert_eq!(run("R1", src2).len(), 1);
    }

    #[test]
    fn r1_silent_on_btreemap_and_point_lookups() {
        let src = "struct S { m: BTreeMap<K, V> }\nfn f(s: &S) { for x in &s.m {} }";
        assert!(run("R1", src).is_empty());
        let src2 = "struct S { m: HashMap<K, V> }\nfn f(s: &S) { s.m.get(&k); s.m.contains_key(&k); }";
        assert!(run("R1", src2).is_empty());
    }

    #[test]
    fn r1_skips_cfg_test_modules() {
        let src = "struct S { m: HashMap<K, V> }\n#[cfg(test)]\nmod tests { fn f(s: &S) { for x in &s.m {} } }";
        assert!(run("R1", src).is_empty());
    }

    #[test]
    fn r2_flags_ambient_sources() {
        assert_eq!(run("R2", "let t = Instant::now();").len(), 1);
        assert_eq!(run("R2", "let m = HashMap::new();").len(), 1);
        assert!(run("R2", "use std::collections::HashMap;").is_empty(), "use lines exempt");
        assert!(run("R2", "let t = SimTime::ZERO;").is_empty());
    }

    #[test]
    fn r3_flags_bare_seq_arithmetic() {
        assert_eq!(run("R3", "let x = hs.iss + 1;").len(), 1);
        assert_eq!(run("R3", "if seg.tcp.seq < expected {}").len(), 1);
        assert!(run("R3", "let x = hs.iss.wrapping_add(1);").is_empty());
        assert!(run("R3", "if seq::gt(a, b) {}").is_empty());
        assert!(
            run("R3", "let off = base + seq::sub(a, b) as u64;").is_empty(),
            "the seq helper module is a path, not a value"
        );
        assert!(run("R3", "if flow.snd_wnd < mss {}").is_empty(), "windows are lengths");
        assert!(run("R3", "if a.seq == b {}").is_empty(), "equality is wrap-safe");
    }

    #[test]
    fn r4_flags_panics_and_exempts_debug_assert() {
        assert_eq!(run("R4", "let x = q.pop().unwrap();").len(), 1);
        assert_eq!(run("R4", "let x = q.pop().expect(\"full\");").len(), 1);
        assert_eq!(run("R4", "panic!(\"boom\");").len(), 1);
        assert_eq!(run("R4", "assert!(ok);").len(), 1);
        assert!(run("R4", "debug_assert!(ok);").is_empty());
        assert!(run("R4", "#[cfg(test)]\nfn t() { x.unwrap(); }").is_empty());
    }

    #[test]
    fn r5_requires_trace_gate() {
        let bad = "fn f() { tas_telemetry::emit(|| rec); }";
        assert_eq!(run("R5", bad).len(), 1);
        let good = "#[cfg(feature = \"trace\")]\nfn f() { tas_telemetry::emit(|| rec); }";
        assert!(run("R5", good).is_empty());
        let inner = "#![cfg(feature = \"trace\")]\nfn f() { tas_telemetry::emit(|| rec); }";
        assert!(run("R5", inner).is_empty());
        let stmt = "fn f() {\n#[cfg(feature = \"trace\")]\ntrace_sp(now, TraceEvent::State { f });\n}";
        assert!(run("R5", stmt).is_empty());
    }

    #[test]
    fn r7_requires_profile_gate() {
        let bad = "fn f() { let _g = tas_telemetry::profile::guard(\"rx\"); }";
        assert_eq!(run("R7", bad).len(), 1);
        let good = "fn f() {\n#[cfg(feature = \"profile\")]\nlet _g = tas_telemetry::profile::guard(\"rx\");\n}";
        assert!(run("R7", good).is_empty());
        let inner = "#![cfg(feature = \"profile\")]\nfn f() { tas_telemetry::profile::charge(12); }";
        assert!(run("R7", inner).is_empty());
        let any = "#[cfg(any(feature = \"trace\", feature = \"profile\"))]\nfn f() { tas_telemetry::profile::start(); }";
        assert!(run("R7", any).is_empty());
        let field = "fn f(inner: &Inner) { inner.profile.record(1); sc.profile = true; }";
        assert!(run("R7", field).is_empty(), "fields named `profile` are unrelated");
    }

    #[test]
    fn r6_bans_removed_surfaces() {
        assert_eq!(run("R6", "let s = host.host_stats();").len(), 1);
        assert_eq!(run("R6", "cfg.tx_loss = 0.5;").len(), 1);
        assert!(run("R6", "let s = host.telemetry_snapshot();").is_empty());
        assert!(run("R6", "// mentions tx_loss in prose only").is_empty());
    }

    fn r8_cfg() -> Config {
        crate::config::parse(
            r#"
[components.g]
struct = "Agg"
paths = ["crates/x/src/"]
shared = ["stats"]

[components.g.alpha]
struct = "Alpha"
accessor = "al"
fields = ["count", "limit"]

[components.g.beta]
struct = "Beta"
accessor = "be"
fields = ["cursor"]
"#,
        )
        .unwrap()
    }

    fn run_r8(src: &str) -> Vec<RawFinding> {
        let lexed = lex(src);
        let flags = regions(&lexed);
        r8(
            &lexed,
            &flags,
            &RuleConfig::default(),
            "crates/x/src/a.rs",
            &r8_cfg(),
        )
    }

    #[test]
    fn r8_flags_cross_component_writes_only() {
        // Foreign impl writing through an accessor: violation.
        assert_eq!(run_r8("impl Agg { fn f(&mut self) { self.al.count = 0; } }").len(), 1);
        assert_eq!(run_r8("fn free(a: &mut Agg) { a.al.count += 1; }").len(), 1);
        // The owner's impl writing its own state: legal.
        assert!(run_r8("impl Alpha { fn f(&mut self) { self.count = 0; } }").is_empty());
        // Trait impls attribute to the implementing type.
        assert!(run_r8("impl Reset for Alpha { fn f(&mut self) { self.count = 0; } }").is_empty());
        assert_eq!(
            run_r8("impl Reset for Agg { fn f(&mut self) { self.be.cursor = 0; } }").len(),
            1
        );
    }

    #[test]
    fn r8_allows_shared_fields_reads_and_literals() {
        assert!(run_r8("fn f(a: &mut Agg) { a.stats.writes += 1; }").is_empty());
        assert!(run_r8("fn f(a: &Agg) { let n = a.al.count; let _ = n; }").is_empty());
        // Struct-literal construction is not a write.
        assert!(run_r8("fn f() -> Alpha { Alpha { count: 0, limit: 9 } }").is_empty());
        // Method calls dispatch to the owner.
        assert!(run_r8("fn f(a: &mut Agg) { a.al.bump(3); }").is_empty());
    }

    #[test]
    fn r8_flags_mut_borrows_and_nested_paths() {
        assert_eq!(run_r8("fn f(a: &mut Agg) { let c = &mut a.al.count; *c = 1; }").len(), 1);
        // A write through the accessor to a nested, unmapped leaf still
        // crosses the boundary.
        assert_eq!(run_r8("fn f(a: &mut Agg) { a.be.cursor.pos = 4; }").len(), 1);
        // Borrowing a whole local is not a field borrow.
        assert!(run_r8("fn f(mut a: Agg) { let r = &mut a; r.touch(); }").is_empty());
    }

    #[test]
    fn r8_drift_checks_both_directions() {
        // Aggregate field with no owner.
        let f = run_r8("pub struct Agg { al: Alpha, be: Beta, stats: S, rogue: u32 }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("rogue"));
        // Component struct out of sync with the map, both ways.
        let f2 = run_r8("pub struct Alpha { count: u64 }");
        assert_eq!(f2.len(), 1, "missing `limit`: {f2:?}");
        let f3 = run_r8("pub struct Alpha { count: u64, limit: u64, extra: u8 }");
        assert_eq!(f3.len(), 1, "unmapped `extra`: {f3:?}");
        // In-sync declarations are silent; cfg-attrs between fields are
        // tolerated.
        let ok = "pub struct Agg { al: Alpha, be: Beta,\n#[cfg(feature = \"trace\")]\nstats: S }";
        assert!(run_r8(ok).is_empty());
    }

    #[test]
    fn r8_out_of_scope_files_are_exempt() {
        let lexed = lex("fn f(a: &mut Agg) { a.al.count = 0; }");
        let flags = regions(&lexed);
        let f = r8(&lexed, &flags, &RuleConfig::default(), "crates/y/src/a.rs", &r8_cfg());
        assert!(f.is_empty(), "group paths bound enforcement: {f:?}");
    }

    #[test]
    fn cfg_not_test_is_not_test_code() {
        let src = "#[cfg(not(test))]\nfn f() { x.unwrap(); }";
        assert_eq!(run("R4", src).len(), 1);
    }

    #[test]
    fn cfg_any_with_test_is_test_code() {
        let src = "#[cfg(any(test, feature = \"audit\"))]\nfn f() { x.unwrap(); }";
        assert!(run("R4", src).is_empty());
    }
}
