//! The rule catalog.
//!
//! Every rule is a pure function over one file's token stream plus the
//! precomputed region map (test-cfg, trace-cfg, use-statement flags).
//! Rules return raw findings; the engine applies severities, inline
//! allows, and config-file allowlists.

use crate::config::RuleConfig;
use crate::lexer::{Lexed, Tok, TokKind};
use std::collections::BTreeSet;

/// A raw finding (before severity / allow resolution).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct RawFinding {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule id (`R1`..`R6`, or `allow-syntax`).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

/// Per-token context flags.
#[derive(Clone, Copy, Debug, Default)]
pub struct TokFlags {
    /// Inside an item/statement gated by `#[cfg(… test …)]` (not negated).
    pub test_cfg: bool,
    /// Inside an item/statement gated by `#[cfg(… feature = "trace" …)]`.
    pub trace_cfg: bool,
    /// Inside an item/statement gated by `#[cfg(… feature = "profile" …)]`.
    pub profile_cfg: bool,
    /// Inside a `use …;` declaration.
    pub in_use: bool,
    /// Inside attribute brackets (`#[…]` / `#![…]`).
    pub in_attr: bool,
}

/// The rule registry: (id, slug, short description). Order is the
/// canonical reporting order.
pub const RULES: &[(&str, &str, &str)] = &[
    (
        "R1",
        "hash-iteration-nondeterminism",
        "iteration over HashMap/HashSet in packet-ordering-sensitive code",
    ),
    (
        "R2",
        "ambient-nondeterminism",
        "ambient time, OS randomness, or unordered containers in sim code",
    ),
    (
        "R3",
        "seq-space-arithmetic",
        "bare arithmetic/comparison on sequence-space values",
    ),
    (
        "R4",
        "fastpath-panic-freedom",
        "panicking construct on the fast path",
    ),
    (
        "R5",
        "trace-gate-hygiene",
        "trace emit site outside the per-crate `trace` feature gate",
    ),
    (
        "R6",
        "deny-deprecated",
        "use of a removed compat surface",
    ),
    (
        "R7",
        "profile-site-hygiene",
        "profiler call site outside the per-crate `profile` feature gate",
    ),
];

/// Methods whose call on a hash container leaks iteration order.
const ITERATING_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
    "extend",
];

/// Computes the per-token region flags.
///
/// Attributes `#[…]`/`#![…]` are classified by content: a `cfg` whose
/// token list contains `test` (not directly under `not(…)`) marks the
/// following item as test code; one containing `feature = "trace"` marks
/// it trace-gated. Inner attributes (`#![…]`) cover the rest of the
/// file. Item extent is bracket-balanced: the first `;` or `,` at the
/// attribute's nesting depth, or the close of the first `{…}` block.
pub fn regions(lexed: &Lexed) -> Vec<TokFlags> {
    let toks = &lexed.toks;
    let mut flags = vec![TokFlags::default(); toks.len()];
    // Pass 1: attribute contents + classification.
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text != "#" || toks[i].kind != TokKind::Punct {
            i += 1;
            continue;
        }
        let inner = i + 1 < toks.len() && toks[i + 1].text == "!";
        let br = i + if inner { 2 } else { 1 };
        if br >= toks.len() || toks[br].text != "[" {
            i += 1;
            continue;
        }
        // Find the matching `]`.
        let mut depth = 0i32;
        let mut end = br;
        for (j, t) in toks.iter().enumerate().skip(br) {
            match t.text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        end = j;
                        break;
                    }
                }
                _ => {}
            }
        }
        let content = &toks[br + 1..end];
        for f in flags.iter_mut().take(end + 1).skip(i) {
            f.in_attr = true;
        }
        let is_cfg = content.first().map(|t| t.text == "cfg").unwrap_or(false);
        let test_gate = is_cfg && cfg_mentions_test(content);
        let trace_gate = is_cfg && cfg_mentions_feature(content, "trace");
        let profile_gate = is_cfg && cfg_mentions_feature(content, "profile");
        if test_gate || trace_gate || profile_gate {
            let (from, to) = if inner {
                // Inner attribute: rest of file.
                (end + 1, toks.len())
            } else {
                (end + 1, item_extent(toks, end + 1))
            };
            for f in flags.iter_mut().take(to).skip(from) {
                f.test_cfg |= test_gate;
                f.trace_cfg |= trace_gate;
                f.profile_cfg |= profile_gate;
            }
        }
        i = end + 1;
    }
    // Pass 2: `use` statements.
    let mut in_use = false;
    for (j, t) in toks.iter().enumerate() {
        if !in_use && t.kind == TokKind::Ident && t.text == "use" && !flags[j].in_attr {
            in_use = true;
        }
        if in_use {
            flags[j].in_use = true;
            if t.text == ";" {
                in_use = false;
            }
        }
    }
    flags
}

/// True when a `cfg(...)` token list mentions `test` outside `not(…)`.
fn cfg_mentions_test(content: &[Tok]) -> bool {
    for (j, t) in content.iter().enumerate() {
        if t.kind == TokKind::Ident && t.text == "test" {
            let negated = j >= 2 && content[j - 1].text == "(" && content[j - 2].text == "not";
            if !negated {
                return true;
            }
        }
    }
    false
}

/// True when a `cfg(...)` token list contains `feature = "<name>"`.
fn cfg_mentions_feature(content: &[Tok], name: &str) -> bool {
    let needle = format!("\"{name}\"");
    content.windows(3).any(|w| {
        w[0].kind == TokKind::Ident
            && w[0].text == "feature"
            && w[1].text == "="
            && w[2].kind == TokKind::Str
            && w[2].text.contains(&needle)
    })
}

/// Extent of the item/statement starting at `start` (skipping any
/// further attributes): exclusive end index.
fn item_extent(toks: &[Tok], mut start: usize) -> usize {
    // Skip stacked attributes.
    while start + 1 < toks.len() && toks[start].text == "#" && toks[start + 1].text == "[" {
        let mut depth = 0i32;
        let mut j = start + 1;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        start = j + 1;
    }
    let mut depth = 0i32;
    let mut j = start;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" => {
                // First block at base depth closes the item.
                if depth == 0 {
                    let mut bd = 0i32;
                    while j < toks.len() {
                        match toks[j].text.as_str() {
                            "{" => bd += 1,
                            "}" => {
                                bd -= 1;
                                if bd == 0 {
                                    return j + 1;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    return toks.len();
                }
                depth += 1;
            }
            "}" => depth -= 1,
            ";" | "," if depth <= 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

fn finding(t: &Tok, rule: &'static str, message: String) -> RawFinding {
    RawFinding {
        line: t.line,
        col: t.col,
        rule,
        message,
    }
}

/// Skip helper shared by rules that exempt test code.
fn skip(flags: &TokFlags, rc: &RuleConfig) -> bool {
    (!rc.include_test_code && flags.test_cfg) || flags.in_attr
}

// ---------------------------------------------------------------------
// R1: hash-iteration-nondeterminism.

/// Collects identifiers declared (or assigned) as `HashMap`/`HashSet` in
/// this file: `name: HashMap<…>`, `name: &mut HashSet<…>`,
/// `name = HashMap::new()`, `let mut name = HashMap::with_capacity(…)`.
fn hash_container_names(toks: &[Tok]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        // Walk back over a path prefix (`std :: collections ::`).
        let mut j = i;
        while j >= 2 && toks[j - 1].text == "::" {
            j -= 2;
        }
        // Walk back over reference sigils.
        while j >= 1 && (toks[j - 1].text == "&" || toks[j - 1].text == "mut") {
            j -= 1;
        }
        if j >= 2 && toks[j - 1].text == ":" && toks[j - 2].kind == TokKind::Ident {
            names.insert(toks[j - 2].text.clone());
            continue;
        }
        // Assignment form: `name = HashMap::…` / `let mut name = …`.
        if j >= 2 && toks[j - 1].text == "=" && toks[j - 2].kind == TokKind::Ident {
            names.insert(toks[j - 2].text.clone());
        }
    }
    names
}

/// R1: flags order-leaking operations on hash containers.
pub fn r1(lexed: &Lexed, flags: &[TokFlags], rc: &RuleConfig) -> Vec<RawFinding> {
    let toks = &lexed.toks;
    let mut names = hash_container_names(toks);
    for extra in &rc.idents {
        names.insert(extra.clone());
    }
    if names.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    // Method form: `name . iter (`.
    for i in 0..toks.len() {
        if skip(&flags[i], rc) || flags[i].in_use {
            continue;
        }
        let t = &toks[i];
        if t.kind == TokKind::Ident
            && names.contains(&t.text)
            && i + 3 < toks.len()
            && toks[i + 1].text == "."
            && toks[i + 2].kind == TokKind::Ident
            && ITERATING_METHODS.contains(&toks[i + 2].text.as_str())
            && toks[i + 3].text == "("
        {
            out.push(finding(
                &toks[i + 2],
                "R1",
                format!(
                    "iteration-order-dependent `.{}()` on hash container `{}`; \
                     use BTreeMap/BTreeSet or collect-and-sort",
                    toks[i + 2].text, t.text
                ),
            ));
        }
    }
    // Loop form: scan `for` … `in` … `{` windows.
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind != TokKind::Ident || toks[i].text != "for" || skip(&flags[i], rc) {
            i += 1;
            continue;
        }
        // `for<'a>` HRTB is not a loop.
        if i + 1 < toks.len() && toks[i + 1].text == "<" {
            i += 1;
            continue;
        }
        // Find `in` at depth 0, then the loop-body `{` at depth 0.
        let mut depth = 0i32;
        let mut in_at = None;
        let mut body_at = None;
        for (j, t) in toks.iter().enumerate().skip(i + 1) {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    body_at = Some(j);
                    break;
                }
                "{" => depth += 1,
                "}" => depth -= 1,
                ";" if depth == 0 => break,
                "in" if depth == 0 && t.kind == TokKind::Ident && in_at.is_none() => {
                    in_at = Some(j)
                }
                _ => {}
            }
        }
        if let (Some(inn), Some(body)) = (in_at, body_at) {
            for t in &toks[inn + 1..body] {
                if t.kind == TokKind::Ident && names.contains(&t.text) {
                    // Method-form findings already cover `map.keys()` etc.
                    let method_follows = toks[inn + 1..body].windows(3).any(|w| {
                        w[0].text == t.text
                            && w[1].text == "."
                            && ITERATING_METHODS.contains(&w[2].text.as_str())
                    });
                    if !method_follows {
                        out.push(finding(
                            t,
                            "R1",
                            format!(
                                "`for … in` over hash container `{}` leaks hash-seed \
                                 iteration order; use BTreeMap/BTreeSet or sort first",
                                t.text
                            ),
                        ));
                    }
                    break;
                }
            }
        }
        i += 1;
    }
    out
}

// ---------------------------------------------------------------------
// R2: ambient-nondeterminism.

/// R2: ambient time sources, OS randomness, unordered containers.
pub fn r2(lexed: &Lexed, flags: &[TokFlags], rc: &RuleConfig) -> Vec<RawFinding> {
    let toks = &lexed.toks;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || skip(&flags[i], rc) || flags[i].in_use {
            continue;
        }
        let msg = match t.text.as_str() {
            "Instant" | "SystemTime" => Some(format!(
                "ambient wall-clock `{}` in sim code; use the sim clock (`SimTime`, `ctx.now()`)",
                t.text
            )),
            "thread_rng" | "OsRng" | "random" if t.text != "random" || is_call(toks, i) => {
                Some(format!(
                    "OS randomness `{}` in sim code; use the seeded `tas_sim::Rng` stream",
                    t.text
                ))
            }
            "HashMap" | "HashSet" => Some(format!(
                "unordered `{}` in sim code; use BTreeMap/BTreeSet, or justify a \
                 point-lookup-only table with `lint:allow(R2)`",
                t.text
            )),
            _ => None,
        };
        if let Some(m) = msg {
            out.push(finding(t, "R2", m));
        }
    }
    out
}

fn is_call(toks: &[Tok], i: usize) -> bool {
    toks.get(i + 1).map(|t| t.text == "(").unwrap_or(false)
}

// ---------------------------------------------------------------------
// R3: seq-space-arithmetic.

/// Default sequence-space identifier shapes; `idents` in `lint.toml`
/// appends exact names. A name matches when it equals an exact entry or
/// carries a listed suffix, and is not excluded (window/buffer sizes
/// share the `snd_`/`rcv_` prefixes but are lengths, not positions).
const R3_EXACT: &[&str] = &[
    "seq", "ack", "iss", "irs", "seq_no", "snd_una", "snd_nxt", "rcv_nxt", "snd_max",
];
const R3_SUFFIX: &[&str] = &["_seq", "_ack", "_frontier", "_cursor"];
const R3_EXCLUDE: &[&str] = &["snd_wnd", "rcv_wnd", "snd_buf", "rcv_buf"];

fn is_seq_ident(name: &str, rc: &RuleConfig) -> bool {
    if R3_EXCLUDE.contains(&name) {
        return false;
    }
    R3_EXACT.contains(&name)
        || R3_SUFFIX.iter().any(|s| name.ends_with(s))
        || rc.idents.iter().any(|s| s == name)
}

/// Operators that are wrap-hazardous on u32 sequence numbers. Equality
/// is wrap-safe and stays legal; shifts and masks are not arithmetic.
const R3_OPS: &[&str] = &["+", "-", "<", "<=", ">", ">=", "+=", "-="];

/// R3: bare arithmetic/relational operators on seq-space identifiers.
/// The fix is `wrapping_add`/`wrapping_sub` or the `seq::{lt,le,gt,ge}`
/// helpers from `tas_proto::tcp`.
pub fn r3(lexed: &Lexed, flags: &[TokFlags], rc: &RuleConfig) -> Vec<RawFinding> {
    let toks = &lexed.toks;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Punct || !R3_OPS.contains(&t.text.as_str()) || skip(&flags[i], rc) {
            continue;
        }
        // Left operand: the identifier directly before the operator
        // (fields arrive as `path . name`, so the last path segment).
        let left_seq = i >= 1
            && toks[i - 1].kind == TokKind::Ident
            && is_seq_ident(&toks[i - 1].text, rc);
        // Right operand, for `+`/`-` only (`x + seq`); relational ops
        // with a seq on the right are already caught via the left rule
        // on the mirrored comparison sites. An ident followed by `::` is
        // a path segment (`x + seq::sub(a, b)` — the sanctioned helper
        // module), not a value.
        let right_seq = (t.text == "+" || t.text == "-")
            && toks
                .get(i + 1)
                .map(|r| r.kind == TokKind::Ident && is_seq_ident(&r.text, rc))
                .unwrap_or(false)
            && toks.get(i + 2).map(|n| n.text != "::").unwrap_or(true);
        if left_seq || right_seq {
            let name = if left_seq {
                &toks[i - 1].text
            } else {
                &toks[i + 1].text
            };
            out.push(finding(
                t,
                "R3",
                format!(
                    "bare `{}` on sequence-space value `{}`; use wrapping_add/wrapping_sub \
                     or the `seq::` compare helpers (u32 seq space wraps)",
                    t.text, name
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------
// R4: fastpath-panic-freedom.

/// Panicking macros banned on the fast path. `debug_assert!` stays
/// legal: it compiles out of release fast-path builds.
const R4_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// R4: unwrap/expect/panicking macros/queue-state indexing in fast-path
/// files, outside `#[cfg(test)]`.
pub fn r4(lexed: &Lexed, flags: &[TokFlags], rc: &RuleConfig) -> Vec<RawFinding> {
    let toks = &lexed.toks;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || skip(&flags[i], rc) {
            continue;
        }
        match t.text.as_str() {
            "unwrap" | "expect" | "unwrap_unchecked"
                if i >= 1 && toks[i - 1].text == "." && is_call(toks, i) =>
            {
                out.push(finding(
                    t,
                    "R4",
                    format!(
                        "`.{}()` can panic on the fast path; use let-else with a \
                         graceful drop (debug_assert! preserves the invariant check)",
                        t.text
                    ),
                ));
            }
            m if R4_MACROS.contains(&m)
                && toks.get(i + 1).map(|n| n.text == "!").unwrap_or(false) =>
            {
                out.push(finding(
                    t,
                    "R4",
                    format!(
                        "`{m}!` panics on the fast path; degrade gracefully \
                         (debug_assert! is the sanctioned invariant check)"
                    ),
                ));
            }
            name if rc.idents.contains(&t.text)
                && toks.get(i + 1).map(|n| n.text == "[").unwrap_or(false) =>
            {
                out.push(finding(
                    t,
                    "R4",
                    format!(
                        "indexing `{name}[…]` on queue state can panic; use `.get()` \
                         with a graceful fallback"
                    ),
                ));
            }
            _ => {}
        }
    }
    out
}

// ---------------------------------------------------------------------
// R5: trace-gate-hygiene.

/// Identifiers that mark a flight-recorder emit site.
const R5_SITES: &[&str] = &["emit", "TraceEvent", "TraceRecord"];

/// R5: every emit site must sit inside a `feature = "trace"` cfg region.
pub fn r5(lexed: &Lexed, flags: &[TokFlags], rc: &RuleConfig) -> Vec<RawFinding> {
    let toks = &lexed.toks;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !R5_SITES.contains(&t.text.as_str()) {
            continue;
        }
        if flags[i].trace_cfg || flags[i].in_use || flags[i].in_attr {
            continue;
        }
        if !rc.include_test_code && flags[i].test_cfg {
            continue;
        }
        // `emit` must be a call or a path segment ending in a call
        // (`tas_telemetry::emit(…)`) — a local method named `emit` on a
        // non-telemetry type would false-positive otherwise. TraceEvent/
        // TraceRecord are unambiguous.
        if t.text == "emit" && !is_call(toks, i) {
            continue;
        }
        out.push(finding(
            t,
            "R5",
            format!(
                "trace site `{}` outside a `#[cfg(feature = \"trace\")]` gate; \
                 ungated sites break the trace-off zero-overhead proof",
                t.text
            ),
        ));
    }
    out
}

// ---------------------------------------------------------------------
// R6: deny-deprecated.

/// Compat surfaces deleted in this PR; `idents` in `lint.toml` can
/// extend the list as future PRs retire more API.
const R6_BANNED: &[&str] = &[
    "tx_loss",
    "HostStats",
    "FaultCounters",
    "host_stats",
    "tx_fault_counters",
    "port_fault_counters",
];

/// R6: no resurrecting removed compat surfaces.
pub fn r6(lexed: &Lexed, flags: &[TokFlags], rc: &RuleConfig) -> Vec<RawFinding> {
    let toks = &lexed.toks;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || skip(&flags[i], rc) {
            continue;
        }
        if R6_BANNED.contains(&t.text.as_str()) || rc.idents.contains(&t.text) {
            out.push(finding(
                t,
                "R6",
                format!(
                    "`{}` is a removed compat surface; use the registry/injector \
                     replacement named in DESIGN.md §11",
                    t.text
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------
// R7: profile-site-hygiene.

/// R7: every profiler call site (`profile::guard`, `profile::charge`,
/// `profile::set_core`, …) must sit inside a `feature = "profile"` cfg
/// region. Only the path form `profile::…` marks a site — fields and
/// locals named `profile` are unrelated.
pub fn r7(lexed: &Lexed, flags: &[TokFlags], rc: &RuleConfig) -> Vec<RawFinding> {
    let toks = &lexed.toks;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "profile" {
            continue;
        }
        if toks.get(i + 1).map(|n| n.text != "::").unwrap_or(true) {
            continue;
        }
        if flags[i].profile_cfg || flags[i].in_use || flags[i].in_attr {
            continue;
        }
        if !rc.include_test_code && flags[i].test_cfg {
            continue;
        }
        out.push(finding(
            t,
            "R7",
            "profiler site `profile::…` outside a `#[cfg(feature = \"profile\")]` gate; \
             ungated sites break the profile-off zero-overhead proof"
                .to_string(),
        ));
    }
    out
}

/// Runs one rule by id.
pub fn run_rule(
    id: &str,
    lexed: &Lexed,
    flags: &[TokFlags],
    rc: &RuleConfig,
) -> Vec<RawFinding> {
    match id {
        "R1" => r1(lexed, flags, rc),
        "R2" => r2(lexed, flags, rc),
        "R3" => r3(lexed, flags, rc),
        "R4" => r4(lexed, flags, rc),
        "R5" => r5(lexed, flags, rc),
        "R6" => r6(lexed, flags, rc),
        "R7" => r7(lexed, flags, rc),
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(id: &str, src: &str) -> Vec<RawFinding> {
        let lexed = lex(src);
        let flags = regions(&lexed);
        run_rule(id, &lexed, &flags, &RuleConfig::default())
    }

    #[test]
    fn r1_fires_on_iter_and_for_over_hashmap() {
        let src = "struct S { m: HashMap<K, V> }\nfn f(s: &mut S) { for (k, v) in s.m.iter_mut() {} }";
        let f = run("R1", src);
        assert_eq!(f.len(), 1, "{f:?}");
        let src2 = "struct S { m: HashMap<K, V> }\nfn f(s: &S) { for x in &s.m {} }";
        assert_eq!(run("R1", src2).len(), 1);
    }

    #[test]
    fn r1_silent_on_btreemap_and_point_lookups() {
        let src = "struct S { m: BTreeMap<K, V> }\nfn f(s: &S) { for x in &s.m {} }";
        assert!(run("R1", src).is_empty());
        let src2 = "struct S { m: HashMap<K, V> }\nfn f(s: &S) { s.m.get(&k); s.m.contains_key(&k); }";
        assert!(run("R1", src2).is_empty());
    }

    #[test]
    fn r1_skips_cfg_test_modules() {
        let src = "struct S { m: HashMap<K, V> }\n#[cfg(test)]\nmod tests { fn f(s: &S) { for x in &s.m {} } }";
        assert!(run("R1", src).is_empty());
    }

    #[test]
    fn r2_flags_ambient_sources() {
        assert_eq!(run("R2", "let t = Instant::now();").len(), 1);
        assert_eq!(run("R2", "let m = HashMap::new();").len(), 1);
        assert!(run("R2", "use std::collections::HashMap;").is_empty(), "use lines exempt");
        assert!(run("R2", "let t = SimTime::ZERO;").is_empty());
    }

    #[test]
    fn r3_flags_bare_seq_arithmetic() {
        assert_eq!(run("R3", "let x = hs.iss + 1;").len(), 1);
        assert_eq!(run("R3", "if seg.tcp.seq < expected {}").len(), 1);
        assert!(run("R3", "let x = hs.iss.wrapping_add(1);").is_empty());
        assert!(run("R3", "if seq::gt(a, b) {}").is_empty());
        assert!(
            run("R3", "let off = base + seq::sub(a, b) as u64;").is_empty(),
            "the seq helper module is a path, not a value"
        );
        assert!(run("R3", "if flow.snd_wnd < mss {}").is_empty(), "windows are lengths");
        assert!(run("R3", "if a.seq == b {}").is_empty(), "equality is wrap-safe");
    }

    #[test]
    fn r4_flags_panics_and_exempts_debug_assert() {
        assert_eq!(run("R4", "let x = q.pop().unwrap();").len(), 1);
        assert_eq!(run("R4", "let x = q.pop().expect(\"full\");").len(), 1);
        assert_eq!(run("R4", "panic!(\"boom\");").len(), 1);
        assert_eq!(run("R4", "assert!(ok);").len(), 1);
        assert!(run("R4", "debug_assert!(ok);").is_empty());
        assert!(run("R4", "#[cfg(test)]\nfn t() { x.unwrap(); }").is_empty());
    }

    #[test]
    fn r5_requires_trace_gate() {
        let bad = "fn f() { tas_telemetry::emit(|| rec); }";
        assert_eq!(run("R5", bad).len(), 1);
        let good = "#[cfg(feature = \"trace\")]\nfn f() { tas_telemetry::emit(|| rec); }";
        assert!(run("R5", good).is_empty());
        let inner = "#![cfg(feature = \"trace\")]\nfn f() { tas_telemetry::emit(|| rec); }";
        assert!(run("R5", inner).is_empty());
        let stmt = "fn f() {\n#[cfg(feature = \"trace\")]\ntrace_sp(now, TraceEvent::State { f });\n}";
        assert!(run("R5", stmt).is_empty());
    }

    #[test]
    fn r7_requires_profile_gate() {
        let bad = "fn f() { let _g = tas_telemetry::profile::guard(\"rx\"); }";
        assert_eq!(run("R7", bad).len(), 1);
        let good = "fn f() {\n#[cfg(feature = \"profile\")]\nlet _g = tas_telemetry::profile::guard(\"rx\");\n}";
        assert!(run("R7", good).is_empty());
        let inner = "#![cfg(feature = \"profile\")]\nfn f() { tas_telemetry::profile::charge(12); }";
        assert!(run("R7", inner).is_empty());
        let any = "#[cfg(any(feature = \"trace\", feature = \"profile\"))]\nfn f() { tas_telemetry::profile::start(); }";
        assert!(run("R7", any).is_empty());
        let field = "fn f(inner: &Inner) { inner.profile.record(1); sc.profile = true; }";
        assert!(run("R7", field).is_empty(), "fields named `profile` are unrelated");
    }

    #[test]
    fn r6_bans_removed_surfaces() {
        assert_eq!(run("R6", "let s = host.host_stats();").len(), 1);
        assert_eq!(run("R6", "cfg.tx_loss = 0.5;").len(), 1);
        assert!(run("R6", "let s = host.telemetry_snapshot();").is_empty());
        assert!(run("R6", "// mentions tx_loss in prose only").is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_test_code() {
        let src = "#[cfg(not(test))]\nfn f() { x.unwrap(); }";
        assert_eq!(run("R4", src).len(), 1);
    }

    #[test]
    fn cfg_any_with_test_is_test_code() {
        let src = "#[cfg(any(test, feature = \"audit\"))]\nfn f() { x.unwrap(); }";
        assert!(run("R4", src).is_empty());
    }
}
