//! The `tas-lint` CLI.
//!
//! ```text
//! tas-lint [--root DIR] [--config FILE] [--json]
//! ```
//!
//! Exit codes: 0 = clean, 1 = deny-level findings, 2 = IO/config error.
//! Output is byte-deterministic for a fixed tree + config — CI runs the
//! binary twice and diffs.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: tas-lint [--root DIR] [--config FILE] [--json]\n\
     \n\
     Scans every .rs file under DIR (default: the workspace root found by\n\
     walking up from the current directory to the nearest lint.toml or\n\
     Cargo.toml) against the determinism rule catalog R1-R6.\n\
     \n\
     exit codes: 0 clean, 1 deny findings, 2 error"
}

fn find_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("lint.toml").exists() || dir.join("Cargo.toml").exists() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut config: Option<PathBuf> = None;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--config" => config = args.next().map(PathBuf::from),
            "--json" => json = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("tas-lint: unknown argument `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(find_root);
    let cfg_path = config.unwrap_or_else(|| root.join("lint.toml"));
    let cfg = if cfg_path.exists() {
        let text = match std::fs::read_to_string(&cfg_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("tas-lint: reading {}: {e}", cfg_path.display());
                return ExitCode::from(2);
            }
        };
        match tas_lint::config::parse(&text) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("tas-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        tas_lint::Config::default()
    };
    let report = match tas_lint::scan_workspace(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tas-lint: scanning {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if json {
        print!("{}", tas_lint::render_json(&report));
    } else {
        print!("{}", tas_lint::render_text(&report));
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
