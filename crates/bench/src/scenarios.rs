//! Canonical scenario runners shared by the bench harnesses and the
//! `bench-report` binary.
//!
//! Each paper figure that participates in the CI regression gate has its
//! runner lifted here so the human-readable harness and the
//! machine-readable report are produced by the *same* code with the same
//! parameters and seeds: a baseline pinned from `bench-report pin` stays
//! valid for the harness run and vice versa. Figures outside the gate
//! keep their logic in `benches/` and only write an inline report.

use crate::report::{Metric, Report};
use crate::{make_server, scaled, Bufs, Kind, RpcScenario};
use tas_netsim::app::App;
use tas_netsim::topo::{build_star, host_ip, HostSpec};
use tas_netsim::{NetMsg, NicConfig, PortConfig};
use tas_sim::{AgentId, Histogram, Sim, SimTime};

/// Figure 6: pipelined RPC throughput for a single-threaded server.
pub mod fig6 {
    use super::*;
    use tas_apps::echo::{EchoServer, RpcClient, ServerMode, SinkClient};

    /// Data direction at the server.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum Dir {
        /// Clients stream requests at the server (receive-bound).
        Rx,
        /// The server streams responses at sink clients (transmit-bound).
        Tx,
    }

    /// Builds the fig6 star: one single-threaded server, 4 client hosts
    /// with 25 connections each.
    fn build(
        kind: Kind,
        dir: Dir,
        size: usize,
        delay_cycles: u64,
        seed: u64,
    ) -> (Sim<NetMsg>, Vec<AgentId>) {
        let mut sim: Sim<NetMsg> = Sim::new(seed);
        let server_ip = host_ip(0);
        let clients = 4usize;
        let conns_per_client = 25u32; // 100 connections total, as the paper.
        let bufs = Bufs {
            rx: (size * 16).max(8192),
            tx: (size * 16).max(8192),
        };
        let mut factory = move |sim: &mut Sim<NetMsg>, spec: HostSpec| -> AgentId {
            if spec.index == 0 {
                let mode = match dir {
                    Dir::Rx => ServerMode::Consume,
                    Dir::Tx => ServerMode::Stream { size },
                };
                let app: Box<dyn App> = Box::new(EchoServer::new(7, size, mode, delay_cycles));
                // Single-threaded server: exactly one application core. TAS
                // adds fast-path cores beside it; mTCP adds a dedicated stack
                // core (as the paper observes it must); Linux runs stack and
                // app on the single core.
                let cores = match kind {
                    Kind::TasSockets | Kind::TasLowLevel => (2, 1),
                    Kind::Mtcp => (1, 1), // 2 total: 1 stack + 1 app.
                    _ => (1, 0),          // 1 total.
                };
                make_server(sim, spec, kind, cores, bufs, app)
            } else {
                let app: Box<dyn App> = match dir {
                    Dir::Rx => {
                        let mut c = RpcClient::new(
                            server_ip,
                            7,
                            conns_per_client,
                            16,
                            size,
                            tas_apps::echo::Lifetime::Persistent,
                        );
                        c.expect_reply = false; // Stream requests at the server.
                        Box::new(c)
                    }
                    Dir::Tx => Box::new(SinkClient::new(server_ip, 7, conns_per_client)),
                };
                // Clients always run on TAS (never the bottleneck).
                make_server(sim, spec, Kind::TasSockets, (2, 2), bufs, app)
            }
        };
        let topo = build_star(
            &mut sim,
            1 + clients,
            |i| {
                if i == 0 {
                    PortConfig::fortygig()
                } else {
                    PortConfig::tengig()
                }
            },
            |i| {
                if i == 0 {
                    NicConfig::server_40g(1)
                } else {
                    NicConfig::client_10g(1)
                }
            },
            &mut factory,
        );
        for &h in &topo.hosts {
            sim.inject_timer(SimTime::ZERO, h, 0, 0);
        }
        (sim, topo.hosts)
    }

    fn server_bytes(sim: &Sim<NetMsg>, id: AgentId, kind: Kind, dir: Dir) -> u64 {
        let (bin, bout) = match kind {
            Kind::TasSockets | Kind::TasLowLevel => {
                let a = sim.agent::<tas::TasHost>(id).app_as::<EchoServer>();
                (a.bytes_in, a.bytes_out)
            }
            _ => {
                let a = sim
                    .agent::<tas_baselines::StackHost>(id)
                    .app_as::<EchoServer>();
                (a.bytes_in, a.bytes_out)
            }
        };
        if dir == Dir::Rx {
            bin
        } else {
            bout
        }
    }

    /// Runs the scenario; returns server-side goodput in Gbps.
    pub fn run(kind: Kind, dir: Dir, size: usize, delay_cycles: u64, seed: u64) -> f64 {
        let (mut sim, hosts) = build(kind, dir, size, delay_cycles, seed);
        let warmup = SimTime::from_ms(20);
        let window = scaled(SimTime::from_ms(15), SimTime::from_ms(60));
        sim.run_until(warmup);
        let b0 = server_bytes(&sim, hosts[0], kind, dir);
        sim.run_until(warmup + window);
        let b1 = server_bytes(&sim, hosts[0], kind, dir);
        (b1 - b0) as f64 * 8.0 / window.as_secs_f64() / 1e9
    }

    /// The gated report: TAS vs Linux goodput for the small- and
    /// large-message corners at 250 cycles/message.
    pub fn report() -> Report {
        let mut r = Report::new(
            "fig6",
            "Pipelined RPC throughput, single-threaded server",
            1,
        );
        r.param("clients", 4).param("conns", 100).param("delay_cycles", 250);
        for (dir, dname) in [(Dir::Rx, "rx"), (Dir::Tx, "tx")] {
            for size in [64usize, 2048] {
                let t = run(Kind::TasSockets, dir, size, 250, 1);
                let l = run(Kind::Linux, dir, size, 250, 3);
                r.push(Metric::value(&format!("{dname}_{size}b_tas"), "gbps", t));
                r.push(Metric::value(&format!("{dname}_{size}b_linux"), "gbps", l));
            }
        }
        r
    }

    /// The per-stage latency observatory on the canonical fig6 RX run
    /// (TAS server, 64 B messages, 250 cycles, seed 1): traces a 5 ms
    /// steady-state slice after warmup and assembles app-to-app spans.
    #[cfg(feature = "trace")]
    pub fn span_analysis(cap: usize) -> SpanAnalysis {
        let (mut sim, _hosts) = build(Kind::TasSockets, Dir::Rx, 64, 250, 1);
        sim.run_until(SimTime::from_ms(20));
        tas_telemetry::start(cap);
        sim.run_until(SimTime::from_ms(25));
        tas_telemetry::stop();
        let evicted = tas_telemetry::evicted();
        let records = tas_telemetry::take();
        let spans = tas_telemetry::spans::assemble(&records, evicted);
        let breakdown = tas_telemetry::spans::breakdown(&spans);
        SpanAnalysis { spans, breakdown }
    }

    /// The assembled span population for the canonical run.
    #[cfg(feature = "trace")]
    pub struct SpanAnalysis {
        /// The assembled spans.
        pub spans: Vec<tas_telemetry::spans::Span>,
        /// Per-stage histograms over the complete spans.
        pub breakdown: tas_telemetry::spans::Breakdown,
    }

    /// Span-profile report (trace builds only): e2e quantiles plus p50
    /// and p99 critical-path stage breakdowns with queueing/processing
    /// shares.
    #[cfg(feature = "trace")]
    pub fn spans_report() -> Report {
        let a = span_analysis(1 << 20);
        let b = &a.breakdown;
        let mut r = Report::new("fig6spans", "Per-stage latency spans, fig6 RX canonical run", 1);
        r.param("dir", "rx").param("size", 64).param("window_ms", 5);
        r.push(Metric::value("spans_complete", "count", b.complete as f64));
        r.push(Metric::value("spans_truncated", "count", b.truncated as f64));
        r.push(Metric::quantiles("e2e", "ns", &b.e2e));
        for q in [0.5f64, 0.99] {
            if let Some(cp) = tas_telemetry::spans::critical_path(&a.spans, q) {
                let tag = if q == 0.5 { "p50" } else { "p99" };
                let mut m = Metric::value(&format!("critical_path_{tag}"), "ns", cp.e2e_ns as f64);
                for d in &cp.stages {
                    m = m
                        .with_component(&format!("{}_queue", d.stage.name()), d.queue_ns as f64)
                        .with_component(&format!("{}_proc", d.stage.name()), d.proc_ns as f64);
                }
                m = m.with_component("queue_share", cp.queue_share());
                r.push(m);
            }
        }
        r
    }
}

/// Figure 7: throughput penalty under induced packet loss.
pub mod fig7 {
    use super::*;
    use tas::{CcAlgo, TasConfig, TasHost};
    use tas_apps::bulk::{BulkReceiver, BulkSender};
    use tas_baselines::{profiles, StackHost, StackHostConfig};
    use tas_netsim::FaultSpec;

    /// The stack under loss.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum Stack {
        /// Linux model (full SACK-style out-of-order buffering).
        Linux,
        /// TAS; `ooo: false` selects simple go-back-N recovery.
        Tas {
            /// Whether the single out-of-order interval is enabled.
            ooo: bool,
        },
    }

    /// Runs 100 bulk flows over a lossy 10G link; returns receiver
    /// goodput in bits/s.
    pub fn goodput(stack: Stack, loss: f64, seed: u64) -> f64 {
        let mut sim: Sim<NetMsg> = Sim::new(seed);
        let recv_ip = host_ip(0);
        let flows = 100; // The paper's flow count (loss dynamics depend on it).
        let mut factory = move |sim: &mut Sim<NetMsg>, spec: HostSpec| -> AgentId {
            let is_recv = spec.index == 0;
            match stack {
                Stack::Tas { ooo } => {
                    let mut cfg = TasConfig::rpc_bench(2, 2);
                    cfg.rx_buf = 128 * 1024;
                    cfg.tx_buf = 128 * 1024;
                    cfg.ooo_rx = ooo;
                    cfg.cc = CcAlgo::DctcpRate; // The paper's testbed runs DCTCP.
                    cfg.initial_rate_bps = 500_000_000;
                    cfg.control_interval = SimTime::from_us(200);
                    cfg.max_core_backlog = SimTime::from_ms(50);
                    let app: Box<dyn App> = if is_recv {
                        Box::new(BulkReceiver::new(9))
                    } else {
                        Box::new(BulkSender::new(recv_ip, 9, flows))
                    };
                    sim.add_agent(Box::new(TasHost::new(
                        spec.ip,
                        spec.mac,
                        spec.nic,
                        cfg,
                        spec.uplink,
                        app,
                    )))
                }
                Stack::Linux => {
                    let mut cfg = StackHostConfig::linux(4);
                    cfg.tcp.recv_buf = 128 * 1024;
                    cfg.tcp.send_buf = 128 * 1024;
                    cfg.tcp.rto_min = SimTime::from_ms(2);
                    cfg.max_core_backlog = SimTime::from_ms(50);
                    let app: Box<dyn App> = if is_recv {
                        Box::new(BulkReceiver::new(9))
                    } else {
                        Box::new(BulkSender::new(recv_ip, 9, flows))
                    };
                    sim.add_agent(Box::new(StackHost::new(
                        spec.ip,
                        spec.mac,
                        spec.nic,
                        profiles::linux(),
                        cfg,
                        spec.uplink,
                        app,
                    )))
                }
            }
        };
        let mut port = PortConfig::tengig();
        if loss > 0.0 {
            // Seeded uniform drops via the fault injector.
            port.fault = FaultSpec::uniform_loss(loss, seed);
        }
        let topo = build_star(
            &mut sim,
            2,
            move |_| port,
            |_| NicConfig::client_10g(1),
            &mut factory,
        );
        for &h in &topo.hosts {
            sim.inject_timer(SimTime::ZERO, h, 0, 0);
        }
        let warmup = SimTime::from_ms(50);
        let window = scaled(SimTime::from_ms(100), SimTime::from_ms(300));
        sim.run_until(warmup);
        let b0 = bytes(&sim, topo.hosts[0], stack);
        sim.run_until(warmup + window);
        let b1 = bytes(&sim, topo.hosts[0], stack);
        (b1 - b0) as f64 * 8.0 / window.as_secs_f64()
    }

    fn bytes(sim: &Sim<NetMsg>, id: AgentId, stack: Stack) -> u64 {
        match stack {
            Stack::Tas { .. } => sim.agent::<TasHost>(id).app_as::<BulkReceiver>().total,
            Stack::Linux => sim.agent::<StackHost>(id).app_as::<BulkReceiver>().total,
        }
    }

    /// The gated report: lossless goodput plus the throughput penalty at
    /// 1% loss, for Linux and both TAS recovery modes.
    pub fn report() -> Report {
        let mut r = Report::new("fig7", "Throughput penalty under 1% packet loss", 100);
        r.param("flows", 100).param("loss", "0.01");
        let runs = [
            ("linux", Stack::Linux, 100u64),
            ("tas", Stack::Tas { ooo: true }, 101),
            ("tas_simple", Stack::Tas { ooo: false }, 102),
        ];
        for (name, stack, seed) in runs {
            let base = goodput(stack, 0.0, seed);
            let lossy = goodput(stack, 0.01, seed);
            let penalty = 100.0 * (1.0 - lossy / base).max(0.0);
            r.push(Metric::value(&format!("goodput_{name}"), "gbps", base / 1e9));
            r.push(
                Metric::value(&format!("penalty_{name}"), "percent_penalty", penalty)
                    // Loss penalties are small percentages; allow slack in
                    // absolute terms via a generous relative tolerance.
                    .with_tol(0.50),
            );
        }
        r
    }
}

/// Figure 9 + Table 5: key-value request latency distributions.
pub mod fig9 {
    use super::*;
    use tas_apps::kv::{KvClient, KvLoad, KvServer};

    /// Runs the KV latency scenario; returns the merged client latency
    /// histogram (ns).
    pub fn run(server: Kind, client: Kind, seed: u64) -> Histogram {
        let mut sim: Sim<NetMsg> = Sim::new(seed);
        let server_ip = host_ip(0);
        let clients = 2usize;
        // 15% of the ~1.5 mOps single-app-core capacity.
        let rate_per_client = scaled(60_000, 110_000);
        let conns_per_client = scaled(32, 128);
        let mut factory = move |sim: &mut Sim<NetMsg>, spec: HostSpec| -> AgentId {
            if spec.index == 0 {
                let app: Box<dyn App> = Box::new(KvServer::new(7));
                make_server(sim, spec, server, (1, 1), Bufs::small(), app)
            } else {
                let app: Box<dyn App> = Box::new(KvClient::new(
                    server_ip,
                    7,
                    conns_per_client,
                    100_000,
                    KvLoad::OpenRate {
                        per_sec: rate_per_client,
                    },
                    seed + spec.index as u64,
                ));
                make_server(sim, spec, client, (2, 2), Bufs::small(), app)
            }
        };
        let topo = build_star(
            &mut sim,
            1 + clients,
            |i| {
                if i == 0 {
                    PortConfig::fortygig()
                } else {
                    PortConfig::tengig()
                }
            },
            |i| {
                if i == 0 {
                    NicConfig::server_40g(1)
                } else {
                    NicConfig::client_10g(1)
                }
            },
            &mut factory,
        );
        for &h in &topo.hosts {
            sim.inject_timer(SimTime::ZERO, h, 0, 0);
        }
        let warmup = SimTime::from_ms(20);
        let window = scaled(SimTime::from_ms(60), SimTime::from_ms(300));
        sim.run_until(warmup);
        for &h in &topo.hosts[1..] {
            set_gate(&mut sim, h, client, warmup);
        }
        sim.run_until(warmup + window);
        let mut hist = Histogram::new();
        for &h in &topo.hosts[1..] {
            hist.merge(client_hist(&sim, h, client));
        }
        hist
    }

    /// Starts latency measurement at `t` on a client host.
    pub fn set_gate(sim: &mut Sim<NetMsg>, id: AgentId, kind: Kind, t: SimTime) {
        match kind {
            Kind::TasSockets | Kind::TasLowLevel => {
                sim.agent_mut::<tas::TasHost>(id)
                    .app_as_mut::<KvClient>()
                    .measure_from = t;
            }
            _ => {
                // StackHost has no app_as_mut; reach through the agent.
                sim.agent_mut::<tas_baselines::StackHost>(id)
                    .app_as_mut::<KvClient>()
                    .measure_from = t;
            }
        }
    }

    /// A client host's measured request-latency histogram.
    pub fn client_hist(sim: &Sim<NetMsg>, id: AgentId, kind: Kind) -> &Histogram {
        match kind {
            Kind::TasSockets | Kind::TasLowLevel => {
                &sim.agent::<tas::TasHost>(id).app_as::<KvClient>().latency
            }
            _ => {
                &sim.agent::<tas_baselines::StackHost>(id)
                    .app_as::<KvClient>()
                    .latency
            }
        }
    }

    /// The gated report: latency quantiles for TAS/TAS and Linux/TAS.
    pub fn report() -> Report {
        let mut r = Report::new("fig9", "KV request latency, 15% utilization", 1);
        r.param("clients", 2);
        let tas = run(Kind::TasSockets, Kind::TasSockets, 1);
        let linux = run(Kind::Linux, Kind::TasSockets, 3);
        r.push(Metric::quantiles("latency_tas_tas", "ns", &tas));
        r.push(Metric::quantiles("latency_linux_tas", "ns", &linux));
        r.push(Metric::value("requests_tas_tas", "count", tas.count() as f64));
        r
    }
}

/// Figure 14: workload proportionality under stepped load.
pub mod fig14 {
    use super::*;
    use tas::host::timers as tas_timers;
    use tas::{ApiKind, CcAlgo, TasConfig, TasHost};
    use tas_apps::kv::KvServer;
    use tas_apps::loadgen::{timers as lg_timers, LoadGenConfig, LoadGenHost};

    /// Builds the proportionality scenario; returns (sim, server, clients).
    pub fn build(seed: u64, step: SimTime, clients: usize) -> (Sim<NetMsg>, AgentId, Vec<AgentId>) {
        let mut sim: Sim<NetMsg> = Sim::new(seed);
        let server_ip = host_ip(0);
        let mut factory = move |sim: &mut Sim<NetMsg>, spec: HostSpec| -> AgentId {
            if spec.index == 0 {
                // Reduced clock so modest load exercises many cores.
                let cfg = TasConfig {
                    freq_hz: 50_000_000,
                    max_fp_cores: 10,
                    initial_fp_cores: 1,
                    app_cores: 10,
                    api: ApiKind::Sockets,
                    cc: CcAlgo::None,
                    rx_buf: 4096,
                    tx_buf: 4096,
                    proportional: true,
                    max_core_backlog: SimTime::from_ms(50),
                    ..TasConfig::default()
                };
                let app: Box<dyn App> = Box::new(KvServer::new(7));
                sim.add_agent(Box::new(TasHost::new(
                    spec.ip,
                    spec.mac,
                    spec.nic,
                    cfg,
                    spec.uplink,
                    app,
                )))
            } else {
                let mut template = vec![0u8; tas_apps::kv::REQ_HDR + tas_apps::kv::VAL_SIZE];
                template[0] = tas_apps::kv::OP_GET;
                template[1..5].copy_from_slice(&1u32.to_be_bytes());
                let cfg = LoadGenConfig {
                    server: server_ip,
                    port: 7,
                    conns: 80,
                    think: SimTime::from_ms(1),
                    req_size: template.len(),
                    resp_size: tas_apps::kv::RESP_HDR + tas_apps::kv::VAL_SIZE,
                    req_template: Some(template),
                    // Each client stops issuing when its down-step arrives.
                    stop_at: SimTime::ZERO,
                    ..LoadGenConfig::default()
                };
                sim.add_agent(Box::new(LoadGenHost::new(
                    spec.ip,
                    spec.mac,
                    spec.nic,
                    spec.uplink,
                    cfg,
                )))
            }
        };
        let topo = build_star(
            &mut sim,
            1 + clients,
            |i| {
                if i == 0 {
                    PortConfig::fortygig()
                } else {
                    PortConfig::tengig()
                }
            },
            |i| {
                if i == 0 {
                    NicConfig::server_40g(1)
                } else {
                    NicConfig::client_10g(1)
                }
            },
            &mut factory,
        );
        sim.inject_timer(SimTime::ZERO, topo.hosts[0], tas_timers::INIT, 0);
        // Staggered starts; mirrored stops.
        let total = step * (2 * clients as u64 + 1);
        for (i, &h) in topo.hosts[1..].iter().enumerate() {
            let start = step * i as u64;
            let stop = total - step * (i as u64 + 1);
            sim.inject_timer(start, h, lg_timers::INIT, 0);
            sim.agent_mut::<LoadGenHost>(h).set_stop_at(stop);
        }
        (sim, topo.hosts[0], topo.hosts[1..].to_vec())
    }

    /// One sampled row of the load staircase.
    pub struct Row {
        /// Sample time, ms.
        pub t_ms: u64,
        /// Active fast-path cores.
        pub cores: usize,
        /// Completed requests per second over the sample, in thousands.
        pub kops: f64,
        /// Clients currently issuing load.
        pub active_clients: usize,
    }

    /// The full staircase run's observables.
    pub struct Outcome {
        /// Per-sample rows.
        pub rows: Vec<Row>,
        /// Peak concurrent fast-path cores.
        pub max_cores: usize,
        /// Fast-path cores after the last down-step.
        pub final_cores: usize,
        /// Controller add/remove events.
        pub scale_events: u64,
        /// Mean of the controller's sampled per-core utilization series.
        pub mean_util: f64,
        /// Samples captured by the host's queue-depth recorder.
        pub series_samples: usize,
    }

    /// Runs the canonical staircase (seed 42, 5 clients) and samples
    /// cores/throughput each `sample` interval.
    pub fn run(seed: u64, step: SimTime, clients: usize, sample: SimTime) -> Outcome {
        let (mut sim, server, client_ids) = build(seed, step, clients);
        let total = step * (2 * clients as u64 + 1);
        let mut rows = Vec::new();
        let mut t = SimTime::ZERO;
        let mut prev_done = 0u64;
        let mut max_cores = 0usize;
        while t < total {
            t += sample;
            sim.run_until(t);
            let done: u64 = client_ids
                .iter()
                .map(|&c| sim.agent::<LoadGenHost>(c).done)
                .sum();
            let cores = sim.agent::<TasHost>(server).active_fp_cores();
            max_cores = max_cores.max(cores);
            let kops = (done - prev_done) as f64 / sample.as_secs_f64() / 1e3;
            let active_clients = client_ids
                .iter()
                .enumerate()
                .filter(|(i, _)| {
                    let start = step * *i as u64;
                    let stop = total - step * (*i as u64 + 1);
                    t > start && t < stop
                })
                .count();
            rows.push(Row {
                t_ms: t.as_millis(),
                cores,
                kops,
                active_clients,
            });
            prev_done = done;
        }
        let host = sim.agent::<TasHost>(server);
        let utils = host.util_series();
        let mean_util = if utils.is_empty() {
            0.0
        } else {
            utils.samples().iter().map(|&(_, v)| v).sum::<f64>() / utils.len() as f64
        };
        let series_samples = host
            .queue_series()
            .series("cores.active_fp")
            .map(|s| s.len())
            .unwrap_or(0);
        Outcome {
            rows,
            max_cores,
            final_cores: host.active_fp_cores(),
            scale_events: host
                .registry()
                .counter_value("host.scale_events", tas_sim::Scope::Global),
            mean_util,
            series_samples,
        }
    }

    /// The canonical staircase parameters: (step, sample interval).
    pub fn canonical_params() -> (SimTime, SimTime) {
        (
            scaled(SimTime::from_ms(400), SimTime::from_secs(2)),
            SimTime::from_ms(scaled(100, 500)),
        )
    }

    /// The gated report for the canonical staircase.
    pub fn report() -> Report {
        let (step, sample) = canonical_params();
        report_from(&run(42, step, 5, sample), step)
    }

    /// Builds the report from an already-computed canonical run.
    pub fn report_from(o: &Outcome, step: SimTime) -> Report {
        let peak_kops = o.rows.iter().map(|r| r.kops).fold(0.0f64, f64::max);
        let mut r = Report::new("fig14", "Workload proportionality: cores track stepped load", 42);
        r.param("clients", 5).param("step_ms", step.as_millis());
        r.push(Metric::value("peak_kops", "kops", peak_kops));
        r.push(Metric::value("peak_cores", "cores", o.max_cores as f64));
        r.push(Metric::value("final_cores", "cores", o.final_cores as f64));
        r.push(Metric::value("scale_events", "count", o.scale_events as f64));
        r.push(Metric::value("mean_core_util", "fraction", o.mean_util));
        r.push(Metric::value("series_samples", "count", o.series_samples as f64));
        r
    }
}

/// Figure 15: request latency across fast-path core additions.
pub mod fig15 {
    use super::*;
    use tas::TasHost;
    use tas_apps::loadgen::LoadGenHost;

    /// One latency/core sample.
    pub struct Row {
        /// Sample time, ms.
        pub t_ms: u64,
        /// Active fast-path cores.
        pub cores: usize,
        /// Mean request latency over the sample window, µs (0 when idle).
        pub mean_lat_us: f64,
    }

    /// The scaling-latency run's observables.
    pub struct Outcome {
        /// Per-sample rows.
        pub rows: Vec<Row>,
        /// Transient spikes: samples whose mean latency jumped >25% over
        /// the previous non-idle sample.
        pub spikes: u32,
        /// Controller add/remove events.
        pub scale_events: u64,
        /// Steady-state latency (µs): mean over the pre-step samples.
        pub steady_lat_us: f64,
        /// Worst sampled mean latency (µs).
        pub peak_lat_us: f64,
    }

    /// Runs the canonical core-acquisition scenario (seed 7, 3 staggered
    /// clients) sampling windowed latency at fine granularity.
    pub fn run(seed: u64, clients: usize, step: SimTime, sample: SimTime) -> Outcome {
        // Same reduced-clock proportional server as fig14, but clients
        // only arrive (no down-steps): build with a large stop time.
        let (mut sim, server, client_ids) = super::fig14::build(seed, step, clients);
        // fig14::build staggers stops; clear them (ZERO = never stop) so
        // the load only steps up, as the paper's fig15 does.
        let total = step * (clients as u64 + 1);
        for &h in &client_ids {
            sim.agent_mut::<LoadGenHost>(h).set_stop_at(SimTime::ZERO);
        }
        let mut rows = Vec::new();
        let mut t = SimTime::ZERO;
        let mut spikes = 0u32;
        let mut prev_lat = 0.0f64;
        let mut peak = 0.0f64;
        while t < total {
            t += sample;
            sim.run_until(t);
            let mut lat = 0.0;
            let mut n = 0u64;
            for &c in &client_ids {
                let lg = sim.agent_mut::<LoadGenHost>(c);
                if lg.window_lat_us.count() > 0 {
                    lat += lg.window_lat_us.mean() * lg.window_lat_us.count() as f64;
                    n += lg.window_lat_us.count();
                }
                lg.reset_window();
            }
            let mean = if n > 0 { lat / n as f64 } else { 0.0 };
            let cores = sim.agent::<TasHost>(server).active_fp_cores();
            if prev_lat > 0.0 && mean > prev_lat * 1.25 {
                spikes += 1;
            }
            if mean > 0.0 {
                prev_lat = mean;
                peak = peak.max(mean);
            }
            rows.push(Row {
                t_ms: t.as_millis(),
                cores,
                mean_lat_us: mean,
            });
        }
        // Steady state: non-idle samples before the second client arrives.
        let pre: Vec<f64> = rows
            .iter()
            .filter(|r| r.t_ms < step.as_millis() && r.mean_lat_us > 0.0)
            .map(|r| r.mean_lat_us)
            .collect();
        let steady = if pre.is_empty() {
            0.0
        } else {
            pre.iter().sum::<f64>() / pre.len() as f64
        };
        let scale_events = sim
            .agent::<TasHost>(server)
            .registry()
            .counter_value("host.scale_events", tas_sim::Scope::Global);
        Outcome {
            rows,
            spikes,
            scale_events,
            steady_lat_us: steady,
            peak_lat_us: peak,
        }
    }

    /// The canonical sampling interval.
    pub fn canonical_sample() -> SimTime {
        SimTime::from_ms(scaled(10, 5))
    }

    /// The gated report for the canonical core-acquisition run.
    pub fn report() -> Report {
        report_from(&run(7, 3, SimTime::from_ms(300), canonical_sample()))
    }

    /// Builds the report from an already-computed canonical run.
    pub fn report_from(o: &Outcome) -> Report {
        let mut r = Report::new("fig15", "Request latency across fast-path core additions", 7);
        r.param("clients", 3).param("step_ms", 300);
        r.push(Metric::value("steady_lat_us", "us", o.steady_lat_us).with_tol(0.25));
        // The transient peak is inherently spiky; report informationally.
        r.push(Metric::value("peak_lat_us", "us_info", o.peak_lat_us));
        r.push(Metric::value("spikes", "count", o.spikes as f64));
        r.push(Metric::value("scale_events", "count", o.scale_events as f64));
        r
    }
}

/// Figure 4: connection scalability on a 20-core server.
pub mod fig4 {
    use super::*;

    /// Runs the RPC echo scenario at `conns` connections; returns mOps.
    pub fn measure(kind: Kind, conns: u32) -> f64 {
        let mut sc = RpcScenario::echo(kind, (10, 10), conns);
        sc.warmup = scaled(SimTime::from_ms(15), SimTime::from_ms(50));
        sc.measure = scaled(SimTime::from_ms(10), SimTime::from_ms(50));
        sc.seed = 42 + conns as u64;
        crate::run_rpc(&sc).mops
    }

    /// The gated report: throughput at the low and high connection-count
    /// corners for each stack.
    pub fn report() -> Report {
        let mut r = Report::new("fig4", "RPC echo throughput vs. connection count", 42);
        r.param("cores", 20);
        for (kname, kind) in [
            ("tas", Kind::TasSockets),
            ("ix", Kind::Ix),
            ("linux", Kind::Linux),
        ] {
            for conns in [1_000u32, 16_000] {
                let mops = measure(kind, conns);
                r.push(Metric::value(&format!("{kname}_{conns}c"), "mops", mops));
            }
        }
        r
    }
}

/// Table 1: CPU cycles per request by stack module.
pub mod table1 {
    use super::*;
    use tas_cpusim::Module;

    /// The canonical cycle-accounting scenario for one stack. Table 1,
    /// Table 2, and the `cpuprof` observatory all run exactly this
    /// shape, so every cycles-per-request number traces to one source.
    pub fn scenario(kind: Kind) -> RpcScenario {
        let conns = scaled(2_000, 32_000);
        let mut sc = RpcScenario::kv(kind, (4, 4), conns);
        sc.warmup = scaled(SimTime::from_ms(20), SimTime::from_ms(100));
        sc.measure = scaled(SimTime::from_ms(15), SimTime::from_ms(100));
        sc
    }

    /// Runs the KV cycle-accounting scenario for one stack.
    pub fn measure(kind: Kind) -> crate::RpcResult {
        crate::run_rpc(&scenario(kind))
    }

    /// The gated report: total cycles/request per stack with the
    /// per-module breakdown.
    pub fn report() -> Report {
        let mut r = Report::new("table1", "Cycles per request by network stack module", 0);
        r.param("conns", scaled(2_000, 32_000)).param("cores", 8);
        for (kname, kind) in [
            ("linux", Kind::Linux),
            ("ix", Kind::Ix),
            ("tas", Kind::TasSockets),
        ] {
            let res = measure(kind);
            let p = &res.per_request;
            let mut m = Metric::value(&format!("cycles_{kname}"), "cycles", p.total_cycles());
            for module in [
                Module::Driver,
                Module::Ip,
                Module::Tcp,
                Module::Api,
                Module::Other,
                Module::App,
            ] {
                m = m.with_component(
                    &format!("{module:?}").to_lowercase(),
                    p.cycles[module as usize],
                );
            }
            r.push(m);
        }
        r
    }
}

/// Figure 13: per-connection fairness under incast — N senders to one
/// receiver at line rate, sweeping total connections.
pub mod fig13 {
    use super::*;
    use tas::{CcAlgo, TasConfig, TasHost};
    use tas_apps::bulk::{BulkReceiver, BulkSender};
    use tas_baselines::{profiles, StackHost, StackHostConfig};

    /// Sender hosts incasting the single receiver (the paper's 4 -> 1).
    pub const SENDERS: usize = 4;
    /// Canonical seed for the TAS runs (and the report).
    pub const TAS_SEED: u64 = 31;
    /// Canonical seed for the Linux runs.
    pub const LINUX_SEED: u64 = 32;

    /// Connection-count sweep (quick / paper scale).
    pub fn conn_counts() -> Vec<u32> {
        scaled(vec![50, 200, 1000], vec![50, 100, 200, 500, 1000, 2000])
    }

    /// One sweep point: (median, p99, fair share) of per-connection
    /// bytes received per sampling interval.
    pub fn run(kind: Kind, conns_total: u32, seed: u64) -> (f64, f64, f64) {
        let mut sim: Sim<NetMsg> = Sim::new(seed);
        let per_sender = conns_total / SENDERS as u32;
        let recv_ip = host_ip(0);
        let interval = SimTime::from_ms(scaled(20, 100));
        let warmup = SimTime::from_ms(40);
        let mut factory = move |sim: &mut Sim<NetMsg>, spec: HostSpec| -> AgentId {
            let app: Box<dyn App> = if spec.index == 0 {
                Box::new(BulkReceiver::new(9).sampling(interval, warmup))
            } else {
                Box::new(BulkSender::new(recv_ip, 9, per_sender))
            };
            match kind {
                Kind::TasSockets | Kind::TasLowLevel => {
                    let mut cfg = TasConfig::rpc_bench(2, 2);
                    cfg.cc = CcAlgo::DctcpRate;
                    cfg.initial_rate_bps = 200_000_000;
                    cfg.control_interval = SimTime::from_us(200);
                    cfg.rx_buf = 64 * 1024;
                    cfg.tx_buf = 64 * 1024;
                    cfg.max_core_backlog = SimTime::from_ms(50);
                    sim.add_agent(Box::new(TasHost::new(
                        spec.ip,
                        spec.mac,
                        spec.nic,
                        cfg,
                        spec.uplink,
                        app,
                    )))
                }
                _ => {
                    let mut cfg = StackHostConfig::linux(4);
                    cfg.tcp.recv_buf = 64 * 1024;
                    cfg.tcp.send_buf = 64 * 1024;
                    cfg.max_core_backlog = SimTime::from_ms(50);
                    sim.add_agent(Box::new(StackHost::new(
                        spec.ip,
                        spec.mac,
                        spec.nic,
                        profiles::linux(),
                        cfg,
                        spec.uplink,
                        app,
                    )))
                }
            }
        };
        let topo = build_star(
            &mut sim,
            1 + SENDERS,
            |_| PortConfig::tengig(),
            |_| NicConfig::client_10g(1),
            &mut factory,
        );
        for &h in &topo.hosts {
            sim.inject_timer(SimTime::ZERO, h, 0, 0);
        }
        let window = scaled(SimTime::from_ms(200), SimTime::from_secs(1));
        sim.run_until(warmup + window);
        let mut samples: Vec<u64> = match kind {
            Kind::TasSockets | Kind::TasLowLevel => sim
                .agent::<TasHost>(topo.hosts[0])
                .app_as::<BulkReceiver>()
                .interval_samples
                .clone(),
            _ => sim
                .agent::<StackHost>(topo.hosts[0])
                .app_as::<BulkReceiver>()
                .interval_samples
                .clone(),
        };
        samples.sort_unstable();
        if samples.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let median = samples[samples.len() / 2] as f64;
        let idx = ((samples.len() as f64 * 0.99) as usize).min(samples.len() - 1);
        let p99 = samples[idx] as f64;
        // Fair share: payload line rate over the interval / connections.
        let fair = 9.4e9 / 8.0 * interval.as_secs_f64() / conns_total as f64;
        (median, p99, fair)
    }

    /// One row of the sweep, for the harness table and the report.
    #[derive(Clone, Copy, Debug)]
    pub struct Row {
        /// Total connections across the senders.
        pub conns: u32,
        /// TAS median bytes per interval per connection.
        pub tas_median: f64,
        /// TAS p99 bytes per interval per connection.
        pub tas_p99: f64,
        /// Linux median bytes per interval per connection.
        pub linux_median: f64,
        /// Fair share bytes per interval per connection.
        pub fair: f64,
    }

    /// Runs the full sweep on both stacks.
    pub fn sweep() -> Vec<Row> {
        conn_counts()
            .into_iter()
            .map(|n| {
                let (tm, tp, fair) = run(Kind::TasSockets, n, TAS_SEED);
                let (lm, _, _) = run(Kind::Linux, n, LINUX_SEED);
                Row {
                    conns: n,
                    tas_median: tm,
                    tas_p99: tp,
                    linux_median: lm,
                    fair,
                }
            })
            .collect()
    }

    /// Builds the gated report from sweep rows.
    pub fn report_from(rows: &[Row]) -> Report {
        let mut r = Report::new(
            "fig13",
            "Incast per-connection fairness (4 -> 1)",
            TAS_SEED,
        );
        r.param("senders", SENDERS);
        for row in rows {
            let n = row.conns;
            // Components in key order so the written report round-trips
            // byte-identically through from_json (which sorts keys).
            r.push(
                Metric::value(&format!("tas_{n}c_median"), "bytes", row.tas_median)
                    .with_component("fair_share", row.fair)
                    .with_component("p99", row.tas_p99),
            );
            r.push(Metric::value(
                &format!("linux_{n}c_median"),
                "bytes",
                row.linux_median,
            ));
        }
        r
    }

    /// The gated report: runs the sweep.
    pub fn report() -> Report {
        report_from(&sweep())
    }
}

/// Table 3: per-flow fast-path state.
pub mod table3 {
    use super::*;

    /// The (static) report: per-flow state bytes and 2 MB-cache capacity.
    pub fn report() -> Report {
        let mut r = Report::new("table3", "Per-flow fast-path state", 0);
        let bytes = tas::FLOW_STATE_BYTES;
        r.push(Metric::value("flow_state", "bytes", bytes as f64));
        r.push(Metric::value(
            "flows_per_2mb_cache",
            "count",
            ((2u64 << 20) / bytes) as f64,
        ));
        r
    }
}

/// The cycle observatory: attribution-exact per-core profiles of the
/// Table 1 KV scenario for TAS and the Linux model. Emits the gated
/// `BENCH_cpuprof.json` (cycles/request and cycles/packet with
/// per-module and top-of-stack breakdowns, p50/p99 per-core
/// utilization) plus the folded flamegraph export.
#[cfg(feature = "profile")]
pub mod cpuprof {
    use super::*;
    use crate::ProfileCapture;

    /// Stacks the observatory profiles. The two design-space models ride
    /// along so their `boundary/*` frames (WRPKRU activations, PCIe
    /// doorbells) show up in the flamegraphs next to the stacks they
    /// interpolate between.
    pub fn stacks() -> [(&'static str, Kind); 4] {
        [
            ("tas", Kind::TasSockets),
            ("linux", Kind::Linux),
            ("mpk", Kind::Mpk),
            ("pno", Kind::Pno),
        ]
    }

    /// Runs the Table 1 scenario for `kind` with attribution enabled.
    pub fn measure(kind: Kind) -> ProfileCapture {
        let mut sc = table1::scenario(kind);
        sc.profile = true;
        let cap = crate::run_rpc(&sc).profile.expect("profile capture");
        // Attribution exactness: the tree must account for every busy
        // cycle of the measurement window.
        assert_eq!(
            cap.profile.total_cycles(),
            cap.busy_total(),
            "{}: profile must conserve busy cycles",
            kind.label()
        );
        cap
    }

    /// Percentile of pre-sorted samples (nearest-rank, deterministic).
    fn pctl(sorted: &[f64], q: f64) -> f64 {
        if sorted.is_empty() {
            return 0.0;
        }
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    }

    /// The report and the folded flamegraph export from one sweep. The
    /// folded lines are the per-stack [`tas_telemetry::profile::Profile::folded`]
    /// outputs with the stack name prefixed onto each core label.
    pub fn report_and_folded() -> (Report, String) {
        let mut r = Report::new(
            "cpuprof",
            "Cycle observatory: per-core attribution profile (KV store)",
            42,
        );
        r.param("conns", scaled(2_000, 32_000)).param("cores", 8);
        let mut folded = String::new();
        for (name, kind) in stacks() {
            let cap = measure(kind);
            let reqs = cap.requests.max(1) as f64;
            let mut per_req = Metric::value(
                &format!("cycles_per_req_{name}"),
                "cycles",
                cap.cycles_per_request(),
            )
            .with_tol(0.10);
            for (module, cycles) in cap.profile.rollup_depth1() {
                per_req = per_req.with_component(&module, cycles as f64 / reqs);
            }
            r.push(per_req);
            let mut per_pkt = Metric::value(
                &format!("cycles_per_pkt_{name}"),
                "cycles",
                cap.cycles_per_packet(),
            )
            .with_tol(0.10);
            let mut flat: Vec<(String, u64)> = cap.profile.flat_self().into_iter().collect();
            flat.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            for (frame, cycles) in flat.iter().take(6) {
                per_pkt =
                    per_pkt.with_component(frame, *cycles as f64 / cap.packets.max(1) as f64);
            }
            r.push(per_pkt);
            for (label, samples) in &cap.core_util {
                let mut s = samples.clone();
                s.sort_by(f64::total_cmp);
                r.push(
                    Metric::value(&format!("util_{name}_{label}_p50"), "ratio", pctl(&s, 0.50))
                        .with_component("p99", pctl(&s, 0.99)),
                );
            }
            for line in cap.profile.folded().lines() {
                folded.push_str(name);
                folded.push('.');
                folded.push_str(line);
                folded.push('\n');
            }
        }
        (r, folded)
    }

    /// The gated report builder (`bench-report` / `cpuprof` entry).
    pub fn report() -> Report {
        report_and_folded().0
    }
}

/// Table 4: sender/receiver compatibility — 100 bulk flows over a 10G
/// link for every Linux/TAS combination (paper: 9.4 Gbps in all four).
pub mod table4 {
    use super::*;
    use tas::{CcAlgo, TasConfig, TasHost};
    use tas_apps::bulk::{BulkReceiver, BulkSender};
    use tas_baselines::{profiles, StackHost, StackHostConfig};

    /// The four sender/receiver cells with their pinned seeds.
    pub fn cells() -> [(&'static str, Kind, &'static str, Kind, u64); 4] {
        [
            ("linux", Kind::Linux, "linux", Kind::Linux, 1),
            ("linux", Kind::Linux, "tas", Kind::TasSockets, 2),
            ("tas", Kind::TasSockets, "linux", Kind::Linux, 3),
            ("tas", Kind::TasSockets, "tas", Kind::TasSockets, 4),
        ]
    }

    /// Goodput of the bulk-transfer scenario: `scaled(50,100)` flows from
    /// one sending machine to one receiving machine, both on 10G.
    pub fn goodput_gbps(sender: Kind, receiver: Kind, seed: u64) -> f64 {
        let mut sim: Sim<NetMsg> = Sim::new(seed);
        let recv_ip = host_ip(0);
        let flows = scaled(50, 100);
        let mut factory = move |sim: &mut Sim<NetMsg>, spec: HostSpec| -> AgentId {
            let is_recv = spec.index == 0;
            let kind = if is_recv { receiver } else { sender };
            let app: Box<dyn App> = if is_recv {
                Box::new(BulkReceiver::new(9))
            } else {
                Box::new(BulkSender::new(recv_ip, 9, flows))
            };
            // Both stacks run DCTCP, as the paper's testbed does.
            match kind {
                Kind::TasSockets | Kind::TasLowLevel => {
                    let mut cfg = TasConfig::rpc_bench(2, 2);
                    cfg.rx_buf = 256 * 1024;
                    cfg.tx_buf = 256 * 1024;
                    cfg.cc = CcAlgo::DctcpRate;
                    cfg.initial_rate_bps = 500_000_000;
                    cfg.control_interval = SimTime::from_us(200);
                    cfg.max_core_backlog = SimTime::from_ms(50);
                    sim.add_agent(Box::new(TasHost::new(
                        spec.ip,
                        spec.mac,
                        spec.nic,
                        cfg,
                        spec.uplink,
                        app,
                    )))
                }
                _ => {
                    let mut cfg = StackHostConfig::linux(4);
                    cfg.tcp.recv_buf = 256 * 1024;
                    cfg.tcp.send_buf = 256 * 1024;
                    cfg.max_core_backlog = SimTime::from_ms(50);
                    sim.add_agent(Box::new(StackHost::new(
                        spec.ip,
                        spec.mac,
                        spec.nic,
                        profiles::linux(),
                        cfg,
                        spec.uplink,
                        app,
                    )))
                }
            }
        };
        let topo = build_star(
            &mut sim,
            2,
            |_| PortConfig::tengig(),
            |_| NicConfig::client_10g(1),
            &mut factory,
        );
        for &h in &topo.hosts {
            sim.inject_timer(SimTime::ZERO, h, 0, 0);
        }
        let warmup = SimTime::from_ms(20);
        let window = scaled(SimTime::from_ms(30), SimTime::from_ms(100));
        sim.run_until(warmup);
        let b0 = receiver_bytes(&sim, topo.hosts[0], receiver);
        sim.run_until(warmup + window);
        let b1 = receiver_bytes(&sim, topo.hosts[0], receiver);
        (b1 - b0) as f64 * 8.0 / window.as_secs_f64()
    }

    fn receiver_bytes(sim: &Sim<NetMsg>, id: AgentId, kind: Kind) -> u64 {
        match kind {
            Kind::TasSockets | Kind::TasLowLevel => {
                sim.agent::<TasHost>(id).app_as::<BulkReceiver>().total
            }
            _ => sim.agent::<StackHost>(id).app_as::<BulkReceiver>().total,
        }
    }

    /// The gated report: goodput for all four cells.
    pub fn report() -> Report {
        let mut r = Report::new("table4", "Linux/TAS sender-receiver compatibility", 1);
        r.param("flows", scaled(50, 100));
        for (sn, s, rn, rcv, seed) in cells() {
            r.push(Metric::value(
                &format!("{sn}_to_{rn}"),
                "gbps",
                goodput_gbps(s, rcv, seed) / 1e9,
            ));
        }
        r
    }
}

/// Design-space head-to-head (ROADMAP item 5): the five stack
/// architectures — in-kernel (Linux), protected kernel bypass (IX),
/// user-level split (mTCP), MPK-protected dataplane, and off-path
/// SmartNIC (PnO) — against TAS on identical latency and
/// cycle-accounting scenarios, plus sweeps over the two boundary costs
/// that define the new models (WRPKRU crossing cycles, PCIe one-way
/// latency).
pub mod designspace {
    use super::*;
    use tas_apps::kv::{KvClient, KvLoad, KvServer};
    use tas_baselines::{profiles, StackHost, StackHostConfig, StackProfile, ThreadModel};
    use tas_cpusim::{Crossing, CrossingKind, Module};

    /// Seed shared by every per-stack run, so cross-stack differences
    /// come from the stack model alone.
    pub const SEED: u64 = 17;

    /// WRPKRU crossing-cost sweep points (cycles). 80 is the measured
    /// hardware cost; 1400 degrades the MPK dataplane back to a
    /// syscall-class boundary.
    pub const MPK_SWEEP: [u64; 4] = [40, 80, 400, 1400];

    /// PCIe one-way latency sweep points (ns). 900 is gen3 x8 class;
    /// 5000 models a congested or switch-attached fabric.
    pub const PNO_SWEEP: [u64; 4] = [300, 900, 2000, 5000];

    /// The head-to-head stacks, in report order.
    pub fn stacks() -> [(&'static str, Kind); 6] {
        [
            ("linux", Kind::Linux),
            ("ix", Kind::Ix),
            ("mtcp", Kind::Mtcp),
            ("mpk", Kind::Mpk),
            ("pno", Kind::Pno),
            ("tas", Kind::TasSockets),
        ]
    }

    /// Fig. 9-shape latency distribution for one stack (ns), same seed
    /// and same TAS clients for every server stack.
    pub fn latency(kind: Kind) -> Histogram {
        fig9::run(kind, Kind::TasSockets, SEED)
    }

    /// Table 1-shape cycle accounting for one stack.
    pub fn cycles(kind: Kind) -> crate::RpcResult {
        table1::measure(kind)
    }

    /// An MPK-dataplane server with an explicit crossing cost (sweep
    /// point). Cores match the Fig. 9 server shape.
    pub fn mpk_host(crossing_cycles: u64) -> (StackProfile, StackHostConfig) {
        let mut cfg = StackHostConfig::mpk(2);
        cfg.model = ThreadModel::MpkDataplane {
            crossing: Crossing::new(CrossingKind::Wrpkru, crossing_cycles),
        };
        (profiles::mpk(), cfg)
    }

    /// An off-path-NIC server with an explicit PCIe one-way latency
    /// (sweep point).
    pub fn pno_host(latency: SimTime) -> (StackProfile, StackHostConfig) {
        let mut cfg = StackHostConfig::pno(1, 1);
        if let ThreadModel::OffPathNic { pcie, .. } = &mut cfg.model {
            *pcie = pcie.with_latency(latency);
        }
        (profiles::pno(), cfg)
    }

    /// Runs the Fig. 9-shape KV latency scenario against a custom-built
    /// [`StackHost`] server. This is the sweep entry point and the
    /// determinism probe used by `tests/proptest_designspace.rs`.
    pub fn run_custom(profile: StackProfile, cfg: StackHostConfig, seed: u64) -> Histogram {
        let mut sim: Sim<NetMsg> = Sim::new(seed);
        let server_ip = host_ip(0);
        let clients = 2usize;
        let rate_per_client = scaled(60_000, 110_000);
        let conns_per_client = scaled(32, 128);
        let mut factory = move |sim: &mut Sim<NetMsg>, spec: HostSpec| -> AgentId {
            if spec.index == 0 {
                let app: Box<dyn App> = Box::new(KvServer::new(7));
                sim.add_agent(Box::new(StackHost::new(
                    spec.ip,
                    spec.mac,
                    spec.nic,
                    profile,
                    cfg.clone(),
                    spec.uplink,
                    app,
                )))
            } else {
                let app: Box<dyn App> = Box::new(KvClient::new(
                    server_ip,
                    7,
                    conns_per_client,
                    100_000,
                    KvLoad::OpenRate {
                        per_sec: rate_per_client,
                    },
                    seed + spec.index as u64,
                ));
                make_server(sim, spec, Kind::TasSockets, (2, 2), Bufs::small(), app)
            }
        };
        let topo = build_star(
            &mut sim,
            1 + clients,
            |i| {
                if i == 0 {
                    PortConfig::fortygig()
                } else {
                    PortConfig::tengig()
                }
            },
            |i| {
                if i == 0 {
                    NicConfig::server_40g(1)
                } else {
                    NicConfig::client_10g(1)
                }
            },
            &mut factory,
        );
        for &h in &topo.hosts {
            sim.inject_timer(SimTime::ZERO, h, 0, 0);
        }
        let warmup = SimTime::from_ms(20);
        let window = scaled(SimTime::from_ms(60), SimTime::from_ms(300));
        sim.run_until(warmup);
        for &h in &topo.hosts[1..] {
            fig9::set_gate(&mut sim, h, Kind::TasSockets, warmup);
        }
        sim.run_until(warmup + window);
        let mut hist = Histogram::new();
        for &h in &topo.hosts[1..] {
            hist.merge(fig9::client_hist(&sim, h, Kind::TasSockets));
        }
        hist
    }

    /// The gated report: per-stack latency quantiles (Fig. 9 shape),
    /// per-stack cycles/request with module breakdown and the host-core
    /// share (Table 1 shape), and the two boundary-cost sweeps.
    pub fn report() -> Report {
        let mut r = Report::new(
            "designspace",
            "Design-space head-to-head: five stack architectures vs TAS",
            SEED,
        );
        r.param("conns", scaled(2_000, 32_000))
            .param("mpk_sweep", format!("{MPK_SWEEP:?}"))
            .param("pno_sweep_ns", format!("{PNO_SWEEP:?}"));
        for (name, kind) in stacks() {
            let hist = latency(kind);
            r.push(Metric::quantiles(&format!("lat_{name}"), "ns", &hist));
        }
        for (name, kind) in stacks() {
            let res = cycles(kind);
            let p = &res.per_request;
            let mut m = Metric::value(&format!("cycles_{name}"), "cycles", p.total_cycles());
            for module in [
                Module::Driver,
                Module::Ip,
                Module::Tcp,
                Module::Api,
                Module::Other,
                Module::App,
            ] {
                m = m.with_component(
                    &format!("{module:?}").to_lowercase(),
                    p.cycles[module as usize],
                );
            }
            m = m.with_component(
                "host_per_req",
                res.host_cycles as f64 / p.requests.max(1) as f64,
            );
            r.push(m);
        }
        for c in MPK_SWEEP {
            let (p, cfg) = mpk_host(c);
            let h = run_custom(p, cfg, SEED);
            r.push(
                Metric::value(&format!("mpk_xcost_{c}"), "ns", h.quantile(0.5) as f64)
                    .with_component("p99", h.quantile(0.99) as f64),
            );
        }
        for l in PNO_SWEEP {
            let (p, cfg) = pno_host(SimTime::from_ns(l));
            let h = run_custom(p, cfg, SEED);
            r.push(
                Metric::value(&format!("pno_pcie_{l}ns"), "ns", h.quantile(0.5) as f64)
                    .with_component("p99", h.quantile(0.99) as f64),
            );
        }
        r
    }
}

/// A named report builder, as listed by [`gated_reports`].
pub type ReportFn = (&'static str, fn() -> Report);

/// Every gated report builder, in output order. The `bench-report`
/// binary runs these; the comparator gates them against
/// `crates/bench/baselines/`.
pub fn gated_reports() -> Vec<ReportFn> {
    #[cfg_attr(
        not(any(feature = "trace", feature = "profile")),
        allow(unused_mut)
    )]
    let mut v: Vec<ReportFn> = vec![
        ("fig4", fig4::report),
        ("fig6", fig6::report),
        ("fig7", fig7::report),
        ("fig9", fig9::report),
        ("fig13", fig13::report),
        ("fig14", fig14::report),
        ("fig15", fig15::report),
        ("table1", table1::report),
        ("table3", table3::report),
        ("table4", table4::report),
        ("designspace", designspace::report),
        ("scenarios", crate::scenario::report),
    ];
    #[cfg(feature = "trace")]
    v.push(("fig6spans", fig6::spans_report));
    #[cfg(feature = "profile")]
    v.push(("cpuprof", cpuprof::report));
    v
}
