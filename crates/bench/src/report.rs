//! Machine-readable bench reports and the regression comparator.
//!
//! Every figure/table harness (and the `bench-report` binary) writes its
//! headline numbers as `BENCH_<fig>.json` at the repo root using the
//! shared schema below, so the perf trajectory is tracked in data rather
//! than hand-copied tables:
//!
//! ```json
//! {
//!   "schema": "tas-bench-report-v1",
//!   "fig": "fig9",
//!   "title": "...",
//!   "seed": 1,
//!   "scale": "quick",
//!   "params": {"conns": "64"},
//!   "metrics": [
//!     {"name": "latency_tas_tas", "unit": "ns",
//!      "p50": 17000, "p90": 20000, "p99": 30000, "max": 122000},
//!     {"name": "goodput_tas", "unit": "gbps", "value": 12.340000},
//!     {"name": "cycles_tas", "unit": "cycles", "value": 2570.000000,
//!      "breakdown": {"tcp": 810.000000, "api": 620.000000}}
//!   ]
//! }
//! ```
//!
//! Rendering is deterministic: fixed key order, fixed float formatting
//! (`{:.6}`), no timestamps — two same-seed runs produce byte-identical
//! files, which `tests/determinism.rs` pins.
//!
//! The comparator diffs a generated report against the checked-in
//! baseline in `crates/bench/baselines/` with per-metric tolerances and
//! is direction-aware per unit: for latency-like units (ns/us/cycles) a
//! *higher* current value regresses; for throughput-like units
//! (mops/kops/gbps) a *lower* one does. Counting units (count, cores,
//! bytes) are informational and never gate. `UPDATE_BASELINE=1` re-pins.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Schema identifier written into (and required from) every report.
pub const SCHEMA: &str = "tas-bench-report-v1";

/// Default relative tolerance when a baseline metric carries none.
pub const DEFAULT_TOL: f64 = 0.10;

/// Latency/throughput distribution digest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Quantiles {
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Largest observed sample.
    pub max: u64,
}

impl Quantiles {
    /// Digests a histogram (zeros when empty).
    pub fn of(h: &tas_sim::Histogram) -> Quantiles {
        Quantiles {
            p50: h.p50(),
            p90: h.p90(),
            p99: h.p99(),
            max: h.max(),
        }
    }
}

/// The value payload of one metric.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricData {
    /// A distribution (latency CDF digest).
    Quantiles(Quantiles),
    /// A scalar (throughput, cycle count, event count).
    Value(f64),
}

/// One named, unit-tagged measurement.
#[derive(Clone, Debug, PartialEq)]
pub struct Metric {
    /// Stable metric name (snake_case; part of the baseline contract).
    pub name: String,
    /// Unit tag driving the comparator's direction: `ns`/`us`/`cycles`
    /// regress upward, `mops`/`kops`/`gbps`/`ops` regress downward,
    /// anything else is informational.
    pub unit: String,
    /// The measurement.
    pub data: MetricData,
    /// Optional relative tolerance overriding [`DEFAULT_TOL`] when this
    /// metric is used as a baseline.
    pub tol: Option<f64>,
    /// Optional named components (per-module cycles, per-stage latency).
    pub breakdown: Vec<(String, f64)>,
}

impl Metric {
    /// A scalar metric.
    pub fn value(name: &str, unit: &str, v: f64) -> Metric {
        Metric {
            name: name.to_string(),
            unit: unit.to_string(),
            data: MetricData::Value(v),
            tol: None,
            breakdown: Vec::new(),
        }
    }

    /// A distribution metric from a histogram.
    pub fn quantiles(name: &str, unit: &str, h: &tas_sim::Histogram) -> Metric {
        Metric {
            name: name.to_string(),
            unit: unit.to_string(),
            data: MetricData::Quantiles(Quantiles::of(h)),
            tol: None,
            breakdown: Vec::new(),
        }
    }

    /// Sets the per-metric tolerance (builder style).
    pub fn with_tol(mut self, tol: f64) -> Metric {
        self.tol = Some(tol);
        self
    }

    /// Attaches a breakdown component (builder style).
    pub fn with_component(mut self, name: &str, v: f64) -> Metric {
        self.breakdown.push((name.to_string(), v));
        self
    }
}

/// A full per-figure report.
#[derive(Clone, Debug, PartialEq)]
pub struct Report {
    /// Figure/table tag (`fig9`, `table1`); names the output file.
    pub fig: String,
    /// Human title.
    pub title: String,
    /// RNG seed the run used.
    pub seed: u64,
    /// `quick` or `full` (reports only compare within the same scale).
    pub scale: String,
    /// Scenario parameters, for provenance.
    pub params: Vec<(String, String)>,
    /// The measurements.
    pub metrics: Vec<Metric>,
}

impl Report {
    /// Starts a report for `fig` under the current scale mode.
    pub fn new(fig: &str, title: &str, seed: u64) -> Report {
        Report {
            fig: fig.to_string(),
            title: title.to_string(),
            seed,
            scale: if crate::full_scale() { "full" } else { "quick" }.to_string(),
            params: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// Records a scenario parameter.
    pub fn param(&mut self, k: &str, v: impl ToString) -> &mut Self {
        self.params.push((k.to_string(), v.to_string()));
        self
    }

    /// Adds a metric.
    pub fn push(&mut self, m: Metric) -> &mut Self {
        self.metrics.push(m);
        self
    }

    /// Renders the canonical JSON (fixed key order, `{:.6}` floats).
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(1024);
        o.push_str("{\n");
        let _ = writeln!(o, "  \"schema\": {},", json_str(SCHEMA));
        let _ = writeln!(o, "  \"fig\": {},", json_str(&self.fig));
        let _ = writeln!(o, "  \"title\": {},", json_str(&self.title));
        let _ = writeln!(o, "  \"seed\": {},", self.seed);
        let _ = writeln!(o, "  \"scale\": {},", json_str(&self.scale));
        o.push_str("  \"params\": {");
        for (i, (k, v)) in self.params.iter().enumerate() {
            if i > 0 {
                o.push_str(", ");
            }
            let _ = write!(o, "{}: {}", json_str(k), json_str(v));
        }
        o.push_str("},\n");
        o.push_str("  \"metrics\": [\n");
        for (i, m) in self.metrics.iter().enumerate() {
            let _ = write!(
                o,
                "    {{\"name\": {}, \"unit\": {}",
                json_str(&m.name),
                json_str(&m.unit)
            );
            match &m.data {
                MetricData::Quantiles(q) => {
                    let _ = write!(
                        o,
                        ", \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}",
                        q.p50, q.p90, q.p99, q.max
                    );
                }
                MetricData::Value(v) => {
                    let _ = write!(o, ", \"value\": {}", json_f64(*v));
                }
            }
            if let Some(t) = m.tol {
                let _ = write!(o, ", \"tol\": {}", json_f64(t));
            }
            if !m.breakdown.is_empty() {
                // Canonical key order: breakdowns serialize sorted so a
                // freshly generated report and its from_json round-trip
                // (which parses objects into a BTreeMap) are
                // byte-identical.
                let mut parts: Vec<&(String, f64)> = m.breakdown.iter().collect();
                parts.sort_by(|a, b| a.0.cmp(&b.0));
                o.push_str(", \"breakdown\": {");
                for (j, (k, v)) in parts.into_iter().enumerate() {
                    if j > 0 {
                        o.push_str(", ");
                    }
                    let _ = write!(o, "{}: {}", json_str(k), json_f64(*v));
                }
                o.push('}');
            }
            o.push('}');
            if i + 1 < self.metrics.len() {
                o.push(',');
            }
            o.push('\n');
        }
        o.push_str("  ]\n}\n");
        o
    }

    /// Writes `BENCH_<fig>.json` at the repo root; returns the path.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let path = repo_root().join(format!("BENCH_{}.json", self.fig));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Parses a report back from its canonical (or any equivalent) JSON.
    pub fn from_json(s: &str) -> Result<Report, String> {
        let v = Json::parse(s)?;
        let obj = v.as_obj().ok_or("report: not an object")?;
        let schema = get_str(obj, "schema")?;
        if schema != SCHEMA {
            return Err(format!("unknown schema {schema:?} (want {SCHEMA:?})"));
        }
        let mut r = Report {
            fig: get_str(obj, "fig")?.to_string(),
            title: get_str(obj, "title")?.to_string(),
            seed: get_num(obj, "seed")? as u64,
            scale: get_str(obj, "scale")?.to_string(),
            params: Vec::new(),
            metrics: Vec::new(),
        };
        if let Some(Json::Obj(p)) = obj.get("params") {
            for (k, v) in p {
                r.params.push((
                    k.clone(),
                    v.as_str().ok_or("param value must be a string")?.to_string(),
                ));
            }
        }
        let metrics = match obj.get("metrics") {
            Some(Json::Arr(a)) => a,
            _ => return Err("report: missing metrics array".into()),
        };
        for m in metrics {
            let mo = m.as_obj().ok_or("metric: not an object")?;
            let data = if mo.contains_key("value") {
                MetricData::Value(get_num(mo, "value")?)
            } else {
                MetricData::Quantiles(Quantiles {
                    p50: get_num(mo, "p50")? as u64,
                    p90: get_num(mo, "p90")? as u64,
                    p99: get_num(mo, "p99")? as u64,
                    max: get_num(mo, "max")? as u64,
                })
            };
            let mut breakdown = Vec::new();
            if let Some(Json::Obj(b)) = mo.get("breakdown") {
                for (k, v) in b {
                    breakdown.push((k.clone(), v.as_num().ok_or("breakdown value")?));
                }
            }
            r.metrics.push(Metric {
                name: get_str(mo, "name")?.to_string(),
                unit: get_str(mo, "unit")?.to_string(),
                data,
                tol: mo.get("tol").and_then(Json::as_num),
                breakdown,
            });
        }
        if r.metrics.is_empty() {
            return Err(format!("report {}: no metrics", r.fig));
        }
        Ok(r)
    }
}

/// Validates a JSON string against the report schema (parse + shape).
pub fn validate(s: &str) -> Result<(), String> {
    Report::from_json(s).map(|_| ())
}

/// Repo root (two levels above this crate's manifest).
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."))
}

/// Directory of checked-in baseline reports.
pub fn baselines_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("baselines")
}

fn json_str(s: &str) -> String {
    let mut o = String::with_capacity(s.len() + 2);
    o.push('"');
    for c in s.chars() {
        match c {
            '"' => o.push_str("\\\""),
            '\\' => o.push_str("\\\\"),
            '\n' => o.push_str("\\n"),
            '\t' => o.push_str("\\t"),
            '\r' => o.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(o, "\\u{:04x}", c as u32);
            }
            c => o.push(c),
        }
    }
    o.push('"');
    o
}

fn json_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0.000000".into();
    }
    format!("{v:.6}")
}

// ----------------------------------------------------------------------
// Minimal JSON reader (only what the report schema needs; no external
// dependencies permitted in this tree).

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// Any number (as f64 — report fields all fit exactly).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (sorted keys; duplicate keys keep the last value).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document.
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser {
            b: s.as_bytes(),
            i: 0,
        };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(format!("trailing garbage at byte {}", p.i));
        }
        Ok(v)
    }

    /// The object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

fn get_str<'a>(o: &'a BTreeMap<String, Json>, k: &str) -> Result<&'a str, String> {
    o.get(k)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing string field {k:?}"))
}

fn get_num(o: &BTreeMap<String, Json>, k: &str) -> Result<f64, String> {
    o.get(k)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("missing numeric field {k:?}"))
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.b.get(self.i) {
            Some(b'{') => self.obj(),
            Some(b'[') => self.arr(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(_) => self.num(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn num(&mut self) -> Result<Json, String> {
        let start = self.i;
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        debug_assert_eq!(self.b[self.i], b'"');
        self.i += 1;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let c = *self.b.get(self.i).ok_or("bad escape")?;
                    self.i += 1;
                    match c {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            self.i += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape \\{}", c as char)),
                    }
                }
                Some(&c) => {
                    // Multi-byte UTF-8: copy the whole scalar.
                    let s = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| "invalid utf-8")?;
                    let ch = s.chars().next().ok_or("unterminated string")?;
                    let _ = c;
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
    }

    fn obj(&mut self) -> Result<Json, String> {
        self.i += 1; // '{'
        let mut m = BTreeMap::new();
        self.ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            if self.b.get(self.i) != Some(&b':') {
                return Err(format!("expected ':' at byte {}", self.i));
            }
            self.i += 1;
            self.ws();
            let v = self.value()?;
            m.insert(k, v);
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }

    fn arr(&mut self) -> Result<Json, String> {
        self.i += 1; // '['
        let mut a = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Json::Arr(a));
        }
        loop {
            self.ws();
            a.push(self.value()?);
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(a));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }
}

// ----------------------------------------------------------------------
// Regression comparator.

/// Whether a unit regresses when the current value moves up (`Some(true)`),
/// down (`Some(false)`), or never gates (`None`).
pub fn higher_is_worse(unit: &str) -> Option<bool> {
    match unit {
        "ns" | "us" | "ms" | "cycles" | "kc" | "percent_penalty" => Some(true),
        "mops" | "kops" | "ops" | "gbps" | "mbps" => Some(false),
        _ => None,
    }
}

/// One tolerance violation found by [`compare`].
#[derive(Clone, Debug)]
pub struct Regression {
    /// Figure tag.
    pub fig: String,
    /// Metric name.
    pub metric: String,
    /// Which field regressed (`value`, `p50`, `p90`, `p99`).
    pub field: &'static str,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Relative tolerance that was applied.
    pub tol: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} {}: baseline {:.3} -> current {:.3} (tol {:.0}%)",
            self.fig,
            self.metric,
            self.field,
            self.baseline,
            self.current,
            self.tol * 100.0
        )
    }
}

#[allow(clippy::too_many_arguments)]
fn check_field(
    out: &mut Vec<Regression>,
    fig: &str,
    metric: &str,
    field: &'static str,
    base: f64,
    cur: f64,
    tol: f64,
    up_is_worse: bool,
) {
    let bad = if up_is_worse {
        cur > base * (1.0 + tol) && cur - base > 1.0
    } else {
        cur < base * (1.0 - tol)
    };
    if bad {
        out.push(Regression {
            fig: fig.to_string(),
            metric: metric.to_string(),
            field,
            baseline: base,
            current: cur,
            tol,
        });
    }
}

/// Diffs `current` against `baseline`. A metric present in the baseline
/// but missing from the current run is itself a regression (reported with
/// `field = "missing"`). Metrics whose unit never gates are skipped; `max`
/// quantiles are informational (too noisy to gate). Returns every
/// violation, empty when the gate passes. Reports from different scale
/// modes are never compared (returns a single `scale` pseudo-regression).
pub fn compare(current: &Report, baseline: &Report) -> Vec<Regression> {
    let mut out = Vec::new();
    if current.scale != baseline.scale {
        out.push(Regression {
            fig: baseline.fig.clone(),
            metric: "<report>".into(),
            field: "scale",
            baseline: 0.0,
            current: 0.0,
            tol: 0.0,
        });
        return out;
    }
    for bm in &baseline.metrics {
        let Some(cm) = current.metrics.iter().find(|m| m.name == bm.name) else {
            out.push(Regression {
                fig: baseline.fig.clone(),
                metric: bm.name.clone(),
                field: "missing",
                baseline: 0.0,
                current: 0.0,
                tol: 0.0,
            });
            continue;
        };
        let Some(up) = higher_is_worse(&bm.unit) else {
            continue;
        };
        let tol = bm.tol.unwrap_or(DEFAULT_TOL);
        match (&bm.data, &cm.data) {
            (MetricData::Value(b), MetricData::Value(c)) => {
                check_field(&mut out, &baseline.fig, &bm.name, "value", *b, *c, tol, up);
            }
            (MetricData::Quantiles(b), MetricData::Quantiles(c)) => {
                for (field, bv, cv) in [
                    ("p50", b.p50, c.p50),
                    ("p90", b.p90, c.p90),
                    ("p99", b.p99, c.p99),
                ] {
                    check_field(
                        &mut out,
                        &baseline.fig,
                        &bm.name,
                        field,
                        bv as f64,
                        cv as f64,
                        tol,
                        up,
                    );
                }
            }
            _ => out.push(Regression {
                fig: baseline.fig.clone(),
                metric: bm.name.clone(),
                field: "shape",
                baseline: 0.0,
                current: 0.0,
                tol: 0.0,
            }),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("figx", "sample \"quoted\" title", 42);
        r.param("conns", 64).param("window_ms", 20);
        r.push(Metric {
            name: "latency".into(),
            unit: "ns".into(),
            data: MetricData::Quantiles(Quantiles {
                p50: 17_000,
                p90: 20_000,
                p99: 30_000,
                max: 122_000,
            }),
            tol: Some(0.15),
            breakdown: vec![("fp_rx".into(), 1200.0)],
        });
        r.push(Metric::value("mops", "mops", 1.234567));
        r
    }

    #[test]
    fn json_round_trips() {
        let r = sample();
        let j = r.to_json();
        validate(&j).expect("schema-valid");
        let back = Report::from_json(&j).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn rendering_is_deterministic() {
        assert_eq!(sample().to_json(), sample().to_json());
    }

    #[test]
    fn comparator_passes_identical_and_catches_p99_regression() {
        let base = sample();
        assert!(compare(&base, &base).is_empty(), "self-compare must pass");
        // Inject a 20% p99 regression: must trip the gate.
        let mut cur = sample();
        if let MetricData::Quantiles(q) = &mut cur.metrics[0].data {
            q.p99 = (q.p99 as f64 * 1.20) as u64;
        }
        let regs = compare(&cur, &base);
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert_eq!(regs[0].field, "p99");
        // And a throughput *increase* is fine, a decrease is not.
        let mut faster = sample();
        faster.metrics[1].data = MetricData::Value(2.0);
        assert!(compare(&faster, &base).is_empty());
        let mut slower = sample();
        slower.metrics[1].data = MetricData::Value(1.0);
        assert_eq!(compare(&slower, &base).len(), 1);
    }

    #[test]
    fn comparator_flags_missing_metric_and_scale_mismatch() {
        let base = sample();
        let mut cur = sample();
        cur.metrics.remove(0);
        let regs = compare(&cur, &base);
        assert!(regs.iter().any(|r| r.field == "missing"));
        let mut full = sample();
        full.scale = "full".into();
        assert_eq!(compare(&full, &base)[0].field, "scale");
    }

    #[test]
    fn latency_within_tolerance_passes() {
        let base = sample();
        let mut cur = sample();
        if let MetricData::Quantiles(q) = &mut cur.metrics[0].data {
            q.p99 = (q.p99 as f64 * 1.10) as u64; // within the 0.15 tol
        }
        assert!(compare(&cur, &base).is_empty());
    }
}
