//! Shared experiment infrastructure for the paper-reproduction benches.
//!
//! Every table and figure of the paper's evaluation has a `harness = false`
//! bench target in `benches/`; this library provides the common scenario
//! builders: a server of any stack kind behind a bank of client machines,
//! warmup/measure windows, and table-formatted output.
//!
//! Scale: by default every experiment runs a reduced-but-faithful
//! configuration sized to finish in seconds; setting `TAS_FULL=1` selects
//! the paper-scale parameters (more connections, longer windows).

use tas::{ApiKind, CcAlgo, TasConfig, TasHost};
use tas_apps::echo::{EchoServer, ServerMode};
use tas_apps::kv::KvServer;
use tas_apps::loadgen::{LoadGenConfig, LoadGenHost};
use tas_baselines::{profiles, StackHost, StackHostConfig};
use tas_cpusim::{CoreClass, CycleAccount, Module, MODULE_COUNT};
use tas_netsim::app::App;
use tas_netsim::topo::{build_star, host_ip, HostSpec};
use tas_netsim::{NetMsg, NicConfig, PortConfig};
use tas_sim::{AgentId, Sim, SimTime};

pub use tas_sim::Histogram;

pub mod report;
pub mod scenario;
pub mod scenarios;

/// True when `TAS_FULL=1` requests paper-scale runs.
pub fn full_scale() -> bool {
    std::env::var("TAS_FULL").map(|v| v == "1").unwrap_or(false)
}

/// Picks `quick` or `full` by [`full_scale`].
pub fn scaled<T>(quick: T, full: T) -> T {
    if full_scale() {
        full
    } else {
        quick
    }
}

/// Prints an experiment header.
pub fn section(title: &str, paper_ref: &str) {
    println!();
    println!("=== {title} ===");
    println!("paper: {paper_ref}");
}

/// The server stack under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// TAS with POSIX sockets (TAS SO).
    TasSockets,
    /// TAS with the low-level API (TAS LL).
    TasLowLevel,
    /// Linux in-kernel model.
    Linux,
    /// IX model.
    Ix,
    /// mTCP model.
    Mtcp,
    /// MPK-protected dataplane model (WRPKRU crossings).
    Mpk,
    /// PnO-style off-path SmartNIC model (PCIe/DMA boundary).
    Pno,
}

impl Kind {
    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Kind::TasSockets => "TAS SO",
            Kind::TasLowLevel => "TAS LL",
            Kind::Linux => "Linux",
            Kind::Ix => "IX",
            Kind::Mtcp => "mTCP",
            Kind::Mpk => "MPK",
            Kind::Pno => "PnO",
        }
    }
}

/// Per-flow buffer sizing for server scenarios (small for RPC echo, larger
/// for KV / bulk workloads).
#[derive(Clone, Copy, Debug)]
pub struct Bufs {
    /// Receive buffer bytes per connection.
    pub rx: usize,
    /// Transmit buffer bytes per connection.
    pub tx: usize,
}

impl Bufs {
    /// Small buffers for 64-byte echo at huge connection counts.
    pub fn tiny() -> Bufs {
        Bufs { rx: 1024, tx: 1024 }
    }

    /// Medium buffers for KV-sized messages.
    pub fn small() -> Bufs {
        Bufs { rx: 4096, tx: 4096 }
    }
}

/// Optional TAS configuration overrides for ablation studies. `None`
/// fields keep the [`make_server`] defaults, so the overridden run is
/// comparable to the corresponding paper experiment.
#[derive(Clone, Copy, Debug, Default)]
pub struct TasOverrides {
    /// Cache lines of flow state touched per request (ablates the
    /// 102-byte compact state of Table 3).
    pub cache_lines_per_req: Option<u64>,
    /// Congestion-control policy (ablates fast-path rate enforcement).
    pub cc: Option<CcAlgo>,
    /// Stalled control intervals before a slow-path retransmission.
    pub stall_intervals_for_rexmit: Option<u32>,
    /// Control-loop interval τ.
    pub control_interval: Option<SimTime>,
}

impl TasOverrides {
    fn apply(&self, cfg: &mut TasConfig) {
        if let Some(v) = self.cache_lines_per_req {
            cfg.cache_lines_per_req = v;
        }
        if let Some(v) = self.cc {
            cfg.cc = v;
        }
        if let Some(v) = self.stall_intervals_for_rexmit {
            cfg.stall_intervals_for_rexmit = v;
        }
        if let Some(v) = self.control_interval {
            cfg.control_interval = v;
        }
    }
}

/// Builds a server host of the given kind.
///
/// `cores` means: for TAS kinds `(fast-path cores, app cores)`; for the
/// baselines the total core count (mTCP reserves ceil(total/3) of them for
/// its stack threads).
pub fn make_server(
    sim: &mut Sim<NetMsg>,
    spec: HostSpec,
    kind: Kind,
    cores: (usize, usize),
    bufs: Bufs,
    app: Box<dyn App>,
) -> AgentId {
    make_server_with(sim, spec, kind, cores, bufs, app, TasOverrides::default())
}

/// [`make_server`] with TAS ablation overrides (ignored for baselines).
#[allow(clippy::too_many_arguments)]
pub fn make_server_with(
    sim: &mut Sim<NetMsg>,
    spec: HostSpec,
    kind: Kind,
    cores: (usize, usize),
    bufs: Bufs,
    app: Box<dyn App>,
    overrides: TasOverrides,
) -> AgentId {
    match kind {
        Kind::TasSockets | Kind::TasLowLevel => {
            let mut cfg = TasConfig::rpc_bench(cores.0, cores.1);
            cfg.api = if kind == Kind::TasLowLevel {
                ApiKind::LowLevel
            } else {
                ApiKind::Sockets
            };
            cfg.rx_buf = bufs.rx;
            cfg.tx_buf = bufs.tx;
            // The paper's testbed runs DCTCP everywhere; without
            // congestion control, bulk/pipelined scenarios collapse the
            // shared switch queue.
            cfg.cc = CcAlgo::DctcpRate;
            cfg.initial_rate_bps = 1_000_000_000;
            cfg.control_interval = SimTime::from_us(200);
            // Closed-loop macrobenchmarks keep up to one request per
            // connection outstanding; deep rings absorb them (the paper's
            // clients "wait in a closed loop" with up to 96k in flight).
            cfg.max_core_backlog = SimTime::from_ms(50);
            overrides.apply(&mut cfg);
            sim.add_agent(Box::new(TasHost::new(
                spec.ip,
                spec.mac,
                spec.nic,
                cfg,
                spec.uplink,
                app,
            )))
        }
        Kind::Linux | Kind::Ix | Kind::Mtcp | Kind::Mpk | Kind::Pno => {
            let total = cores.0 + cores.1;
            let (profile, mut cfg) = match kind {
                Kind::Linux => (profiles::linux(), StackHostConfig::linux(total)),
                Kind::Ix => (profiles::ix(), StackHostConfig::ix(total)),
                Kind::Mtcp => {
                    let stack = (total / 3).max(1).min(total.saturating_sub(1)).max(1);
                    (profiles::mtcp(), StackHostConfig::mtcp(total.max(2), stack))
                }
                Kind::Mpk => (profiles::mpk(), StackHostConfig::mpk(total)),
                Kind::Pno => {
                    // cores.0 maps to the on-NIC stack cores, cores.1 to
                    // host app cores (mirroring TAS's fastpath/app split).
                    let nic = cores.0.max(1);
                    let host = cores.1.max(1);
                    (profiles::pno(), StackHostConfig::pno(host, nic))
                }
                _ => unreachable!(),
            };
            cfg.tcp.recv_buf = bufs.rx;
            cfg.tcp.send_buf = bufs.tx;
            cfg.max_core_backlog = SimTime::from_ms(50);
            sim.add_agent(Box::new(StackHost::new(
                spec.ip,
                spec.mac,
                spec.nic,
                profile,
                cfg,
                spec.uplink,
                app,
            )))
        }
    }
}

/// An RPC-echo throughput scenario: one server, a bank of load-generator
/// clients, closed loop with one request in flight per connection.
#[derive(Clone, Debug)]
pub struct RpcScenario {
    /// Server stack.
    pub kind: Kind,
    /// Server cores (see [`make_server`]).
    pub cores: (usize, usize),
    /// Total client connections.
    pub conns: u32,
    /// Client machines to spread them over.
    pub client_hosts: usize,
    /// Request/response payload bytes.
    pub req_size: usize,
    /// Response size (defaults to `req_size` when `None` — echo).
    pub resp_size: Option<usize>,
    /// Per-request server app cycles.
    pub app_cycles: u64,
    /// Warmup before measurement.
    pub warmup: SimTime,
    /// Measurement window.
    pub measure: SimTime,
    /// Request template (None = echo filler).
    pub req_template: Option<Vec<u8>>,
    /// Buffers.
    pub bufs: Bufs,
    /// Which server application runs.
    pub server_app: ServerApp,
    /// Extra lock-contention cycles per op per extra app core (Table 7's
    /// non-scalable KV workload); 0 normally.
    pub kv_contention: u64,
    /// TAS ablation overrides (no effect on baseline kinds).
    pub tas_overrides: TasOverrides,
    /// RNG seed.
    pub seed: u64,
    /// Capture a cycle-attribution profile over the measurement window
    /// (profile builds only).
    #[cfg(feature = "profile")]
    pub profile: bool,
}

/// Server application selection for [`RpcScenario`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerApp {
    /// Byte echo.
    Echo,
    /// The key-value store with the paper's GET-heavy workload.
    Kv,
}

impl RpcScenario {
    /// A default echo scenario.
    pub fn echo(kind: Kind, cores: (usize, usize), conns: u32) -> RpcScenario {
        RpcScenario {
            kind,
            cores,
            conns,
            client_hosts: 6,
            req_size: 64,
            resp_size: None,
            app_cycles: 300,
            warmup: SimTime::from_ms(30),
            measure: SimTime::from_ms(20),
            req_template: None,
            bufs: Bufs::tiny(),
            server_app: ServerApp::Echo,
            kv_contention: 0,
            tas_overrides: TasOverrides::default(),
            seed: 42,
            #[cfg(feature = "profile")]
            profile: false,
        }
    }

    /// A key-value store scenario: GET requests via the load generators.
    pub fn kv(kind: Kind, cores: (usize, usize), conns: u32) -> RpcScenario {
        let mut template = vec![0u8; tas_apps::kv::REQ_HDR + tas_apps::kv::VAL_SIZE];
        template[0] = tas_apps::kv::OP_GET;
        template[1..5].copy_from_slice(&1u32.to_be_bytes());
        template[5..7].copy_from_slice(&(tas_apps::kv::VAL_SIZE as u16).to_be_bytes());
        RpcScenario {
            req_size: template.len(),
            resp_size: Some(tas_apps::kv::RESP_HDR + tas_apps::kv::VAL_SIZE),
            req_template: Some(template),
            server_app: ServerApp::Kv,
            bufs: Bufs::small(),
            ..RpcScenario::echo(kind, cores, conns)
        }
    }
}

/// Per-request cycle/instruction breakdown measured over a window
/// (Tables 1–2).
#[derive(Clone, Copy, Debug, Default)]
pub struct PerRequest {
    /// Cycles per module per request.
    pub cycles: [f64; MODULE_COUNT],
    /// Instructions per module per request.
    pub instr: [f64; MODULE_COUNT],
    /// Requests measured.
    pub requests: u64,
}

impl PerRequest {
    /// Total cycles per request.
    pub fn total_cycles(&self) -> f64 {
        self.cycles.iter().sum()
    }

    /// Total instructions per request.
    pub fn total_instr(&self) -> f64 {
        self.instr.iter().sum()
    }

    /// Stack cycles (everything but App).
    pub fn stack_cycles(&self) -> f64 {
        self.total_cycles() - self.cycles[Module::App as usize]
    }

    /// CPI over everything.
    pub fn cpi(&self) -> f64 {
        let i = self.total_instr();
        if i == 0.0 {
            0.0
        } else {
            self.total_cycles() / i
        }
    }
}

fn per_request(before: &CycleAccount, after: &CycleAccount, requests: u64) -> PerRequest {
    let mut out = PerRequest {
        requests,
        ..PerRequest::default()
    };
    if requests == 0 {
        return out;
    }
    for m in Module::ALL {
        let i = m as usize;
        out.cycles[i] = (after.cycles(m) - before.cycles(m)) as f64 / requests as f64;
        out.instr[i] = (after.instructions(m) - before.instructions(m)) as f64 / requests as f64;
    }
    out
}

/// Result of an RPC scenario run.
#[derive(Clone, Debug)]
pub struct RpcResult {
    /// Server-side completed messages per second (millions of ops/s).
    pub mops: f64,
    /// Client-observed RPC latency (ns histogram).
    pub latency: Histogram,
    /// Connections established.
    pub established: u64,
    /// Backlog drops at the server NIC.
    pub drops: u64,
    /// Per-request module breakdown over the measurement window.
    pub per_request: PerRequest,
    /// Busy cycles burned on *host-class* server cores over the window.
    /// For the off-path SmartNIC model this excludes the NIC cores that
    /// run the TCP stack; for every on-host stack it equals all server
    /// busy cycles, so `host_cycles / per_request.requests` is directly
    /// comparable across stacks (the paper's "host CPU per request").
    pub host_cycles: u64,
    /// Cycle-attribution capture (when [`RpcScenario::profile`] was set).
    #[cfg(feature = "profile")]
    pub profile: Option<ProfileCapture>,
}

/// A cycle-attribution profile of the server over the measurement window,
/// with the per-core busy-cycle deltas it must account for exactly.
#[cfg(feature = "profile")]
#[derive(Clone, Debug)]
pub struct ProfileCapture {
    /// The attribution tree collected between `t0` and the end of the
    /// measurement window.
    pub profile: tas_telemetry::profile::Profile,
    /// Requests the server completed inside the window.
    pub requests: u64,
    /// Packets (rx + tx segments) the server handled inside the window.
    pub packets: u64,
    /// Per-core busy-cycle deltas over the window, labelled like the
    /// profile's core labels (`fp0`, `sp0`, `app0`, … or `core0`, …).
    pub busy: Vec<(String, u64)>,
    /// Per-core utilization samples (1 ms cadence) inside the window.
    pub core_util: Vec<(String, Vec<f64>)>,
}

#[cfg(feature = "profile")]
impl ProfileCapture {
    /// Total busy cycles across cores over the window.
    pub fn busy_total(&self) -> u64 {
        self.busy.iter().map(|(_, c)| c).sum()
    }

    /// Cycles per request over the window.
    pub fn cycles_per_request(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.busy_total() as f64 / self.requests as f64
        }
    }

    /// Cycles per packet over the window.
    pub fn cycles_per_packet(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.busy_total() as f64 / self.packets as f64
        }
    }
}

/// Runs an RPC scenario and returns throughput/latency.
pub fn run_rpc(sc: &RpcScenario) -> RpcResult {
    let mut sim: Sim<NetMsg> = Sim::new(sc.seed);
    let server_ip = host_ip(0);
    let resp = sc.resp_size.unwrap_or(sc.req_size);
    let per_client = sc.conns / sc.client_hosts as u32;
    let remainder = sc.conns % sc.client_hosts as u32;
    let sc2 = sc.clone();
    let mut factory = move |sim: &mut Sim<NetMsg>, spec: HostSpec| -> AgentId {
        if spec.index == 0 {
            let app: Box<dyn App> = match sc2.server_app {
                ServerApp::Echo => Box::new(EchoServer::new(
                    7,
                    sc2.req_size,
                    ServerMode::Echo,
                    sc2.app_cycles,
                )),
                ServerApp::Kv => {
                    let mut kv = KvServer::new(7);
                    if sc2.kv_contention > 0 {
                        kv = kv.non_scalable(sc2.cores.1.max(1) as u32, sc2.kv_contention);
                    }
                    Box::new(kv)
                }
            };
            make_server_with(
                sim,
                spec,
                sc2.kind,
                sc2.cores,
                sc2.bufs,
                app,
                sc2.tas_overrides,
            )
        } else {
            let mut cfg = LoadGenConfig {
                server: server_ip,
                port: 7,
                conns: per_client + u32::from(spec.index <= remainder),
                req_size: sc2.req_size,
                resp_size: resp,
                connects_per_ms: 400,
                ..LoadGenConfig::default()
            };
            cfg.req_template = sc2.req_template.clone();
            sim.add_agent(Box::new(LoadGenHost::new(
                spec.ip,
                spec.mac,
                spec.nic,
                spec.uplink,
                cfg,
            )))
        }
    };
    let topo = build_star(
        &mut sim,
        1 + sc.client_hosts,
        |i| {
            if i == 0 {
                PortConfig::fortygig()
            } else {
                PortConfig::tengig()
            }
        },
        |i| {
            if i == 0 {
                NicConfig::server_40g(1)
            } else {
                NicConfig::client_10g(1)
            }
        },
        &mut factory,
    );
    for &h in &topo.hosts {
        sim.inject_timer(SimTime::ZERO, h, 0, 0); // INIT for all host types.
    }
    // Ramp-up: connections plus warmup.
    let ramp = SimTime::from_ms((sc.conns as u64 / 400).max(1) + 2);
    let t0 = ramp + sc.warmup;
    sim.run_until(t0);
    // Snapshot counters, gate latency recording.
    let (messages_t0, established) = server_messages(&sim, topo.hosts[0], sc.kind);
    let acct0 = server_account(&sim, topo.hosts[0], sc.kind);
    let host0 = server_host_cycles(&sim, topo.hosts[0], sc.kind);
    #[cfg(feature = "profile")]
    let prof_t0 = if sc.profile {
        match sc.kind {
            Kind::TasSockets | Kind::TasLowLevel => {
                sim.agent_mut::<TasHost>(topo.hosts[0]).enable_profiling();
            }
            _ => sim.agent_mut::<StackHost>(topo.hosts[0]).enable_profiling(),
        }
        tas_telemetry::profile::start();
        Some((
            server_busy(&sim, topo.hosts[0], sc.kind),
            server_packets(&sim, topo.hosts[0], sc.kind),
        ))
    } else {
        None
    };
    for &h in &topo.hosts[1..] {
        sim.agent_mut::<LoadGenHost>(h).measure_from = t0;
    }
    sim.run_until(t0 + sc.measure);
    let (messages_t1, _) = server_messages(&sim, topo.hosts[0], sc.kind);
    let acct1 = server_account(&sim, topo.hosts[0], sc.kind);
    #[cfg(feature = "profile")]
    let profile = if let Some((busy0, pkts0)) = prof_t0 {
        let tree = tas_telemetry::profile::take();
        tas_telemetry::profile::stop();
        let busy: Vec<(String, u64)> = server_busy(&sim, topo.hosts[0], sc.kind)
            .into_iter()
            .zip(busy0)
            .map(|((label, b1), (_, b0))| (label, b1 - b0))
            .collect();
        let packets = server_packets(&sim, topo.hosts[0], sc.kind) - pkts0;
        let core_util = match sc.kind {
            Kind::TasSockets | Kind::TasLowLevel => util_window(
                sim.agent::<TasHost>(topo.hosts[0]).fp_util_series(),
                "fp",
                t0,
            ),
            _ => util_window(
                sim.agent::<StackHost>(topo.hosts[0]).core_util_series(),
                "core",
                t0,
            ),
        };
        Some(ProfileCapture {
            profile: tree,
            requests: messages_t1 - messages_t0,
            packets,
            busy,
            core_util,
        })
    } else {
        None
    };
    let mut latency = Histogram::new();
    for &h in &topo.hosts[1..] {
        latency.merge(&sim.agent::<LoadGenHost>(h).latency);
    }
    let drops = match sc.kind {
        Kind::TasSockets | Kind::TasLowLevel => sim
            .agent::<TasHost>(topo.hosts[0])
            .registry()
            .counter_value("host.drop_backlog", tas_sim::Scope::Global),
        _ => sim
            .agent::<StackHost>(topo.hosts[0])
            .registry()
            .counter_value("host.drop_backlog", tas_sim::Scope::Global),
    };
    RpcResult {
        mops: (messages_t1 - messages_t0) as f64 / sc.measure.as_secs_f64() / 1e6,
        latency,
        established,
        drops,
        per_request: per_request(&acct0, &acct1, messages_t1 - messages_t0),
        host_cycles: server_host_cycles(&sim, topo.hosts[0], sc.kind) - host0,
        #[cfg(feature = "profile")]
        profile,
    }
}

/// Busy cycles the server has burned on host-class cores so far. TAS
/// hosts are all-host (fastpath + slowpath + app cores); `StackHost`
/// splits by [`CoreClass`], which only differs from the total for the
/// off-path SmartNIC thread model.
fn server_host_cycles(sim: &Sim<NetMsg>, server: AgentId, kind: Kind) -> u64 {
    match kind {
        Kind::TasSockets | Kind::TasLowLevel => {
            let h = sim.agent::<TasHost>(server);
            h.fp_busy_cycles().iter().sum::<u64>()
                + h.sp_busy_cycles()
                + h.app_busy_cycles().iter().sum::<u64>()
        }
        _ => sim
            .agent::<StackHost>(server)
            .busy_cycles_by_class(CoreClass::Host),
    }
}

/// Per-core busy-cycle totals of the server, labelled like the profiler's
/// core labels so captures can be checked for exact conservation.
#[cfg(feature = "profile")]
fn server_busy(sim: &Sim<NetMsg>, server: AgentId, kind: Kind) -> Vec<(String, u64)> {
    match kind {
        Kind::TasSockets | Kind::TasLowLevel => {
            let h = sim.agent::<TasHost>(server);
            let mut out: Vec<(String, u64)> = h
                .fp_busy_cycles()
                .iter()
                .enumerate()
                .map(|(i, &c)| (format!("fp{i}"), c))
                .collect();
            out.push(("sp0".to_string(), h.sp_busy_cycles()));
            out.extend(
                h.app_busy_cycles()
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| (format!("app{i}"), c)),
            );
            out
        }
        _ => sim
            .agent::<StackHost>(server)
            .busy_cycles()
            .iter()
            .enumerate()
            .map(|(i, &c)| (format!("core{i}"), c))
            .collect(),
    }
}

/// Packets the server handled so far (rx + tx segments).
#[cfg(feature = "profile")]
fn server_packets(sim: &Sim<NetMsg>, server: AgentId, kind: Kind) -> u64 {
    match kind {
        Kind::TasSockets | Kind::TasLowLevel => {
            let fp = sim.agent::<TasHost>(server).fp_stats();
            fp.pkts_rx + fp.segs_tx + fp.acks_tx
        }
        _ => {
            let t = sim.agent::<StackHost>(server).tcp_stats();
            t.segs_in + t.segs_out
        }
    }
}

/// Extracts per-core utilization samples at or after `from`.
#[cfg(feature = "profile")]
fn util_window(
    series: &tas_sim::CoreUtilSeries,
    prefix: &str,
    from: SimTime,
) -> Vec<(String, Vec<f64>)> {
    series
        .all()
        .iter()
        .enumerate()
        .map(|(i, ts)| {
            let vals = ts
                .samples()
                .iter()
                .filter(|&&(t, _)| t >= from)
                .map(|&(_, v)| v)
                .collect();
            (format!("{prefix}{i}"), vals)
        })
        .collect()
}

fn server_account(sim: &Sim<NetMsg>, server: AgentId, kind: Kind) -> CycleAccount {
    match kind {
        Kind::TasSockets | Kind::TasLowLevel => sim.agent::<TasHost>(server).account().clone(),
        _ => sim.agent::<StackHost>(server).account().clone(),
    }
}

fn server_messages(sim: &Sim<NetMsg>, server: AgentId, kind: Kind) -> (u64, u64) {
    match kind {
        Kind::TasSockets | Kind::TasLowLevel => {
            let h = sim.agent::<TasHost>(server);
            // Try both app types (echo and KV servers).
            let m = if let Some(e) = h.try_app::<EchoServer>() {
                e.messages
            } else if let Some(k) = h.try_app::<KvServer>() {
                k.gets + k.sets
            } else {
                0
            };
            (m, h.sp_stats().established)
        }
        _ => {
            let h = sim.agent::<StackHost>(server);
            let m = if let Some(e) = h.try_app::<EchoServer>() {
                e.messages
            } else if let Some(k) = h.try_app::<KvServer>() {
                k.gets + k.sets
            } else {
                0
            };
            (
                m,
                h.registry()
                    .counter_value("host.established", tas_sim::Scope::Global),
            )
        }
    }
}

/// Formats ops/s as the paper does (mOps).
pub fn fmt_mops(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a throughput in Gbit/s.
pub fn fmt_gbps(bits_per_sec: f64) -> String {
    format!("{:.2}", bits_per_sec / 1e9)
}
