//! Cycle-observatory harness: generates `BENCH_cpuprof.json` plus the
//! folded flamegraph export and gates them against the pinned
//! baselines.
//!
//! ```text
//! cpuprof            # generate + check
//! cpuprof generate   # write BENCH_cpuprof.json + BENCH_cpuprof.folded
//! cpuprof check      # compare BENCH_cpuprof.json against baselines/
//! cpuprof pin        # copy the current outputs into baselines/
//! cpuprof selftest   # prove the gate trips on 1.25x cycles/request
//! ```
//!
//! Both outputs are byte-deterministic: two fresh processes with the
//! same scale mode produce identical files (CI `cmp`s them). The folded
//! export feeds `flamegraph.pl` / speedscope directly:
//!
//! ```text
//! cargo run -p tas-bench --features profile --bin cpuprof -- generate
//! flamegraph.pl BENCH_cpuprof.folded > cycles.svg
//! ```
//!
//! `UPDATE_BASELINE=1 cpuprof` (or `pin`) re-pins the baselines.

use std::process::ExitCode;
use tas_bench::report::{self, compare, MetricData, Report};
use tas_bench::scenarios::cpuprof;

fn folded_out() -> std::path::PathBuf {
    report::repo_root().join("BENCH_cpuprof.folded")
}

fn generate() -> (Report, String) {
    eprintln!("cpuprof: profiling ...");
    let (r, folded) = cpuprof::report_and_folded();
    let path = r.write().expect("write report");
    let body = std::fs::read_to_string(&path).expect("read back");
    report::validate(&body).expect("generated report must be schema-valid");
    std::fs::write(folded_out(), &folded).expect("write folded export");
    println!("wrote {}", path.display());
    println!("wrote {}", folded_out().display());
    (r, folded)
}

fn load_current() -> Option<(Report, String)> {
    let body = std::fs::read_to_string(report::repo_root().join("BENCH_cpuprof.json")).ok()?;
    let r = Report::from_json(&body).ok()?;
    let folded = std::fs::read_to_string(folded_out()).unwrap_or_default();
    Some((r, folded))
}

fn check(current: &Report) -> ExitCode {
    let base_path = report::baselines_dir().join("BENCH_cpuprof.json");
    let Ok(body) = std::fs::read_to_string(&base_path) else {
        println!("cpuprof: no baseline at {}, skipping", base_path.display());
        return ExitCode::SUCCESS;
    };
    let base = match Report::from_json(&body) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cpuprof: bad baseline {}: {e}", base_path.display());
            return ExitCode::FAILURE;
        }
    };
    let regs = compare(current, &base);
    if regs.iter().any(|x| x.field == "scale") {
        println!(
            "cpuprof: scale mismatch (current {}, baseline {}), skipping",
            current.scale, base.scale
        );
        return ExitCode::SUCCESS;
    }
    if regs.is_empty() {
        println!("cpuprof: gate passed ({} metrics)", base.metrics.len());
        return ExitCode::SUCCESS;
    }
    eprintln!("REGRESSIONS ({}):", regs.len());
    for reg in &regs {
        eprintln!("  {reg}");
    }
    ExitCode::FAILURE
}

fn pin(r: &Report, folded: &str) -> ExitCode {
    let dir = report::baselines_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cpuprof: cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    std::fs::write(dir.join("BENCH_cpuprof.json"), r.to_json()).expect("pin json baseline");
    std::fs::write(dir.join("BENCH_cpuprof.folded"), folded).expect("pin folded baseline");
    println!("pinned {}", dir.join("BENCH_cpuprof.json").display());
    println!("pinned {}", dir.join("BENCH_cpuprof.folded").display());
    ExitCode::SUCCESS
}

/// Proves the regression gate actually gates: a fresh report compared
/// against itself passes, and the same report with cycles/request
/// inflated 1.25x (a CPU-efficiency regression no throughput metric
/// would catch) trips the comparator.
fn selftest() -> ExitCode {
    let r = cpuprof::report();
    if !compare(&r, &r).is_empty() {
        eprintln!("cpuprof selftest: self-compare must pass");
        return ExitCode::FAILURE;
    }
    let mut inflated = r.clone();
    for m in &mut inflated.metrics {
        if m.name.starts_with("cycles_per_req_") {
            if let MetricData::Value(v) = &mut m.data {
                *v *= 1.25;
            }
        }
    }
    let regs = compare(&inflated, &r);
    let tripped = regs
        .iter()
        .filter(|x| x.metric.starts_with("cycles_per_req_"))
        .count();
    if tripped == 0 {
        eprintln!("cpuprof selftest: injected 1.25x cycles/request NOT caught: {regs:?}");
        return ExitCode::FAILURE;
    }
    println!("cpuprof selftest: injected 1.25x cycles/request caught ({tripped} regressions)");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mode = std::env::args().nth(1).unwrap_or_default();
    let repin = std::env::var("UPDATE_BASELINE")
        .map(|v| v == "1")
        .unwrap_or(false);
    match mode.as_str() {
        "generate" => {
            let (r, folded) = generate();
            if repin {
                return pin(&r, &folded);
            }
            ExitCode::SUCCESS
        }
        "check" => match load_current() {
            Some((r, _)) => check(&r),
            None => {
                eprintln!("cpuprof: missing BENCH_cpuprof.json (run `cpuprof generate`)");
                ExitCode::FAILURE
            }
        },
        "pin" => {
            let (r, folded) = load_current().unwrap_or_else(generate);
            pin(&r, &folded)
        }
        "selftest" => selftest(),
        "" => {
            let (r, folded) = generate();
            if repin {
                return pin(&r, &folded);
            }
            check(&r)
        }
        other => {
            eprintln!("usage: cpuprof [generate|check|pin|selftest]  (got {other:?})");
            ExitCode::FAILURE
        }
    }
}
