//! Machine-readable bench report generator and regression gate.
//!
//! ```text
//! bench-report            # generate all gated reports, then check
//! bench-report generate   # run every gated scenario, write BENCH_*.json
//! bench-report check      # compare BENCH_*.json against baselines/
//! bench-report pin        # copy current BENCH_*.json into baselines/
//! ```
//!
//! `check` exits nonzero on any tolerance violation, which is what CI
//! gates on. `UPDATE_BASELINE=1 bench-report` (or `pin`) re-pins the
//! checked-in baselines from a fresh run. Reports compare only within
//! the same scale mode (`TAS_FULL=1` selects paper scale), so a quick CI
//! run never gates against a full-scale baseline.

use std::process::ExitCode;
use tas_bench::report::{self, compare, Report};
use tas_bench::scenarios;

fn generate() -> Vec<Report> {
    let mut out = Vec::new();
    for (name, build) in scenarios::gated_reports() {
        eprintln!("bench-report: running {name} ...");
        let r = build();
        let path = r.write().expect("write report");
        // Round-trip through the schema so a generator bug fails here,
        // not in CI's separate validation step.
        let body = std::fs::read_to_string(&path).expect("read back");
        report::validate(&body).expect("generated report must be schema-valid");
        println!("wrote {}", path.display());
        out.push(r);
    }
    out
}

fn load_current() -> Vec<Report> {
    let mut out = Vec::new();
    for (name, _) in scenarios::gated_reports() {
        let path = report::repo_root().join(format!("BENCH_{name}.json"));
        match std::fs::read_to_string(&path) {
            Ok(body) => match Report::from_json(&body) {
                Ok(r) => out.push(r),
                Err(e) => eprintln!("bench-report: {}: {e}", path.display()),
            },
            Err(_) => eprintln!(
                "bench-report: missing {} (run `bench-report generate`)",
                path.display()
            ),
        }
    }
    out
}

fn check(current: &[Report]) -> ExitCode {
    let dir = report::baselines_dir();
    let mut regressions = Vec::new();
    let mut compared = 0usize;
    for r in current {
        let base_path = dir.join(format!("BENCH_{}.json", r.fig));
        let Ok(body) = std::fs::read_to_string(&base_path) else {
            println!("{}: no baseline, skipping", r.fig);
            continue;
        };
        let base = match Report::from_json(&body) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("bench-report: bad baseline {}: {e}", base_path.display());
                return ExitCode::FAILURE;
            }
        };
        let regs = compare(r, &base);
        if regs.iter().any(|x| x.field == "scale") {
            println!(
                "{}: scale mismatch (current {}, baseline {}), skipping",
                r.fig, r.scale, base.scale
            );
            continue;
        }
        compared += 1;
        if regs.is_empty() {
            println!("{}: OK ({} metrics)", r.fig, base.metrics.len());
        }
        regressions.extend(regs);
    }
    if !regressions.is_empty() {
        eprintln!();
        eprintln!("REGRESSIONS ({}):", regressions.len());
        for reg in &regressions {
            eprintln!("  {reg}");
        }
        return ExitCode::FAILURE;
    }
    println!("bench-report: gate passed ({compared} reports compared)");
    ExitCode::SUCCESS
}

fn pin(current: &[Report]) -> ExitCode {
    let dir = report::baselines_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("bench-report: cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    for r in current {
        let path = dir.join(format!("BENCH_{}.json", r.fig));
        std::fs::write(&path, r.to_json()).expect("write baseline");
        println!("pinned {}", path.display());
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mode = std::env::args().nth(1).unwrap_or_default();
    let repin = std::env::var("UPDATE_BASELINE").map(|v| v == "1").unwrap_or(false);
    match mode.as_str() {
        "generate" => {
            let cur = generate();
            if repin {
                return pin(&cur);
            }
            ExitCode::SUCCESS
        }
        "check" => check(&load_current()),
        "pin" => {
            let cur = load_current();
            if cur.is_empty() {
                return pin(&generate());
            }
            pin(&cur)
        }
        "" => {
            let cur = generate();
            if repin {
                return pin(&cur);
            }
            check(&cur)
        }
        other => {
            eprintln!("usage: bench-report [generate|check|pin]  (got {other:?})");
            ExitCode::FAILURE
        }
    }
}
