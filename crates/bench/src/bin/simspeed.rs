//! Simulator hot-loop speed harness: `BENCH_simspeed.json`.
//!
//! Measures the two loops the terabit-scale sweeps live in:
//!
//! * **events/sec** — steady-state event-queue churn (pop + re-arm with a
//!   cancellation mix, the RTO-timer workload) on the hierarchical timing
//!   wheel, at 10k / 100k / 1M concurrent flows. The same workload runs
//!   on the retained [`HeapQueue`] (the pre-wheel engine) at the 100k
//!   point, and the wheel/heap ratio is gated at [`MIN_SPEEDUP`].
//! * **packets/sec** — the fast-path receive loop ([`FastPath::rx_segment`]
//!   through flow lookup, payload pooling, and ring commit) at the same
//!   flow counts.
//!
//! ```text
//! simspeed             # generate + check
//! simspeed generate    # run the workloads, write BENCH_simspeed.json
//! simspeed check       # gate current file against baselines/ + MIN_SPEEDUP
//! simspeed pin         # copy current BENCH_simspeed.json into baselines/
//! simspeed fingerprint # deterministic dispatch-order hashes (no clocks)
//! ```
//!
//! Wall-clock rates are *not* byte-deterministic, so this report is kept
//! out of `bench-report`'s rerun-identity sweep; the `fingerprint` mode
//! carries the determinism proof instead (two fresh processes must print
//! identical bytes). Rates gate against the pinned baseline with a wide
//! tolerance (shared CI runners jitter); the speedup ratio is measured
//! wheel-vs-heap inside one process, so it is machine-independent and
//! gated absolutely.

use std::net::Ipv4Addr;
use std::process::ExitCode;
use std::time::Instant;
use tas_bench::report::{self, compare, Metric, MetricData, Report};
use tas_bench::scaled;
use tas_cpusim::CycleAccount;
use tas_proto::{FlowKey, MacAddr, Segment, TcpFlags, TcpHeader};
use tas_shm::ByteRing;
use tas_sim::{EventId, EventQueue, HeapQueue, Rng, SimTime};
use tas::fastpath::FastPath;
use tas::flow::{
    FlowState, FpCongCtrl, FpConnMgmt, FpFlowCtrl, FpRecvRel, FpSendRel, RateBucket,
};
use tas::TasCosts;

/// Minimum wheel-over-heap events/sec ratio at the 100k-flow point.
const MIN_SPEEDUP: f64 = 3.0;

/// Relative tolerance for wall-clock rates vs the pinned baseline.
const RATE_TOL: f64 = 0.60;

const FLOW_POINTS: [(usize, &str); 3] = [(10_000, "10k"), (100_000, "100k"), (1_000_000, "1m")];

fn fnv(hash: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// The RTO-reset workload, the terabit-sim timer hot loop: a clock
/// advances one simulated packet arrival per op (aggregate packet rate
/// scales with the flow count, so every flow's timer is reset every
/// 10 ms regardless of scale), and each arrival re-arms that flow's
/// retransmission timer `g` reset-intervals out. Timers therefore almost
/// never fire live — the queue's job is absorbing constant re-arms.
///
/// With `USE_CANCEL = true` (the wheel engine) the superseded timer is
/// cancelled and reclaimed. With `USE_CANCEL = false` this reproduces the
/// pre-PR heap engine: no cancellation existed, so every reset leaves a
/// ghost entry that the queue must still pop at its deadline and the
/// caller must discard by generation check — the queue carries ~`g`
/// ghosts per live timer at steady state.
///
/// Returns (live-fire dispatch hash, best sustained ops/sec). The hash
/// covers only live (non-ghost) fires, so both engines must produce
/// identical bytes — ghost handling is invisible to the simulation by
/// construction, and the fingerprint proves it. The rate is the fastest
/// of 8 equal chunks of the measured ops: a scheduler burst on a shared
/// runner poisons at most a chunk or two, and the minimum-time chunk
/// reflects the engine's actual speed.
/// Per-flow timer record: cancel handle plus the generation token that
/// identifies ghosts. Padded to a 16-byte cell so a record never spans
/// two cache lines.
#[repr(align(16))]
#[derive(Clone, Copy)]
struct FlowTimer {
    id: EventId,
    token: u32,
}

macro_rules! churn_impl {
    ($name:ident, $queue:ty, $use_cancel:expr) => {
        fn $name(flows: usize, ops: u64, g: u64) -> (u64, f64) {
            const CHUNKS: u64 = 8;
            let chunk_ops = (ops / CHUNKS).max(1);
            let measured = chunk_ops * CHUNKS;
            // One full reset sweep per flow every 10 ms of simulated time.
            let step_ps = (10_000_000_000u64 / flows as u64).max(1);
            let rto_ps = g * 10_000_000_000;
            let warmup = (g + 1) * flows as u64;
            let mut q: $queue = <$queue>::new();
            let mut rng = Rng::new(0x5157_5545_5545 ^ flows as u64);
            // Per-flow timer state (handle + generation token), kept in one
            // record per flow the way FlowState keeps it — one cache line
            // per flow touch, for both engines alike. 16-byte alignment
            // keeps a record from straddling two lines.
            let mut timers: Vec<FlowTimer> = Vec::with_capacity(flows);
            for f in 0..flows as u64 {
                timers.push(FlowTimer {
                    id: q.push(SimTime::from_ps(1 + f * step_ps + rto_ps), f),
                    token: 0,
                });
            }
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            let mut now = flows as u64 * step_ps;
            let mut resets = 0u64;
            let mut best_secs = f64::INFINITY;
            let mut chunk_t0 = Instant::now();
            let mut f_next = rng.below(flows as u64) as usize;
            while resets < warmup + measured {
                if resets >= warmup && (resets - warmup) % chunk_ops == 0 {
                    let t = Instant::now();
                    if resets > warmup {
                        best_secs = best_secs.min((t - chunk_t0).as_secs_f64());
                    }
                    chunk_t0 = t;
                }
                resets += 1;
                now += step_ps;
                // Arrivals are polled in bursts (the paper's fast path runs
                // DPDK-style), so the next packet's flow is known while the
                // current one is processed: touch its timer record now so
                // the fetch overlaps this op — for both engines alike.
                let f = f_next;
                f_next = rng.below(flows as u64) as usize;
                std::hint::black_box(timers[f_next].token);
                // Dispatch everything due; ghosts (stale tokens) are
                // discarded exactly as the pre-PR engine's handlers did.
                while q.peek_time().is_some_and(|pt| pt.as_ps() <= now) {
                    let Some((te, v)) = q.pop() else { break };
                    let (f, tok) = ((v & 0xffff_ffff) as usize, (v >> 32) as u32);
                    if tok != timers[f].token {
                        continue; // Ghost of a superseded timer.
                    }
                    // Live RTO expiry: hash it and back off.
                    fnv(&mut hash, te.as_ps());
                    fnv(&mut hash, v);
                    let tok = timers[f].token.wrapping_add(1);
                    timers[f].token = tok;
                    let nv = f as u64 | ((tok as u64) << 32);
                    timers[f].id = q.push(te + SimTime::from_ps(rto_ps), nv);
                }
                // The packet arrived for flow `f`: reset its timer.
                let tok = timers[f].token.wrapping_add(1);
                timers[f].token = tok;
                if $use_cancel {
                    q.cancel(timers[f].id);
                }
                let nv = f as u64 | ((tok as u64) << 32);
                timers[f].id = q.push(SimTime::from_ps(now + rto_ps), nv);
            }
            best_secs = best_secs.min(chunk_t0.elapsed().as_secs_f64());
            (hash, chunk_ops as f64 / best_secs.max(1e-9))
        }
    };
}

churn_impl!(churn_wheel, EventQueue<u64>, true);
churn_impl!(churn_heap, HeapQueue<u64>, false);

/// Reset-intervals of RTO for the timed runs (ghost depth on the heap).
/// Real stacks re-arm the RTO on every ACK, so an RTO period spans
/// hundreds of resets; 30 is a conservative stand-in that keeps the heap
/// variant's warmup and ghost memory bounded.
const TIMING_G: u64 = 30;

/// Timed trials per engine at the gated 100k point; the best rate of each
/// engine is used, which washes out shared-runner scheduler jitter.
const TRIALS: usize = 3;

/// Shorter RTO for fingerprints so live expiries are frequent enough to
/// exercise the dispatch path in a bounded run.
const FP_G: u64 = 3;

fn flow_key(i: usize) -> FlowKey {
    FlowKey::new(
        Ipv4Addr::new(10, 0, 0, 1),
        80,
        Ipv4Addr::new(10, (i >> 16) as u8, (i >> 8) as u8, i as u8),
        7777,
    )
}

fn install(fp: &mut FastPath, i: usize) -> u32 {
    fp.install_flow(FlowState {
        conn: FpConnMgmt::new(i as u64, 0, flow_key(i), MacAddr::for_host(2), 0),
        snd: FpSendRel::new(ByteRing::new(16), 100),
        rcv: FpRecvRel::new(ByteRing::new(4096), 1_000),
        fc: FpFlowCtrl::new(65_535, 0),
        cc: FpCongCtrl::new(RateBucket::unlimited()),
    })
}

const PAYLOAD: usize = 512;

/// Fast-path receive loop: in-order data segments round-robin over
/// `flows` installed connections, each iteration covering 4-tuple lookup,
/// pooled payload construction, ring commit, and the app-side drain.
/// Returns (rx-byte-count hash, elapsed seconds, packets processed).
fn packet_churn(flows: usize, ops: u64) -> (u64, f64, u64) {
    let mut fp = FastPath::new(
        Ipv4Addr::new(10, 0, 0, 1),
        MacAddr::for_host(1),
        1448,
        TasCosts::default(),
    );
    let fids: Vec<u32> = (0..flows).map(|i| install(&mut fp, i)).collect();
    let mut offs = vec![0u64; flows];
    let mut acct = CycleAccount::new();
    let data = [0xa5u8; PAYLOAD];
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut done = 0u64;
    let start = Instant::now();
    for op in 0..ops {
        let i = (op as usize) % flows;
        let key = flow_key(i);
        let seq = 1_001u32.wrapping_add(offs[i] as u32);
        let mut h = TcpHeader::new(7777, 80, seq, 101, TcpFlags::ACK | TcpFlags::PSH);
        h.window = 60_000;
        h.options.timestamp = Some((op as u32, 0));
        let seg = Segment::tcp(
            MacAddr::for_host(2),
            MacAddr::for_host(1),
            key.remote_ip,
            key.local_ip,
            h,
            &data[..],
            true,
        );
        fp.rx_segment(SimTime::from_us(op + 1), seg, &mut acct);
        offs[i] += PAYLOAD as u64;
        done += 1;
        fp.out.packets.clear();
        fp.out.notices.clear();
        fp.out.exceptions.clear();
        fp.out.tx_timers.clear();
        // The application reads everything committed so far, keeping the
        // ring in steady state (non-allocating consume, not `pop`).
        let Some(flow) = fp.flows.get_mut(fids[i]) else {
            continue;
        };
        let n = flow.rcv.rx.len() as u64;
        fnv(&mut hash, n);
        let _ = flow.rcv.rx.consume(n);
    }
    (hash, start.elapsed().as_secs_f64().max(1e-9), done)
}

fn event_ops() -> u64 {
    scaled(1_000_000, 8_000_000)
}

fn packet_ops() -> u64 {
    scaled(300_000, 2_000_000)
}

fn generate() -> Result<Report, String> {
    let mut r = Report::new("simspeed", "Simulator hot-loop throughput", 0);
    r.param("event_ops", event_ops())
        .param("packet_ops", packet_ops())
        .param("payload", PAYLOAD);
    let mut heap_rate_100k: f64 = 0.0;
    let mut wheel_rate_100k: f64 = 0.0;
    for (flows, tag) in FLOW_POINTS {
        eprintln!("simspeed: event churn, {flows} flows ...");
        let (_, mut rate) = churn_wheel(flows, event_ops(), TIMING_G);
        if flows == 100_000 {
            // The gated point: interleave repeated trials of both engines
            // and keep each one's best, so the in-process ratio reflects
            // engine speed rather than whichever trial a noisy neighbour
            // landed on.
            wheel_rate_100k = rate;
            for t in 0..TRIALS {
                eprintln!("simspeed: event churn (pre-PR heap engine), {flows} flows, trial {t} ...");
                let (_, hrate) = churn_heap(flows, event_ops(), TIMING_G);
                heap_rate_100k = heap_rate_100k.max(hrate);
                if t + 1 < TRIALS {
                    eprintln!("simspeed: event churn, {flows} flows, trial {} ...", t + 1);
                    let (_, wrate) = churn_wheel(flows, event_ops(), TIMING_G);
                    wheel_rate_100k = wheel_rate_100k.max(wrate);
                }
            }
            rate = wheel_rate_100k;
        }
        r.push(Metric::value(&format!("events_{tag}"), "ops", rate).with_tol(RATE_TOL));
    }
    r.push(Metric::value("events_heap_100k", "count", heap_rate_100k));
    let speedup = wheel_rate_100k / heap_rate_100k.max(1e-9);
    r.push(Metric::value("speedup_100k", "x", speedup));
    for (flows, tag) in FLOW_POINTS {
        eprintln!("simspeed: fastpath rx churn, {flows} flows ...");
        let (_, secs, done) = packet_churn(flows, packet_ops());
        r.push(Metric::value(&format!("packets_{tag}"), "ops", done as f64 / secs)
            .with_tol(RATE_TOL));
    }
    eprintln!(
        "simspeed: 100k-flow events/sec: heap {heap_rate_100k:.0} -> wheel {wheel_rate_100k:.0} \
         ({speedup:.2}x)"
    );
    let path = r.write().map_err(|e| format!("write report: {e}"))?;
    let body = std::fs::read_to_string(&path).map_err(|e| format!("read back: {e}"))?;
    report::validate(&body)?;
    println!("wrote {}", path.display());
    Ok(r)
}

fn speedup_of(r: &Report) -> Option<f64> {
    r.metrics.iter().find(|m| m.name == "speedup_100k").and_then(|m| match m.data {
        MetricData::Value(v) => Some(v),
        _ => None,
    })
}

fn check(r: &Report) -> ExitCode {
    // Absolute gate: the wheel must beat the heap engine by MIN_SPEEDUP
    // on the same machine, same run.
    match speedup_of(r) {
        Some(s) if s >= MIN_SPEEDUP => {
            println!("simspeed: speedup_100k {s:.2}x >= {MIN_SPEEDUP}x");
        }
        Some(s) => {
            eprintln!("simspeed: speedup_100k {s:.2}x below required {MIN_SPEEDUP}x");
            return ExitCode::FAILURE;
        }
        None => {
            eprintln!("simspeed: report has no speedup_100k metric");
            return ExitCode::FAILURE;
        }
    }
    // Relative gate: rates vs the pinned baseline, wide tolerance.
    let base_path = report::baselines_dir().join("BENCH_simspeed.json");
    let Ok(body) = std::fs::read_to_string(&base_path) else {
        println!("simspeed: no baseline at {}, skipping", base_path.display());
        return ExitCode::SUCCESS;
    };
    let base = match Report::from_json(&body) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("simspeed: bad baseline: {e}");
            return ExitCode::FAILURE;
        }
    };
    let regs = compare(r, &base);
    if regs.iter().any(|x| x.field == "scale") {
        println!(
            "simspeed: scale mismatch (current {}, baseline {}), skipping",
            r.scale, base.scale
        );
        return ExitCode::SUCCESS;
    }
    if regs.is_empty() {
        println!("simspeed: gate passed ({} metrics)", base.metrics.len());
        return ExitCode::SUCCESS;
    }
    eprintln!("REGRESSIONS ({}):", regs.len());
    for reg in &regs {
        eprintln!("  {reg}");
    }
    ExitCode::FAILURE
}

fn load_current() -> Result<Report, String> {
    let path = report::repo_root().join("BENCH_simspeed.json");
    let body = std::fs::read_to_string(&path)
        .map_err(|_| format!("missing {} (run `simspeed generate`)", path.display()))?;
    Report::from_json(&body)
}

fn pin(r: &Report) -> ExitCode {
    let dir = report::baselines_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("simspeed: cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    let path = dir.join("BENCH_simspeed.json");
    match std::fs::write(&path, r.to_json()) {
        Ok(()) => {
            println!("pinned {}", path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("simspeed: write {}: {e}", path.display());
            ExitCode::FAILURE
        }
    }
}

/// Deterministic dispatch-order hashes: no wall clock anywhere in the
/// output, so two fresh processes must print identical bytes. Fixed op
/// counts (independent of quick/full scale) keep the output stable
/// across CI configurations.
fn fingerprint() -> ExitCode {
    for (flows, tag) in [(1_000, "1k"), (10_000, "10k"), (100_000, "100k")] {
        let (wheel, _) = churn_wheel(flows, 200_000, FP_G);
        let (heap, _) = churn_heap(flows, 200_000, FP_G);
        println!("events_{tag}: wheel {wheel:016x} heap {heap:016x}");
        if wheel != heap {
            eprintln!("simspeed: wheel and heap dispatch orders diverged at {flows} flows");
            return ExitCode::FAILURE;
        }
    }
    for (flows, tag) in [(10_000, "10k"), (100_000, "100k")] {
        let (h, _, done) = packet_churn(flows, 100_000);
        println!("packets_{tag}: {h:016x} ({done} pkts)");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mode = std::env::args().nth(1).unwrap_or_default();
    match mode.as_str() {
        "generate" => match generate() {
            Ok(_) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("simspeed: {e}");
                ExitCode::FAILURE
            }
        },
        "check" => match load_current() {
            Ok(r) => check(&r),
            Err(e) => {
                eprintln!("simspeed: {e}");
                ExitCode::FAILURE
            }
        },
        "pin" => match load_current() {
            Ok(r) => pin(&r),
            Err(e) => {
                eprintln!("simspeed: {e}");
                ExitCode::FAILURE
            }
        },
        "fingerprint" => fingerprint(),
        "" => match generate() {
            Ok(r) => check(&r),
            Err(e) => {
                eprintln!("simspeed: {e}");
                ExitCode::FAILURE
            }
        },
        other => {
            eprintln!("usage: simspeed [generate|check|pin|fingerprint]  (got {other:?})");
            ExitCode::FAILURE
        }
    }
}
