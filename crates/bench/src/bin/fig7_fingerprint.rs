//! Cross-process determinism fingerprint for the fig7 loss-recovery
//! scenario, covering both the TAS stack and the Linux baseline stack.
//!
//! ```text
//! fig7-fingerprint            # print one line per (stack, loss, seed)
//! ```
//!
//! Each line carries the receiver goodput both as the exact f64 bit
//! pattern and as a human-readable Gbps figure. CI runs the binary
//! twice in fresh processes and diffs the output: any hash-seed,
//! iteration-order, or ambient-state leak anywhere in the simulation —
//! slowpath retry batching, switch fan-out, fault-injector draws —
//! shows up as a bit-level difference.

use tas_bench::scenarios::fig7::{goodput, Stack};

fn main() {
    let runs = [
        ("linux", Stack::Linux),
        ("tas", Stack::Tas { ooo: true }),
        ("tas_simple", Stack::Tas { ooo: false }),
    ];
    println!("fig7-fingerprint v1");
    for (name, stack) in runs {
        for (loss, seed) in [(0.0, 100u64), (0.01, 101)] {
            let g = goodput(stack, loss, seed);
            println!(
                "{name} loss={loss:.2} seed={seed} goodput_bits={:#018x} gbps={:.6}",
                g.to_bits(),
                g / 1e9
            );
        }
    }
}
