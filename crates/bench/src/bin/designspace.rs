//! Design-space harness: generates `BENCH_designspace.json` (five stack
//! architectures vs TAS: Fig. 9-shape latency, Table 1-shape
//! cycles/request with the host-core share, and the WRPKRU / PCIe
//! boundary-cost sweeps) and gates it against the pinned baseline.
//!
//! ```text
//! designspace            # generate + orderings + check
//! designspace generate   # write BENCH_designspace.json
//! designspace check      # compare BENCH_designspace.json against baselines/
//! designspace pin        # copy the current output into baselines/
//! designspace selftest   # prove the gate trips on inflated boundary costs
//! ```
//!
//! The output is byte-deterministic: two fresh processes with the same
//! scale mode produce identical files (CI `cmp`s them).
//! `UPDATE_BASELINE=1 designspace` (or `pin`) re-pins the baseline.

use std::process::ExitCode;
use tas_bench::report::{self, compare, Metric, MetricData, Report};
use tas_bench::scenarios::designspace;

fn generate() -> Report {
    eprintln!("designspace: running the head-to-head ...");
    let r = designspace::report();
    let path = r.write().expect("write report");
    let body = std::fs::read_to_string(&path).expect("read back");
    report::validate(&body).expect("generated report must be schema-valid");
    println!("wrote {}", path.display());
    r
}

fn load_current() -> Option<Report> {
    let body = std::fs::read_to_string(report::repo_root().join("BENCH_designspace.json")).ok()?;
    Report::from_json(&body).ok()
}

fn metric<'a>(r: &'a Report, name: &str) -> Option<&'a Metric> {
    r.metrics.iter().find(|m| m.name == name)
}

fn p99(r: &Report, name: &str) -> u64 {
    match metric(r, name).map(|m| &m.data) {
        Some(MetricData::Quantiles(q)) => q.p99,
        _ => 0,
    }
}

fn p50(r: &Report, name: &str) -> u64 {
    match metric(r, name).map(|m| &m.data) {
        Some(MetricData::Quantiles(q)) => q.p50,
        _ => 0,
    }
}

fn component(r: &Report, name: &str, comp: &str) -> f64 {
    metric(r, name)
        .and_then(|m| m.breakdown.iter().find(|(n, _)| n == comp))
        .map(|&(_, v)| v)
        .unwrap_or(0.0)
}

/// The paper-shaped invariants the head-to-head must reproduce:
/// protection cost orders Linux > MPK dataplane > TAS at the tail, the
/// off-path stack pays PCIe latency TAS does not, and in exchange its
/// host-CPU cycles/request undercut Linux by a wide margin.
fn orderings(r: &Report) -> ExitCode {
    let checks: [(&str, bool); 4] = [
        (
            "p99 latency: linux > mpk",
            p99(r, "lat_linux") > p99(r, "lat_mpk"),
        ),
        (
            "p99 latency: mpk > tas",
            p99(r, "lat_mpk") > p99(r, "lat_tas"),
        ),
        (
            "median latency: pno > tas (PCIe boundary)",
            p50(r, "lat_pno") > p50(r, "lat_tas"),
        ),
        (
            "host cycles/req: pno < linux / 2",
            component(r, "cycles_pno", "host_per_req")
                < component(r, "cycles_linux", "host_per_req") / 2.0,
        ),
    ];
    let mut ok = true;
    for (what, pass) in checks {
        println!(
            "designspace ordering: {what}: {}",
            if pass { "ok" } else { "VIOLATED" }
        );
        ok &= pass;
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn check(current: &Report) -> ExitCode {
    let base_path = report::baselines_dir().join("BENCH_designspace.json");
    let Ok(body) = std::fs::read_to_string(&base_path) else {
        println!("designspace: no baseline at {}, skipping", base_path.display());
        return ExitCode::SUCCESS;
    };
    let base = match Report::from_json(&body) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("designspace: bad baseline {}: {e}", base_path.display());
            return ExitCode::FAILURE;
        }
    };
    let regs = compare(current, &base);
    if regs.iter().any(|x| x.field == "scale") {
        println!(
            "designspace: scale mismatch (current {}, baseline {}), skipping",
            current.scale, base.scale
        );
        return ExitCode::SUCCESS;
    }
    if regs.is_empty() {
        println!("designspace: gate passed ({} metrics)", base.metrics.len());
        return ExitCode::SUCCESS;
    }
    eprintln!("REGRESSIONS ({}):", regs.len());
    for reg in &regs {
        eprintln!("  {reg}");
    }
    ExitCode::FAILURE
}

fn pin(r: &Report) -> ExitCode {
    let dir = report::baselines_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("designspace: cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    std::fs::write(dir.join("BENCH_designspace.json"), r.to_json()).expect("pin baseline");
    println!("pinned {}", dir.join("BENCH_designspace.json").display());
    ExitCode::SUCCESS
}

/// Proves the gate actually gates: a fresh report compared against
/// itself passes, and the same report with every boundary-cost sweep
/// latency inflated 1.30x (the regression an MPK/PCIe model bug would
/// produce) trips the comparator.
fn selftest() -> ExitCode {
    let r = designspace::report();
    if !compare(&r, &r).is_empty() {
        eprintln!("designspace selftest: self-compare must pass");
        return ExitCode::FAILURE;
    }
    let mut inflated = r.clone();
    for m in &mut inflated.metrics {
        if m.name.starts_with("mpk_xcost_") || m.name.starts_with("pno_pcie_") {
            if let MetricData::Value(v) = &mut m.data {
                *v *= 1.30;
            }
        }
    }
    let regs = compare(&inflated, &r);
    let tripped = regs
        .iter()
        .filter(|x| x.metric.starts_with("mpk_xcost_") || x.metric.starts_with("pno_pcie_"))
        .count();
    if tripped == 0 {
        eprintln!("designspace selftest: injected 1.30x boundary-cost latency NOT caught: {regs:?}");
        return ExitCode::FAILURE;
    }
    println!(
        "designspace selftest: injected 1.30x boundary-cost latency caught ({tripped} regressions)"
    );
    if orderings(&r) != ExitCode::SUCCESS {
        eprintln!("designspace selftest: orderings must hold on a fresh report");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mode = std::env::args().nth(1).unwrap_or_default();
    let repin = std::env::var("UPDATE_BASELINE")
        .map(|v| v == "1")
        .unwrap_or(false);
    match mode.as_str() {
        "generate" => {
            let r = generate();
            if repin {
                return pin(&r);
            }
            ExitCode::SUCCESS
        }
        "check" => match load_current() {
            Some(r) => check(&r),
            None => {
                eprintln!("designspace: missing BENCH_designspace.json (run `designspace generate`)");
                ExitCode::FAILURE
            }
        },
        "pin" => {
            let r = load_current().unwrap_or_else(generate);
            pin(&r)
        }
        "selftest" => selftest(),
        "" => {
            let r = generate();
            if repin {
                return pin(&r);
            }
            if orderings(&r) != ExitCode::SUCCESS {
                return ExitCode::FAILURE;
            }
            check(&r)
        }
        other => {
            eprintln!("usage: designspace [generate|check|pin|selftest]  (got {other:?})");
            ExitCode::FAILURE
        }
    }
}
