//! `scenario-suite` — runs the multi-tenant "datacenter day" suite on
//! both stacks, prints one verdict line per scenario × stack × victim,
//! writes `BENCH_scenarios.json`, and exits non-zero if any isolation
//! bound is violated. This is the CI isolation gate.

use std::process::ExitCode;

fn main() -> ExitCode {
    println!("=== Multi-tenant datacenter day: per-tenant isolation suite ===");
    println!(
        "{} scenarios x {} stacks; victim bounds are per-scenario, per-stack-family",
        tas_bench::scenario::suite().len(),
        tas_bench::scenario::stacks().len(),
    );
    println!();
    let outcome = tas_bench::scenario::run_suite();
    for v in &outcome.verdicts {
        println!("{}", v.render());
    }
    let failed = outcome.verdicts.iter().filter(|v| !v.pass).count();
    println!();
    println!(
        "isolation: {}/{} checks passed",
        outcome.verdicts.len() - failed,
        outcome.verdicts.len()
    );
    match outcome.report.write() {
        Ok(path) => println!("report: {}", path.display()),
        Err(e) => {
            eprintln!("error: failed to write report: {e}");
            return ExitCode::FAILURE;
        }
    }
    if failed > 0 {
        eprintln!("error: {failed} isolation verdict(s) failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
