//! The canonical "datacenter day" scenarios.
//!
//! Every scenario pairs one well-behaved open-loop KV victim with a
//! different class of trouble. The victim is identical across scenarios
//! (same shape, rate, and host count) so the per-scenario bounds are
//! comparable: what changes is only who else is on the server.

use super::{Flash, IsolationBounds, Role, ScenarioSpec, Tenant, TrafficShape, WanProfile};
use tas_sim::SimTime;

/// The standard victim: one host of open-loop zipf KV load at a rate the
/// server serves easily when alone.
fn victim() -> Tenant {
    Tenant::new(
        "victim",
        Role::Victim,
        TrafficShape::KvOpen {
            per_sec: 40_000,
            conns: 16,
        },
        1,
    )
}

/// Connection-churn storm: aggressor connections live for a handful of
/// requests and are immediately re-established, hammering the slow
/// path's handshake machinery while the victim's established flows keep
/// running on the fast path.
pub fn churn_storm() -> ScenarioSpec {
    ScenarioSpec::new(
        "churn",
        "Connection-churn storm beside a steady tenant",
        9001,
    )
    .tenant(victim())
    .tenant(Tenant::new(
        "churner",
        Role::Aggressor,
        TrafficShape::KvChurn {
            conns: 16,
            msgs_per_conn: 4,
        },
        2,
    ))
    .bounds(
        IsolationBounds {
            p99_ratio_max: 3.0,
            goodput_frac_min: 0.7,
        },
        IsolationBounds {
            p99_ratio_max: 10.0,
            goodput_frac_min: 0.4,
        },
    )
}

/// Request incast with ECN: the fig13 sender count re-aimed at the KV
/// port — four closed-loop senders arrive together mid-window and incast
/// the server behind a lowered ECN marking threshold. The victim
/// legitimately loses some fair share; the bound says how much.
pub fn incast_ecn() -> ScenarioSpec {
    let mut s = ScenarioSpec::new(
        "incast",
        "N-sender request incast with ECN marking",
        crate::scenarios::fig13::TAS_SEED,
    )
    .tenant(victim())
    .tenant(
        Tenant::new(
            "incaster",
            Role::Aggressor,
            TrafficShape::KvClosed { conns: 32 },
            crate::scenarios::fig13::SENDERS,
        )
        .starting_at(SimTime::from_ms(5)),
    )
    .bounds(
        IsolationBounds {
            p99_ratio_max: 6.0,
            goodput_frac_min: 0.5,
        },
        IsolationBounds {
            p99_ratio_max: 20.0,
            goodput_frac_min: 0.25,
        },
    );
    s.ecn_threshold_pkts = Some(32);
    s
}

/// WAN-tenant coexistence: a tenant behind a bursty Gilbert–Elliott
/// loss process (2 ms, jittery) shares the server with the LAN victim.
/// Its retransmission storms and long-RTT flows must not bleed into the
/// victim's tail.
pub fn wan_loss() -> ScenarioSpec {
    ScenarioSpec::new(
        "wan",
        "Bursty-loss WAN tenant beside a LAN tenant",
        9003,
    )
    .tenant(victim())
    .tenant(
        Tenant::new(
            "wan_tenant",
            Role::Aggressor,
            TrafficShape::KvClosed { conns: 8 },
            2,
        )
        .over_wan(WanProfile::lossy_wan()),
    )
    .bounds(
        IsolationBounds {
            p99_ratio_max: 2.5,
            goodput_frac_min: 0.8,
        },
        IsolationBounds {
            p99_ratio_max: 6.0,
            goodput_frac_min: 0.5,
        },
    )
}

/// Zipf flash crowd: a second open-loop tenant surges to 10x its rate
/// for a third of the window (think: a key goes viral), then subsides.
pub fn flash_crowd() -> ScenarioSpec {
    let warm = SimTime::from_ms(10);
    ScenarioSpec::new("flash", "Zipf KV tenant with a mid-run flash crowd", 9004)
        .tenant(victim())
        .tenant(
            Tenant::new(
                "crowd",
                Role::Aggressor,
                TrafficShape::KvOpen {
                    per_sec: 20_000,
                    conns: 16,
                },
                1,
            )
            .with_flash(Flash {
                at: warm + SimTime::from_ms(8),
                until: warm + SimTime::from_ms(18),
                rate_mult: 10,
            }),
        )
        .bounds(
            IsolationBounds {
                p99_ratio_max: 4.0,
                goodput_frac_min: 0.6,
            },
            IsolationBounds {
                p99_ratio_max: 12.0,
                goodput_frac_min: 0.35,
            },
        )
}

/// Slow-reader adversary: pins rx byte-rings full with unread
/// responses. Per-flow state means the damage should stay on the
/// adversary's own flows — the tightest bounds in the suite.
pub fn slow_reader() -> ScenarioSpec {
    ScenarioSpec::new("slowread", "Slow-reader adversary pinning rx rings", 9005)
        .tenant(victim())
        .tenant(Tenant::new(
            "slowreader",
            Role::Aggressor,
            TrafficShape::SlowRead {
                conns: 8,
                burst: 64,
            },
            1,
        ))
        .bounds(
            IsolationBounds {
                p99_ratio_max: 2.0,
                goodput_frac_min: 0.85,
            },
            IsolationBounds {
                p99_ratio_max: 4.0,
                goodput_frac_min: 0.6,
            },
        )
}

/// ACK-division adversary: sub-MSS ACK slivers multiply per-ACK
/// fast-path work per useful byte.
pub fn ack_division() -> ScenarioSpec {
    ScenarioSpec::new("ackdiv", "ACK-division adversary", 9006)
        .tenant(victim())
        .tenant(Tenant::new(
            "ackdivider",
            Role::Aggressor,
            TrafficShape::AckDivision { conns: 4, chunk: 16 },
            1,
        ))
        .bounds(
            IsolationBounds {
                p99_ratio_max: 2.5,
                goodput_frac_min: 0.8,
            },
            IsolationBounds {
                p99_ratio_max: 5.0,
                goodput_frac_min: 0.5,
            },
        )
}

/// Window-stuffing adversary: a hostile advertised-window cycle forces
/// the server into many tiny segments per response.
pub fn window_stuff() -> ScenarioSpec {
    ScenarioSpec::new("winstuff", "Receive-window stuffing adversary", 9007)
        .tenant(victim())
        .tenant(Tenant::new(
            "stuffer",
            Role::Aggressor,
            TrafficShape::WindowStuff {
                conns: 4,
                pattern: vec![64, 16, 1448],
            },
            1,
        ))
        .bounds(
            IsolationBounds {
                p99_ratio_max: 2.5,
                goodput_frac_min: 0.8,
            },
            IsolationBounds {
                p99_ratio_max: 5.0,
                goodput_frac_min: 0.5,
            },
        )
}

/// Every scenario, in suite order.
pub fn all() -> Vec<ScenarioSpec> {
    vec![
        churn_storm(),
        incast_ecn(),
        wan_loss(),
        flash_crowd(),
        slow_reader(),
        ack_division(),
        window_stuff(),
    ]
}
