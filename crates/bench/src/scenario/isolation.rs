//! The per-tenant isolation assertion layer.
//!
//! Isolation is defined differentially: every scenario runs twice on the
//! same stack with the same seed — once with its aggressor tenants
//! removed (the *baseline*) and once in full (the *contended* run). The
//! victim tenant's 99th-percentile request latency must not inflate by
//! more than `p99_ratio_max`, and its completed-request goodput must not
//! fall below `goodput_frac_min` of the baseline. The bounds are
//! per-scenario and per-stack-family (a request incast legitimately
//! costs the victim some fair share; a slow reader should cost nearly
//! nothing).
//!
//! Enforcement is deliberately *not* a panic in the report path: the
//! verdicts are data; the `scenario-suite` binary exits non-zero on a
//! failed verdict, and `crates/bench/tests/isolation_gate.rs` asserts
//! both directions (clean config passes, deliberately unfair config
//! trips).

use super::{runner, Role, ScenarioSpec};
use crate::{Kind, TasOverrides};
use tas::CcAlgo;

/// Bounds a victim tenant is held to while aggressors run.
#[derive(Clone, Copy, Debug)]
pub struct IsolationBounds {
    /// Max allowed contended-p99 / baseline-p99.
    pub p99_ratio_max: f64,
    /// Min allowed contended-goodput / baseline-goodput.
    pub goodput_frac_min: f64,
}

impl Default for IsolationBounds {
    fn default() -> Self {
        IsolationBounds {
            p99_ratio_max: 3.0,
            goodput_frac_min: 0.5,
        }
    }
}

/// One victim tenant's isolation verdict on one stack.
#[derive(Clone, Debug)]
pub struct Verdict {
    /// Scenario name.
    pub scenario: &'static str,
    /// Stack the scenario ran on.
    pub stack: Kind,
    /// Victim tenant id.
    pub victim: u32,
    /// Victim tenant name.
    pub victim_name: &'static str,
    /// Victim p99 latency without aggressors (ns).
    pub base_p99_ns: u64,
    /// Victim p99 latency under contention (ns).
    pub cont_p99_ns: u64,
    /// Victim completed ops without aggressors.
    pub base_ops: u64,
    /// Victim completed ops under contention.
    pub cont_ops: u64,
    /// `cont_p99 / base_p99` (1.0 when both are 0).
    pub p99_ratio: f64,
    /// `cont_ops / base_ops` (1.0 when the baseline is 0).
    pub goodput_frac: f64,
    /// The bounds applied.
    pub bounds: IsolationBounds,
    /// Whether both bounds held.
    pub pass: bool,
    /// Where the aggressors' cycles went: top server frames by
    /// contended-minus-baseline self cycles (profile builds; `None`
    /// otherwise).
    pub cycles_note: Option<String>,
}

impl Verdict {
    /// One-line human rendering for the suite binary (two lines when
    /// the cycle-attribution note is present).
    pub fn render(&self) -> String {
        let mut s = format!(
            "{:<14} {:<8} {:<10} p99 {:>9} -> {:>9} ns ({:>5.2}x <= {:.2}x)  ops {:>7} -> {:>7} ({:>4.2} >= {:.2})  {}",
            self.scenario,
            self.stack.label(),
            self.victim_name,
            self.base_p99_ns,
            self.cont_p99_ns,
            self.p99_ratio,
            self.bounds.p99_ratio_max,
            self.base_ops,
            self.cont_ops,
            self.goodput_frac,
            self.bounds.goodput_frac_min,
            if self.pass { "PASS" } else { "FAIL" }
        );
        if let Some(n) = &self.cycles_note {
            s.push_str("\n    ");
            s.push_str(n);
        }
        s
    }
}

/// The baseline variant of a spec: aggressor tenants removed, tenant
/// ids and everything else (seed, windows, phases of the survivors)
/// unchanged so the victim's run is directly comparable.
pub fn baseline_spec(spec: &ScenarioSpec) -> ScenarioSpec {
    let mut base = spec.clone();
    base.tenants.retain(|t| t.role == Role::Victim);
    base
}

/// Evaluates the isolation contract for every victim tenant of `spec`
/// on `kind`, with TAS server overrides (the unfair fixture).
pub fn evaluate_with(spec: &ScenarioSpec, kind: Kind, overrides: TasOverrides) -> Vec<Verdict> {
    #[cfg(feature = "profile")]
    let (base, cont, note) = {
        let (base, base_prof) = runner::run_with_profile(&baseline_spec(spec), kind, overrides);
        let (cont, cont_prof) = runner::run_with_profile(spec, kind, overrides);
        let note = cycles_note(&base_prof, &cont_prof);
        (base, cont, note)
    };
    #[cfg(not(feature = "profile"))]
    let (base, cont, note) = (
        runner::run_with(&baseline_spec(spec), kind, overrides),
        runner::run_with(spec, kind, overrides),
        None::<String>,
    );
    let bounds = spec.bounds_for(kind);
    let mut out = Vec::new();
    for t in spec.victims() {
        let b = runner::tenant_metrics(&base, t);
        let c = runner::tenant_metrics(&cont, t);
        let p99_ratio = if b.p99_ns == 0 {
            if c.p99_ns == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            c.p99_ns as f64 / b.p99_ns as f64
        };
        let goodput_frac = if b.ops == 0 {
            1.0
        } else {
            c.ops as f64 / b.ops as f64
        };
        let pass = p99_ratio <= bounds.p99_ratio_max && goodput_frac >= bounds.goodput_frac_min;
        out.push(Verdict {
            scenario: spec.name,
            stack: kind,
            victim: t.id,
            victim_name: t.name,
            base_p99_ns: b.p99_ns,
            cont_p99_ns: c.p99_ns,
            base_ops: b.ops,
            cont_ops: c.ops,
            p99_ratio,
            goodput_frac,
            bounds,
            pass,
            cycles_note: note.clone(),
        });
    }
    out
}

/// Renders "where the aggressors' cycles went": the top server frames
/// by contended-minus-baseline self cycles, with the net total.
#[cfg(feature = "profile")]
fn cycles_note(
    base: &tas_telemetry::profile::Profile,
    cont: &tas_telemetry::profile::Profile,
) -> Option<String> {
    let b = base.flat_self();
    let c = cont.flat_self();
    let mut deltas: Vec<(String, i64)> = c
        .iter()
        .map(|(k, &v)| (k.clone(), v as i64 - b.get(k).copied().unwrap_or(0) as i64))
        .collect();
    for (k, &v) in &b {
        if !c.contains_key(k) {
            deltas.push((k.clone(), -(v as i64)));
        }
    }
    let total: i64 = deltas.iter().map(|d| d.1).sum();
    deltas.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let top: Vec<String> = deltas
        .iter()
        .filter(|(_, d)| *d > 0)
        .take(3)
        .map(|(k, d)| format!("{k} +{d}"))
        .collect();
    if top.is_empty() {
        Some(format!("cycles: contention added {total} server cycles"))
    } else {
        Some(format!(
            "cycles: contention added {total} server cycles; top frames: {}",
            top.join(", ")
        ))
    }
}

/// Evaluates the isolation contract with the canonical server config.
pub fn evaluate(spec: &ScenarioSpec, kind: Kind) -> Vec<Verdict> {
    evaluate_with(spec, kind, TasOverrides::default())
}

/// A deliberately unfair TAS server configuration: fast-path rate
/// enforcement disabled (no congestion control), so aggressor floods
/// collapse the shared switch queue and the victim's tail inflates past
/// any reasonable bound. The isolation self-test proves the gate trips
/// on this config and passes on the canonical one.
pub fn unfair_overrides() -> TasOverrides {
    TasOverrides {
        cc: Some(CcAlgo::None),
        ..TasOverrides::default()
    }
}
