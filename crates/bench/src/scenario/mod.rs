//! Multi-tenant "datacenter day" scenario suite.
//!
//! The paper's evaluation runs one workload at a time; a real deployment
//! runs many tenants — well-behaved, bursty, lossy, and hostile — against
//! the *same* stack simultaneously, and the isolation story (§3.6:
//! per-flow state, per-flow queueing, fast-path rate enforcement) only
//! matters under that composition. This module is a small declarative
//! DSL for such days: a [`ScenarioSpec`] composes tenants (application
//! kind, traffic shape, start/stop phases, per-tenant WAN profile) over
//! the canonical star topology, runs the composition on both the TAS
//! stack and the reference stack, and holds a designated *victim* tenant
//! to per-scenario isolation bounds — its p99 latency and goodput under
//! contention versus an aggressor-free baseline run of the same spec.
//!
//! The suite ([`suite`]) covers connection-churn storms, request incast
//! with ECN, Gilbert–Elliott WAN loss, a zipf-skewed flash crowd, and
//! three adversarial clients (slow reader, ACK division, window
//! stuffing; see `tas_apps::adversary`). [`run_suite`] produces both the
//! pass/fail verdicts (enforced by the `scenario-suite` binary and CI)
//! and the byte-deterministic `BENCH_scenarios.json` report riding the
//! regression gate. Runs under `cargo test` (and `--features tas/audit`)
//! are additionally checked by the per-flow invariant auditors compiled
//! into those builds.
//!
//! Grammar (DESIGN.md §13):
//!
//! ```text
//! scenario  := name title seed warmup measure server tenants bounds
//! server    := cores ecn_threshold?
//! tenant    := name role shape hosts start stop? flash? wan?
//! shape     := KvOpen(rate, conns) | KvClosed(conns)
//!            | KvChurn(conns, msgs_per_conn)
//!            | SlowRead(conns, burst) | AckDivision(conns, chunk)
//!            | WindowStuff(conns, pattern)
//! bounds    := p99_ratio_max goodput_frac_min     (per stack family)
//! ```

use crate::report::{Metric, Report};
use crate::{scaled, Kind};
use tas_sim::SimTime;

pub mod generators;
pub mod isolation;
pub mod runner;

pub use isolation::{IsolationBounds, Verdict};
pub use runner::{Outcome, TenantMetrics};

/// What a tenant's client hosts do.
#[derive(Clone, Debug)]
pub enum TrafficShape {
    /// Open-loop KV load (zipf keys, 90/10 GET/SET) at `per_sec`
    /// requests/s per host over `conns` connections.
    KvOpen {
        /// Aggregate request rate per client host.
        per_sec: u64,
        /// Connections per client host.
        conns: u32,
    },
    /// Closed-loop KV load: one outstanding request per connection.
    KvClosed {
        /// Connections per client host.
        conns: u32,
    },
    /// Connection-churn storm: closed-loop KV, but every connection is
    /// torn down and re-established after `msgs_per_conn` requests.
    KvChurn {
        /// Connections per client host.
        conns: u32,
        /// Requests per connection before teardown.
        msgs_per_conn: u32,
    },
    /// Slow-reader adversary: solicits `burst` pipelined responses per
    /// connection and never reads them (rx byte-ring pinned full).
    SlowRead {
        /// Connections per client host.
        conns: u32,
        /// Pipelined requests per connection.
        burst: u32,
    },
    /// ACK-division adversary (raw host): acknowledges responses in
    /// sub-MSS `chunk`-byte slivers.
    AckDivision {
        /// Connections per client host.
        conns: u32,
        /// Bytes acknowledged per ACK segment.
        chunk: u32,
    },
    /// Window-stuffing adversary (raw host): advertises the cycling
    /// receive-window `pattern`.
    WindowStuff {
        /// Connections per client host.
        conns: u32,
        /// Advertised-window cycle (raw 16-bit values).
        pattern: Vec<u16>,
    },
}

impl TrafficShape {
    /// True for shapes run as raw header-level hosts (no stack, no
    /// tenant-tagged registry — the attack is below the socket API).
    pub fn is_raw(&self) -> bool {
        matches!(
            self,
            TrafficShape::AckDivision { .. } | TrafficShape::WindowStuff { .. }
        )
    }
}

/// A tenant's part in the isolation contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// The protected tenant: its p99/goodput are held to the bounds.
    Victim,
    /// A misbehaving or bursty tenant; removed in the baseline pass.
    Aggressor,
}

/// Mid-run load surge for a `KvOpen` tenant (the flash crowd): between
/// `at` and `until` the open-loop rate is multiplied by `rate_mult`.
#[derive(Clone, Copy, Debug)]
pub struct Flash {
    /// Surge start.
    pub at: SimTime,
    /// Surge end (rate restored).
    pub until: SimTime,
    /// Rate multiplier during the surge.
    pub rate_mult: u64,
}

/// Per-tenant WAN emulation on the tenant's access links: a
/// Gilbert–Elliott loss process plus extra propagation delay and jitter.
#[derive(Clone, Copy, Debug)]
pub struct WanProfile {
    /// P(good → bad) per packet.
    pub p_enter_bad: f64,
    /// P(bad → good) per packet.
    pub p_exit_bad: f64,
    /// Loss probability while in the bad state.
    pub bad_loss: f64,
    /// One-way propagation delay of the tenant's access link.
    pub prop_delay: SimTime,
    /// Uniform extra delivery jitter in `[0, jitter]`.
    pub jitter: SimTime,
}

impl WanProfile {
    /// A moderately bursty continental WAN path: ~0.3% average loss
    /// concentrated in bursts, 2 ms one-way delay, 50 µs jitter.
    pub fn lossy_wan() -> WanProfile {
        WanProfile {
            p_enter_bad: 0.002,
            p_exit_bad: 0.2,
            bad_loss: 0.3,
            prop_delay: SimTime::from_ms(2),
            jitter: SimTime::from_us(50),
        }
    }
}

/// One tenant of a scenario.
#[derive(Clone, Debug)]
pub struct Tenant {
    /// Tenant id (1-based; the server host is tenant 0). Assigned by
    /// [`ScenarioSpec::tenant`].
    pub id: u32,
    /// Stable name (used in report metric names).
    pub name: &'static str,
    /// Victim or aggressor.
    pub role: Role,
    /// Traffic shape.
    pub shape: TrafficShape,
    /// Client hosts this tenant runs on (each gets its own switch port).
    pub hosts: usize,
    /// Start phase: hosts stay silent until this instant.
    pub start: SimTime,
    /// Stop phase: KV shapes switch to idle load here (`None` = run to
    /// the end). Ignored by raw/slow-reader shapes.
    pub stop: Option<SimTime>,
    /// Optional flash crowd (KvOpen only).
    pub flash: Option<Flash>,
    /// Optional WAN profile on this tenant's access links.
    pub wan: Option<WanProfile>,
}

impl Tenant {
    /// A tenant with no phases and clean LAN links; compose with the
    /// builder methods below.
    pub fn new(name: &'static str, role: Role, shape: TrafficShape, hosts: usize) -> Tenant {
        Tenant {
            id: 0,
            name,
            role,
            shape,
            hosts,
            start: SimTime::ZERO,
            stop: None,
            flash: None,
            wan: None,
        }
    }

    /// Sets the start phase.
    pub fn starting_at(mut self, t: SimTime) -> Tenant {
        self.start = t;
        self
    }

    /// Sets the stop phase.
    pub fn stopping_at(mut self, t: SimTime) -> Tenant {
        self.stop = Some(t);
        self
    }

    /// Adds a flash crowd.
    pub fn with_flash(mut self, f: Flash) -> Tenant {
        self.flash = Some(f);
        self
    }

    /// Puts this tenant behind a WAN profile.
    pub fn over_wan(mut self, w: WanProfile) -> Tenant {
        self.wan = Some(w);
        self
    }
}

/// A complete scenario: server sizing, tenant composition, isolation
/// bounds.
#[derive(Clone, Debug)]
pub struct ScenarioSpec {
    /// Stable scenario name (report metric prefix).
    pub name: &'static str,
    /// Human title.
    pub title: &'static str,
    /// RNG seed (baseline and contended passes share it).
    pub seed: u64,
    /// Warmup before the measurement window.
    pub warmup: SimTime,
    /// Measurement window.
    pub measure: SimTime,
    /// Server cores (TAS: fast-path/app split; baselines: total).
    pub server_cores: (usize, usize),
    /// Override of the server port's ECN marking threshold in packets
    /// (`None` keeps the canonical 65-packet threshold).
    pub ecn_threshold_pkts: Option<usize>,
    /// The tenants.
    pub tenants: Vec<Tenant>,
    /// Isolation bounds for TAS-family stacks.
    pub tas_bounds: IsolationBounds,
    /// Isolation bounds for the reference stack (the paper expects the
    /// kernel stack to isolate *worse*; its bounds are honest, not
    /// aspirational).
    pub linux_bounds: IsolationBounds,
}

impl ScenarioSpec {
    /// A scenario skeleton with canonical windows and sizing.
    pub fn new(name: &'static str, title: &'static str, seed: u64) -> ScenarioSpec {
        ScenarioSpec {
            name,
            title,
            seed,
            warmup: SimTime::from_ms(10),
            measure: SimTime::from_ms(scaled(30, 120)),
            server_cores: (2, 2),
            ecn_threshold_pkts: None,
            tenants: Vec::new(),
            tas_bounds: IsolationBounds::default(),
            linux_bounds: IsolationBounds::default(),
        }
    }

    /// Adds a tenant, assigning the next tenant id (1-based).
    pub fn tenant(mut self, mut t: Tenant) -> ScenarioSpec {
        t.id = self.tenants.len() as u32 + 1;
        self.tenants.push(t);
        self
    }

    /// Sets the per-stack isolation bounds.
    pub fn bounds(mut self, tas: IsolationBounds, linux: IsolationBounds) -> ScenarioSpec {
        self.tas_bounds = tas;
        self.linux_bounds = linux;
        self
    }

    /// Bounds applicable to `kind`.
    pub fn bounds_for(&self, kind: Kind) -> IsolationBounds {
        match kind {
            Kind::TasSockets | Kind::TasLowLevel => self.tas_bounds,
            _ => self.linux_bounds,
        }
    }

    /// The scenario end time.
    pub fn end(&self) -> SimTime {
        self.warmup + self.measure
    }

    /// The victim tenants (isolation is asserted for each).
    pub fn victims(&self) -> impl Iterator<Item = &Tenant> {
        self.tenants.iter().filter(|t| t.role == Role::Victim)
    }
}

/// The canonical datacenter-day suite.
pub fn suite() -> Vec<ScenarioSpec> {
    generators::all()
}

/// Stacks every scenario runs on: TAS and the reference kernel stack.
pub fn stacks() -> [(&'static str, Kind); 2] {
    [("tas", Kind::TasSockets), ("linux", Kind::Linux)]
}

/// The whole suite's outcome: per-victim verdicts plus the gated report.
pub struct SuiteOutcome {
    /// One verdict per scenario × stack × victim tenant.
    pub verdicts: Vec<Verdict>,
    /// The `BENCH_scenarios.json` report.
    pub report: Report,
}

/// Runs every scenario on both stacks (baseline + contended passes) and
/// assembles verdicts and the report in one sweep.
pub fn run_suite() -> SuiteOutcome {
    let mut verdicts: Vec<Verdict> = Vec::new();
    let mut r = Report::new(
        "scenarios",
        "Multi-tenant datacenter day: per-tenant isolation suite",
        9000,
    );
    let specs = suite();
    r.param("scenarios", specs.len());
    r.param("stacks", "tas,linux");
    for spec in &specs {
        for (sname, kind) in stacks() {
            let vs = isolation::evaluate(spec, kind);
            for v in &vs {
                let prefix = format!("{}_{}_{}", spec.name, sname, v.victim_name);
                // Gated, with generous tolerances: multi-tenant tails are
                // inherently noisier than the single-workload figures.
                r.push(
                    Metric::value(&format!("{prefix}_p99"), "ns", v.cont_p99_ns as f64)
                        .with_tol(0.60)
                        .with_component("baseline_p99", v.base_p99_ns as f64),
                );
                r.push(
                    Metric::value(
                        &format!("{prefix}_kops"),
                        "kops",
                        v.cont_ops as f64 / spec.measure.as_secs_f64() / 1e3,
                    )
                    .with_tol(0.40)
                    .with_component("baseline_ops", v.base_ops as f64),
                );
                // Informational (non-gating) but byte-compared by the
                // CI determinism check.
                r.push(
                    Metric::value(&format!("{prefix}_p99_ratio"), "ratio", v.p99_ratio)
                        .with_component("bound", v.bounds.p99_ratio_max),
                );
                r.push(
                    Metric::value(
                        &format!("{prefix}_goodput_frac"),
                        "fraction",
                        v.goodput_frac,
                    )
                    .with_component("bound", v.bounds.goodput_frac_min),
                );
            }
            verdicts.extend(vs);
        }
    }
    let passes = verdicts.iter().filter(|v| v.pass).count();
    r.push(Metric::value("isolation_passes", "count", passes as f64));
    r.push(Metric::value(
        "isolation_checks",
        "count",
        verdicts.len() as f64,
    ));
    SuiteOutcome {
        verdicts,
        report: r,
    }
}

/// The gated report builder (`bench-report` entry).
pub fn report() -> Report {
    run_suite().report
}
