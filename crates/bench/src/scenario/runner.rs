//! Executes a [`ScenarioSpec`] on one stack: builds the tenant-tagged
//! star, injects per-tenant start phases, applies stop/flash phase
//! mutations at their instants, and collects per-tenant metrics over the
//! measurement window.

use super::{ScenarioSpec, Tenant, TrafficShape};
use crate::{make_server_with, Bufs, Kind, TasOverrides};
use std::collections::BTreeMap;
use tas::TasHost;
use tas_apps::adversary::{AdvMode, AdversaryConfig, AdversaryHost, SlowReader};
use tas_apps::kv::{KvClient, KvLoad, KvServer};
use tas_baselines::StackHost;
use tas_netsim::app::App;
use tas_netsim::topo::{build_star_tenants, host_ip, HostSpec};
use tas_netsim::{DropModel, FaultSpec, NetMsg, NicConfig, PortConfig};
use tas_sim::{AgentId, Sim, SimTime};

/// What one tenant did over the measurement window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantMetrics {
    /// Completed request/response exchanges in the window.
    pub ops: u64,
    /// Median request latency (ns; 0 when the tenant measures none).
    pub p50_ns: u64,
    /// 99th-percentile request latency (ns).
    pub p99_ns: u64,
    /// Requests issued in the window (slow readers issue but never
    /// complete).
    pub requests_sent: u64,
    /// Connections fully torn down and re-established (churn tenants).
    pub conns_completed: u64,
}

/// A full scenario run's observables.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Outcome {
    /// Per-tenant metrics, keyed by tenant id.
    pub tenants: BTreeMap<u32, TenantMetrics>,
    /// Server NIC backlog drops over the whole run.
    pub server_drops: u64,
    /// Connections the server established over the whole run.
    pub server_established: u64,
}

/// Per-host construction plan, flattened from the tenant list.
#[derive(Clone, Debug)]
struct HostPlan {
    tenant_id: u32,
    shape: TrafficShape,
    start: SimTime,
    wan: Option<super::WanProfile>,
}

fn plans(spec: &ScenarioSpec) -> Vec<HostPlan> {
    let mut v = Vec::new();
    for t in &spec.tenants {
        for _ in 0..t.hosts {
            v.push(HostPlan {
                tenant_id: t.id,
                shape: t.shape.clone(),
                start: t.start,
                wan: t.wan,
            });
        }
    }
    v
}

fn wan_port(w: &super::WanProfile, seed: u64) -> PortConfig {
    let mut p = PortConfig::tengig();
    p.prop_delay = w.prop_delay;
    p.fault = FaultSpec {
        seed,
        drop: DropModel::GilbertElliott {
            p_enter_bad: w.p_enter_bad,
            p_exit_bad: w.p_exit_bad,
            good_loss: 0.0,
            bad_loss: w.bad_loss,
        },
        jitter: w.jitter,
        ..FaultSpec::none()
    };
    p
}

/// Phase mutations applied mid-run, keyed by instant.
#[derive(Clone, Copy, Debug)]
enum Phase {
    /// KV tenant goes idle.
    Stop { tenant: u32 },
    /// KvOpen tenant's rate becomes `per_sec`.
    SetRate { tenant: u32, per_sec: u64 },
}

fn phase_schedule(spec: &ScenarioSpec) -> BTreeMap<SimTime, Vec<Phase>> {
    let mut sched: BTreeMap<SimTime, Vec<Phase>> = BTreeMap::new();
    for t in &spec.tenants {
        if let Some(stop) = t.stop {
            sched
                .entry(stop)
                .or_default()
                .push(Phase::Stop { tenant: t.id });
        }
        if let (Some(f), TrafficShape::KvOpen { per_sec, .. }) = (t.flash, &t.shape) {
            sched.entry(f.at).or_default().push(Phase::SetRate {
                tenant: t.id,
                per_sec: per_sec * f.rate_mult,
            });
            sched.entry(f.until).or_default().push(Phase::SetRate {
                tenant: t.id,
                per_sec: *per_sec,
            });
        }
    }
    sched
}

/// A built scenario ready to run.
struct Built {
    sim: Sim<NetMsg>,
    server: AgentId,
    /// (tenant id, shape, host agent) per client host, in host order.
    clients: Vec<(u32, TrafficShape, AgentId)>,
}

fn build(spec: &ScenarioSpec, kind: Kind, overrides: TasOverrides) -> Built {
    let mut sim: Sim<NetMsg> = Sim::new(spec.seed);
    let server_ip = host_ip(0);
    let hosts = plans(spec);
    let n = 1 + hosts.len();
    let seed = spec.seed;
    let cores = spec.server_cores;
    let hosts_f = hosts.clone();
    let mut factory = move |sim: &mut Sim<NetMsg>, spec_h: HostSpec| -> AgentId {
        if spec_h.index == 0 {
            let app: Box<dyn App> = Box::new(KvServer::new(7));
            return make_server_with(sim, spec_h, kind, cores, Bufs::small(), app, overrides);
        }
        let Some(plan) = hosts_f.get(spec_h.index as usize - 1) else {
            // Unreachable by construction (n = 1 + hosts.len()); a
            // degenerate host keeps the factory total without panicking.
            let app: Box<dyn App> = Box::new(KvServer::new(9));
            return make_server_with(
                sim,
                spec_h,
                Kind::TasSockets,
                (1, 1),
                Bufs::tiny(),
                app,
                TasOverrides::default(),
            );
        };
        let host_seed = seed + spec_h.index as u64;
        match &plan.shape {
            TrafficShape::KvOpen { per_sec, conns } => {
                let app: Box<dyn App> = Box::new(KvClient::new(
                    server_ip,
                    7,
                    *conns,
                    100_000,
                    KvLoad::OpenRate { per_sec: *per_sec },
                    host_seed,
                ));
                make_server_with(
                    sim,
                    spec_h,
                    Kind::TasSockets,
                    (2, 2),
                    Bufs::small(),
                    app,
                    TasOverrides::default(),
                )
            }
            TrafficShape::KvClosed { conns } => {
                let app: Box<dyn App> = Box::new(KvClient::new(
                    server_ip,
                    7,
                    *conns,
                    100_000,
                    KvLoad::Closed,
                    host_seed,
                ));
                make_server_with(
                    sim,
                    spec_h,
                    Kind::TasSockets,
                    (2, 2),
                    Bufs::small(),
                    app,
                    TasOverrides::default(),
                )
            }
            TrafficShape::KvChurn {
                conns,
                msgs_per_conn,
            } => {
                let app: Box<dyn App> = Box::new(
                    KvClient::new(server_ip, 7, *conns, 100_000, KvLoad::Closed, host_seed)
                        .short_lived(*msgs_per_conn),
                );
                make_server_with(
                    sim,
                    spec_h,
                    Kind::TasSockets,
                    (2, 2),
                    Bufs::small(),
                    app,
                    TasOverrides::default(),
                )
            }
            TrafficShape::SlowRead { conns, burst } => {
                let app: Box<dyn App> = Box::new(SlowReader::new(server_ip, 7, *conns, *burst));
                make_server_with(
                    sim,
                    spec_h,
                    Kind::TasSockets,
                    (2, 2),
                    Bufs::small(),
                    app,
                    TasOverrides::default(),
                )
            }
            TrafficShape::AckDivision { conns, chunk } => {
                let cfg = AdversaryConfig::kv(
                    server_ip,
                    7,
                    *conns,
                    AdvMode::AckDivision { chunk: *chunk },
                );
                sim.add_agent(Box::new(AdversaryHost::new(
                    spec_h.ip,
                    spec_h.mac,
                    spec_h.nic,
                    spec_h.uplink,
                    cfg,
                )))
            }
            TrafficShape::WindowStuff { conns, pattern } => {
                let cfg = AdversaryConfig::kv(
                    server_ip,
                    7,
                    *conns,
                    AdvMode::WindowStuff {
                        pattern: pattern.clone(),
                    },
                );
                sim.add_agent(Box::new(AdversaryHost::new(
                    spec_h.ip,
                    spec_h.mac,
                    spec_h.nic,
                    spec_h.uplink,
                    cfg,
                )))
            }
        }
    };
    let hosts_p = hosts.clone();
    let ecn = spec.ecn_threshold_pkts;
    let seed_p = spec.seed;
    let topo = build_star_tenants(
        &mut sim,
        n,
        |i| {
            if i == 0 {
                0
            } else {
                hosts_p
                    .get(i as usize - 1)
                    .map(|p| p.tenant_id)
                    .unwrap_or(0)
            }
        },
        |i| {
            if i == 0 {
                let mut p = PortConfig::fortygig();
                if let Some(e) = ecn {
                    p.ecn_threshold_pkts = Some(e);
                }
                p
            } else {
                match hosts_p.get(i as usize - 1).and_then(|p| p.wan.as_ref()) {
                    Some(w) => wan_port(w, seed_p ^ (0x5ce0 + i as u64)),
                    None => PortConfig::tengig(),
                }
            }
        },
        |i| {
            if i == 0 {
                NicConfig::server_40g(1)
            } else {
                NicConfig::client_10g(1)
            }
        },
        &mut factory,
    );
    // Start phases: the server at t=0, each client host at its tenant's
    // start instant (plus a 1 µs per-host stagger to avoid synchronized
    // handshake artifacts). Timer kind 0 is INIT for every host type.
    sim.inject_timer(SimTime::ZERO, topo.hosts[0], 0, 0);
    let mut clients = Vec::new();
    for (i, plan) in hosts.iter().enumerate() {
        let h = topo.hosts[i + 1];
        sim.inject_timer(plan.start + SimTime::from_us(i as u64), h, 0, 0);
        // Tag stack-backed client hosts with their tenant so registry
        // snapshots and spans carry the tenant dimension.
        if !plan.shape.is_raw() {
            sim.agent_mut::<TasHost>(h).set_tenant(plan.tenant_id);
        }
        clients.push((plan.tenant_id, plan.shape.clone(), h));
    }
    Built {
        sim,
        server: topo.hosts[0],
        clients,
    }
}

fn is_kv(shape: &TrafficShape) -> bool {
    matches!(
        shape,
        TrafficShape::KvOpen { .. } | TrafficShape::KvClosed { .. } | TrafficShape::KvChurn { .. }
    )
}

/// Completed-exchange counter for one client host.
fn host_done(sim: &Sim<NetMsg>, shape: &TrafficShape, h: AgentId) -> u64 {
    match shape {
        s if is_kv(s) => sim.agent::<TasHost>(h).app_as::<KvClient>().done,
        TrafficShape::SlowRead { .. } => 0,
        _ => sim.agent::<AdversaryHost>(h).done,
    }
}

fn host_sent(sim: &Sim<NetMsg>, shape: &TrafficShape, h: AgentId) -> u64 {
    match shape {
        s if is_kv(s) => sim.agent::<TasHost>(h).app_as::<KvClient>().sent,
        TrafficShape::SlowRead { .. } => sim.agent::<TasHost>(h).app_as::<SlowReader>().sent,
        _ => sim.agent::<AdversaryHost>(h).sent,
    }
}

fn apply_phase(sim: &mut Sim<NetMsg>, clients: &[(u32, TrafficShape, AgentId)], ph: Phase) {
    let (tenant, load) = match ph {
        Phase::Stop { tenant } => (tenant, KvLoad::Idle),
        Phase::SetRate { tenant, per_sec } => (tenant, KvLoad::OpenRate { per_sec }),
    };
    for (tid, shape, h) in clients {
        if *tid == tenant && is_kv(shape) {
            sim.agent_mut::<TasHost>(*h)
                .app_as_mut::<KvClient>()
                .set_load(load);
        }
    }
}

/// Runs a scenario on `kind` with TAS server overrides (used by the
/// isolation self-test's deliberately unfair configuration).
///
/// Under the `profile` feature the server's cycles over the measurement
/// window are attributed; [`run_with_profile`] harvests the tree.
pub fn run_with(spec: &ScenarioSpec, kind: Kind, overrides: TasOverrides) -> Outcome {
    let Built {
        mut sim,
        server,
        clients,
    } = build(spec, kind, overrides);
    let end = spec.end();
    // Phase boundaries between warmup and end, in order.
    let sched = phase_schedule(spec);
    sim.run_until(spec.warmup);
    #[cfg(feature = "profile")]
    {
        match kind {
            Kind::TasSockets | Kind::TasLowLevel => {
                sim.agent_mut::<TasHost>(server).enable_profiling();
            }
            _ => sim.agent_mut::<StackHost>(server).enable_profiling(),
        }
        tas_telemetry::profile::start();
    }
    // Gate latency measurement to the window.
    for (_, shape, h) in &clients {
        if is_kv(shape) {
            sim.agent_mut::<TasHost>(*h)
                .app_as_mut::<KvClient>()
                .measure_from = spec.warmup;
        }
    }
    let mut done0: BTreeMap<u32, u64> = BTreeMap::new();
    let mut sent0: BTreeMap<u32, u64> = BTreeMap::new();
    for (tid, shape, h) in &clients {
        *done0.entry(*tid).or_default() += host_done(&sim, shape, *h);
        *sent0.entry(*tid).or_default() += host_sent(&sim, shape, *h);
    }
    for (&at, phases) in &sched {
        if at <= spec.warmup || at >= end {
            continue;
        }
        sim.run_until(at);
        for &ph in phases {
            apply_phase(&mut sim, &clients, ph);
        }
    }
    sim.run_until(end);
    let mut out = Outcome::default();
    for t in &spec.tenants {
        let mut m = TenantMetrics::default();
        let mut hist = tas_sim::Histogram::new();
        for (tid, shape, h) in &clients {
            if *tid != t.id {
                continue;
            }
            m.ops += host_done(&sim, shape, *h);
            m.requests_sent += host_sent(&sim, shape, *h);
            if is_kv(shape) {
                let c = sim.agent::<TasHost>(*h).app_as::<KvClient>();
                hist.merge(&c.latency);
                m.conns_completed += c.conns_completed;
            }
        }
        m.ops = m.ops.saturating_sub(done0.get(&t.id).copied().unwrap_or(0));
        m.requests_sent = m
            .requests_sent
            .saturating_sub(sent0.get(&t.id).copied().unwrap_or(0));
        m.p50_ns = hist.p50();
        m.p99_ns = hist.p99();
        out.tenants.insert(t.id, m);
    }
    let (drops, established) = match kind {
        Kind::TasSockets | Kind::TasLowLevel => {
            let h = sim.agent::<TasHost>(server);
            (
                h.registry()
                    .counter_value("host.drop_backlog", tas_sim::Scope::Global),
                h.sp_stats().established,
            )
        }
        _ => {
            let h = sim.agent::<StackHost>(server);
            (
                h.registry()
                    .counter_value("host.drop_backlog", tas_sim::Scope::Global),
                h.registry()
                    .counter_value("host.established", tas_sim::Scope::Global),
            )
        }
    };
    out.server_drops = drops;
    out.server_established = established;
    out
}

/// Runs a scenario on `kind` with the canonical server configuration.
pub fn run(spec: &ScenarioSpec, kind: Kind) -> Outcome {
    run_with(spec, kind, TasOverrides::default())
}

/// [`run_with`] plus the server's cycle-attribution tree over the
/// measurement window (profiling is left disabled afterwards).
#[cfg(feature = "profile")]
pub fn run_with_profile(
    spec: &ScenarioSpec,
    kind: Kind,
    overrides: TasOverrides,
) -> (Outcome, tas_telemetry::profile::Profile) {
    let out = run_with(spec, kind, overrides);
    let prof = tas_telemetry::profile::take();
    tas_telemetry::profile::stop();
    (out, prof)
}

/// Metrics of one tenant from an outcome (zeros when absent).
pub fn tenant_metrics(o: &Outcome, t: &Tenant) -> TenantMetrics {
    o.tenants.get(&t.id).copied().unwrap_or_default()
}
