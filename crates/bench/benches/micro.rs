//! Criterion microbenchmarks of the hot-path data structures — the
//! operations whose cycle costs the paper's Tables 1–2 account.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::net::Ipv4Addr;
use tas::flow::{
    FlowState, FlowTable, FpCongCtrl, FpConnMgmt, FpFlowCtrl, FpRecvRel, FpSendRel, RateBucket,
};
use tas_netsim::rss::{hash_tuple, RssTable};
use tas_proto::{wire, FlowKey, MacAddr, Segment, TcpFlags, TcpHeader};
use tas_shm::{ByteRing, DescQueue};
use tas_sim::{Histogram, SimTime};

fn sample_segment(payload: usize) -> Segment {
    let mut tcp = TcpHeader::new(5000, 80, 1000, 2000, TcpFlags::ACK | TcpFlags::PSH);
    tcp.options.timestamp = Some((1, 2));
    tcp.window = 4096;
    Segment::tcp(
        MacAddr::for_host(1),
        MacAddr::for_host(2),
        Ipv4Addr::new(10, 0, 0, 1),
        Ipv4Addr::new(10, 0, 0, 2),
        tcp,
        vec![0xab; payload],
        true,
    )
}

fn make_flow(port: u16) -> FlowState {
    FlowState {
        conn: FpConnMgmt::new(
            port as u64,
            0,
            FlowKey::new(
                Ipv4Addr::new(10, 0, 0, 1),
                80,
                Ipv4Addr::new(10, 0, 0, 2),
                port,
            ),
            MacAddr::for_host(2),
            0,
        ),
        snd: FpSendRel::new(ByteRing::new(4096), 1),
        rcv: FpRecvRel::new(ByteRing::new(4096), 2),
        fc: FpFlowCtrl::new(65535, 7),
        cc: FpCongCtrl::new(RateBucket::unlimited()),
    }
}

fn bench_flow_table(c: &mut Criterion) {
    let mut table = FlowTable::new();
    let mut keys = Vec::new();
    for p in 0..20_000u16 {
        let f = make_flow(p);
        keys.push(f.conn.key);
        table.insert(f);
    }
    let mut i = 0usize;
    c.bench_function("flow_table_lookup_20k", |b| {
        b.iter(|| {
            i = (i + 7919) % keys.len();
            black_box(table.lookup(&keys[i]))
        })
    });
}

fn bench_byte_ring(c: &mut Criterion) {
    let mut ring = ByteRing::new(16 * 1024);
    let chunk = vec![0x42u8; 1448];
    c.bench_function("byte_ring_append_pop_1448", |b| {
        b.iter(|| {
            ring.append(&chunk).expect("fits");
            black_box(ring.pop(1448));
        })
    });
}

/// The ring transfer of [`bench_byte_ring`] with a flight-recorder emit
/// site in the loop, exactly as the production fast path places them.
/// Without the `trace` feature the hook is compiled out and this is the
/// same loop as `byte_ring_append_pop_1448` — the pair is the smoke
/// check that a trace-off release build carries zero telemetry overhead.
/// With `trace` on (recorder not started) it prices the disabled-
/// recorder branch instead.
fn bench_ring_transfer_trace_hook(c: &mut Criterion) {
    let mut ring = ByteRing::new(16 * 1024);
    let chunk = vec![0x42u8; 1448];
    #[cfg(feature = "trace")]
    let key = FlowKey::new(
        Ipv4Addr::new(10, 0, 0, 1),
        80,
        Ipv4Addr::new(10, 0, 0, 2),
        5000,
    );
    c.bench_function("ring_transfer_trace_hook_1448", |b| {
        b.iter(|| {
            ring.append(&chunk).expect("fits");
            #[cfg(feature = "trace")]
            tas_telemetry::emit(|| tas_telemetry::TraceRecord {
                t: SimTime::ZERO,
                site: "bench",
                ev: tas_telemetry::TraceEvent::CcRate { flow: key, rate: 0 },
            });
            black_box(ring.pop(1448));
        })
    });
}

fn bench_desc_queue(c: &mut Criterion) {
    let mut q: DescQueue<u64> = DescQueue::new(1024);
    c.bench_function("context_queue_push_pop", |b| {
        b.iter(|| {
            q.try_push(42).expect("space");
            black_box(q.pop());
        })
    });
}

fn bench_toeplitz(c: &mut Criterion) {
    let src = Ipv4Addr::new(10, 0, 0, 1);
    let dst = Ipv4Addr::new(10, 0, 0, 2);
    c.bench_function("rss_toeplitz_hash", |b| {
        b.iter(|| black_box(hash_tuple(src, dst, black_box(5000), 80)))
    });
    let t = RssTable::new(8);
    c.bench_function("rss_table_lookup", |b| {
        b.iter(|| black_box(t.queue_for_hash(black_box(0xdead_beef))))
    });
}

fn bench_wire_codec(c: &mut Criterion) {
    let seg = sample_segment(64);
    c.bench_function("wire_serialize_64b", |b| {
        b.iter(|| black_box(wire::serialize(&seg)))
    });
    let bytes = wire::serialize(&seg);
    c.bench_function("wire_parse_64b", |b| {
        b.iter(|| black_box(wire::parse(&bytes).expect("valid")))
    });
}

fn bench_rate_bucket(c: &mut Criterion) {
    let mut bucket = RateBucket::limited(10_000_000_000, 1 << 20, SimTime::ZERO);
    let mut t = 0u64;
    c.bench_function("rate_bucket_refill_consume", |b| {
        b.iter(|| {
            t += 1_000_000;
            bucket.refill(SimTime::from_ps(t));
            bucket.consume(black_box(1448));
        })
    });
}

fn bench_histogram(c: &mut Criterion) {
    let mut h = Histogram::new();
    let mut v = 1u64;
    c.bench_function("histogram_record", |b| {
        b.iter(|| {
            v = v.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            h.record(black_box(v >> 40));
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(50);
    targets =
    bench_flow_table,
    bench_byte_ring,
    bench_ring_transfer_trace_hook,
    bench_desc_queue,
    bench_toeplitz,
    bench_wire_codec,
    bench_rate_bucket,
    bench_histogram
);
criterion_main!(benches);
