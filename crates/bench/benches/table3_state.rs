//! Table 3: required per-flow fast path state (102 bytes).

use tas::FLOW_STATE_BYTES;

fn main() {
    tas_bench::section(
        "Table 3: per-flow fast-path state",
        "Table 3 sums field widths to 102 bytes; >20k flows fit 2MB/core",
    );
    println!("field                     bits");
    for (name, bits) in [
        ("opaque", 64),
        ("context", 16),
        ("bucket", 24),
        ("rx|tx_start", 128),
        ("rx|tx_size", 64),
        ("rx|tx_head|tail", 128),
        ("tx_sent", 32),
        ("seq", 32),
        ("ack", 32),
        ("window", 16),
        ("dupack_cnt", 4),
        ("local_port", 16),
        ("peer_ip|port|mac", 96),
        ("ooo_start|len", 64),
        ("cnt_ackb|ecnb", 64),
        ("cnt_frexmits", 8),
        ("rtt_est", 32),
    ] {
        println!("{name:<25} {bits}");
    }
    println!("total                     {FLOW_STATE_BYTES} bytes");
    let per_core_cache: u64 = 2 << 20;
    println!(
        "flows per 2MB core cache  {} (paper: \"more than 20,000\")",
        per_core_cache / FLOW_STATE_BYTES
    );
    assert_eq!(FLOW_STATE_BYTES, 102);
    assert!(per_core_cache / FLOW_STATE_BYTES > 20_000);
    let path = tas_bench::scenarios::table3::report()
        .write()
        .expect("write BENCH_table3.json");
    println!("report: {}", path.display());
    println!("OK");
}
