//! Ablation studies for the TAS design choices DESIGN.md calls out.
//!
//! Not a paper figure: each section removes or degrades one mechanism the
//! paper argues for and measures the cost of losing it.
//!
//!   A. Compact per-flow state (Table 3, §3.1): inflate the 102-byte flow
//!      state to 512 B and 1.9 KB (a Linux-like tcp_sock) and watch echo
//!      throughput collapse at high connection counts.
//!   B. Fast-path rate enforcement (§3.1–3.2): run the same bulk fan-in
//!      with congestion control disabled and watch the shared queue
//!      collapse into retransmissions.
//!   C. Stall-detector retransmit threshold (§3.2, default 2 intervals):
//!      thresholds 1/2/4 under 1% loss trade spurious retransmissions
//!      against recovery latency.

use tas::{CcAlgo, TasConfig, TasHost};
use tas_apps::bulk::{BulkReceiver, BulkSender};
use tas_bench::report::{Metric, Report};
use tas_bench::{fmt_mops, scaled, section, Kind, RpcScenario, TasOverrides};
use tas_netsim::app::App;
use tas_netsim::topo::{build_star, host_ip, HostSpec};
use tas_netsim::{FaultSpec, NetMsg, NicConfig, PortConfig};
use tas_sim::{AgentId, Sim, SimTime};

/// Ablation A: echo throughput vs. per-flow state footprint.
fn ablate_state_footprint(rep: &mut Report) {
    section(
        "Ablation A: per-flow state footprint (lines touched per request)",
        "design choice: 102 B compact state (Table 3); fat state thrashes the cache",
    );
    let conns_list: Vec<u32> = scaled(vec![16_000, 64_000], vec![16_000, 64_000, 96_000]);
    // 2 lines = TAS's 102 B; 8 = a 512 B state; 30 = a ~1.9 KB Linux
    // tcp_sock-like state.
    let variants: [(&str, u64); 3] = [("102B (TAS)", 2), ("512B", 8), ("1.9KB", 30)];
    println!(
        "{:<8}{}",
        "conns",
        variants.map(|(n, _)| format!("{n:>14}")).join("")
    );
    let mut at_max = [0f64; 3];
    for &conns in &conns_list {
        let mut row = format!("{conns:<8}");
        for (i, (_, lines)) in variants.iter().enumerate() {
            let mut sc = RpcScenario::echo(Kind::TasSockets, (10, 10), conns);
            sc.warmup = scaled(SimTime::from_ms(15), SimTime::from_ms(50));
            sc.measure = scaled(SimTime::from_ms(10), SimTime::from_ms(50));
            sc.seed = 7_000 + conns as u64;
            sc.tas_overrides = TasOverrides {
                cache_lines_per_req: Some(*lines),
                ..TasOverrides::default()
            };
            let r = tas_bench::run_rpc(&sc);
            row += &format!("{:>14}", fmt_mops(r.mops));
            at_max[i] = r.mops;
        }
        println!("{row}");
    }
    println!();
    println!(
        "at max conns: fat state costs {:.0}% (512B) / {:.0}% (1.9KB) of the compact-state \
         throughput",
        100.0 * (1.0 - at_max[1] / at_max[0]),
        100.0 * (1.0 - at_max[2] / at_max[0]),
    );
    for (i, name) in ["state_102b", "state_512b", "state_1900b"].iter().enumerate() {
        rep.push(Metric::value(name, "mops", at_max[i]));
    }
}

/// Outcome of one bulk fan-in run.
struct BulkRun {
    gbps: f64,
    fast_rexmits: u64,
    timeout_rexmits: u64,
}

/// Runs `senders` bulk hosts with `flows` connections each into one
/// receiver over a shared 10G star.
fn bulk_fan_in(cc: CcAlgo, stall_intervals: u32, loss: f64, senders: usize, seed: u64) -> BulkRun {
    let mut sim: Sim<NetMsg> = Sim::new(seed);
    let recv_ip = host_ip(0);
    let flows = 25u32;
    let mut factory = move |sim: &mut Sim<NetMsg>, spec: HostSpec| -> AgentId {
        let mut cfg = TasConfig::rpc_bench(2, 2);
        cfg.rx_buf = 128 * 1024;
        cfg.tx_buf = 128 * 1024;
        cfg.cc = cc;
        cfg.initial_rate_bps = 500_000_000;
        cfg.control_interval = SimTime::from_us(200);
        cfg.stall_intervals_for_rexmit = stall_intervals;
        cfg.max_core_backlog = SimTime::from_ms(50);
        let app: Box<dyn App> = if spec.index == 0 {
            Box::new(BulkReceiver::new(9))
        } else {
            Box::new(BulkSender::new(recv_ip, 9, flows))
        };
        sim.add_agent(Box::new(TasHost::new(
            spec.ip,
            spec.mac,
            spec.nic,
            cfg,
            spec.uplink,
            app,
        )))
    };
    let mut port = PortConfig::tengig();
    if loss > 0.0 {
        // Seeded drops via the fault injector (the deprecated `loss`
        // shim would also work, but the injector is the mechanism).
        port.fault = FaultSpec::uniform_loss(loss, seed);
    }
    let topo = build_star(
        &mut sim,
        1 + senders,
        move |_| port,
        |_| NicConfig::client_10g(1),
        &mut factory,
    );
    for &h in &topo.hosts {
        sim.inject_timer(SimTime::ZERO, h, 0, 0);
    }
    let warmup = SimTime::from_ms(50);
    let window = scaled(SimTime::from_ms(100), SimTime::from_ms(300));
    sim.run_until(warmup);
    let b0 = sim
        .agent::<TasHost>(topo.hosts[0])
        .app_as::<BulkReceiver>()
        .total;
    sim.run_until(warmup + window);
    let b1 = sim
        .agent::<TasHost>(topo.hosts[0])
        .app_as::<BulkReceiver>()
        .total;
    let mut fast = 0;
    let mut timeout = 0;
    for &h in &topo.hosts[1..] {
        let host = sim.agent::<TasHost>(h);
        fast += host.fp_stats().fast_rexmits;
        timeout += host.sp_stats().timeout_rexmits;
    }
    BulkRun {
        gbps: (b1 - b0) as f64 * 8.0 / window.as_secs_f64() / 1e9,
        fast_rexmits: fast,
        timeout_rexmits: timeout,
    }
}

/// Ablation B: fast-path rate enforcement on/off under fan-in.
fn ablate_rate_enforcement(rep: &mut Report) {
    section(
        "Ablation B: fast-path per-flow rate enforcement (4x25 bulk flows -> one 10G port)",
        "design choice: slow-path CC enforced by fast-path rate limiters; off = queue collapse",
    );
    println!(
        "{:<22} {:>10} {:>14} {:>16}",
        "enforcement", "Gbps", "fast rexmits", "timeout rexmits"
    );
    let on = bulk_fan_in(CcAlgo::DctcpRate, 2, 0.0, 4, 300);
    let off = bulk_fan_in(CcAlgo::None, 2, 0.0, 4, 300);
    for (name, r) in [("DCTCP rate buckets", &on), ("none (window only)", &off)] {
        println!(
            "{name:<22} {:>10.2} {:>14} {:>16}",
            r.gbps, r.fast_rexmits, r.timeout_rexmits
        );
    }
    println!();
    println!(
        "retransmissions without enforcement: {}x the enforced run",
        if on.fast_rexmits + on.timeout_rexmits > 0 {
            format!(
                "{:.0}",
                (off.fast_rexmits + off.timeout_rexmits) as f64
                    / (on.fast_rexmits + on.timeout_rexmits) as f64
            )
        } else {
            format!("inf ({} vs 0", off.fast_rexmits + off.timeout_rexmits) + ")"
        }
    );
    for (name, r) in [("enforced", &on), ("unenforced", &off)] {
        rep.push(
            Metric::value(&format!("{name}_gbps"), "gbps", r.gbps)
                .with_component("fast_rexmits", r.fast_rexmits as f64)
                .with_component("timeout_rexmits", r.timeout_rexmits as f64),
        );
    }
}

/// Ablation C: slow-path stall-detector threshold under loss.
fn ablate_stall_threshold(rep: &mut Report) {
    section(
        "Ablation C: stall-detector retransmit threshold (1% loss, 25 bulk flows)",
        "design choice: retransmit after 2 stalled control intervals (paper §3.2)",
    );
    println!(
        "{:<12} {:>10} {:>14} {:>16}",
        "intervals", "Gbps", "fast rexmits", "timeout rexmits"
    );
    for intervals in [1u32, 2, 4] {
        let r = bulk_fan_in(CcAlgo::DctcpRate, intervals, 0.01, 1, 400);
        println!(
            "{intervals:<12} {:>10.2} {:>14} {:>16}",
            r.gbps, r.fast_rexmits, r.timeout_rexmits
        );
        rep.push(
            Metric::value(&format!("stall_{intervals}_gbps"), "gbps", r.gbps)
                .with_component("fast_rexmits", r.fast_rexmits as f64)
                .with_component("timeout_rexmits", r.timeout_rexmits as f64),
        );
    }
    println!();
    println!(
        "expectation: threshold 1 fires spuriously (more timeout rexmits, go-back-N waste); \
         threshold 4 recovers tail losses slowly; 2 balances both"
    );
}

fn main() {
    let mut rep = Report::new("ablations", "Design-choice ablations", 300);
    ablate_state_footprint(&mut rep);
    ablate_rate_enforcement(&mut rep);
    ablate_stall_threshold(&mut rep);
    let path = rep.write().expect("write BENCH_ablations.json");
    println!("report: {}", path.display());
}
