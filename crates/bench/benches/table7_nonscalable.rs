//! Table 7: throughput for the non-scalable key-value workload — a single
//! contended 4-byte key whose updates serialize on a lock.
//!
//! Paper (256 connections): TAS LL 2.4/3.8/4.6 mOps at 2/3/4 cores;
//! TAS SO 2.4/3.1/3.1; IX 1.5/2.5/2.8/2.8 at 1–4; Linux 0.3/0.4/0.6/0.8.
//! TAS scales the *stack* even when the app cannot scale: in the limit
//! 1.6× IX and 5.7× Linux.

use tas_bench::{fmt_mops, scaled, section, Kind, RpcScenario};
use tas_sim::SimTime;

fn run(kind: Kind, total: usize) -> f64 {
    // TAS keeps ONE app core and grows fast-path cores; baselines grow
    // the shared pool.
    let cores = match kind {
        Kind::TasSockets | Kind::TasLowLevel => (total.saturating_sub(1).max(1), 1),
        _ => (total / 2, total - total / 2),
    };
    let mut sc = RpcScenario::kv(kind, cores, 256);
    // Single hot key: every operation contends on the update lock. The
    // contention charge scales with the number of app cores.
    sc.kv_contention = 1_200;
    sc.warmup = SimTime::from_ms(15);
    sc.measure = scaled(SimTime::from_ms(10), SimTime::from_ms(50));
    sc.client_hosts = 4;
    sc.seed = 99 + total as u64;
    tas_bench::run_rpc(&sc).mops
}

fn main() {
    section(
        "Table 7: non-scalable KV workload (single contended key, 256 conns)",
        "TAS LL 2.4/3.8/4.6 mOps; TAS SO 2.4/3.1/3.1; IX 1.5-2.8; Linux 0.3-0.8",
    );
    println!(
        "{:<9} {:>9} {:>9} {:>9} {:>9}",
        "cores", "TAS LL", "TAS SO", "IX", "Linux"
    );
    let mut last = [0.0f64; 4];
    for total in [2usize, 3, 4] {
        let mut row = format!("{total:<9}");
        for (i, kind) in [Kind::TasLowLevel, Kind::TasSockets, Kind::Ix, Kind::Linux]
            .into_iter()
            .enumerate()
        {
            let m = run(kind, total);
            row += &format!(" {:>8}", fmt_mops(m));
            last[i] = m;
        }
        println!("{row}");
    }
    println!();
    println!(
        "in the limit: TAS LL/IX = {:.1}x, TAS LL/Linux = {:.1}x (paper: 1.6x, 5.7x)",
        last[0] / last[2],
        last[0] / last[3]
    );
    let mut rep =
        tas_bench::report::Report::new("table7", "Non-scalable KV workload at 4 cores", 99);
    rep.param("conns", 256).param("cores", 4);
    for (i, name) in ["tas_ll", "tas_so", "ix", "linux"].iter().enumerate() {
        rep.push(tas_bench::report::Metric::value(name, "mops", last[i]));
    }
    let path = rep.write().expect("write BENCH_table7.json");
    println!("report: {}", path.display());
}
