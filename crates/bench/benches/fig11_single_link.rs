//! Figure 11: congestion-control fidelity on a single 10 Gbps link at 75%
//! load, sweeping TAS's slow-path control interval τ.
//!
//! Paper (ns-3): average flow completion time for TAS's rate-based DCTCP
//! matches window DCTCP once τ exceeds the RTT (100 µs); very small τ
//! converges slowly; the average bottleneck queue stays near DCTCP's and
//! grows slowly with τ. Plain TCP (NewReno) sits above both with a much
//! larger queue.

use tas::{CcAlgo, TasConfig, TasHost};
use tas_apps::flows::{FlowGen, FlowSink};
use tas_baselines::{profiles, StackHost, StackHostConfig, ThreadModel};
use tas_bench::{scaled, section};
use tas_netsim::app::App;
use tas_netsim::switch::TIMER_SAMPLE_QUEUE;
use tas_netsim::topo::{build_star, host_ip, HostSpec};
use tas_netsim::{NetMsg, NicConfig, PortConfig, Switch};
use tas_sim::{AgentId, Sim, SimTime};
use tas_tcp::{CcKind, TcpConfig};

#[derive(Clone, Copy, PartialEq)]
enum Cc {
    Tcp,
    Dctcp,
    TasRate { tau_us: u64 },
    TasTimely,
}

/// Runs the single-link experiment; returns (mean FCT ms, mean queue pkts).
fn run(cc: Cc, seed: u64) -> (f64, f64) {
    let mut sim: Sim<NetMsg> = Sim::new(seed);
    let senders = 8usize;
    let sink_ip = host_ip(0);
    // 75% of 10G split over the senders; bounded-Pareto flow sizes with
    // the generator's parameters (use the analytic mean so the offered
    // load is exact).
    let size_dist = tas_sim::dist::BoundedPareto::new(2.0 * 1448.0, 500.0 * 1448.0, 1.2);
    let mean_size_bytes = size_dist.mean();
    let per_sender_bps = 0.75 * 10e9 / senders as f64;
    let gap = SimTime::from_secs_f64(mean_size_bytes * 8.0 / per_sender_bps);
    let mut factory = move |sim: &mut Sim<NetMsg>, spec: HostSpec| -> AgentId {
        let is_sink = spec.index == 0;
        match cc {
            Cc::TasRate { .. } | Cc::TasTimely => {
                let (algo, tau_us) = match cc {
                    Cc::TasRate { tau_us } => (CcAlgo::DctcpRate, tau_us),
                    _ => (CcAlgo::Timely, 200),
                };
                let mut cfg = TasConfig::rpc_bench(2, 2);
                cfg.cc = algo;
                cfg.control_interval = SimTime::from_us(tau_us);
                cfg.initial_rate_bps = 500_000_000;
                cfg.rx_buf = 256 * 1024;
                cfg.tx_buf = 256 * 1024;
                cfg.max_core_backlog = SimTime::from_ms(50);
                let app: Box<dyn App> = if is_sink {
                    Box::new(FlowSink::new(5001))
                } else {
                    let mut g = FlowGen::new(vec![(sink_ip, 5001)], gap, seed + spec.index as u64);
                    g.size_alpha = 1.2;
                    Box::new(g)
                };
                sim.add_agent(Box::new(TasHost::new(
                    spec.ip,
                    spec.mac,
                    spec.nic,
                    cfg,
                    spec.uplink,
                    app,
                )))
            }
            _ => {
                // Protocol-focused nodes: IX-like cheap stack so the CPU
                // never interferes with the CC comparison (the paper's
                // ns-3 nodes have no CPU model at all).
                let mut cfg = StackHostConfig::ix(4);
                cfg.model = ThreadModel::RunToCompletion;
                cfg.tcp = TcpConfig {
                    cc: if cc == Cc::Tcp {
                        CcKind::NewReno
                    } else {
                        CcKind::Dctcp
                    },
                    ecn: cc != Cc::Tcp,
                    recv_buf: 256 * 1024,
                    send_buf: 256 * 1024,
                    rto_min: SimTime::from_ms(5),
                    ..TcpConfig::default()
                };
                cfg.max_core_backlog = SimTime::from_ms(50);
                let app: Box<dyn App> = if is_sink {
                    Box::new(FlowSink::new(5001))
                } else {
                    let mut g = FlowGen::new(vec![(sink_ip, 5001)], gap, seed + spec.index as u64);
                    g.size_alpha = 1.2;
                    Box::new(g)
                };
                sim.add_agent(Box::new(StackHost::new(
                    spec.ip,
                    spec.mac,
                    spec.nic,
                    profiles::ix(),
                    cfg,
                    spec.uplink,
                    app,
                )))
            }
        }
    };
    // RTT 100us: 25us one-way on the sink port, ~0 on sender links.
    let sink_port = PortConfig {
        prop_delay: SimTime::from_us(25),
        ..PortConfig::tengig()
    };
    let sender_port = PortConfig {
        prop_delay: SimTime::from_us(25),
        ..PortConfig::tengig()
    };
    let topo = build_star(
        &mut sim,
        1 + senders,
        move |i| if i == 0 { sink_port } else { sender_port },
        |_| NicConfig::client_10g(1),
        &mut factory,
    );
    for &h in &topo.hosts {
        sim.inject_timer(SimTime::ZERO, h, 0, 0);
    }
    // Monitor the bottleneck (switch port 0 toward the sink).
    sim.agent_mut::<Switch>(topo.switch)
        .monitor_port(0, SimTime::from_us(20));
    let warmup = SimTime::from_ms(30);
    sim.inject_timer(warmup, topo.switch, TIMER_SAMPLE_QUEUE, 0);
    sim.run_until(warmup);
    set_gate(&mut sim, topo.hosts[0], cc, warmup);
    let window = scaled(SimTime::from_ms(150), SimTime::from_ms(500));
    sim.run_until(warmup + window);
    let sink = sink_of(&sim, topo.hosts[0], cc);
    let fct_ms = sink.fct_all.mean() / 1e6;
    let q = sim.agent::<Switch>(topo.switch).mean_queue_depth();
    (fct_ms, q)
}

fn set_gate(sim: &mut Sim<NetMsg>, id: AgentId, cc: Cc, t: SimTime) {
    match cc {
        Cc::TasRate { .. } | Cc::TasTimely => {
            sim.agent_mut::<TasHost>(id)
                .app_as_mut::<FlowSink>()
                .measure_from = t
        }
        _ => {
            sim.agent_mut::<StackHost>(id)
                .app_as_mut::<FlowSink>()
                .measure_from = t
        }
    }
}

fn sink_of(sim: &Sim<NetMsg>, id: AgentId, cc: Cc) -> &FlowSink {
    match cc {
        Cc::TasRate { .. } | Cc::TasTimely => sim.agent::<TasHost>(id).app_as::<FlowSink>(),
        _ => sim.agent::<StackHost>(id).app_as::<FlowSink>(),
    }
}

fn main() {
    section(
        "Figure 11: single 10G link at 75% load — FCT and queue vs. control interval",
        "TAS ~ DCTCP for tau >= RTT (100us); small tau converges slowly; queue grows mildly with tau",
    );
    let (tcp_fct, tcp_q) = run(Cc::Tcp, 11);
    let (dctcp_fct, dctcp_q) = run(Cc::Dctcp, 12);
    println!("reference lines:   TCP: FCT {tcp_fct:.2} ms, queue {tcp_q:.1} pkts");
    println!("                 DCTCP: FCT {dctcp_fct:.2} ms, queue {dctcp_q:.1} pkts");
    println!();
    println!(
        "{:<10} {:>12} {:>14}",
        "tau [us]", "TAS FCT ms", "TAS queue pkts"
    );
    let taus: Vec<u64> = scaled(
        vec![50, 100, 400, 1000],
        vec![25, 50, 100, 200, 400, 600, 800, 1000],
    );
    let mut tas_rows = Vec::new();
    for &tau in &taus {
        let (fct, q) = run(Cc::TasRate { tau_us: tau }, 13 + tau);
        println!("{tau:<10} {fct:>12.2} {q:>14.1}");
        tas_rows.push((tau, fct, q));
    }
    println!();
    let (timely_fct, timely_q) = run(Cc::TasTimely, 29);
    println!(
        "extension — TAS running TIMELY (tau 200us): FCT {timely_fct:.2} ms, queue {timely_q:.1} \
         pkts (the paper names TIMELY as a pluggable policy but does not evaluate it)"
    );
    println!();
    println!(
        "paper shape: TAS FCT ~= DCTCP's for tau > RTT; TCP's queue is much larger than DCTCP/TAS"
    );
    let mut rep = tas_bench::report::Report::new(
        "fig11",
        "Single-link CC fidelity: FCT and bottleneck queue",
        11,
    );
    rep.param("load", "0.75").param("senders", 8);
    let fct_us = |ms: f64| ms * 1000.0;
    rep.push(tas_bench::report::Metric::value("tcp_fct", "us", fct_us(tcp_fct)).with_tol(0.20));
    rep.push(tas_bench::report::Metric::value("dctcp_fct", "us", fct_us(dctcp_fct)).with_tol(0.20));
    rep.push(tas_bench::report::Metric::value("tcp_queue_pkts", "pkts", tcp_q));
    rep.push(tas_bench::report::Metric::value("dctcp_queue_pkts", "pkts", dctcp_q));
    for &(tau, fct, q) in &tas_rows {
        rep.push(
            tas_bench::report::Metric::value(&format!("tas_tau{tau}_fct"), "us", fct_us(fct))
                .with_tol(0.20),
        );
        rep.push(tas_bench::report::Metric::value(
            &format!("tas_tau{tau}_queue_pkts"),
            "pkts",
            q,
        ));
    }
    let path = rep.write().expect("write BENCH_fig11.json");
    println!("report: {}", path.display());
}
