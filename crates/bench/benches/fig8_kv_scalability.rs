//! Figure 8 + Table 6: key-value store throughput scalability with server
//! cores, for TAS LL, TAS SO, IX, and Linux.
//!
//! Paper: 32k connections; TAS LL up to 9.6× Linux and 1.9× IX; TAS SO up
//! to 7.0× Linux and 1.3× IX. Table 6 gives the app/TAS core split used
//! at each total core count.

use tas_bench::{fmt_mops, full_scale, scaled, section, Kind, RpcScenario};
use tas_sim::SimTime;

/// Table 6 core splits (app, TAS) per total core count.
fn split(kind: Kind, total: usize) -> (usize, usize) {
    // Paper Table 6: Sockets — app 1/2/5/7/9, TAS 1/2/3/5/7 at 2/4/8/12/16.
    // Lowlevel — even split. We map (fp, app) = (TAS, app).
    let so_app = [(2, 1), (4, 2), (8, 5), (12, 7), (16, 9)];
    match kind {
        Kind::TasSockets => {
            let app = so_app
                .iter()
                .find(|(t, _)| *t == total)
                .map(|(_, a)| *a)
                .unwrap_or(total / 2);
            (total - app, app)
        }
        Kind::TasLowLevel => (total / 2, total - total / 2),
        // Baselines use all cores as one pool.
        _ => (total / 2, total - total / 2),
    }
}

fn main() {
    section(
        "Figure 8 + Table 6: KV-store throughput vs. total server cores",
        "TAS LL up to 9.6x Linux / 1.9x IX; TAS SO 7.0x / 1.3x (32k conns)",
    );
    let conns = scaled(4_000, 32_000);
    let totals: Vec<usize> = scaled(vec![2, 4, 8, 16], vec![2, 4, 8, 12, 16]);
    println!("(connections: {conns})");
    println!(
        "{:<7} {:>9} {:>9} {:>9} {:>9}",
        "cores", "TAS LL", "TAS SO", "IX", "Linux"
    );
    let mut at_max = [0.0f64; 4];
    for &total in &totals {
        let mut row = format!("{total:<7}");
        for (i, kind) in [Kind::TasLowLevel, Kind::TasSockets, Kind::Ix, Kind::Linux]
            .into_iter()
            .enumerate()
        {
            let cores = split(kind, total);
            let mut sc = RpcScenario::kv(kind, cores, conns);
            sc.warmup = scaled(SimTime::from_ms(15), SimTime::from_ms(60));
            sc.measure = scaled(SimTime::from_ms(10), SimTime::from_ms(50));
            sc.seed = 7 + total as u64;
            let r = tas_bench::run_rpc(&sc);
            row += &format!(" {:>8}", fmt_mops(r.mops));
            at_max[i] = r.mops;
        }
        println!("{row}");
    }
    println!();
    println!("Table 6 core splits used (app/TAS):");
    for &total in &totals {
        let (fp, app) = split(Kind::TasSockets, total);
        let (fpl, appl) = split(Kind::TasLowLevel, total);
        println!("  {total} cores: sockets {app}/{fp}, lowlevel {appl}/{fpl}");
    }
    println!();
    println!(
        "at max cores: TAS LL/Linux = {:.1}x, TAS LL/IX = {:.1}x, TAS SO/Linux = {:.1}x, TAS SO/IX = {:.1}x",
        at_max[0] / at_max[3],
        at_max[0] / at_max[2],
        at_max[1] / at_max[3],
        at_max[1] / at_max[2],
    );
    println!("paper: 9.6x, 1.9x, 7.0x, 1.3x");
    let _ = full_scale();
    let mut rep =
        tas_bench::report::Report::new("fig8", "KV throughput scalability at max cores", 7);
    rep.param("conns", conns).param("cores", *totals.last().expect("totals"));
    for (i, name) in ["tas_ll", "tas_so", "ix", "linux"].iter().enumerate() {
        rep.push(tas_bench::report::Metric::value(name, "mops", at_max[i]));
    }
    let path = rep.write().expect("write BENCH_fig8.json");
    println!("report: {}", path.display());
}
