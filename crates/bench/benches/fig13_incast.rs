//! Figure 13: per-connection fairness under incast — 4 senders to one
//! receiver at line rate, sweeping total connections.
//!
//! Paper: per-connection bytes per 100 ms interval; TAS's 99th-percentile
//! stays within 1.6–2.8× of its median (which sits at fair share), while
//! Linux's median fluctuates widely with starved flows. Rate-based
//! pacing + per-flow queueing smooth bursts and avoid unfair drops.
//!
//! The runner lives in `tas_bench::scenarios::fig13` so this harness and
//! the `bench-report` regression gate measure the exact same scenario
//! (and `tas_bench::scenario::generators::incast_ecn` reuses its sender
//! count and seed for the multi-tenant incast scenario).

use tas_bench::scenarios::fig13;
use tas_bench::section;

fn main() {
    section(
        "Figure 13: per-connection throughput distribution under incast (4 -> 1)",
        "TAS p99 within 1.6-2.8x of median; median ~ fair share; Linux fluctuates",
    );
    let rows = fig13::sweep();
    println!(
        "{:<8} {:>14} {:>14} {:>10} {:>14} {:>10}",
        "conns", "TAS med [B]", "TAS p99 [B]", "p99/med", "Linux med [B]", "med/fair"
    );
    for r in &rows {
        println!(
            "{:<8} {:>14.0} {:>14.0} {:>10.2} {:>14.0} {:>10.2}",
            r.conns,
            r.tas_median,
            r.tas_p99,
            if r.tas_median > 0.0 {
                r.tas_p99 / r.tas_median
            } else {
                0.0
            },
            r.linux_median,
            if r.fair > 0.0 {
                r.linux_median / r.fair
            } else {
                0.0
            },
        );
    }
    println!();
    println!(
        "paper: TAS median ~= fair share with tight spread; Linux medians swing widely across runs"
    );
    let path = fig13::report_from(&rows)
        .write()
        .expect("write BENCH_fig13.json");
    println!("report: {}", path.display());
}
