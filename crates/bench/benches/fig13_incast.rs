//! Figure 13: per-connection fairness under incast — 4 senders to one
//! receiver at line rate, sweeping total connections.
//!
//! Paper: per-connection bytes per 100 ms interval; TAS's 99th-percentile
//! stays within 1.6–2.8× of its median (which sits at fair share), while
//! Linux's median fluctuates widely with starved flows. Rate-based
//! pacing + per-flow queueing smooth bursts and avoid unfair drops.

use tas::{CcAlgo, TasConfig, TasHost};
use tas_apps::bulk::{BulkReceiver, BulkSender};
use tas_baselines::{profiles, StackHost, StackHostConfig};
use tas_bench::{scaled, section};
use tas_netsim::app::App;
use tas_netsim::topo::{build_star, host_ip, HostSpec};
use tas_netsim::{NetMsg, NicConfig, PortConfig};
use tas_sim::{AgentId, Sim, SimTime};

#[derive(Clone, Copy, PartialEq)]
enum Stack {
    Linux,
    Tas,
}

/// Returns (median, p99, fair-share) of per-connection bytes per interval.
fn run(stack: Stack, conns_total: u32, seed: u64) -> (f64, f64, f64) {
    let mut sim: Sim<NetMsg> = Sim::new(seed);
    let senders = 4usize;
    let per_sender = conns_total / senders as u32;
    let recv_ip = host_ip(0);
    let interval = SimTime::from_ms(scaled(20, 100));
    let warmup = SimTime::from_ms(40);
    let mut factory = move |sim: &mut Sim<NetMsg>, spec: HostSpec| -> AgentId {
        let is_recv = spec.index == 0;
        let app: Box<dyn App> = if is_recv {
            Box::new(BulkReceiver::new(9).sampling(interval, warmup))
        } else {
            Box::new(BulkSender::new(recv_ip, 9, per_sender))
        };
        match stack {
            Stack::Tas => {
                let mut cfg = TasConfig::rpc_bench(2, 2);
                cfg.cc = CcAlgo::DctcpRate;
                cfg.initial_rate_bps = 200_000_000;
                cfg.control_interval = SimTime::from_us(200);
                cfg.rx_buf = 64 * 1024;
                cfg.tx_buf = 64 * 1024;
                cfg.max_core_backlog = SimTime::from_ms(50);
                sim.add_agent(Box::new(TasHost::new(
                    spec.ip,
                    spec.mac,
                    spec.nic,
                    cfg,
                    spec.uplink,
                    app,
                )))
            }
            Stack::Linux => {
                let mut cfg = StackHostConfig::linux(4);
                cfg.tcp.recv_buf = 64 * 1024;
                cfg.tcp.send_buf = 64 * 1024;
                cfg.max_core_backlog = SimTime::from_ms(50);
                sim.add_agent(Box::new(StackHost::new(
                    spec.ip,
                    spec.mac,
                    spec.nic,
                    profiles::linux(),
                    cfg,
                    spec.uplink,
                    app,
                )))
            }
        }
    };
    let topo = build_star(
        &mut sim,
        1 + senders,
        |_| PortConfig::tengig(),
        |_| NicConfig::client_10g(1),
        &mut factory,
    );
    for &h in &topo.hosts {
        sim.inject_timer(SimTime::ZERO, h, 0, 0);
    }
    let window = scaled(SimTime::from_ms(200), SimTime::from_secs(1));
    sim.run_until(warmup + window);
    let recv = match stack {
        Stack::Tas => sim.agent::<TasHost>(topo.hosts[0]).app_as::<BulkReceiver>(),
        Stack::Linux => sim
            .agent::<StackHost>(topo.hosts[0])
            .app_as::<BulkReceiver>(),
    };
    let mut samples: Vec<u64> = recv.interval_samples.clone();
    samples.sort_unstable();
    if samples.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let median = samples[samples.len() / 2] as f64;
    let idx = ((samples.len() as f64 * 0.99) as usize).min(samples.len() - 1);
    let p99 = samples[idx] as f64;
    // Fair share: payload line rate over the interval / connections.
    let fair = 9.4e9 / 8.0 * interval.as_secs_f64() / conns_total as f64;
    (median, p99, fair)
}

fn main() {
    section(
        "Figure 13: per-connection throughput distribution under incast (4 -> 1)",
        "TAS p99 within 1.6-2.8x of median; median ~ fair share; Linux fluctuates",
    );
    let conn_counts: Vec<u32> = scaled(vec![50, 200, 1000], vec![50, 100, 200, 500, 1000, 2000]);
    println!(
        "{:<8} {:>14} {:>14} {:>10} {:>14} {:>10}",
        "conns", "TAS med [B]", "TAS p99 [B]", "p99/med", "Linux med [B]", "med/fair"
    );
    let mut rows = Vec::new();
    for &n in &conn_counts {
        let (tm, tp, fair) = run(Stack::Tas, n, 31);
        let (lm, _lp, _) = run(Stack::Linux, n, 32);
        println!(
            "{n:<8} {tm:>14.0} {tp:>14.0} {:>10.2} {lm:>14.0} {:>10.2}",
            if tm > 0.0 { tp / tm } else { 0.0 },
            if fair > 0.0 { lm / fair } else { 0.0 },
        );
        rows.push((n, tm, tp, lm, fair));
    }
    println!();
    println!(
        "paper: TAS median ~= fair share with tight spread; Linux medians swing widely across runs"
    );
    let mut rep =
        tas_bench::report::Report::new("fig13", "Incast per-connection fairness (4 -> 1)", 31);
    rep.param("senders", 4);
    for &(n, tm, tp, lm, fair) in &rows {
        rep.push(
            tas_bench::report::Metric::value(&format!("tas_{n}c_median"), "bytes", tm)
                .with_component("p99", tp)
                .with_component("fair_share", fair),
        );
        rep.push(tas_bench::report::Metric::value(
            &format!("linux_{n}c_median"),
            "bytes",
            lm,
        ));
    }
    let path = rep.write().expect("write BENCH_fig13.json");
    println!("report: {}", path.display());
}
