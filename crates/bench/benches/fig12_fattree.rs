//! Figure 12: flow completion times in a FatTree cluster at ~30% core
//! load, for TCP (NewReno), DCTCP, and TAS (rate-based DCTCP, τ = 100 µs).
//!
//! Paper (ns-3, 2560 hosts): TAS's FCT distributions match DCTCP's for
//! both short (≤50 packets) and long flows; TCP's tail is worse. We run a
//! scaled-down k = 4 (quick) / k = 8 (TAS_FULL) FatTree with the same
//! 1:4 core oversubscription — documented in EXPERIMENTS.md.

use tas::{CcAlgo, TasConfig, TasHost};
use tas_apps::flows::{FlowGen, FlowSink};
use tas_baselines::{profiles, StackHost, StackHostConfig};
use tas_bench::{scaled, section};
use tas_netsim::app::App;
use tas_netsim::topo::{build_fattree, FatTreeConfig, HostSpec};
use tas_netsim::NetMsg;
use tas_sim::{AgentId, Histogram, Sim, SimTime};
use tas_tcp::{CcKind, TcpConfig};

#[derive(Clone, Copy, PartialEq)]
enum Cc {
    Tcp,
    Dctcp,
    TasRate,
}

/// Returns (short-flow FCT histogram, long-flow FCT histogram) in ns.
fn run(cc: Cc, seed: u64) -> (Histogram, Histogram) {
    let mut sim: Sim<NetMsg> = Sim::new(seed);
    let k = scaled(4usize, 8);
    let n_hosts = k * k * k / 4;
    // On-off flow generation toward random other hosts; with the 1:4
    // oversubscribed core, ~0.5 of the host link loads the core to ~30%+.
    let size_dist = tas_sim::dist::BoundedPareto::new(2.0 * 1448.0, 500.0 * 1448.0, 1.2);
    let mean_size = size_dist.mean();
    let per_host_bps = 0.5 * 10e9;
    let gap = SimTime::from_secs_f64(mean_size * 8.0 / per_host_bps);
    let all_dests: Vec<(std::net::Ipv4Addr, u16)> = (0..n_hosts as u32)
        .map(|i| (tas_netsim::topo::host_ip(i), 5001))
        .collect();
    let mut factory = move |sim: &mut Sim<NetMsg>, spec: HostSpec| -> AgentId {
        // Every host runs both a sink and a generator; the App trait takes
        // one app, so hosts run a generator and sinks live on every host
        // via... combine: FlowGen connects out; FlowSink listens. We give
        // even hosts generators and odd hosts sinks to keep one app per
        // host (documented scale-down).
        let dests: Vec<_> = all_dests
            .iter()
            .copied()
            .enumerate()
            .filter(|(i, _)| i % 2 == 1 && *i as u32 != spec.index)
            .map(|(_, d)| d)
            .collect();
        let app: Box<dyn App> = if spec.index.is_multiple_of(2) {
            let mut g = FlowGen::new(dests, gap, seed + spec.index as u64);
            g.size_alpha = 1.2;
            Box::new(g)
        } else {
            Box::new(FlowSink::new(5001))
        };
        match cc {
            Cc::TasRate => {
                let mut cfg = TasConfig::rpc_bench(1, 1);
                cfg.cc = CcAlgo::DctcpRate;
                cfg.control_interval = SimTime::from_us(100);
                cfg.initial_rate_bps = 500_000_000;
                cfg.rx_buf = 128 * 1024;
                cfg.tx_buf = 128 * 1024;
                cfg.max_core_backlog = SimTime::from_ms(50);
                sim.add_agent(Box::new(TasHost::new(
                    spec.ip,
                    spec.mac,
                    spec.nic,
                    cfg,
                    spec.uplink,
                    app,
                )))
            }
            _ => {
                let mut cfg = StackHostConfig::ix(2);
                cfg.tcp = TcpConfig {
                    cc: if cc == Cc::Tcp {
                        CcKind::NewReno
                    } else {
                        CcKind::Dctcp
                    },
                    ecn: cc != Cc::Tcp,
                    recv_buf: 128 * 1024,
                    send_buf: 128 * 1024,
                    rto_min: SimTime::from_ms(5),
                    ..TcpConfig::default()
                };
                cfg.max_core_backlog = SimTime::from_ms(50);
                sim.add_agent(Box::new(StackHost::new(
                    spec.ip,
                    spec.mac,
                    spec.nic,
                    profiles::ix(),
                    cfg,
                    spec.uplink,
                    app,
                )))
            }
        }
    };
    let cfg = FatTreeConfig {
        k,
        ..FatTreeConfig::paper_scaled()
    };
    let topo = build_fattree(&mut sim, cfg, &mut factory);
    for &h in &topo.hosts {
        sim.inject_timer(SimTime::ZERO, h, 0, 0);
    }
    let warmup = SimTime::from_ms(30);
    sim.run_until(warmup);
    for (i, &h) in topo.hosts.iter().enumerate() {
        if i % 2 == 1 {
            match cc {
                Cc::TasRate => {
                    sim.agent_mut::<TasHost>(h)
                        .app_as_mut::<FlowSink>()
                        .measure_from = warmup
                }
                _ => {
                    sim.agent_mut::<StackHost>(h)
                        .app_as_mut::<FlowSink>()
                        .measure_from = warmup
                }
            }
        }
    }
    let window = scaled(SimTime::from_ms(120), SimTime::from_ms(400));
    sim.run_until(warmup + window);
    let mut short = Histogram::new();
    let mut long = Histogram::new();
    for (i, &h) in topo.hosts.iter().enumerate() {
        if i % 2 == 1 {
            let sink = match cc {
                Cc::TasRate => sim.agent::<TasHost>(h).app_as::<FlowSink>(),
                _ => sim.agent::<StackHost>(h).app_as::<FlowSink>(),
            };
            short.merge(&sink.fct_short);
            long.merge(&sink.fct_long);
        }
    }
    (short, long)
}

fn main() {
    section(
        "Figure 12: FatTree FCT distributions (short <=50 pkts / long flows)",
        "TAS ~ DCTCP in both CDFs; TCP worse in the tail (scaled k-ary tree)",
    );
    println!(
        "(k = {}, {} hosts, 1:4 oversubscribed core, tau = 100us)",
        scaled(4, 8),
        scaled(16, 128)
    );
    let runs = [(Cc::Tcp, "TCP"), (Cc::Dctcp, "DCTCP"), (Cc::TasRate, "TAS")];
    let mut results = Vec::new();
    for (cc, name) in runs {
        let (s, l) = run(cc, 21);
        results.push((name, s, l));
    }
    for (which, pick) in [("short flows (<=50 pkts)", 0usize), ("long flows", 1)] {
        println!();
        println!("{which}: FCT percentiles [ms]");
        println!(
            "{:<8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "cc", "p50", "p90", "p99", "mean", "flows"
        );
        for (name, s, l) in &results {
            let h = if pick == 0 { s } else { l };
            println!(
                "{:<8} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8}",
                name,
                h.quantile(0.5) as f64 / 1e6,
                h.quantile(0.9) as f64 / 1e6,
                h.quantile(0.99) as f64 / 1e6,
                h.mean() / 1e6,
                h.count()
            );
        }
    }
    println!();
    println!("paper shape: TAS's distribution tracks DCTCP's; TCP has the heavier tail");
    let mut rep = tas_bench::report::Report::new("fig12", "FatTree flow completion times", 21);
    rep.param("k", scaled(4, 8)).param("hosts", scaled(16, 128));
    for (name, s, l) in &results {
        let tag = name.to_lowercase();
        rep.push(
            tas_bench::report::Metric::quantiles(&format!("{tag}_short_fct"), "ns", s)
                .with_tol(0.20),
        );
        rep.push(
            tas_bench::report::Metric::quantiles(&format!("{tag}_long_fct"), "ns", l)
                .with_tol(0.20),
        );
    }
    let path = rep.write().expect("write BENCH_fig12.json");
    println!("report: {}", path.display());
}
