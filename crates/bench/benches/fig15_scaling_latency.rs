//! Figure 15: end-to-end request latency while TAS acquires fast-path
//! cores in response to a load increase.
//!
//! Paper: during the core-count adjustment, latency spikes by ~15 µs
//! (~30%) and quickly returns to the previous level.
//!
//! The runner lives in `tas_bench::scenarios::fig15` so this harness and
//! the `bench-report` regression gate measure the exact same scenario.

use tas_bench::scenarios::fig15;
use tas_bench::section;
use tas_sim::SimTime;

fn main() {
    section(
        "Figure 15: request latency across a fast-path core addition",
        "latency spikes ~30% (~15us) during the adjustment, then recovers",
    );
    let outcome = fig15::run(7, 3, SimTime::from_ms(300), fig15::canonical_sample());
    println!("{:<10} {:>7} {:>14}", "t [ms]", "cores", "mean lat [us]");
    for row in &outcome.rows {
        println!(
            "{:<10} {:>7} {:>14.1}",
            row.t_ms, row.cores, row.mean_lat_us
        );
    }
    println!();
    println!(
        "scaling events: {}, transient latency spikes (>25% jump): {}",
        outcome.scale_events, outcome.spikes
    );
    println!(
        "steady-state latency {:.1} us, worst sampled mean {:.1} us",
        outcome.steady_lat_us, outcome.peak_lat_us
    );
    println!("paper: ~15us (~30%) spike during each adjustment, quick recovery");
    let path = fig15::report_from(&outcome)
        .write()
        .expect("write BENCH_fig15.json");
    println!("report: {}", path.display());
}
