//! Figure 15: end-to-end request latency while TAS acquires fast-path
//! cores in response to a load increase.
//!
//! Paper: during the core-count adjustment, latency spikes by ~15 µs
//! (~30%) and quickly returns to the previous level.

use tas::host::timers as tas_timers;
use tas::{ApiKind, CcAlgo, TasConfig, TasHost};
use tas_apps::kv::KvServer;
use tas_apps::loadgen::{timers as lg_timers, LoadGenConfig, LoadGenHost};
use tas_bench::{scaled, section};
use tas_netsim::app::App;
use tas_netsim::topo::{build_star, host_ip, HostSpec};
use tas_netsim::{NetMsg, NicConfig, PortConfig};
use tas_sim::{AgentId, Sim, SimTime};

fn main() {
    section(
        "Figure 15: request latency across a fast-path core addition",
        "latency spikes ~30% (~15us) during the adjustment, then recovers",
    );
    let mut sim: Sim<NetMsg> = Sim::new(7);
    let server_ip = host_ip(0);
    let clients = 3usize;
    let step = SimTime::from_ms(300);
    let mut factory = move |sim: &mut Sim<NetMsg>, spec: HostSpec| -> AgentId {
        if spec.index == 0 {
            // Reduced clock so modest load exercises many cores.
            let cfg = TasConfig {
                freq_hz: 50_000_000,
                max_fp_cores: 10,
                initial_fp_cores: 1,
                app_cores: 10,
                api: ApiKind::Sockets,
                cc: CcAlgo::None,
                rx_buf: 4096,
                tx_buf: 4096,
                proportional: true,
                max_core_backlog: SimTime::from_ms(50),
                ..TasConfig::default()
            };
            let app: Box<dyn App> = Box::new(KvServer::new(7));
            sim.add_agent(Box::new(TasHost::new(
                spec.ip,
                spec.mac,
                spec.nic,
                cfg,
                spec.uplink,
                app,
            )))
        } else {
            let mut template = vec![0u8; tas_apps::kv::REQ_HDR + tas_apps::kv::VAL_SIZE];
            template[0] = tas_apps::kv::OP_GET;
            template[1..5].copy_from_slice(&1u32.to_be_bytes());
            let cfg = LoadGenConfig {
                server: server_ip,
                port: 7,
                conns: 80,
                think: SimTime::from_ms(1),
                req_size: template.len(),
                resp_size: tas_apps::kv::RESP_HDR + tas_apps::kv::VAL_SIZE,
                req_template: Some(template),
                ..LoadGenConfig::default()
            };
            sim.add_agent(Box::new(LoadGenHost::new(
                spec.ip,
                spec.mac,
                spec.nic,
                spec.uplink,
                cfg,
            )))
        }
    };
    let topo = build_star(
        &mut sim,
        1 + clients,
        |i| {
            if i == 0 {
                PortConfig::fortygig()
            } else {
                PortConfig::tengig()
            }
        },
        |i| {
            if i == 0 {
                NicConfig::server_40g(1)
            } else {
                NicConfig::client_10g(1)
            }
        },
        &mut factory,
    );
    sim.inject_timer(SimTime::ZERO, topo.hosts[0], tas_timers::INIT, 0);
    for (i, &h) in topo.hosts[1..].iter().enumerate() {
        sim.inject_timer(step * i as u64, h, lg_timers::INIT, 0);
    }
    // Sample windowed latency and core count at fine granularity around
    // the client-arrival steps.
    let sample = SimTime::from_ms(scaled(10, 5));
    let total = step * (clients as u64 + 1);
    println!("{:<10} {:>7} {:>14}", "t [ms]", "cores", "mean lat [us]");
    let mut t = SimTime::ZERO;
    let mut spikes = 0;
    let mut prev_lat = 0.0f64;
    while t < total {
        t += sample;
        sim.run_until(t);
        let mut lat = 0.0;
        let mut n = 0u64;
        for &c in &topo.hosts[1..] {
            let lg = sim.agent_mut::<LoadGenHost>(c);
            if lg.window_lat_us.count() > 0 {
                lat += lg.window_lat_us.mean() * lg.window_lat_us.count() as f64;
                n += lg.window_lat_us.count();
            }
            lg.reset_window();
        }
        let mean = if n > 0 { lat / n as f64 } else { 0.0 };
        let cores = sim.agent::<TasHost>(topo.hosts[0]).active_fp_cores();
        println!("{:<10} {cores:>7} {mean:>14.1}", t.as_millis());
        if prev_lat > 0.0 && mean > prev_lat * 1.25 {
            spikes += 1;
        }
        if mean > 0.0 {
            prev_lat = mean;
        }
    }
    println!();
    let st = sim.agent::<TasHost>(topo.hosts[0]).host_stats();
    println!(
        "scaling events: {}, transient latency spikes (>25% jump): {spikes}",
        st.scale_events
    );
    println!("paper: ~15us (~30%) spike during each adjustment, quick recovery");
}
