//! Table 2: per-request app/stack overheads — cycles, instructions, CPI.
//!
//! Paper: Linux 1.1k/15.7k app/stack cycles, 12.7 ki, CPI 1.32;
//! IX 0.8k/1.9k, 3.3 ki, CPI 0.82; TAS 0.7k/1.9k, 3.9 ki, CPI 0.66.
//! (The paper's four top-down buckets need hardware PMUs; we report the
//! model's backend-stall share — cycles charged without retired
//! instructions — as the "backend bound" analogue.)

use tas_bench::scenarios::table1;
use tas_bench::{scaled, section, Kind};
use tas_cpusim::Module;

fn main() {
    section(
        "Table 2: per-request app/stack cycles, instructions, CPI (KV store)",
        "Linux 1.1k/15.7k, 12.7ki, CPI 1.32; IX 0.8k/1.9k, 3.3ki, 0.82; TAS 0.7k/1.9k, 3.9ki, 0.66",
    );
    let conns = scaled(2_000, 32_000);
    println!("(connections: {conns})");
    println!();
    println!(
        "{:<10} {:>14} {:>10} {:>6} {:>14}",
        "Stack", "cyc app/stack", "instr", "CPI", "backend-ish"
    );
    let mut rep =
        tas_bench::report::Report::new("table2", "Per-request cycles, instructions, CPI", 0);
    rep.param("conns", conns);
    for kind in [Kind::Linux, Kind::Ix, Kind::TasSockets] {
        // Same scenario as Table 1 and cpuprof: one source of cycle truth.
        let r = table1::measure(kind);
        let p = &r.per_request;
        let app_c = p.cycles[Module::App as usize];
        let stack_c = p.stack_cycles();
        // "Backend bound" analogue: cycles charged with no retired
        // instructions (the cache/contention stall charges).
        let backend = p.total_cycles() - p.total_instr().min(p.total_cycles());
        println!(
            "{:<10} {:>6.0}/{:<7.0} {:>10.0} {:>6.2} {:>14.0}",
            kind.label(),
            app_c,
            stack_c,
            p.total_instr(),
            p.cpi(),
            backend.max(0.0),
        );
        let tag = kind.label().to_lowercase().replace(' ', "_");
        rep.push(
            tas_bench::report::Metric::value(&format!("stack_cycles_{tag}"), "cycles", stack_c)
                .with_component("app_cycles", app_c)
                .with_component("instr", p.total_instr())
                .with_component("cpi", p.cpi()),
        );
    }
    println!();
    println!("paper reference:");
    println!("Linux         1100/15700      12700   1.32  (backend 388/9046)");
    println!("IX             800/1900        3300   0.82  (backend 402/1005)");
    println!("TAS            700/1900        3900   0.66  (backend 353/684)");
    let path = rep.write().expect("write BENCH_table2.json");
    println!("report: {}", path.display());
}
