//! Figure 10 + Table 8: FlexStorm real-time analytics on Linux, mTCP, TAS.
//!
//! Three nodes in a processing chain; tuples stream over TCP; each node
//! runs demux → workers → batching mux. Paper: raw throughput Linux ≈
//! 1.3 mt/s, mTCP ≈ 2.8 (2.1×), TAS ≈ 3.0 (+8%); per-tuple time is
//! dominated by the mux output queue: Linux 20 ms, mTCP 14+4 ms, TAS 8 ms
//! (TAS needs no stack batching).

use tas_apps::flexstorm::{FlexStormNode, TUPLE_SIZE};
use tas_bench::{make_server, scaled, section, Bufs, Kind};
use tas_netsim::topo::{build_star, host_ip, HostSpec};
use tas_netsim::{NetMsg, NicConfig, PortConfig};
use tas_sim::{AgentId, Sim, SimTime};

struct NodeStats {
    input_us: f64,
    proc_us: f64,
    output_ms: f64,
}

fn run(kind: Kind, spout_rate: u64, seed: u64) -> (f64, NodeStats) {
    let mut sim: Sim<NetMsg> = Sim::new(seed);
    let nodes = 3usize;
    let workers = 2u16;
    let mut factory = move |sim: &mut Sim<NetMsg>, spec: HostSpec| -> AgentId {
        let next = if (spec.index as usize) < nodes - 1 {
            Some((host_ip(spec.index + 1), 7_000))
        } else {
            None
        };
        let mut node = FlexStormNode::new(7_000, workers, next);
        if spec.index == 0 {
            node.spout_rate = spout_rate;
        }
        // Cores: demux + workers + mux = 4 contexts.
        let bufs = Bufs {
            rx: 256 * 1024,
            tx: 256 * 1024,
        };
        make_server(sim, spec, kind, (2, 4), bufs, Box::new(node))
    };
    let topo = build_star(
        &mut sim,
        nodes,
        |_| PortConfig::tengig(),
        |_| NicConfig::client_10g(1),
        &mut factory,
    );
    for &h in &topo.hosts {
        sim.inject_timer(SimTime::ZERO, h, 0, 0);
    }
    let warmup = SimTime::from_ms(100);
    let window = scaled(SimTime::from_ms(300), SimTime::from_secs(2));
    sim.run_until(warmup);
    let p0 = node_of(&sim, topo.hosts[2], kind).stats.tuples_processed;
    for &h in &topo.hosts {
        // Gate stats.
        match kind {
            Kind::TasSockets | Kind::TasLowLevel => {
                sim.agent_mut::<tas::TasHost>(h)
                    .app_as_mut::<FlexStormNode>()
                    .measure_from = warmup;
            }
            _ => {
                sim.agent_mut::<tas_baselines::StackHost>(h)
                    .app_as_mut::<FlexStormNode>()
                    .measure_from = warmup;
            }
        }
    }
    sim.run_until(warmup + window);
    let sink = node_of(&sim, topo.hosts[2], kind);
    let p1 = sink.stats.tuples_processed;
    // Table 8 measures the middle node (fully loaded in and out).
    let mid = node_of(&sim, topo.hosts[1], kind);
    let stats = NodeStats {
        input_us: mid.input_delay_us.mean(),
        proc_us: mid.proc_us.mean(),
        output_ms: mid.output_delay_us.mean() / 1000.0,
    };
    let mtps = (p1 - p0) as f64 / window.as_secs_f64() / 1e6;
    (mtps, stats)
}

fn node_of(sim: &Sim<NetMsg>, id: AgentId, kind: Kind) -> &FlexStormNode {
    match kind {
        Kind::TasSockets | Kind::TasLowLevel => {
            sim.agent::<tas::TasHost>(id).app_as::<FlexStormNode>()
        }
        _ => sim
            .agent::<tas_baselines::StackHost>(id)
            .app_as::<FlexStormNode>(),
    }
}

fn main() {
    section(
        "Figure 10 + Table 8: FlexStorm throughput and tuple latency breakdown",
        "raw mt/s: Linux 1.3, mTCP 2.8, TAS 3.0; tuple time: 20ms / 18ms / 8ms",
    );
    let rate = scaled(1_500_000, 4_000_000);
    println!(
        "(offered spout rate: {} tuples/s, 3 nodes, 2 workers each)",
        rate
    );
    println!();
    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "stack", "mt/s", "input us", "proc us", "output ms", "total ms"
    );
    let mut results = Vec::new();
    for (kind, seed) in [(Kind::Linux, 1u64), (Kind::Mtcp, 2), (Kind::TasSockets, 3)] {
        let (mtps, st) = run(kind, rate, seed);
        println!(
            "{:<8} {:>10.3} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            kind.label(),
            mtps,
            st.input_us,
            st.proc_us,
            st.output_ms,
            st.input_us / 1000.0 + st.proc_us / 1000.0 + st.output_ms,
        );
        results.push((kind, mtps, st));
    }
    println!();
    println!(
        "tuple wire size {} B; paper reference: Linux 6.96us/0.37us/20ms; mTCP 4ms/0.33us/14ms; TAS 7.47us/0.36us/8ms",
        TUPLE_SIZE
    );
    let mut rep =
        tas_bench::report::Report::new("fig10", "FlexStorm throughput and tuple latency", 1);
    rep.param("spout_rate", rate).param("nodes", 3);
    for (kind, mtps, st) in &results {
        let name = match kind {
            Kind::Linux => "linux",
            Kind::Mtcp => "mtcp",
            _ => "tas",
        };
        rep.push(
            tas_bench::report::Metric::value(&format!("{name}_mtps"), "mops", *mtps)
                .with_component("input_us", st.input_us)
                .with_component("proc_us", st.proc_us)
                .with_component("output_ms", st.output_ms),
        );
    }
    let path = rep.write().expect("write BENCH_fig10.json");
    println!("report: {}", path.display());
}
