//! Figure 5: throughput with short-lived connections (messages per
//! connection swept), TAS vs. Linux.
//!
//! Paper: 1,024 concurrent short-lived connections, one app core (TAS:
//! two fast-path cores + partial slow path). With ≥4 RPCs/connection TAS
//! outperforms Linux; with 256 RPCs/connection TAS reaches 95% of its
//! persistent-connection throughput.

use tas_apps::echo::{EchoServer, Lifetime, RpcClient, ServerMode};
use tas_bench::{full_scale, make_server, scaled, section, Bufs, Kind};
use tas_netsim::app::App;
use tas_netsim::topo::{build_star, host_ip, HostSpec};
use tas_netsim::{NetMsg, NicConfig, PortConfig};
use tas_sim::{AgentId, Sim, SimTime};

/// Runs short-lived echo with `msgs_per_conn` and returns mOps.
fn run(kind: Kind, msgs_per_conn: u32, conns: u32, measure: SimTime) -> f64 {
    let mut sim: Sim<NetMsg> = Sim::new(7 + msgs_per_conn as u64);
    let server_ip = host_ip(0);
    let client_hosts = 4usize;
    let per_client = conns / client_hosts as u32;
    let mut factory = move |sim: &mut Sim<NetMsg>, spec: HostSpec| -> AgentId {
        if spec.index == 0 {
            let app: Box<dyn App> = Box::new(EchoServer::new(7, 64, ServerMode::Echo, 300));
            make_server(sim, spec, kind, (2, 1), Bufs::tiny(), app)
        } else {
            // Clients run on TAS so they are never the bottleneck.
            let lifetime = if msgs_per_conn == u32::MAX {
                Lifetime::Persistent
            } else {
                Lifetime::ShortLived { msgs_per_conn }
            };
            let app: Box<dyn App> =
                Box::new(RpcClient::new(server_ip, 7, per_client, 1, 64, lifetime));
            make_server(sim, spec, Kind::TasSockets, (2, 2), Bufs::tiny(), app)
        }
    };
    let topo = build_star(
        &mut sim,
        1 + client_hosts,
        |i| {
            if i == 0 {
                PortConfig::fortygig()
            } else {
                PortConfig::tengig()
            }
        },
        |i| {
            if i == 0 {
                NicConfig::server_40g(1)
            } else {
                NicConfig::client_10g(1)
            }
        },
        &mut factory,
    );
    for &h in &topo.hosts {
        sim.inject_timer(SimTime::ZERO, h, 0, 0);
    }
    let warmup = SimTime::from_ms(30);
    sim.run_until(warmup);
    let t0_msgs = server_msgs(&sim, topo.hosts[0], kind);
    sim.run_until(warmup + measure);
    let t1_msgs = server_msgs(&sim, topo.hosts[0], kind);
    (t1_msgs - t0_msgs) as f64 / measure.as_secs_f64() / 1e6
}

fn server_msgs(sim: &Sim<NetMsg>, id: AgentId, kind: Kind) -> u64 {
    match kind {
        Kind::TasSockets | Kind::TasLowLevel => {
            sim.agent::<tas::TasHost>(id)
                .app_as::<EchoServer>()
                .messages
        }
        _ => {
            sim.agent::<tas_baselines::StackHost>(id)
                .app_as::<EchoServer>()
                .messages
        }
    }
}

fn main() {
    section(
        "Figure 5: throughput with short-lived connections",
        "TAS beats Linux from ~4 RPCs/conn; 95% of line throughput at 256",
    );
    let conns = scaled(128, 1_024);
    let measure = scaled(SimTime::from_ms(30), SimTime::from_ms(100));
    let sweep: Vec<u32> = if full_scale() {
        vec![1, 2, 4, 16, 64, 256, 1_024, 4_096]
    } else {
        vec![1, 4, 16, 64, 256]
    };
    println!("({conns} concurrent connections)");
    println!(
        "{:<12} {:>10} {:>10}",
        "msgs/conn", "TAS mOps", "Linux mOps"
    );
    let mut tas_results = Vec::new();
    for &m in &sweep {
        let t = run(Kind::TasSockets, m, conns, measure);
        let l = run(Kind::Linux, m, conns, measure);
        tas_results.push((m, t, l));
        println!("{m:<12} {t:>10.3} {l:>10.3}");
    }
    let t_inf = run(Kind::TasSockets, u32::MAX, conns, measure);
    println!("{:<12} {t_inf:>10.3} {:>10}", "persistent", "-");
    println!();
    // Shape checks: throughput grows with msgs/conn; TAS wins at >= 4.
    let first = tas_results.first().expect("rows");
    let last = tas_results.last().expect("rows");
    println!(
        "TAS grows {:.2} -> {:.2} mOps; at {} msgs/conn TAS/Linux = {:.1}x",
        first.1,
        last.1,
        last.0,
        last.1 / last.2
    );
    println!("paper: TAS outperforms Linux with >=4 RPCs/conn; 95% utilization at 256");
    let mut rep = tas_bench::report::Report::new("fig5", "Short-lived connection throughput", 7);
    rep.param("conns", conns);
    for &(m, t, l) in &tas_results {
        rep.push(tas_bench::report::Metric::value(
            &format!("tas_{m}mpc"),
            "mops",
            t,
        ));
        rep.push(tas_bench::report::Metric::value(
            &format!("linux_{m}mpc"),
            "mops",
            l,
        ));
    }
    rep.push(tas_bench::report::Metric::value(
        "tas_persistent",
        "mops",
        t_inf,
    ));
    let path = rep.write().expect("write BENCH_fig5.json");
    println!("report: {}", path.display());
}
