//! Figure 9 + Table 5: key-value store request latency distributions for
//! server/client stack combinations at 15% utilization.
//!
//! Paper (TAS clients): Linux median 97 µs / 99th 177 µs / max 1319 µs;
//! IX 20 / 30 / 280; TAS 17 / 30 / 122. TAS beats Linux ~5.6× at the
//! median and both kernel-bypass designs crush Linux's tail.
//!
//! The runner lives in `tas_bench::scenarios::fig9` so this harness and
//! the `bench-report` regression gate measure the exact same scenario.

use tas_bench::scenarios::fig9;
use tas_bench::{section, Kind};

fn main() {
    section(
        "Figure 9 + Table 5: KV request latency (server/client combos, 15% util)",
        "TAS clients: Linux 97/129/177/1319 us, IX 20/27/30/280, TAS 17/20/30/122 (median/90th/99th/max)",
    );
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "server/client", "median", "90th", "99th", "max", "count"
    );
    let combos: Vec<(Kind, Kind, u64)> = vec![
        (Kind::TasSockets, Kind::TasSockets, 1),
        (Kind::Ix, Kind::TasSockets, 2),
        (Kind::Linux, Kind::TasSockets, 3),
        (Kind::TasSockets, Kind::Linux, 4),
        (Kind::Linux, Kind::Linux, 5),
    ];
    for (s, c, seed) in combos {
        let h = fig9::run(s, c, seed);
        let us = |q: f64| h.quantile(q) as f64 / 1000.0;
        println!(
            "{:<16} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8}",
            format!("{}/{}", s.label(), c.label()),
            us(0.5),
            us(0.9),
            us(0.99),
            h.max() as f64 / 1000.0,
            h.count()
        );
    }
    println!();
    // CDF points for the figure (TAS/TAS and Linux/TAS).
    let tas = fig9::run(Kind::TasSockets, Kind::TasSockets, 1);
    let linux = fig9::run(Kind::Linux, Kind::TasSockets, 3);
    println!("CDF [latency us -> fraction]  (TAS/TAS vs Linux/TAS)");
    let pts: Vec<u64> = vec![5, 10, 15, 20, 30, 50, 75, 100, 150, 200, 400]
        .into_iter()
        .map(|u| u * 1000)
        .collect();
    for (p, f) in tas.cdf_points(&pts) {
        let lf = linux.cdf_points(&[p]).first().map(|x| x.1).unwrap_or(0.0);
        println!("  {:>6} us   TAS {f:>5.2}   Linux {lf:>5.2}", p / 1000);
    }
    println!();
    println!("paper shape: TAS median ~5.6x better than Linux; TAS max ~2.3x better than IX");
    let path = fig9::report().write().expect("write BENCH_fig9.json");
    println!("report: {}", path.display());
}
